// Example: navigating the isolation-utilization trade-off with the P knob.
//
// Shows how an operator uses the library's analytical model (Sec. IV-B) to
// pick a reservation deadline, and validates the model against simulation:
// for a sweep of isolation targets P the example prints
//   * the model's deadline D = t_m (1 - P^{1/N})^{-1/alpha},
//   * the model's utilization lower bound (Eq. 4), and
//   * the measured slowdown + reservation waste from a simulated run.
//
//   $ ./example_tradeoff_knob
#include <iostream>

#include "ssr/analysis/pareto.h"
#include "ssr/common/table.h"
#include "ssr/exp/scenario.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

using namespace ssr;

int main() {
  const ClusterSpec cluster{.nodes = 10, .slots_per_node = 2};
  const std::size_t parallelism = 20;
  const ParetoModel model{1.6, 4.0};  // the operator's workload estimate

  RunOptions base;
  base.seed = 11;
  const double alone = alone_jct(cluster, make_kmeans(20, 10, 0.0), base);

  TraceGenConfig bg;
  bg.num_jobs = 40;
  bg.window = 600.0;
  bg.seed = 19;

  std::cout << "The reservation-deadline knob: model vs simulation "
               "(KMeans, N = 20, alpha = 1.6)\n\n";
  TablePrinter table({"P", "model deadline D (s)", "model E[U] bound",
                      "measured slowdown", "reserved-idle slot-s"});
  for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    RunOptions o = base;
    o.ssr = SsrConfig{};
    o.ssr->isolation_p = p;
    std::vector<JobSpec> jobs = make_background_jobs(bg);
    jobs.push_back(make_kmeans(20, 10, 60.0));
    const RunResult r = run_scenario(cluster, std::move(jobs), o);

    const double d = deadline_for_isolation(model, p, parallelism);
    table.add_row(
        {TablePrinter::num(p, 1),
         d == kTimeInfinity ? "inf" : TablePrinter::num(d, 1),
         TablePrinter::num(utilization_for_isolation(model.alpha, p,
                                                     parallelism), 3),
         TablePrinter::num(slowdown(r.jct_of("kmeans"), alone), 2),
         TablePrinter::num(r.reserved_idle_time, 1)});
  }
  table.print(std::cout);
  std::cout << "\nHigher P -> longer deadlines, better isolation (lower\n"
               "slowdown), more reservation waste — the knob the operator\n"
               "charges users by (Sec. IV-B).\n";
  return 0;
}
