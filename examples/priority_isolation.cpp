// Example: enforcing service isolation for a latency-sensitive ML job that
// shares a cluster with a trace-driven batch workload.
//
// Mirrors the paper's motivating scenario (Sec. I / Fig. 1): a KMeans job at
// high priority contends with background jobs at low priority.  The example
// measures the KMeans slowdown (contended JCT / alone JCT) under three
// schedulers: baseline, SSR with strict isolation, and SSR with a relaxed
// isolation target P = 0.5.
//
//   $ ./example_priority_isolation
#include <iostream>

#include "ssr/common/table.h"
#include "ssr/exp/scenario.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

using namespace ssr;

int main() {
  const ClusterSpec cluster{.nodes = 10, .slots_per_node = 2};

  // Background: 40 Google-trace-like jobs over a 10-minute window.
  TraceGenConfig bg;
  bg.num_jobs = 40;
  bg.window = 600.0;
  bg.seed = 7;

  // Foreground: KMeans with 20-way parallelism, submitted into the busy
  // cluster one minute in.
  auto foreground = [] { return make_kmeans(20, /*priority=*/10, 60.0); };

  RunOptions baseline;
  baseline.seed = 1;
  const double alone = alone_jct(cluster, make_kmeans(20, 10, 0.0), baseline);

  std::cout << "KMeans (priority 10) vs 40 background jobs on 20 slots\n"
            << "alone JCT = " << alone << " s\n\n";

  TablePrinter table({"scheduler", "kmeans JCT (s)", "slowdown",
                      "reserved-idle slot-s"});
  struct Case {
    const char* label;
    std::optional<SsrConfig> ssr;
  };
  SsrConfig strict;          // P = 1
  SsrConfig relaxed;
  relaxed.isolation_p = 0.5; // cheaper, weaker isolation
  const Case cases[] = {{"baseline (work conserving)", std::nullopt},
                        {"SSR, strict (P = 1.0)", strict},
                        {"SSR, relaxed (P = 0.5)", relaxed}};

  for (const Case& c : cases) {
    RunOptions o = baseline;
    o.ssr = c.ssr;
    std::vector<JobSpec> jobs = make_background_jobs(bg);
    jobs.push_back(foreground());
    const RunResult r = run_scenario(cluster, std::move(jobs), o);
    table.add_row({c.label, TablePrinter::num(r.jct_of("kmeans"), 1),
                   TablePrinter::num(slowdown(r.jct_of("kmeans"), alone), 2),
                   TablePrinter::num(r.reserved_idle_time, 1)});
  }
  table.print(std::cout);
  std::cout << "\nReservations cut the contended slowdown by more than half;\n"
               "relaxing the isolation target to P = 0.5 keeps most of that\n"
               "benefit while shedding nearly all the reserved-idle waste\n"
               "(the deadline expires before stragglers can hold slots).\n";
  return 0;
}
