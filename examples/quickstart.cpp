// Quickstart: the smallest end-to-end use of the library.
//
// Builds a tiny cluster, submits a high-priority workflow job and a
// low-priority batch job, and runs the same scenario twice — once with the
// plain work-conserving scheduler and once with speculative slot
// reservation — printing the completion times side by side.
//
//   $ ./example_quickstart
#include <iostream>
#include <memory>

#include "ssr/common/table.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/sched/engine.h"

using namespace ssr;

namespace {

/// One simulated run; returns {workflow JCT, batch JCT}.
std::pair<double, double> simulate(bool with_ssr) {
  // One node with 2 executor slots (an m4.large in the paper's setup).
  Engine engine(SchedConfig{}, /*num_nodes=*/1, /*slots_per_node=*/2,
                /*seed=*/42);

  if (with_ssr) {
    // Install the paper's mechanism.  Default config: strict isolation
    // (P = 1), pre-reservation at R = 0.5, straggler mitigation off.
    engine.set_reservation_hook(
        std::make_unique<ReservationManager>(SsrConfig{}));
  }

  // A latency-sensitive workflow: two barrier-separated phases whose first
  // phase has skewed task durations (5 s and 10 s).
  const JobId workflow = engine.submit(JobBuilder("workflow")
                                           .priority(10)
                                           .stage(2, fixed_duration(1.0))
                                           .explicit_durations({5.0, 10.0})
                                           .stage(2, fixed_duration(5.0))
                                           .build());

  // A latency-tolerant batch job with long tasks, arriving a second later.
  const JobId batch = engine.submit(JobBuilder("batch")
                                        .priority(0)
                                        .submit_at(1.0)
                                        .stage(2, fixed_duration(100.0))
                                        .build());

  engine.run();
  return {engine.jct(workflow), engine.jct(batch)};
}

}  // namespace

int main() {
  const auto [wf_base, batch_base] = simulate(/*with_ssr=*/false);
  const auto [wf_ssr, batch_ssr] = simulate(/*with_ssr=*/true);

  std::cout << "Quickstart: a 2-phase workflow (priority 10) vs a batch job "
               "(priority 0) on 2 slots\n\n";
  TablePrinter table({"scheduler", "workflow JCT (s)", "batch JCT (s)"});
  table.add_row({"work-conserving baseline", TablePrinter::num(wf_base, 1),
                 TablePrinter::num(batch_base, 1)});
  table.add_row({"speculative slot reservation", TablePrinter::num(wf_ssr, 1),
                 TablePrinter::num(batch_ssr, 1)});
  table.print(std::cout);

  std::cout
      << "\nWhat happened: at t=5 the workflow's first task finished.  The\n"
         "baseline handed the freed slot to the batch job (work\n"
         "conservation), so the workflow's second phase ran serially on one\n"
         "slot.  With SSR the slot was reserved across the barrier and the\n"
         "workflow finished as if it were alone.\n";
  return 0;
}
