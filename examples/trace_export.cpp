// Example: export a simulated run as a Chrome trace.
//
// Runs the quickstart scenario with SSR and writes ssr_trace.json; open it
// in chrome://tracing or https://ui.perfetto.dev.  Each slot is a track;
// you can see the reservation gap on the freed slot between the workflow's
// two phases, and the batch job starting only after the workflow finishes.
//
//   $ ./example_trace_export && ls ssr_trace.json
#include <fstream>
#include <iostream>
#include <memory>

#include "ssr/core/reservation_manager.h"
#include "ssr/metrics/trace_export.h"
#include "ssr/sched/engine.h"

using namespace ssr;

int main() {
  Engine engine(SchedConfig{}, 2, 2, 42);
  engine.set_reservation_hook(
      std::make_unique<ReservationManager>(SsrConfig{}));
  TraceExporter trace;
  engine.add_observer(&trace);

  engine.submit(JobBuilder("workflow")
                    .priority(10)
                    .stage(4, uniform_duration(4.0, 9.0))
                    .stage(4, uniform_duration(4.0, 9.0))
                    .stage(4, uniform_duration(4.0, 9.0))
                    .build());
  engine.submit(JobBuilder("batch")
                    .priority(0)
                    .submit_at(1.0)
                    .stage(8, uniform_duration(15.0, 30.0))
                    .build());
  engine.run();

  std::ofstream out("ssr_trace.json");
  trace.write_json(out);
  std::cout << "Wrote ssr_trace.json with " << trace.event_count()
            << " task events.\nOpen it in chrome://tracing or "
               "https://ui.perfetto.dev — slot tracks show the reservation\n"
               "gaps between the workflow's phases.\n";
  return 0;
}
