// Example: a long-lived multi-tenant scheduling service.
//
// The paper's experiments are closed batches; the system it motivates is a
// service: tenants submit jobs continuously against a shared cluster, and
// the operator carves per-tenant virtual clusters (min/max slot shares) so
// one tenant's burst cannot starve another.  This example runs that
// deployment end to end on the open-system stepping API:
//
//   * an "interactive" tenant — high-priority SQL/ML queries, a guaranteed
//     share, SSR reservations keeping its barriers tight;
//   * a "batch" tenant — a heavier elastic share with admission queueing;
//   * a "besteffort" tenant — a small share with queueing OFF, so over-quota
//     submissions are rejected outright.
//
// Midway through the stream the operator transfers slots from batch to
// interactive — an elastic resize while jobs are in flight — and the final
// table shows the admission/SLO ledger every tenant ends up with.  The whole
// run is metered through a MetricsRegistry (per-tenant label groups fed live
// by the EngineMetrics observer, the admission ledger snapshotted at drain),
// exported as one ssr-metrics-v1 JSON document — what a real deployment
// would scrape.
//
//   $ ./example_open_server [metrics.json]
#include <iomanip>
#include <iostream>

#include "ssr/metrics/engine_metrics.h"
#include "ssr/metrics/registry.h"
#include "ssr/sched/virtual_cluster.h"
#include "ssr/workload/open_arrival.h"

using namespace ssr;

int main(int argc, char** argv) {
  std::cout << "Open-system service with multi-tenant virtual clusters\n\n";

  Engine engine(SchedConfig{}, /*num_nodes=*/10, /*slots_per_node=*/2,
                /*seed=*/7);  // 20 slots
  VirtualClusterManager vcm(engine);
  MetricsRegistry metrics;
  EngineMetrics meter(metrics, /*policy=*/"service");
  meter.set_tenant_resolver([&vcm](JobId job) { return vcm.tenant_of(job); });
  engine.add_observer(&meter);
  vcm.add_cluster({.name = "interactive",
                   .min_slots = 6,
                   .max_slots = 10,
                   .queue_when_full = true});
  vcm.add_cluster({.name = "batch",
                   .min_slots = 10,
                   .max_slots = 16,
                   .queue_when_full = true});
  vcm.add_cluster({.name = "besteffort",
                   .min_slots = 2,
                   .max_slots = 4,
                   .queue_when_full = false});

  std::vector<OpenTenantProfile> profiles;
  profiles.push_back({.tenant = "interactive",
                      .mean_interarrival = 25.0,
                      .num_jobs = 30,
                      .min_parallelism = 4,
                      .max_parallelism = 8,
                      .priority = 10});
  profiles.push_back({.tenant = "batch",
                      .mean_interarrival = 40.0,
                      .num_jobs = 20,
                      .min_parallelism = 8,
                      .max_parallelism = 12,
                      .priority = 0});
  profiles.push_back({.tenant = "besteffort",
                      .mean_interarrival = 15.0,
                      .num_jobs = 40,
                      .min_parallelism = 2,
                      .max_parallelism = 4,
                      .priority = 0});
  const std::vector<OpenArrival> arrivals = make_open_arrivals(profiles, 42);

  // The service loop: step to each arrival, offer it to admission control.
  const SimTime rebalance_at = 400.0;
  bool rebalanced = false;
  std::uint64_t queued = 0;
  std::uint64_t rejected = 0;
  for (const OpenArrival& arrival : arrivals) {
    if (!rebalanced && arrival.at >= rebalance_at) {
      // Operator action mid-stream: interactive traffic deserves more of the
      // cluster; move 4 slots of share out of batch while its jobs run.
      engine.advance_to(rebalance_at);
      vcm.transfer("batch", "interactive", 4);
      rebalanced = true;
      std::cout << "t=" << rebalance_at
                << ": transferred 4 slots batch -> interactive\n";
    }
    engine.advance_to(arrival.at);
    switch (vcm.submit_job(arrival.tenant, arrival.spec)) {
      case AdmissionOutcome::Admitted:
        break;
      case AdmissionOutcome::Queued:
        ++queued;
        break;
      case AdmissionOutcome::Rejected:
        ++rejected;
        break;
    }
  }
  engine.drain();

  std::cout << "stream done at t=" << std::fixed << std::setprecision(1)
            << engine.now() << " sim-s: " << engine.num_jobs()
            << " jobs admitted, " << queued << " waited in a queue, "
            << rejected << " rejected\n\n";

  std::cout << std::left << std::setw(12) << "tenant" << std::right
            << std::setw(8) << "share" << std::setw(6) << "subm"
            << std::setw(6) << "admit" << std::setw(6) << "rej"
            << std::setw(7) << "peak" << std::setw(12) << "mean-wait"
            << std::setw(12) << "mean-jct" << "\n";
  for (const std::string& name : vcm.tenant_names()) {
    const VirtualClusterSpec& shares = vcm.spec(name);
    const TenantStats& stats = vcm.stats(name);
    std::cout << std::left << std::setw(12) << name << std::right
              << std::setw(5) << shares.min_slots << "/" << std::left
              << std::setw(2) << shares.max_slots << std::right
              << std::setw(6) << stats.submitted << std::setw(6)
              << stats.admitted << std::setw(6) << stats.rejected
              << std::setw(7) << stats.peak_demand_in_flight << std::setw(12)
              << std::setprecision(1) << stats.mean_queue_delay()
              << std::setw(12) << stats.mean_jct() << "\n";
  }
  std::cout << "\nEvery admission stayed within its tenant's max share; the "
               "queues drained\nby quiescence (checked by the manager at "
               "drain()).\n";

  // End-of-run metrics export: snapshot the ledger the table above printed
  // into the registry, then write the whole document.
  record_tenant_stats(metrics, vcm);
  std::cout << "\nmetrics registry: " << metrics.num_metrics()
            << " series; per-tenant jobs_finished =";
  for (const std::string& name : vcm.tenant_names()) {
    MetricGroup tenant =
        metrics.group({{"policy", "service"}, {"tenant", name}});
    std::cout << " " << name << ":" << tenant.counter("jobs_finished").value();
  }
  std::cout << "\n";
  if (argc > 1) {
    metrics.write_json_file(argv[1]);
    std::cout << "wrote ssr-metrics-v1 document to " << argv[1] << "\n";
  } else {
    std::cout << "(pass a path to export the ssr-metrics-v1 JSON document)\n";
  }
  return 0;
}
