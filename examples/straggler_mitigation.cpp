// Example: turning reserved slots into straggler mitigators (Sec. IV-C).
//
// A heavy-tailed iterative job (task durations Pareto with alpha = 1.6, the
// production-typical tail) runs alone on the cluster.  With plain
// reservations, every phase waits for its slowest task while the reserved
// slots idle.  With straggler mitigation, the reserved slots run extra
// copies of the laggards and the first finisher wins.
//
//   $ ./example_straggler_mitigation
#include <iostream>
#include <memory>

#include "ssr/common/table.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/exp/scenario.h"
#include "ssr/metrics/collectors.h"
#include "ssr/sched/engine.h"
#include "ssr/workload/adjust.h"
#include "ssr/workload/mlbench.h"

using namespace ssr;

namespace {

struct Outcome {
  double jct = 0.0;
  std::uint64_t copies = 0;
  std::uint64_t copies_won = 0;
};

Outcome run(double alpha, bool mitigate) {
  Engine engine(SchedConfig{}, 10, 4, /*seed=*/5);  // 40 slots
  SsrConfig cfg;
  cfg.enable_straggler_mitigation = mitigate;
  auto manager = std::make_unique<ReservationManager>(cfg);
  ReservationManager* mgr = manager.get();
  engine.set_reservation_hook(std::move(manager));
  TaskStatsCollector stats;
  engine.add_observer(&stats);

  Rng rng(17);
  const JobId job = engine.submit(
      pareto_adjust(make_pagerank(40, 10, 0.0), alpha, rng));
  engine.run();
  return {engine.jct(job), mgr->copies_launched(),
          stats.stats(job).copies_won};
}

}  // namespace

int main() {
  std::cout << "Straggler mitigation on reserved slots (PageRank, 40-way, "
               "Pareto-tailed tasks)\n\n";
  TablePrinter table({"alpha", "JCT w/o mitigation (s)",
                      "JCT w/ mitigation (s)", "reduction (%)",
                      "copies (won/launched)"});
  for (const double alpha : {1.2, 1.6, 2.5}) {
    const Outcome off = run(alpha, false);
    const Outcome on = run(alpha, true);
    table.add_row({TablePrinter::num(alpha, 1), TablePrinter::num(off.jct, 1),
                   TablePrinter::num(on.jct, 1),
                   TablePrinter::num(100.0 * (off.jct - on.jct) / off.jct, 1),
                   std::to_string(on.copies_won) + "/" +
                       std::to_string(on.copies)});
  }
  table.print(std::cout);
  std::cout << "\nHeavier tails (smaller alpha) benefit more — the copies\n"
               "run warm on slots that just executed the same phase, so\n"
               "they win against stragglers most of the time.\n";
  return 0;
}
