// Example: speculative slot reservation under the fair scheduler.
//
// Reproduces the paper's Fig. 13 story as a runnable program: a 3-phase
// workflow job and a map-only job share a cluster under fair scheduling.
// Without SSR the workflow loses its entire share at each barrier; with SSR
// it holds its fair share end to end.  The example prints the workflow's
// running-task timeline for both schedulers.
//
//   $ ./example_fair_sharing
#include <iostream>
#include <memory>

#include "ssr/common/table.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/metrics/collectors.h"
#include "ssr/sched/engine.h"

using namespace ssr;

namespace {

void run(bool with_ssr) {
  SchedConfig sched;
  sched.policy = SchedulingPolicy::Fair;
  Engine engine(sched, 4, 2, /*seed=*/3);  // 8 slots
  if (with_ssr) {
    engine.set_reservation_hook(
        std::make_unique<ReservationManager>(SsrConfig{}));
  }
  RunningTasksSeries series;
  engine.add_observer(&series);

  const JobId wf = engine.submit(JobBuilder("workflow")
                                     .stage(4, uniform_duration(6.0, 18.0))
                                     .stage(4, uniform_duration(6.0, 18.0))
                                     .stage(4, uniform_duration(6.0, 18.0))
                                     .build());
  engine.submit(
      JobBuilder("maponly").stage(60, uniform_duration(6.0, 18.0)).build());
  engine.run();

  std::cout << (with_ssr ? "WITH" : "WITHOUT")
            << " speculative slot reservation: workflow JCT = "
            << engine.jct(wf) << " s (fair share = 4 slots)\n";
  AsciiSeries plot("time (s)", "# running workflow tasks", 24);
  const SimTime horizon = engine.job_finish_time(wf);
  for (const auto& [t, v] : series.sampled(wf, horizon / 24.0, horizon)) {
    plot.add_point(t, v);
  }
  plot.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Fair sharing with dependent computations (cf. paper Fig. 13)\n\n";
  run(false);
  run(true);
  return 0;
}
