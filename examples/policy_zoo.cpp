// Example: the policy zoo in ~40 lines (DESIGN.md §14).
//
// One contended scenario — low-priority trace background plus a
// high-priority KMeans foreground — replayed under every registered
// scheduling policy: the work-conserving baseline, SSR, the DAGPS-style
// critical-path selector, multi-resource packing, and the table-driven
// time-partitioned carve-out.  Prints each policy's foreground slowdown,
// cluster utilization, and reserved-idle cost so the isolation-vs-
// utilization trade-off is visible at a glance (the full sweep lives in
// bench/policy_zoo_smoke; EXPERIMENTS.md has the shoot-out numbers).
//
//   $ ./example_policy_zoo
#include <iostream>
#include <vector>

#include "ssr/common/table.h"
#include "ssr/exp/policy_zoo.h"
#include "ssr/exp/scenario.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

using namespace ssr;

int main() {
  const ClusterSpec cluster{.nodes = 20, .slots_per_node = 2};
  TraceGenConfig bg;
  bg.num_jobs = 10;
  bg.window = 300.0;
  bg.seed = 7;
  bg.vary_demand = true;  // per-stage resource vectors: packing can bite

  // How long the foreground takes with the cluster to itself — the
  // denominator of every slowdown below.
  RunOptions alone_options;
  alone_options.seed = 1;
  const double alone =
      alone_jct(cluster, make_kmeans(12, 10, 0.0), alone_options);

  std::cout << "Policy zoo: one contended scenario, every policy\n\n";
  TablePrinter table(
      {"policy", "fg slowdown", "utilization", "reserved-idle s"});
  for (const ZooPolicy policy : all_zoo_policies()) {
    RunOptions options;
    options.seed = 1;
    apply_zoo_policy(policy, cluster, options);

    std::vector<JobSpec> jobs = make_background_jobs(bg);
    jobs.push_back(make_kmeans(12, 10, bg.window * 0.25));
    const RunResult run = run_scenario(cluster, std::move(jobs), options);

    table.add_row({std::string(zoo_policy_name(policy)),
                   TablePrinter::num(slowdown(run.jct_of("kmeans"), alone), 2),
                   TablePrinter::num(run.utilization, 3),
                   TablePrinter::num(run.reserved_idle_time, 1)});
  }
  table.print(std::cout);
  std::cout << "\nOnly the reservation policies (ssr, table) hold slots\n"
               "idle; only SSR spends that cost on the slots the dependent\n"
               "stage actually prefers, which is why it isolates where the\n"
               "static table cannot.\n";
  return 0;
}
