// Example: changing resource demands across phases (Sec. III-C).
//
// Frameworks like Tez let a job's phases demand different resources.  The
// mechanism still applies: when a finished phase's slot is too small for the
// downstream task, SSR releases it immediately (no pointless hold) and
// pre-reserves a right-sized slot instead.
//
// The cluster here mixes small {1 cpu, 1 GB} and big {2 cpu, 4 GB} slots; a
// pipeline's map phase runs on small slots while its aggregation phase needs
// big ones.
//
//   $ ./example_heterogeneous_slots
#include <iostream>
#include <memory>

#include "ssr/common/table.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/sched/engine.h"

using namespace ssr;

namespace {

double run(bool with_ssr) {
  // 4 nodes: two with small slots, two with big slots.
  std::vector<std::vector<Resources>> layout = {
      {Resources{1, 1}, Resources{1, 1}},
      {Resources{1, 1}, Resources{1, 1}},
      {Resources{2, 4}, Resources{2, 4}},
      {Resources{2, 4}, Resources{2, 4}},
  };
  Engine engine(SchedConfig{}, layout, /*seed=*/13);
  if (with_ssr) {
    engine.set_reservation_hook(
        std::make_unique<ReservationManager>(SsrConfig{}));
  }

  // The pipeline: wide map phase on small slots, narrow aggregation on big
  // slots.
  const JobId pipeline = engine.submit(JobBuilder("pipeline")
                                           .priority(10)
                                           .stage(4, uniform_duration(5.0, 14.0))
                                           .demand({1.0, 1.0})
                                           .stage(4, uniform_duration(6.0, 9.0))
                                           .demand({2.0, 4.0})
                                           .build());
  // Batch work that will grab any slot it fits on, including the big ones.
  // Its tasks end while the map phase is still running: without SSR the
  // freed big slots go right back to the batch backlog (the aggregation is
  // not submitted yet, so priority cannot help); with SSR they are
  // pre-reserved for the aggregation the moment they free.
  engine.submit(JobBuilder("batch")
                    .priority(0)
                    .submit_at(1.0)
                    .stage(12, uniform_duration(8.5, 10.0))
                    .demand({1.0, 1.0})
                    .build());
  engine.run();
  return engine.jct(pipeline);
}

}  // namespace

int main() {
  std::cout << "Heterogeneous slots: map phase {1 cpu, 1 GB} -> aggregation "
               "phase {2 cpu, 4 GB}\n\n";
  TablePrinter table({"scheduler", "pipeline JCT (s)"});
  table.add_row({"baseline", TablePrinter::num(run(false), 1)});
  table.add_row({"SSR (right-size pre-reservation)",
                 TablePrinter::num(run(true), 1)});
  table.print(std::cout);
  std::cout << "\nWith SSR the small map slots are released at the barrier\n"
               "(they cannot serve the aggregation anyway) while big slots\n"
               "freed by the batch job are pre-reserved, so the aggregation\n"
               "phase is not stuck behind 20-40 s batch tasks.\n";
  return 0;
}
