# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/core_edge_test[1]_include.cmake")
include("/root/repo/build/tests/core_reservation_test[1]_include.cmake")
include("/root/repo/build/tests/dag_test[1]_include.cmake")
include("/root/repo/build/tests/exp_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/naive_policies_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/resources_test[1]_include.cmake")
include("/root/repo/build/tests/sched_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_determinism_test[1]_include.cmake")
include("/root/repo/build/tests/tail_learning_test[1]_include.cmake")
include("/root/repo/build/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build/tests/trace_export_test[1]_include.cmake")
include("/root/repo/build/tests/workload_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
