# Empty dependencies file for sched_engine_test.
# This may be replaced when dependencies are built.
