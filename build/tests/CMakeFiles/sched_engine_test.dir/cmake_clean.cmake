file(REMOVE_RECURSE
  "CMakeFiles/sched_engine_test.dir/sched_engine_test.cpp.o"
  "CMakeFiles/sched_engine_test.dir/sched_engine_test.cpp.o.d"
  "sched_engine_test"
  "sched_engine_test.pdb"
  "sched_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
