# Empty dependencies file for trace_export_test.
# This may be replaced when dependencies are built.
