file(REMOVE_RECURSE
  "CMakeFiles/trace_export_test.dir/trace_export_test.cpp.o"
  "CMakeFiles/trace_export_test.dir/trace_export_test.cpp.o.d"
  "trace_export_test"
  "trace_export_test.pdb"
  "trace_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
