# Empty compiler generated dependencies file for tail_learning_test.
# This may be replaced when dependencies are built.
