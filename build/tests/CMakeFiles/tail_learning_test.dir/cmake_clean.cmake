file(REMOVE_RECURSE
  "CMakeFiles/tail_learning_test.dir/tail_learning_test.cpp.o"
  "CMakeFiles/tail_learning_test.dir/tail_learning_test.cpp.o.d"
  "tail_learning_test"
  "tail_learning_test.pdb"
  "tail_learning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tail_learning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
