file(REMOVE_RECURSE
  "CMakeFiles/naive_policies_test.dir/naive_policies_test.cpp.o"
  "CMakeFiles/naive_policies_test.dir/naive_policies_test.cpp.o.d"
  "naive_policies_test"
  "naive_policies_test.pdb"
  "naive_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
