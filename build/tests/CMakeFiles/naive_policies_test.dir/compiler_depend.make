# Empty compiler generated dependencies file for naive_policies_test.
# This may be replaced when dependencies are built.
