# Empty dependencies file for sweep_determinism_test.
# This may be replaced when dependencies are built.
