
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sweep_determinism_test.cpp" "tests/CMakeFiles/sweep_determinism_test.dir/sweep_determinism_test.cpp.o" "gcc" "tests/CMakeFiles/sweep_determinism_test.dir/sweep_determinism_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
