file(REMOVE_RECURSE
  "CMakeFiles/sweep_determinism_test.dir/sweep_determinism_test.cpp.o"
  "CMakeFiles/sweep_determinism_test.dir/sweep_determinism_test.cpp.o.d"
  "sweep_determinism_test"
  "sweep_determinism_test.pdb"
  "sweep_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
