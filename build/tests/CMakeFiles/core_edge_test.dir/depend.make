# Empty dependencies file for core_edge_test.
# This may be replaced when dependencies are built.
