file(REMOVE_RECURSE
  "CMakeFiles/workload_sweep_test.dir/workload_sweep_test.cpp.o"
  "CMakeFiles/workload_sweep_test.dir/workload_sweep_test.cpp.o.d"
  "workload_sweep_test"
  "workload_sweep_test.pdb"
  "workload_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
