# Empty dependencies file for resources_test.
# This may be replaced when dependencies are built.
