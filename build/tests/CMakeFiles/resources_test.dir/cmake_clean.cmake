file(REMOVE_RECURSE
  "CMakeFiles/resources_test.dir/resources_test.cpp.o"
  "CMakeFiles/resources_test.dir/resources_test.cpp.o.d"
  "resources_test"
  "resources_test.pdb"
  "resources_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resources_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
