# Empty compiler generated dependencies file for core_reservation_test.
# This may be replaced when dependencies are built.
