file(REMOVE_RECURSE
  "CMakeFiles/core_reservation_test.dir/core_reservation_test.cpp.o"
  "CMakeFiles/core_reservation_test.dir/core_reservation_test.cpp.o.d"
  "core_reservation_test"
  "core_reservation_test.pdb"
  "core_reservation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_reservation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
