file(REMOVE_RECURSE
  "CMakeFiles/background_impact.dir/background_impact.cpp.o"
  "CMakeFiles/background_impact.dir/background_impact.cpp.o.d"
  "background_impact"
  "background_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/background_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
