# Empty dependencies file for background_impact.
# This may be replaced when dependencies are built.
