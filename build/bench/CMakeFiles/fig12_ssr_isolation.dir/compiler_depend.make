# Empty compiler generated dependencies file for fig12_ssr_isolation.
# This may be replaced when dependencies are built.
