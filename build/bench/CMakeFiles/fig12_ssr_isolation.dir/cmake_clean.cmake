file(REMOVE_RECURSE
  "CMakeFiles/fig12_ssr_isolation.dir/fig12_ssr_isolation.cpp.o"
  "CMakeFiles/fig12_ssr_isolation.dir/fig12_ssr_isolation.cpp.o.d"
  "fig12_ssr_isolation"
  "fig12_ssr_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ssr_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
