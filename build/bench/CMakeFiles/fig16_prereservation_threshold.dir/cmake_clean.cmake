file(REMOVE_RECURSE
  "CMakeFiles/fig16_prereservation_threshold.dir/fig16_prereservation_threshold.cpp.o"
  "CMakeFiles/fig16_prereservation_threshold.dir/fig16_prereservation_threshold.cpp.o.d"
  "fig16_prereservation_threshold"
  "fig16_prereservation_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_prereservation_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
