file(REMOVE_RECURSE
  "CMakeFiles/fig04_foreground_slowdown.dir/fig04_foreground_slowdown.cpp.o"
  "CMakeFiles/fig04_foreground_slowdown.dir/fig04_foreground_slowdown.cpp.o.d"
  "fig04_foreground_slowdown"
  "fig04_foreground_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_foreground_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
