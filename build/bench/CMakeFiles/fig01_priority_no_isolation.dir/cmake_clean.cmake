file(REMOVE_RECURSE
  "CMakeFiles/fig01_priority_no_isolation.dir/fig01_priority_no_isolation.cpp.o"
  "CMakeFiles/fig01_priority_no_isolation.dir/fig01_priority_no_isolation.cpp.o.d"
  "fig01_priority_no_isolation"
  "fig01_priority_no_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_priority_no_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
