# Empty dependencies file for fig01_priority_no_isolation.
# This may be replaced when dependencies are built.
