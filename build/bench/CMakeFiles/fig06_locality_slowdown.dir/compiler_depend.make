# Empty compiler generated dependencies file for fig06_locality_slowdown.
# This may be replaced when dependencies are built.
