file(REMOVE_RECURSE
  "CMakeFiles/fig06_locality_slowdown.dir/fig06_locality_slowdown.cpp.o"
  "CMakeFiles/fig06_locality_slowdown.dir/fig06_locality_slowdown.cpp.o.d"
  "fig06_locality_slowdown"
  "fig06_locality_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_locality_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
