file(REMOVE_RECURSE
  "CMakeFiles/ablation_reservation_policies.dir/ablation_reservation_policies.cpp.o"
  "CMakeFiles/ablation_reservation_policies.dir/ablation_reservation_policies.cpp.o.d"
  "ablation_reservation_policies"
  "ablation_reservation_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reservation_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
