file(REMOVE_RECURSE
  "CMakeFiles/fig08_tradeoff_curve.dir/fig08_tradeoff_curve.cpp.o"
  "CMakeFiles/fig08_tradeoff_curve.dir/fig08_tradeoff_curve.cpp.o.d"
  "fig08_tradeoff_curve"
  "fig08_tradeoff_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_tradeoff_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
