# Empty compiler generated dependencies file for fig08_tradeoff_curve.
# This may be replaced when dependencies are built.
