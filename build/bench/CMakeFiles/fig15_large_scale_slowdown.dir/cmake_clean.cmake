file(REMOVE_RECURSE
  "CMakeFiles/fig15_large_scale_slowdown.dir/fig15_large_scale_slowdown.cpp.o"
  "CMakeFiles/fig15_large_scale_slowdown.dir/fig15_large_scale_slowdown.cpp.o.d"
  "fig15_large_scale_slowdown"
  "fig15_large_scale_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_large_scale_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
