# Empty dependencies file for fig15_large_scale_slowdown.
# This may be replaced when dependencies are built.
