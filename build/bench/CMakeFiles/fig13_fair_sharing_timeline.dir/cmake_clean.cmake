file(REMOVE_RECURSE
  "CMakeFiles/fig13_fair_sharing_timeline.dir/fig13_fair_sharing_timeline.cpp.o"
  "CMakeFiles/fig13_fair_sharing_timeline.dir/fig13_fair_sharing_timeline.cpp.o.d"
  "fig13_fair_sharing_timeline"
  "fig13_fair_sharing_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_fair_sharing_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
