# Empty compiler generated dependencies file for fig13_fair_sharing_timeline.
# This may be replaced when dependencies are built.
