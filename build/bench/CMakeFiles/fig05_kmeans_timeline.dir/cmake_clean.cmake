file(REMOVE_RECURSE
  "CMakeFiles/fig05_kmeans_timeline.dir/fig05_kmeans_timeline.cpp.o"
  "CMakeFiles/fig05_kmeans_timeline.dir/fig05_kmeans_timeline.cpp.o.d"
  "fig05_kmeans_timeline"
  "fig05_kmeans_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_kmeans_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
