# Empty dependencies file for fig05_kmeans_timeline.
# This may be replaced when dependencies are built.
