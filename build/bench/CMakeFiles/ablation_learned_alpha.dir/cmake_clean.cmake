file(REMOVE_RECURSE
  "CMakeFiles/ablation_learned_alpha.dir/ablation_learned_alpha.cpp.o"
  "CMakeFiles/ablation_learned_alpha.dir/ablation_learned_alpha.cpp.o.d"
  "ablation_learned_alpha"
  "ablation_learned_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_learned_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
