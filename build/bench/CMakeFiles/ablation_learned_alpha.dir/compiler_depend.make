# Empty compiler generated dependencies file for ablation_learned_alpha.
# This may be replaced when dependencies are built.
