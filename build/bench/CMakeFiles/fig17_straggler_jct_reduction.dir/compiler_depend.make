# Empty compiler generated dependencies file for fig17_straggler_jct_reduction.
# This may be replaced when dependencies are built.
