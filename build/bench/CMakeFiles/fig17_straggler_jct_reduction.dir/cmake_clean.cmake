file(REMOVE_RECURSE
  "CMakeFiles/fig17_straggler_jct_reduction.dir/fig17_straggler_jct_reduction.cpp.o"
  "CMakeFiles/fig17_straggler_jct_reduction.dir/fig17_straggler_jct_reduction.cpp.o.d"
  "fig17_straggler_jct_reduction"
  "fig17_straggler_jct_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_straggler_jct_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
