# Empty compiler generated dependencies file for fig14_tradeoff_measured.
# This may be replaced when dependencies are built.
