file(REMOVE_RECURSE
  "CMakeFiles/fig14_tradeoff_measured.dir/fig14_tradeoff_measured.cpp.o"
  "CMakeFiles/fig14_tradeoff_measured.dir/fig14_tradeoff_measured.cpp.o.d"
  "fig14_tradeoff_measured"
  "fig14_tradeoff_measured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_tradeoff_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
