file(REMOVE_RECURSE
  "CMakeFiles/fig10_straggler_numerical.dir/fig10_straggler_numerical.cpp.o"
  "CMakeFiles/fig10_straggler_numerical.dir/fig10_straggler_numerical.cpp.o.d"
  "fig10_straggler_numerical"
  "fig10_straggler_numerical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_straggler_numerical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
