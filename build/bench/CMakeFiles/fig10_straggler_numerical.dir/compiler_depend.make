# Empty compiler generated dependencies file for fig10_straggler_numerical.
# This may be replaced when dependencies are built.
