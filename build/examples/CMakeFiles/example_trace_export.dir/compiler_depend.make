# Empty compiler generated dependencies file for example_trace_export.
# This may be replaced when dependencies are built.
