file(REMOVE_RECURSE
  "CMakeFiles/example_trace_export.dir/trace_export.cpp.o"
  "CMakeFiles/example_trace_export.dir/trace_export.cpp.o.d"
  "example_trace_export"
  "example_trace_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
