# Empty compiler generated dependencies file for example_heterogeneous_slots.
# This may be replaced when dependencies are built.
