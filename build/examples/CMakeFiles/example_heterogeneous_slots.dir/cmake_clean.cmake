file(REMOVE_RECURSE
  "CMakeFiles/example_heterogeneous_slots.dir/heterogeneous_slots.cpp.o"
  "CMakeFiles/example_heterogeneous_slots.dir/heterogeneous_slots.cpp.o.d"
  "example_heterogeneous_slots"
  "example_heterogeneous_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heterogeneous_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
