# Empty compiler generated dependencies file for example_fair_sharing.
# This may be replaced when dependencies are built.
