file(REMOVE_RECURSE
  "CMakeFiles/example_fair_sharing.dir/fair_sharing.cpp.o"
  "CMakeFiles/example_fair_sharing.dir/fair_sharing.cpp.o.d"
  "example_fair_sharing"
  "example_fair_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fair_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
