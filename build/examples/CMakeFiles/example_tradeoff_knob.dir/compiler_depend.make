# Empty compiler generated dependencies file for example_tradeoff_knob.
# This may be replaced when dependencies are built.
