file(REMOVE_RECURSE
  "CMakeFiles/example_tradeoff_knob.dir/tradeoff_knob.cpp.o"
  "CMakeFiles/example_tradeoff_knob.dir/tradeoff_knob.cpp.o.d"
  "example_tradeoff_knob"
  "example_tradeoff_knob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tradeoff_knob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
