file(REMOVE_RECURSE
  "CMakeFiles/example_priority_isolation.dir/priority_isolation.cpp.o"
  "CMakeFiles/example_priority_isolation.dir/priority_isolation.cpp.o.d"
  "example_priority_isolation"
  "example_priority_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_priority_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
