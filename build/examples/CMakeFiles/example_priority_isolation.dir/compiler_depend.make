# Empty compiler generated dependencies file for example_priority_isolation.
# This may be replaced when dependencies are built.
