# Empty compiler generated dependencies file for example_straggler_mitigation.
# This may be replaced when dependencies are built.
