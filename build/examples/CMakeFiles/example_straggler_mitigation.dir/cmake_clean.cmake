file(REMOVE_RECURSE
  "CMakeFiles/example_straggler_mitigation.dir/straggler_mitigation.cpp.o"
  "CMakeFiles/example_straggler_mitigation.dir/straggler_mitigation.cpp.o.d"
  "example_straggler_mitigation"
  "example_straggler_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_straggler_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
