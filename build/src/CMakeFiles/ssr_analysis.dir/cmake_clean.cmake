file(REMOVE_RECURSE
  "CMakeFiles/ssr_analysis.dir/ssr/analysis/pareto.cpp.o"
  "CMakeFiles/ssr_analysis.dir/ssr/analysis/pareto.cpp.o.d"
  "CMakeFiles/ssr_analysis.dir/ssr/analysis/straggler_model.cpp.o"
  "CMakeFiles/ssr_analysis.dir/ssr/analysis/straggler_model.cpp.o.d"
  "libssr_analysis.a"
  "libssr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
