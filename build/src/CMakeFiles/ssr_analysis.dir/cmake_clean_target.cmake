file(REMOVE_RECURSE
  "libssr_analysis.a"
)
