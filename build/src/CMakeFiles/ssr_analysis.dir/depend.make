# Empty dependencies file for ssr_analysis.
# This may be replaced when dependencies are built.
