
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssr/common/distributions.cpp" "src/CMakeFiles/ssr_common.dir/ssr/common/distributions.cpp.o" "gcc" "src/CMakeFiles/ssr_common.dir/ssr/common/distributions.cpp.o.d"
  "/root/repo/src/ssr/common/stats.cpp" "src/CMakeFiles/ssr_common.dir/ssr/common/stats.cpp.o" "gcc" "src/CMakeFiles/ssr_common.dir/ssr/common/stats.cpp.o.d"
  "/root/repo/src/ssr/common/table.cpp" "src/CMakeFiles/ssr_common.dir/ssr/common/table.cpp.o" "gcc" "src/CMakeFiles/ssr_common.dir/ssr/common/table.cpp.o.d"
  "/root/repo/src/ssr/common/thread_pool.cpp" "src/CMakeFiles/ssr_common.dir/ssr/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/ssr_common.dir/ssr/common/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
