file(REMOVE_RECURSE
  "libssr_common.a"
)
