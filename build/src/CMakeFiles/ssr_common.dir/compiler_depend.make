# Empty compiler generated dependencies file for ssr_common.
# This may be replaced when dependencies are built.
