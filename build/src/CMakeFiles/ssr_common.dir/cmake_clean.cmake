file(REMOVE_RECURSE
  "CMakeFiles/ssr_common.dir/ssr/common/distributions.cpp.o"
  "CMakeFiles/ssr_common.dir/ssr/common/distributions.cpp.o.d"
  "CMakeFiles/ssr_common.dir/ssr/common/stats.cpp.o"
  "CMakeFiles/ssr_common.dir/ssr/common/stats.cpp.o.d"
  "CMakeFiles/ssr_common.dir/ssr/common/table.cpp.o"
  "CMakeFiles/ssr_common.dir/ssr/common/table.cpp.o.d"
  "CMakeFiles/ssr_common.dir/ssr/common/thread_pool.cpp.o"
  "CMakeFiles/ssr_common.dir/ssr/common/thread_pool.cpp.o.d"
  "libssr_common.a"
  "libssr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
