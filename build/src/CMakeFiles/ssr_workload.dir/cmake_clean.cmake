file(REMOVE_RECURSE
  "CMakeFiles/ssr_workload.dir/ssr/workload/adjust.cpp.o"
  "CMakeFiles/ssr_workload.dir/ssr/workload/adjust.cpp.o.d"
  "CMakeFiles/ssr_workload.dir/ssr/workload/mlbench.cpp.o"
  "CMakeFiles/ssr_workload.dir/ssr/workload/mlbench.cpp.o.d"
  "CMakeFiles/ssr_workload.dir/ssr/workload/sqlbench.cpp.o"
  "CMakeFiles/ssr_workload.dir/ssr/workload/sqlbench.cpp.o.d"
  "CMakeFiles/ssr_workload.dir/ssr/workload/tracegen.cpp.o"
  "CMakeFiles/ssr_workload.dir/ssr/workload/tracegen.cpp.o.d"
  "libssr_workload.a"
  "libssr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
