
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssr/workload/adjust.cpp" "src/CMakeFiles/ssr_workload.dir/ssr/workload/adjust.cpp.o" "gcc" "src/CMakeFiles/ssr_workload.dir/ssr/workload/adjust.cpp.o.d"
  "/root/repo/src/ssr/workload/mlbench.cpp" "src/CMakeFiles/ssr_workload.dir/ssr/workload/mlbench.cpp.o" "gcc" "src/CMakeFiles/ssr_workload.dir/ssr/workload/mlbench.cpp.o.d"
  "/root/repo/src/ssr/workload/sqlbench.cpp" "src/CMakeFiles/ssr_workload.dir/ssr/workload/sqlbench.cpp.o" "gcc" "src/CMakeFiles/ssr_workload.dir/ssr/workload/sqlbench.cpp.o.d"
  "/root/repo/src/ssr/workload/tracegen.cpp" "src/CMakeFiles/ssr_workload.dir/ssr/workload/tracegen.cpp.o" "gcc" "src/CMakeFiles/ssr_workload.dir/ssr/workload/tracegen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_dag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
