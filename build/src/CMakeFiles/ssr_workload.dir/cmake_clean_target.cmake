file(REMOVE_RECURSE
  "libssr_workload.a"
)
