# Empty compiler generated dependencies file for ssr_workload.
# This may be replaced when dependencies are built.
