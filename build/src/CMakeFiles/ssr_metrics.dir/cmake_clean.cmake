file(REMOVE_RECURSE
  "CMakeFiles/ssr_metrics.dir/ssr/metrics/collectors.cpp.o"
  "CMakeFiles/ssr_metrics.dir/ssr/metrics/collectors.cpp.o.d"
  "CMakeFiles/ssr_metrics.dir/ssr/metrics/trace_export.cpp.o"
  "CMakeFiles/ssr_metrics.dir/ssr/metrics/trace_export.cpp.o.d"
  "libssr_metrics.a"
  "libssr_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
