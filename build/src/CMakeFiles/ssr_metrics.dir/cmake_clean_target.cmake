file(REMOVE_RECURSE
  "libssr_metrics.a"
)
