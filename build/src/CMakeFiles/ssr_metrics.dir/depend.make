# Empty dependencies file for ssr_metrics.
# This may be replaced when dependencies are built.
