file(REMOVE_RECURSE
  "CMakeFiles/ssr_dag.dir/ssr/dag/job.cpp.o"
  "CMakeFiles/ssr_dag.dir/ssr/dag/job.cpp.o.d"
  "libssr_dag.a"
  "libssr_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
