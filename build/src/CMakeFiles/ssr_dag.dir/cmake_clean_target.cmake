file(REMOVE_RECURSE
  "libssr_dag.a"
)
