# Empty compiler generated dependencies file for ssr_dag.
# This may be replaced when dependencies are built.
