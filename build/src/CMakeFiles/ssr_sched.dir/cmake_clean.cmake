file(REMOVE_RECURSE
  "CMakeFiles/ssr_sched.dir/ssr/sched/engine.cpp.o"
  "CMakeFiles/ssr_sched.dir/ssr/sched/engine.cpp.o.d"
  "CMakeFiles/ssr_sched.dir/ssr/sched/stage_runtime.cpp.o"
  "CMakeFiles/ssr_sched.dir/ssr/sched/stage_runtime.cpp.o.d"
  "libssr_sched.a"
  "libssr_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
