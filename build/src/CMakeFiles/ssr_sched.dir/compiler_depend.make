# Empty compiler generated dependencies file for ssr_sched.
# This may be replaced when dependencies are built.
