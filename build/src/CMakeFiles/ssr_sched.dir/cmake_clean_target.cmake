file(REMOVE_RECURSE
  "libssr_sched.a"
)
