file(REMOVE_RECURSE
  "libssr_core.a"
)
