file(REMOVE_RECURSE
  "CMakeFiles/ssr_core.dir/ssr/core/naive_policies.cpp.o"
  "CMakeFiles/ssr_core.dir/ssr/core/naive_policies.cpp.o.d"
  "CMakeFiles/ssr_core.dir/ssr/core/reservation_manager.cpp.o"
  "CMakeFiles/ssr_core.dir/ssr/core/reservation_manager.cpp.o.d"
  "libssr_core.a"
  "libssr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
