# Empty dependencies file for ssr_core.
# This may be replaced when dependencies are built.
