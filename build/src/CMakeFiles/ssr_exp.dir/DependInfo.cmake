
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssr/exp/scenario.cpp" "src/CMakeFiles/ssr_exp.dir/ssr/exp/scenario.cpp.o" "gcc" "src/CMakeFiles/ssr_exp.dir/ssr/exp/scenario.cpp.o.d"
  "/root/repo/src/ssr/exp/sweep.cpp" "src/CMakeFiles/ssr_exp.dir/ssr/exp/sweep.cpp.o" "gcc" "src/CMakeFiles/ssr_exp.dir/ssr/exp/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
