file(REMOVE_RECURSE
  "CMakeFiles/ssr_exp.dir/ssr/exp/scenario.cpp.o"
  "CMakeFiles/ssr_exp.dir/ssr/exp/scenario.cpp.o.d"
  "CMakeFiles/ssr_exp.dir/ssr/exp/sweep.cpp.o"
  "CMakeFiles/ssr_exp.dir/ssr/exp/sweep.cpp.o.d"
  "libssr_exp.a"
  "libssr_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
