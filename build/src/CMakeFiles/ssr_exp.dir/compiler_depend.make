# Empty compiler generated dependencies file for ssr_exp.
# This may be replaced when dependencies are built.
