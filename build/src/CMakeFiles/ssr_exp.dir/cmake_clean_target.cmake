file(REMOVE_RECURSE
  "libssr_exp.a"
)
