file(REMOVE_RECURSE
  "CMakeFiles/ssr_sim.dir/ssr/sim/cluster.cpp.o"
  "CMakeFiles/ssr_sim.dir/ssr/sim/cluster.cpp.o.d"
  "CMakeFiles/ssr_sim.dir/ssr/sim/event_queue.cpp.o"
  "CMakeFiles/ssr_sim.dir/ssr/sim/event_queue.cpp.o.d"
  "CMakeFiles/ssr_sim.dir/ssr/sim/simulator.cpp.o"
  "CMakeFiles/ssr_sim.dir/ssr/sim/simulator.cpp.o.d"
  "libssr_sim.a"
  "libssr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
