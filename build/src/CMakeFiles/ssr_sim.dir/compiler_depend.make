# Empty compiler generated dependencies file for ssr_sim.
# This may be replaced when dependencies are built.
