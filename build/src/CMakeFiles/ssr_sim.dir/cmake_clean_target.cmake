file(REMOVE_RECURSE
  "libssr_sim.a"
)
