
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssr/sim/cluster.cpp" "src/CMakeFiles/ssr_sim.dir/ssr/sim/cluster.cpp.o" "gcc" "src/CMakeFiles/ssr_sim.dir/ssr/sim/cluster.cpp.o.d"
  "/root/repo/src/ssr/sim/event_queue.cpp" "src/CMakeFiles/ssr_sim.dir/ssr/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/ssr_sim.dir/ssr/sim/event_queue.cpp.o.d"
  "/root/repo/src/ssr/sim/simulator.cpp" "src/CMakeFiles/ssr_sim.dir/ssr/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/ssr_sim.dir/ssr/sim/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
