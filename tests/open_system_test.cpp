// Open-vs-closed equivalence suite: the engine's open-system stepping API
// (submit / advance_to / drain) must be *bit-identical* to the closed batch
// API (submit everything, run()) — same event stream, same RunResult, same
// golden digests — no matter how the stepping is sliced.
//
// Why this holds (and what this suite locks): same-instant event ordering
// in the queue is (time, band, insertion seq) with kFailure < kArrival <
// kInternal.  The band reproduces the closed harness's push-order
// tie-breaking structurally, so arrival events submitted mid-run fire in
// exactly the order a batch submission would have given them, provided jobs
// enter submit() in the same sequence (JobIds and per-band seqs then
// match).  The open driver here therefore submits jobs in original vector
// order ("prefix submission": before advancing to t, every job with
// submit_time <= t — and any earlier-indexed job — is submitted), while the
// advance_to horizons themselves are drawn at random: zero-width steps,
// exact event-boundary ties, small and large strides.  Any divergence —
// one task placed differently, one reservation released in another order —
// shows up as the first differing event-log line.
//
// Coverage: the four golden-replay scenarios (asserted against the
// *committed* digests, so open mode reproduces the repo's canonical
// numbers), plus a 100-case seeded random sweep over cluster shapes, job
// mixes, policies, and failure schedules.
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "event_stream.h"
#include "golden_scenarios.h"
#include "run_digest.h"
#include "ssr/common/check.h"
#include "ssr/common/distributions.h"
#include "ssr/common/rng.h"
#include "ssr/exp/harness.h"
#include "ssr/workload/open_arrival.h"

namespace ssr {
namespace {

// SplitMix64: derives independent per-trial parameters from a trial index
// (same idiom as the chaos suite).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct DrivenRun {
  std::string digest;
  std::vector<std::string> events;
};

/// Closed reference: batch-submit and run, through the same harness wiring
/// run_scenario uses, with an event log attached.
DrivenRun drive_closed(const ClusterSpec& cluster, std::vector<JobSpec> jobs,
                       const RunOptions& options, const std::string& title) {
  ScenarioHarness harness(cluster, options);
  EventLogObserver log;
  harness.engine().add_observer(&log);
  std::vector<JobId> ids;
  ids.reserve(jobs.size());
  for (JobSpec& spec : jobs) {
    ids.push_back(harness.engine().submit(std::move(spec)));
  }
  harness.engine().run();
  std::ostringstream digest;
  append_run(digest, title, harness.collect(ids));
  return {digest.str(), log.events()};
}

/// Open replay: identical inputs, but driven through advance_to in
/// randomized slices with prefix submission (see the file comment).
DrivenRun drive_open(const ClusterSpec& cluster, std::vector<JobSpec> jobs,
                     const RunOptions& options, const std::string& title,
                     Rng& steps) {
  ScenarioHarness harness(cluster, options);
  Engine& engine = harness.engine();
  EventLogObserver log;
  engine.add_observer(&log);

  std::vector<JobId> ids;
  ids.reserve(jobs.size());
  std::size_t next = 0;
  const auto submit_prefix = [&](SimTime horizon) {
    // Furthest index whose arrival lies within the horizon; everything
    // before it must enter first to keep JobIds and arrival seqs aligned
    // with the closed batch (the vector need not be sorted by time).
    std::size_t hi = next;
    for (std::size_t i = next; i < jobs.size(); ++i) {
      if (jobs[i].submit_time <= horizon) hi = i + 1;
    }
    while (next < hi) {
      ids.push_back(engine.submit(std::move(jobs[next])));
      ++next;
    }
  };

  while (next < jobs.size() || engine.sim().pending_events() > 0) {
    SimTime horizon = engine.now();
    switch (steps.uniform_int(0, 4)) {
      case 0:
        break;  // zero-width step: advance_to(now) must be a no-op
      case 1: {
        // Land exactly on the next event: every same-instant tie at the
        // boundary must fire, in band order.
        const SimTime at = engine.sim().next_event_time();
        if (at < kTimeInfinity) {
          horizon = at;
        } else if (next < jobs.size()) {
          horizon = std::max(horizon, jobs[next].submit_time);
        }
        break;
      }
      case 2:
        horizon += steps.exponential_mean(2.0);  // fine-grained stepping
        break;
      case 3:
        horizon += steps.exponential_mean(60.0);  // coarse stride
        break;
      default:
        horizon += steps.exponential_mean(600.0);  // giant leap
        break;
    }
    submit_prefix(horizon);
    // A closed run ends at the last completion, so the open replay may
    // advance through event-free gaps but must not overshoot into the idle
    // tail after the final event — that extra simulated time would (
    // correctly!) shift run_complete and the settled accounting.  Advance
    // in sub-steps that stop at the last pending event.
    while (engine.now() < horizon) {
      const SimTime at = engine.sim().next_event_time();
      if (at >= kTimeInfinity) break;
      engine.advance_to(std::min(horizon, at));
    }
    // Starved progress guard: if nothing is pending and jobs remain, jump
    // to the next unsubmitted arrival instead of spinning on tiny steps.
    if (engine.sim().pending_events() == 0 && next < jobs.size()) {
      const SimTime at = jobs[next].submit_time;
      submit_prefix(at);
      engine.advance_to(at);
    }
  }
  engine.drain();

  std::ostringstream digest;
  append_run(digest, title, harness.collect(ids));
  return {digest.str(), log.events()};
}

/// Assert two event logs are identical, reporting the first divergence.
void expect_same_events(const DrivenRun& closed, const DrivenRun& open) {
  const std::size_t n = std::min(closed.events.size(), open.events.size());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(closed.events[i], open.events[i])
        << "event streams diverge at event " << i;
  }
  EXPECT_EQ(closed.events.size(), open.events.size())
      << "event streams have a common prefix but different lengths";
}

class GoldenEquivalence : public ::testing::TestWithParam<int> {};

// For each golden scenario: every pass, driven openly with randomized step
// sizes, must reproduce the closed event stream, the closed RunResult
// digest, and — pass by pass concatenated — the committed golden file.
TEST_P(GoldenEquivalence, OpenReplayMatchesClosedAndGolden) {
  GoldenScenario scenario = golden_scenarios().at(
      static_cast<std::size_t>(GetParam()));
  Rng steps(0xC0FFEE ^ static_cast<std::uint64_t>(GetParam()));
  std::ostringstream open_digest;
  for (GoldenPass& pass : scenario.passes) {
    DrivenRun closed =
        drive_closed(scenario.cluster, pass.jobs, pass.options, pass.title);
    DrivenRun open = drive_open(scenario.cluster, std::move(pass.jobs),
                                pass.options, pass.title, steps);
    expect_same_events(closed, open);
    EXPECT_EQ(closed.digest, open.digest)
        << pass.title << ": open-mode metrics diverged from closed mode";
    open_digest << open.digest;
  }
  if (std::getenv("SSR_UPDATE_GOLDEN") != nullptr) {
    GTEST_SKIP() << "goldens being regenerated; closed-vs-open already checked";
  }
  const std::optional<std::string> golden = read_golden(scenario.file);
  ASSERT_TRUE(golden.has_value()) << "missing golden " << scenario.file;
  EXPECT_EQ(*golden, open_digest.str())
      << scenario.name
      << ": open-mode digest diverged from the committed golden";
}

INSTANTIATE_TEST_SUITE_P(
    AllGoldenScenarios, GoldenEquivalence,
    ::testing::Range(0, static_cast<int>(golden_scenarios().size())));

class RandomEquivalence : public ::testing::TestWithParam<int> {};

// 100 seeded trials over random small scenarios: cluster shape, background
// trace jobs (unsorted submit times), Poisson foreground arrivals, policy,
// SSR on/off, straggler mitigation, and (in a quarter of trials) a random
// node-failure schedule.
TEST_P(RandomEquivalence, OpenReplayMatchesClosed) {
  const auto trial = static_cast<std::uint64_t>(GetParam());
  const auto draw = [&](std::uint64_t salt, std::uint64_t mod) {
    return splitmix64(trial * 1315423911ULL + salt) % mod;
  };

  const ClusterSpec cluster{
      .nodes = static_cast<std::uint32_t>(3 + draw(1, 6)),
      .slots_per_node = static_cast<std::uint32_t>(1 + draw(2, 3))};

  RunOptions options;
  options.seed = trial + 1;
  if (draw(3, 3) == 0) options.sched.policy = SchedulingPolicy::Fair;
  options.sched.locality_wait = (draw(4, 2) == 0) ? 0.0 : 3.0;
  if (draw(5, 2) == 0) {
    options.ssr = SsrConfig{};
    options.ssr->min_reserving_priority = 1;
    options.ssr->isolation_p = (draw(6, 2) == 0) ? 1.0 : 0.4;
    options.ssr->enable_straggler_mitigation = draw(7, 2) == 0;
  }
  if (draw(8, 4) == 0) {
    RandomFailureConfig failures;
    failures.num_nodes = cluster.nodes;
    failures.failures = static_cast<std::uint32_t>(1 + draw(9, 3));
    failures.horizon = 150.0;
    failures.min_downtime = 10.0;
    failures.max_downtime = 40.0;
    failures.permanent_fraction = 0.2;
    failures.seed = splitmix64(trial ^ 0xFA117);
    options.failures = make_random_node_failures(failures);
  }

  // Background batch (submit times scattered, vector NOT time-sorted)...
  TraceGenConfig bg;
  bg.num_jobs = static_cast<std::uint32_t>(draw(10, 5));
  bg.window = 120.0;
  bg.mean_task_seconds = 40.0;
  bg.small_job_max_tasks = 6;
  bg.large_job_max_tasks = 24;
  bg.seed = splitmix64(trial ^ 0xB6);
  std::vector<JobSpec> jobs =
      bg.num_jobs > 0 ? make_background_jobs(bg) : std::vector<JobSpec>{};
  // ...plus a small Poisson foreground stream appended afterwards, so the
  // prefix-submission driver must handle index order != time order.
  std::vector<OpenTenantProfile> profiles;
  profiles.push_back({.tenant = "fg",
                      .mean_interarrival = 20.0 + static_cast<double>(
                                                      draw(11, 40)),
                      .num_jobs = static_cast<std::uint32_t>(1 + draw(12, 4)),
                      .min_parallelism = 2,
                      .max_parallelism =
                          static_cast<std::uint32_t>(4 + draw(13, 8)),
                      .priority = 10});
  for (OpenArrival& arrival :
       make_open_arrivals(profiles, splitmix64(trial ^ 0xF9))) {
    jobs.push_back(std::move(arrival.spec));
  }

  const std::string title = "random/" + std::to_string(trial);
  Rng steps(splitmix64(trial ^ 0x57E9));
  DrivenRun closed = drive_closed(cluster, jobs, options, title);
  DrivenRun open = drive_open(cluster, std::move(jobs), options, title, steps);
  expect_same_events(closed, open);
  EXPECT_EQ(closed.digest, open.digest)
      << "trial " << trial << ": open-mode metrics diverged from closed mode";
}

INSTANTIATE_TEST_SUITE_P(Seeded100, RandomEquivalence,
                         ::testing::Range(1, 101));

// Open-system semantics the equivalence driver deliberately avoids: "now"
// moves with advance_to even when no events fire, and jobs may arrive after
// the engine has gone fully idle.
TEST(OpenSystemSemantics, TimePassesWithoutEvents) {
  Engine engine(SchedConfig{}, 2, 2, /*seed=*/1);
  engine.advance_to(125.0);
  EXPECT_DOUBLE_EQ(engine.now(), 125.0);
  EXPECT_TRUE(engine.all_jobs_finished());  // vacuously: nothing submitted
}

TEST(OpenSystemSemantics, SubmitAfterIdleGap) {
  Engine engine(SchedConfig{}, 2, 2, /*seed=*/1);
  const JobId first = engine.submit(
      JobBuilder("early").stage(2, uniform_duration(1.0, 2.0)).build());
  engine.advance_to(50.0);  // runs 'early' to completion, then idles
  EXPECT_TRUE(engine.job_finished(first));
  EXPECT_FALSE(engine.sim().pending_events() > 0);

  // A job arriving mid-idle-gap: submit at now, or with a future arrival.
  JobSpec late = JobBuilder("late").stage(2, uniform_duration(1.0, 2.0)).build();
  const JobId second = engine.submit_job(std::move(late), 75.0);
  EXPECT_FALSE(engine.job_finished(second));
  EXPECT_FALSE(engine.all_jobs_finished());
  engine.drain();
  EXPECT_TRUE(engine.all_jobs_finished());
  // The late job's JCT counts from its open-system arrival instant.
  EXPECT_GE(engine.job_finish_time(second), 75.0);
  EXPECT_LE(engine.jct(second), engine.job_finish_time(second) - 75.0 + 1e-9);
}

TEST(OpenSystemSemantics, AdvanceBackwardsThrows) {
  Engine engine(SchedConfig{}, 2, 2, /*seed=*/1);
  engine.advance_to(10.0);
  EXPECT_THROW(engine.advance_to(5.0), CheckError);
  // Submitting into the simulated past must also be rejected.
  JobSpec spec = JobBuilder("past").stage(1, uniform_duration(1.0, 2.0)).build();
  EXPECT_THROW(engine.submit_job(std::move(spec), 5.0), CheckError);
}

}  // namespace
}  // namespace ssr
