// Tests for per-job-name tail-index learning (Sec. III-B: recurring jobs
// learn their parameters from previous runs).
#include <gtest/gtest.h>

#include <memory>

#include "ssr/common/check.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/sched/engine.h"

namespace ssr {
namespace {

TEST(TailLearning, HillEstimateConvergesToTrueAlpha) {
  SsrConfig cfg;
  cfg.learn_tail_index = true;
  cfg.tail_min_samples = 100;
  cfg.pareto_alpha = 3.5;  // deliberately wrong operator guess

  Engine engine(SchedConfig{}, 4, 4, 9);
  auto manager = std::make_unique<ReservationManager>(cfg);
  ReservationManager* mgr = manager.get();
  engine.set_reservation_hook(std::move(manager));
  for (int r = 0; r < 20; ++r) {
    engine.submit(JobBuilder("etl")
                      .priority(10)
                      .submit_at(500.0 * r)
                      .stage(16, pareto_duration(1.6, 2.0))
                      .stage(16, pareto_duration(1.6, 2.0))
                      .build());
  }
  engine.run();
  const auto learned = mgr->learned_alpha("etl");
  ASSERT_TRUE(learned.has_value());
  EXPECT_NEAR(*learned, 1.6, 0.5);
  EXPECT_FALSE(mgr->learned_alpha("unknown-job").has_value());
}

TEST(TailLearning, DisabledByDefault) {
  SsrConfig cfg;  // learn_tail_index = false
  Engine engine(SchedConfig{}, 2, 2, 1);
  auto manager = std::make_unique<ReservationManager>(cfg);
  ReservationManager* mgr = manager.get();
  engine.set_reservation_hook(std::move(manager));
  engine.submit(JobBuilder("j")
                    .priority(10)
                    .stage(4, pareto_duration(1.6, 1.0))
                    .stage(4, pareto_duration(1.6, 1.0))
                    .build());
  engine.run();
  EXPECT_FALSE(mgr->learned_alpha("j").has_value());
}

TEST(TailLearning, NotTrustedBelowMinSamples) {
  SsrConfig cfg;
  cfg.learn_tail_index = true;
  cfg.tail_min_samples = 1000;  // more than one run produces
  Engine engine(SchedConfig{}, 4, 4, 2);
  auto manager = std::make_unique<ReservationManager>(cfg);
  ReservationManager* mgr = manager.get();
  engine.set_reservation_hook(std::move(manager));
  engine.submit(JobBuilder("j")
                    .priority(10)
                    .stage(16, pareto_duration(1.6, 1.0))
                    .stage(16, pareto_duration(1.6, 1.0))
                    .build());
  engine.run();
  EXPECT_FALSE(mgr->learned_alpha("j").has_value());
}

TEST(TailLearning, ConfigValidation) {
  SsrConfig bad;
  bad.tail_fraction = 0.0;
  EXPECT_THROW(ReservationManager{bad}, CheckError);
  bad = {};
  bad.tail_fraction = 1.0;
  EXPECT_THROW(ReservationManager{bad}, CheckError);
  bad = {};
  bad.tail_min_samples = 5;
  EXPECT_THROW(ReservationManager{bad}, CheckError);
}

}  // namespace
}  // namespace ssr
