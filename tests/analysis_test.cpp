// Tests for the analytical models: Pareto closed forms (Eqs. 1-4), the
// deadline inversion, the Hill estimator, and the numerical straggler model.
// Parameterized sweeps check the monotonicity properties the paper's
// trade-off discussion relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "ssr/analysis/pareto.h"
#include "ssr/analysis/straggler_model.h"
#include "ssr/common/check.h"
#include "ssr/common/rng.h"
#include "ssr/common/stats.h"

namespace ssr {
namespace {

TEST(Pareto, CdfMatchesDefinition) {
  const ParetoModel m{2.0, 3.0};
  EXPECT_DOUBLE_EQ(m.cdf(2.9), 0.0);
  EXPECT_DOUBLE_EQ(m.cdf(3.0), 0.0);
  EXPECT_DOUBLE_EQ(m.cdf(6.0), 1.0 - std::pow(0.5, 2.0));
  EXPECT_NEAR(m.cdf(1e9), 1.0, 1e-9);
}

TEST(Pareto, QuantileInvertsCdf) {
  const ParetoModel m{1.6, 5.0};
  for (double u : {0.0, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(m.cdf(m.quantile(u)), u, 1e-12);
  }
  EXPECT_THROW(m.quantile(1.0), CheckError);
}

TEST(Pareto, PdfIntegratesToCdf) {
  const ParetoModel m{1.8, 1.0};
  // Trapezoidal integration of the pdf from t_m to 10 ~ cdf(10).
  double acc = 0.0;
  const double dt = 1e-4;
  for (double t = 1.0; t < 10.0; t += dt) {
    acc += 0.5 * (m.pdf(t) + m.pdf(t + dt)) * dt;
  }
  EXPECT_NEAR(acc, m.cdf(10.0), 1e-4);
}

TEST(Pareto, MeanFormula) {
  const ParetoModel m{1.6, 5.0};
  EXPECT_DOUBLE_EQ(m.mean(), 1.6 * 5.0 / 0.6);
}

TEST(Eq2, IsolationProbabilityBoundsAndMonotonicity) {
  const ParetoModel m{1.6, 1.0};
  EXPECT_DOUBLE_EQ(isolation_probability(m, 1.0, 10), 0.0);
  double prev = 0.0;
  for (double d = 2.0; d < 100.0; d *= 2.0) {
    const double p = isolation_probability(m, d, 10);
    EXPECT_GT(p, prev);  // longer deadline, stronger isolation
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  // More tasks make the same deadline weaker.
  EXPECT_GT(isolation_probability(m, 10.0, 5),
            isolation_probability(m, 10.0, 50));
}

TEST(Eq3, UtilizationBoundDecreasesWithDeadline) {
  const ParetoModel m{1.6, 1.0};
  EXPECT_DOUBLE_EQ(utilization_lower_bound(m, 1.0), 1.0);
  double prev = 1.0;
  for (double d = 2.0; d < 1000.0; d *= 2.0) {
    const double u = utilization_lower_bound(m, d);
    EXPECT_LT(u, prev);
    EXPECT_GT(u, 0.0);
    prev = u;
  }
}

TEST(Eq4, TradeoffMonotonicallyDecreasingInP) {
  for (double alpha : {1.2, 1.6, 2.0, 3.0}) {
    for (std::size_t n : {20u, 200u}) {
      double prev = 2.0;
      for (double p = 0.0; p <= 1.0; p += 0.05) {
        const double u = utilization_for_isolation(alpha, p, n);
        EXPECT_LE(u, prev + 1e-12)
            << "alpha=" << alpha << " N=" << n << " P=" << p;
        prev = u;
      }
      // Extremes: P=0 costs nothing; P=1 costs everything.
      EXPECT_DOUBLE_EQ(utilization_for_isolation(alpha, 0.0, n), 1.0);
      EXPECT_DOUBLE_EQ(utilization_for_isolation(alpha, 1.0, n), 0.0);
    }
  }
}

TEST(Eq4, HeavierTailMakesTradeoffSharper) {
  // At the same P and N, a heavier tail (smaller alpha) yields lower
  // utilization — Fig. 8's visual message.
  for (double p : {0.2, 0.5, 0.8}) {
    EXPECT_LT(utilization_for_isolation(1.2, p, 20),
              utilization_for_isolation(2.0, p, 20));
    EXPECT_LT(utilization_for_isolation(2.0, p, 20),
              utilization_for_isolation(3.0, p, 20));
  }
}

TEST(Deadline, InversionRoundTripsThroughEq2) {
  const ParetoModel m{1.6, 4.0};
  for (double p : {0.1, 0.4, 0.7, 0.95}) {
    for (std::size_t n : {2u, 20u, 200u}) {
      const double d = deadline_for_isolation(m, p, n);
      EXPECT_NEAR(isolation_probability(m, d, n), p, 1e-9);
    }
  }
}

TEST(Deadline, StrictIsolationIsInfinite) {
  const ParetoModel m{1.6, 4.0};
  EXPECT_EQ(deadline_for_isolation(m, 1.0, 20), kTimeInfinity);
  // P -> 0 collapses the deadline to t_m.
  EXPECT_NEAR(deadline_for_isolation(m, 0.0, 20), 4.0, 1e-9);
}

TEST(Deadline, MonotoneInPAndN) {
  const ParetoModel m{1.6, 4.0};
  EXPECT_LT(deadline_for_isolation(m, 0.3, 20),
            deadline_for_isolation(m, 0.9, 20));
  EXPECT_LT(deadline_for_isolation(m, 0.5, 20),
            deadline_for_isolation(m, 0.5, 200));
}

TEST(Hill, RecoversTailIndexFromParetoSamples) {
  Rng rng(11);
  std::vector<double> samples(20000);
  for (double& s : samples) s = rng.pareto(1.6, 2.0);
  const double est = hill_tail_index(samples, 2000);
  EXPECT_NEAR(est, 1.6, 0.15);
}

TEST(Hill, ValidatesArguments) {
  EXPECT_THROW(hill_tail_index({1.0, 2.0}, 2), CheckError);
  EXPECT_THROW(hill_tail_index({1.0, 2.0, 3.0}, 0), CheckError);
  EXPECT_THROW(hill_tail_index({1.0, -2.0, 3.0}, 1), CheckError);
}

TEST(StragglerModel, MitigationNeverSlowsThePhaseDown) {
  Rng rng(5);
  const ParetoModel m{1.6, 1.0};
  for (int i = 0; i < 2000; ++i) {
    const auto s = sample_phase_completion(m, 20, rng);
    EXPECT_LE(s.with_mitigation, s.without_mitigation + 1e-12);
    EXPECT_GT(s.with_mitigation, 0.0);
  }
}

struct StragglerCase {
  double alpha;
  std::size_t n;
  double min_reduction;  // loose lower bound on the Fig. 10 value
  double max_reduction;
};

class StragglerSweep : public ::testing::TestWithParam<StragglerCase> {};

TEST_P(StragglerSweep, ReductionFallsInTheExpectedBand) {
  const auto& c = GetParam();
  Rng rng(7);
  const double red =
      mean_completion_reduction(ParetoModel{c.alpha, 1.0}, c.n, 3000, rng);
  EXPECT_GE(red, c.min_reduction) << "alpha=" << c.alpha << " N=" << c.n;
  EXPECT_LE(red, c.max_reduction) << "alpha=" << c.alpha << " N=" << c.n;
}

// The paper reports > 50% reduction at alpha = 1.6 and says the speedup
// grows with heavier tails and higher parallelism (Fig. 10).
INSTANTIATE_TEST_SUITE_P(
    Fig10Bands, StragglerSweep,
    ::testing::Values(StragglerCase{1.2, 200, 0.70, 1.00},
                      StragglerCase{1.6, 200, 0.50, 0.95},
                      StragglerCase{1.6, 20, 0.35, 0.90},
                      StragglerCase{2.5, 20, 0.10, 0.70},
                      StragglerCase{4.0, 20, 0.02, 0.50}));

TEST(StragglerModel, HeavierTailGainsMore) {
  Rng rng(9);
  const double heavy =
      mean_completion_reduction(ParetoModel{1.2, 1.0}, 100, 4000, rng);
  const double light =
      mean_completion_reduction(ParetoModel{3.0, 1.0}, 100, 4000, rng);
  EXPECT_GT(heavy, light);
}

}  // namespace
}  // namespace ssr
