// Record/replay backbone for the trace-capture subsystem.
//
// The contract under test (metrics/trace_capture.h, exp/trace_replay.h):
// a capture of a run's observer stream is *sufficient* to re-drive every
// consumer-side chain without an Engine — the RunResult/digest pipeline, the
// SlotLedger invariant audit, the Chrome-trace export — and the
// reconstruction is bit-identical, not approximately equal.  The suite pins
// that in four layers:
//
//  * 100 seeded random round-trips (70 closed trials mixing reservation
//    policies, node-failure schedules and heartbeat-detector configs; 30
//    open-arrival multi-tenant trials) where the replayed digest must equal
//    the live digest byte for byte and the replayed ledger must stay clean;
//  * the four committed golden scenarios, whose replayed digests must equal
//    the *committed* golden files — a capture is as authoritative as the
//    simulation that produced it;
//  * a committed binary fixture (tests/golden/failure_recovery.trace) that
//    re-recording must reproduce byte for byte and replaying must re-certify
//    against its committed digest — the replay-verify CI step leans on this;
//  * rejection of corrupt, truncated, version-skewed and trailing-garbage
//    inputs with errors naming the defect.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "golden_scenarios.h"
#include "run_digest.h"
#include "ssr/audit/trace_replay_auditor.h"
#include "ssr/common/check.h"
#include "ssr/exp/open_scenario.h"
#include "ssr/exp/scenario.h"
#include "ssr/exp/trace_replay.h"
#include "ssr/metrics/trace_capture.h"
#include "ssr/metrics/trace_export.h"
#include "ssr/sim/failure_injector.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/open_arrival.h"
#include "ssr/workload/tracegen.h"

namespace ssr {
namespace {

// Deterministic per-trial parameter derivation (lint forbids unseeded RNG).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::string digest_of(const std::string& title, const RunResult& run) {
  std::ostringstream out;
  append_run(out, title, run);
  return out.str();
}

std::string temp_capture_path(const std::string& tag) {
  return testing::TempDir() + "ssr_capture_" + tag + ".trace";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Replay a capture through the RunResult builder and the ledger auditor;
/// a capture of a clean run must replay clean.
RunResult replay_clean(const std::string& path) {
  const TraceReplayer replayer = TraceReplayer::from_file(path);
  ReplayResultBuilder builder;
  audit::ReplayAuditor auditor;
  replayer.replay({&builder, &auditor});
  EXPECT_TRUE(auditor.clean()) << "replayed ledger tripped on " << path;
  EXPECT_TRUE(builder.complete()) << "capture never reached run-complete";
  return builder.result();
}

// --- 100 seeded random round-trips ------------------------------------------

struct ClosedTrial {
  ClusterSpec cluster;
  TraceGenConfig bg;
  std::uint32_t fg_parallelism = 4;
  RunOptions options;
};

ClosedTrial derive_closed_trial(std::uint64_t trial) {
  std::uint64_t s = 0x7ace5eedull ^ (trial * 0xc2b2ull);
  ClosedTrial t;
  t.cluster.nodes = 2 + static_cast<std::uint32_t>(splitmix64(s) % 7);
  t.cluster.slots_per_node = 1 + static_cast<std::uint32_t>(splitmix64(s) % 2);
  t.bg.num_jobs = 3 + static_cast<std::uint32_t>(splitmix64(s) % 5);
  t.bg.window = 60.0 + static_cast<double>(splitmix64(s) % 4) * 30.0;
  t.bg.large_job_max_tasks = 20;
  t.bg.seed = 17 + trial * 101;
  t.fg_parallelism = 4 + static_cast<std::uint32_t>(splitmix64(s) % 5);
  t.options.seed = 1 + trial;
  t.options.metrics_policy = "trial" + std::to_string(trial);

  // Policy mix: baseline, strict SSR, deadline SSR (expiry machinery and the
  // counts_expired header bit live), SSR with straggler copies.
  switch (splitmix64(s) % 4) {
    case 0:
      break;
    case 1:
      t.options.ssr = SsrConfig{};
      t.options.ssr->min_reserving_priority = 1;
      break;
    case 2:
      t.options.ssr = SsrConfig{};
      t.options.ssr->min_reserving_priority = 1;
      t.options.ssr->isolation_p = 0.4;
      break;
    default:
      t.options.ssr = SsrConfig{};
      t.options.ssr->min_reserving_priority = 1;
      t.options.ssr->enable_straggler_mitigation = true;
      break;
  }

  // ~60% of trials inject a seeded node-failure schedule.
  if (splitmix64(s) % 5 < 3) {
    RandomFailureConfig f;
    f.num_nodes = t.cluster.nodes;
    f.horizon = t.bg.window * 1.5;
    f.failures = 1 + static_cast<std::uint32_t>(splitmix64(s) % 3);
    f.min_downtime = 2.0;
    f.max_downtime = 25.0;
    f.permanent_fraction = static_cast<double>(splitmix64(s) % 3) * 0.15;
    f.seed = 0xfa11 + trial;
    t.options.failures = make_random_node_failures(f);
  }

  // ~1/3 of trials run the heartbeat detector, half of those with a lossy
  // channel (false suspicions reach the capture header).
  if (splitmix64(s) % 3 == 0) {
    t.options.detector.heartbeat_period = 2.0 +
        static_cast<double>(splitmix64(s) % 3);
    t.options.detector.timeout_beats =
        2 + static_cast<std::uint32_t>(splitmix64(s) % 2);
    t.options.detector.heartbeat_loss =
        (splitmix64(s) % 2 == 0) ? 0.05 : 0.0;
    t.options.detector.seed = 0xbea7 + trial;
  }
  return t;
}

TEST(TraceCapture, SeventyRandomClosedRunsRoundTripBitIdentically) {
  constexpr std::uint64_t kTrials = 70;
  std::uint64_t with_failures = 0, with_detector = 0, with_expiry = 0;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    ClosedTrial t = derive_closed_trial(trial);
    SCOPED_TRACE("closed trial " + std::to_string(trial));
    const std::string path = temp_capture_path("closed" + std::to_string(trial));
    t.options.capture_path = path;

    std::vector<JobSpec> jobs = make_background_jobs(t.bg);
    jobs.push_back(make_kmeans(t.fg_parallelism, 10, t.bg.window * 0.25));
    const RunResult live =
        run_scenario(t.cluster, std::move(jobs), t.options);
    const RunResult replayed = replay_clean(path);

    // Byte-for-byte digest equality: every hexfloat accumulator, every
    // counter, the recovery block, the detector line.
    EXPECT_EQ(digest_of("trial", live), digest_of("trial", replayed));

    with_failures += live.recovery.slots_failed > 0 ? 1 : 0;
    with_detector += live.suspicions > 0 ? 1 : 0;
    with_expiry += live.reservations_expired > 0 ? 1 : 0;
    std::remove(path.c_str());
  }
  // The sweep must exercise the paths whose reconstruction it claims to pin.
  EXPECT_GT(with_failures, 10u);
  EXPECT_GT(with_detector, 3u);
  EXPECT_GT(with_expiry, 3u);
}

struct OpenTrial {
  ClusterSpec cluster;
  OpenScenarioSpec spec;
  std::vector<OpenTenantProfile> profiles;
  std::uint64_t arrival_seed = 1;
  RunOptions options;
};

OpenTrial derive_open_trial(std::uint64_t trial) {
  std::uint64_t s = 0x09e27ace5ull ^ (trial * 0x51dull);
  OpenTrial t;
  t.cluster.nodes = 3 + static_cast<std::uint32_t>(splitmix64(s) % 5);
  t.cluster.slots_per_node = 1 + static_cast<std::uint32_t>(splitmix64(s) % 2);
  const std::uint32_t total = t.cluster.total_slots();

  const std::uint32_t num_tenants =
      2 + static_cast<std::uint32_t>(splitmix64(s) % 2);
  double expected_span = 0.0;
  for (std::uint32_t ti = 0; ti < num_tenants; ++ti) {
    VirtualClusterSpec vc;
    vc.name = "t" + std::to_string(ti);
    vc.min_slots = static_cast<std::uint32_t>(splitmix64(s) % 2);
    vc.max_slots = 2 + static_cast<std::uint32_t>(splitmix64(s) % total);
    vc.queue_when_full = (splitmix64(s) % 4) != 0;
    t.spec.tenants.push_back(vc);

    OpenTenantProfile prof;
    prof.tenant = vc.name;
    prof.mean_interarrival = 8.0 + static_cast<double>(splitmix64(s) % 4) * 6.0;
    prof.num_jobs = 3 + static_cast<std::uint32_t>(splitmix64(s) % 4);
    prof.min_parallelism = 2;
    prof.max_parallelism = 2 + static_cast<std::uint32_t>(splitmix64(s) % 4);
    prof.priority = static_cast<int>(splitmix64(s) % 3) * 5;
    t.profiles.push_back(prof);
    expected_span = std::max(expected_span, prof.mean_interarrival *
                                                static_cast<double>(prof.num_jobs));
  }

  t.options.seed = 0x10001 + trial;
  t.arrival_seed = 0x20002 + trial * 7;
  if (splitmix64(s) % 2 == 0) {
    t.options.ssr = SsrConfig{};
    t.options.ssr->min_reserving_priority = 1;
  }
  if (splitmix64(s) % 2 == 0) {
    RandomFailureConfig f;
    f.num_nodes = t.cluster.nodes;
    f.horizon = expected_span * 1.5;
    f.failures = 1 + static_cast<std::uint32_t>(splitmix64(s) % 3);
    f.min_downtime = 2.0;
    f.max_downtime = 20.0;
    f.seed = 0x0fa11 + trial * 3;
    t.options.failures = make_random_node_failures(f);
  }
  return t;
}

TEST(TraceCapture, ThirtyRandomOpenArrivalRunsRoundTripBitIdentically) {
  constexpr std::uint64_t kTrials = 30;
  std::uint64_t tenanted_events = 0;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    OpenTrial t = derive_open_trial(trial);
    SCOPED_TRACE("open trial " + std::to_string(trial));
    const std::string path = temp_capture_path("open" + std::to_string(trial));
    t.options.capture_path = path;

    const RunResult live = run_open_scenario(
        t.cluster, t.spec, make_open_arrivals(t.profiles, t.arrival_seed),
        t.options);
    const RunResult replayed = replay_clean(path);
    EXPECT_EQ(digest_of("open", live), digest_of("open", replayed));

    // The capture carries the tenant of every admitted job (the replayed
    // Chrome export's per-tenant tracks depend on it).
    const TraceReplayer replayer = TraceReplayer::from_file(path);
    for (const TraceEvent& e : replayer.events()) {
      if (e.kind == TraceEventKind::kJobSubmitted && !e.tenant.empty()) {
        ++tenanted_events;
      }
    }
    std::remove(path.c_str());
  }
  EXPECT_GT(tenanted_events, 100u);
}

// --- Golden scenarios replay to their committed digests ----------------------

TEST(TraceCapture, GoldenScenarioCapturesReplayToCommittedDigests) {
  for (GoldenScenario& scenario : golden_scenarios()) {
    SCOPED_TRACE(scenario.name);
    std::ostringstream replayed_digest;
    for (GoldenPass& pass : scenario.passes) {
      RunOptions options = pass.options;
      const std::string path =
          temp_capture_path(scenario.name + "_" + std::to_string(&pass - scenario.passes.data()));
      options.capture_path = path;
      run_scenario(scenario.cluster, std::move(pass.jobs), options);
      append_run(replayed_digest, pass.title, replay_clean(path));
      std::remove(path.c_str());
    }
    // Read-only comparison against the committed file: this suite never
    // regenerates digests (golden_replay_test owns that).
    const std::optional<std::string> committed = read_golden(scenario.file);
    ASSERT_TRUE(committed.has_value()) << "missing golden " << scenario.file;
    EXPECT_EQ(*committed, replayed_digest.str())
        << "replayed capture diverged from committed digest "
        << scenario.file;
  }
}

// --- Committed binary fixture ------------------------------------------------

TEST(TraceCapture, CommittedFixtureIsReproducedAndReplaysToCommittedGolden) {
  GoldenScenario s = failure_recovery_scenario();
  ASSERT_EQ(s.passes.size(), 1u);
  GoldenPass& pass = s.passes.front();
  RunOptions options = pass.options;
  const std::string tmp = temp_capture_path("fixture");
  options.capture_path = tmp;
  run_scenario(s.cluster, std::move(pass.jobs), options);
  const std::string fresh = slurp(tmp);
  std::remove(tmp.c_str());

  const std::string fixture =
      std::string(SSR_GOLDEN_DIR) + "/failure_recovery.trace";
  if (std::getenv("SSR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(fixture, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << fixture;
    out << fresh;
    GTEST_SKIP() << "regenerated " << fixture;
  }

  // Re-recording the scenario must reproduce the committed bytes exactly —
  // the capture format has no timestamps, hashes or other nondeterminism
  // beyond the simulation itself.
  std::ifstream in(fixture, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing fixture " << fixture
      << " — regenerate with SSR_UPDATE_GOLDEN=1 ./tests/trace_capture_test";
  std::ostringstream committed;
  committed << in.rdbuf();
  EXPECT_EQ(committed.str(), fresh);

  // Replaying the *committed* fixture re-certifies the committed digest
  // without re-simulating (what the replay-verify CI step does).
  const RunResult replayed = replay_clean(fixture);
  const std::optional<std::string> golden = read_golden(s.file);
  ASSERT_TRUE(golden.has_value());
  EXPECT_EQ(*golden, digest_of(pass.title, replayed));
}

// --- Chrome-trace export from a capture --------------------------------------

TEST(TraceCapture, ReplayFeedsChromeTraceExportWithTenantTracks) {
  OpenTrial t = derive_open_trial(3);
  const std::string path = temp_capture_path("export");
  t.options.capture_path = path;
  run_open_scenario(t.cluster, t.spec,
                    make_open_arrivals(t.profiles, t.arrival_seed), t.options);

  TraceExporter exporter;
  TraceExportFeeder feeder(exporter);
  TraceReplayer::from_file(path).replay({&feeder});
  std::remove(path.c_str());

  EXPECT_GT(exporter.event_count(), 0u);
  // Track 0 is the untenanted default; every tenant with admitted work gets
  // its own process track, named from the captured tenant labels.
  ASSERT_GE(exporter.tracks().size(), 2u);
  EXPECT_EQ(exporter.tracks().front(), "cluster");
  bool saw_tenant_track = false;
  for (const std::string& track : exporter.tracks()) {
    if (track.rfind("t", 0) == 0) saw_tenant_track = true;
  }
  EXPECT_TRUE(saw_tenant_track) << "no per-tenant track in replayed export";

  std::ostringstream json;
  exporter.write_json(json);
  EXPECT_NE(json.str().find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.str().find("\"ph\":\"X\""), std::string::npos);
}

// --- Malformed-input rejection -----------------------------------------------

/// A small but non-trivial capture, recorded once and reused (string copy per
/// call keeps the cached original pristine).
const std::string& small_capture() {
  static const std::string bytes = [] {
    ClosedTrial t = derive_closed_trial(1);
    const std::string path = temp_capture_path("reject");
    t.options.capture_path = path;
    std::vector<JobSpec> jobs = make_background_jobs(t.bg);
    run_scenario(t.cluster, std::move(jobs), t.options);
    std::string b = slurp(path);
    std::remove(path.c_str());
    return b;
  }();
  return bytes;
}

void expect_rejected(const std::string& bytes, const std::string& needle) {
  try {
    TraceReplayer::from_bytes(bytes);
    FAIL() << "malformed trace accepted; expected an error mentioning '"
           << needle << "'";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "rejection message names the wrong defect: " << e.what();
  }
}

TEST(TraceCaptureRejection, ValidCaptureParses) {
  const TraceReplayer r = TraceReplayer::from_bytes(small_capture());
  EXPECT_EQ(r.header().version, kTraceVersion);
  EXPECT_GT(r.events().size(), 0u);
  EXPECT_EQ(r.events().back().kind, TraceEventKind::kRunComplete);
}

TEST(TraceCaptureRejection, TooShortInput) {
  expect_rejected(small_capture().substr(0, 10), "too short");
  expect_rejected("", "too short");
}

TEST(TraceCaptureRejection, BadMagic) {
  std::string bytes = small_capture();
  bytes[0] ^= 0xff;
  expect_rejected(bytes, "bad magic");
}

TEST(TraceCaptureRejection, VersionMismatchReportedBeforeChecksum) {
  std::string bytes = small_capture();
  // Version u32 sits immediately after the 8-byte magic; bumping it without
  // fixing the checksum must still report *version skew*, not corruption.
  bytes[8] = static_cast<char>(kTraceVersion + 1);
  expect_rejected(bytes, "version mismatch");
}

TEST(TraceCaptureRejection, FlippedByteFailsChecksum) {
  std::string bytes = small_capture();
  bytes[bytes.size() / 2] ^= 0x01;
  expect_rejected(bytes, "checksum mismatch");
}

TEST(TraceCaptureRejection, TruncationFailsChecksum) {
  const std::string& bytes = small_capture();
  expect_rejected(bytes.substr(0, bytes.size() - 5), "checksum mismatch");
}

TEST(TraceCaptureRejection, TrailingGarbageFailsChecksum) {
  expect_rejected(small_capture() + "junk", "checksum mismatch");
}

TEST(TraceCaptureRejection, MissingFile) {
  try {
    TraceReplayer::from_file(testing::TempDir() + "ssr_no_such_capture.trace");
    FAIL() << "expected CheckError for a missing file";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open trace file"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace ssr
