// Invariant auditor: seeded-bug coverage (every audited invariant must be
// caught, by exact id, when the corresponding illegal mutation happens) and
// no-false-positive coverage (full fig12/fig14-style scenarios run clean
// under audit).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "ssr/audit/invariant_auditor.h"
#include "ssr/audit/slot_ledger.h"
#include "ssr/common/check.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/exp/scenario.h"
#include "ssr/sched/engine.h"
#include "ssr/sim/failure_injector.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/sqlbench.h"
#include "ssr/workload/tracegen.h"

namespace ssr {
namespace {

using audit::AuditOptions;
using audit::InvariantAuditor;
using audit::LedgerRelease;
using audit::SlotLedger;
using audit::Violation;

// --- Helpers ----------------------------------------------------------------

std::vector<std::string> ids_of(const std::vector<Violation>& violations) {
  std::vector<std::string> ids;
  ids.reserve(violations.size());
  for (const Violation& v : violations) ids.push_back(v.invariant);
  return ids;
}

bool has_id(const std::vector<Violation>& violations, const char* id) {
  return std::any_of(violations.begin(), violations.end(),
                     [id](const Violation& v) { return v.invariant == id; });
}

AuditOptions collect_options() {
  AuditOptions o;
  o.throw_on_violation = false;
  return o;
}

constexpr JobId kJobA{0};
constexpr JobId kJobB{1};
constexpr StageId kStageA0{kJobA, 0};
constexpr StageId kStageB0{kJobB, 0};
constexpr SlotId kSlot0{0};

TaskId task_of(StageId stage, std::uint32_t index, std::uint32_t attempt = 0) {
  return TaskId{stage, index, attempt};
}

// --- Seeded bugs, ledger level ----------------------------------------------
// Each test feeds one illegal event sequence and asserts the exact
// invariant id; a distinct id per failure mode is the auditor's contract.

TEST(SlotLedgerSeededBug, DoubleReserveIsFlagged) {
  SlotLedger ledger(2);
  ledger.on_reserve(kSlot0, kJobA, 10, kTimeInfinity, 1.0);
  ledger.on_reserve(kSlot0, kJobB, 5, kTimeInfinity, 2.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kDoubleReserve});
}

TEST(SlotLedgerSeededBug, ClaimWithoutReservationIsDoubleClaim) {
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageA0, {}, 0.0);
  ledger.on_claim(kSlot0, task_of(kStageA0, 0), 10, 1.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kDoubleClaim});
}

TEST(SlotLedgerSeededBug, ClaimAfterFirstClaimIsDoubleClaim) {
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageA0, {}, 0.0);
  ledger.on_reserve(kSlot0, kJobA, 10, kTimeInfinity, 1.0);
  ledger.on_claim(kSlot0, task_of(kStageA0, 0), 10, 2.0);
  ASSERT_TRUE(ledger.clean());
  ledger.on_claim(kSlot0, task_of(kStageA0, 1), 10, 3.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kDoubleClaim});
}

TEST(SlotLedgerSeededBug, ClaimPastDeadlineIsFlagged) {
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageA0, {}, 0.0);
  ledger.on_reserve(kSlot0, kJobA, 10, /*deadline=*/5.0, 1.0);
  ledger.on_claim(kSlot0, task_of(kStageA0, 0), 10, 6.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kExpiredClaim});
}

TEST(SlotLedgerSeededBug, LowerPriorityStealIsFlagged) {
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageB0, {}, 0.0);
  ledger.on_reserve(kSlot0, kJobA, 10, kTimeInfinity, 1.0);
  ledger.on_claim(kSlot0, task_of(kStageB0, 0), /*priority=*/5, 2.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kReservedSlotPriority});
}

TEST(SlotLedgerSeededBug, EqualPriorityStealIsFlagged) {
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageB0, {}, 0.0);
  ledger.on_reserve(kSlot0, kJobA, 10, kTimeInfinity, 1.0);
  ledger.on_claim(kSlot0, task_of(kStageB0, 0), /*priority=*/10, 2.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kReservedSlotPriority});
}

TEST(SlotLedgerSeededBug, ReservingJobAndHigherPriorityMayClaim) {
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageA0, {}, 0.0);
  ledger.on_stage_submitted(kStageB0, {}, 0.0);
  // The reserving job itself.
  ledger.on_reserve(kSlot0, kJobA, 10, kTimeInfinity, 1.0);
  ledger.on_claim(kSlot0, task_of(kStageA0, 0), 10, 2.0);
  ledger.on_finish(kSlot0, task_of(kStageA0, 0), 3.0);
  // A strictly higher-priority foreign job (override).
  ledger.on_reserve(kSlot0, kJobB, 5, kTimeInfinity, 4.0);
  ledger.on_claim(kSlot0, task_of(kStageA0, 1), /*priority=*/10, 5.0);
  EXPECT_TRUE(ledger.clean()) << audit::format_report(ledger.violations());
}

TEST(SlotLedgerSeededBug, OutOfOrderEventDispatchIsFlagged) {
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageA0, {}, 0.0);
  ledger.on_start(kSlot0, task_of(kStageA0, 0), 10.0);
  // The finish event is dispatched with a timestamp in the past.
  ledger.on_finish(kSlot0, task_of(kStageA0, 0), 9.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kTimeMonotonic});
}

TEST(SlotLedgerSeededBug, StageSubmittedBeforeParentFinishes) {
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageA0, {}, 0.0);
  // Downstream stage's barrier "clears" while the parent is still running.
  ledger.on_stage_submitted(StageId{kJobA, 1}, {kStageA0}, 1.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kBarrierOrdering});
}

TEST(SlotLedgerSeededBug, TaskOfUnsubmittedStageIsFlagged) {
  SlotLedger ledger(2);
  ledger.on_start(kSlot0, task_of(kStageA0, 0), 1.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kBarrierOrdering});
}

TEST(SlotLedgerSeededBug, DoubleStartOnBusySlotIsFlagged) {
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageA0, {}, 0.0);
  ledger.on_start(kSlot0, task_of(kStageA0, 0), 1.0);
  ledger.on_start(kSlot0, task_of(kStageA0, 1), 2.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kTaskLifecycle});
}

TEST(SlotLedgerSeededBug, FinishOfTaskNotOnSlotIsFlagged) {
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageA0, {}, 0.0);
  ledger.on_start(kSlot0, task_of(kStageA0, 0), 1.0);
  ledger.on_finish(kSlot0, task_of(kStageA0, 1), 2.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kTaskLifecycle});
}

TEST(SlotLedgerSeededBug, DoubleReleaseIsFlagged) {
  SlotLedger ledger(2);
  ledger.on_reserve(kSlot0, kJobA, 10, kTimeInfinity, 1.0);
  ledger.on_release(kSlot0, LedgerRelease::Released, 2.0);
  ledger.on_release(kSlot0, LedgerRelease::Released, 3.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kDoubleRelease});
}

TEST(SlotLedgerSeededBug, EarlyExpiryIsFlagged) {
  SlotLedger ledger(2);
  ledger.on_reserve(kSlot0, kJobA, 10, /*deadline=*/10.0, 1.0);
  ledger.on_release(kSlot0, LedgerRelease::Expired, 7.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kExpiryTime});
}

TEST(SlotLedgerSeededBug, ExpiryExactlyAtDeadlineIsClean) {
  SlotLedger ledger(2);
  ledger.on_reserve(kSlot0, kJobA, 10, /*deadline=*/10.0, 1.0);
  ledger.on_release(kSlot0, LedgerRelease::Expired, 10.0);
  EXPECT_TRUE(ledger.clean()) << audit::format_report(ledger.violations());
}

TEST(SlotLedgerSeededBug, CleanLifecycleHasNoViolations) {
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageA0, {}, 0.0);
  ledger.on_start(kSlot0, task_of(kStageA0, 0), 0.0);
  ledger.on_start(SlotId{1}, task_of(kStageA0, 1), 0.0);
  ledger.on_finish(kSlot0, task_of(kStageA0, 0), 4.0);
  ledger.on_reserve(kSlot0, kJobA, 10, 20.0, 4.0);
  ledger.on_finish(SlotId{1}, task_of(kStageA0, 1), 5.0);
  ledger.on_stage_finished(kStageA0, 5.0);
  ledger.on_stage_submitted(StageId{kJobA, 1}, {kStageA0}, 5.0);
  ledger.on_claim(kSlot0, task_of(StageId{kJobA, 1}, 0), 10, 5.0);
  ledger.on_finish(kSlot0, task_of(StageId{kJobA, 1}, 0), 9.0);
  ledger.on_stage_finished(StageId{kJobA, 1}, 9.0);
  EXPECT_TRUE(ledger.clean()) << audit::format_report(ledger.violations());
}

// --- Seeded bugs, failure lifecycle ------------------------------------------

TEST(SlotLedgerSeededBug, FailureOfUndrainedBusySlotIsFlagged) {
  // The engine must kill the running attempt before marking a slot Dead; a
  // failure event arriving while the mirror still shows Busy means a task
  // silently vanished with its slot.
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageA0, {}, 0.0);
  ledger.on_start(kSlot0, task_of(kStageA0, 0), 1.0);
  ledger.on_fail(kSlot0, 2.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kDeadSlotUse});
}

TEST(SlotLedgerSeededBug, ReserveOnDeadSlotIsFlagged) {
  SlotLedger ledger(2);
  ledger.on_fail(kSlot0, 1.0);
  ledger.on_reserve(kSlot0, kJobA, 10, kTimeInfinity, 2.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kDeadSlotUse});
}

TEST(SlotLedgerSeededBug, StartOnDeadSlotIsFlagged) {
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageA0, {}, 0.0);
  ledger.on_fail(kSlot0, 1.0);
  ledger.on_start(kSlot0, task_of(kStageA0, 0), 2.0);
  ASSERT_TRUE(has_id(ledger.violations(), audit::kDeadSlotUse))
      << audit::format_report(ledger.violations());
}

TEST(SlotLedgerSeededBug, RecoveryOfLiveSlotIsFlagged) {
  SlotLedger ledger(2);
  ledger.on_recover(kSlot0, 1.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kDeadSlotUse});
}

TEST(SlotLedgerSeededBug, InvalidationOfUnfinishedStageIsFlagged) {
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageA0, {}, 0.0);
  ledger.on_stage_invalidated(kStageA0, 1.0);
  ASSERT_EQ(ids_of(ledger.violations()),
            std::vector<std::string>{audit::kBarrierOrdering});
}

TEST(SlotLedgerSeededBug, CleanFailureLifecycleHasNoViolations) {
  // kill -> fail -> recover -> restart -> finish: the legal sequence the
  // engine emits for a transient slot failure with a re-run.
  SlotLedger ledger(2);
  ledger.on_stage_submitted(kStageA0, {}, 0.0);
  ledger.on_start(kSlot0, task_of(kStageA0, 0), 0.0);
  ledger.on_kill(kSlot0, task_of(kStageA0, 0), 3.0);
  ledger.on_fail(kSlot0, 3.0);
  ledger.on_recover(kSlot0, 8.0);
  ledger.on_start(kSlot0, task_of(kStageA0, 0), 8.0);
  ledger.on_finish(kSlot0, task_of(kStageA0, 0), 12.0);
  ledger.on_stage_finished(kStageA0, 12.0);
  EXPECT_TRUE(ledger.clean()) << audit::format_report(ledger.violations());
}

// --- Seeded bugs, end-to-end through the engine -----------------------------

/// A buggy reservation policy: reserves every freed slot for the finishing
/// job but approves *every* allocation, so lower-priority jobs steal
/// reserved slots — exactly the Alg. 1 violation the auditor must catch.
class ApproveAnythingHook : public ReservationHook {
 public:
  void on_task_finished(Engine& engine, const TaskFinishInfo& info) override {
    Reservation r;
    r.job = info.task.stage.job;
    r.priority = engine.graph(r.job).priority();
    r.for_stage = info.task.stage;
    engine.reserve_slot(info.slot, r);
  }
  void on_task_killed(Engine&, const TaskFinishInfo&) override {}
  void on_slot_idle(Engine&, SlotId) override {}
  bool approve(const Engine&, SlotId, JobId, int) const override {
    return true;  // the bug: ignores reservations entirely
  }
  void on_stage_submitted(Engine&, StageId) override {}
  void on_stage_fully_placed(Engine&, StageId) override {}
  void on_task_started(Engine&, TaskId, SlotId) override {}
  void on_job_finished(Engine&, JobId) override {}
};

JobSpec one_stage_job(const std::string& name, int priority,
                      std::uint32_t tasks, double duration) {
  JobSpec spec;
  spec.name = name;
  spec.priority = priority;
  StageSpec stage;
  stage.num_tasks = tasks;
  stage.duration = fixed_duration(duration);
  stage.explicit_durations = std::vector<double>(tasks, duration);
  spec.stages.push_back(std::move(stage));
  return spec;
}

TEST(InvariantAuditorSeededBug, LowerPriorityStealOfReservedSlotIsCaught) {
  Engine engine(SchedConfig{}, /*num_nodes=*/1, /*slots_per_node=*/1,
                /*seed=*/1);
  engine.set_reservation_hook(std::make_unique<ApproveAnythingHook>());
  InvariantAuditor auditor(collect_options());
  auditor.attach(engine);

  engine.submit(one_stage_job("fg", /*priority=*/10, 1, 5.0));
  engine.submit(one_stage_job("bg", /*priority=*/0, 1, 20.0));
  engine.run();

  // At t=5 the buggy hook reserves the freed slot for the finished
  // high-priority job, then approves the low-priority job's task on it.
  ASSERT_TRUE(has_id(auditor.violations(), audit::kReservedSlotPriority))
      << auditor.report();
}

TEST(InvariantAuditorSeededBug, ThrowModeRaisesCheckErrorAtTheViolation) {
  Engine engine(SchedConfig{}, 1, 1, 1);
  engine.set_reservation_hook(std::make_unique<ApproveAnythingHook>());
  InvariantAuditor auditor;  // default: throw_on_violation
  auditor.attach(engine);

  engine.submit(one_stage_job("fg", 10, 1, 5.0));
  engine.submit(one_stage_job("bg", 0, 1, 20.0));
  try {
    engine.run();
    FAIL() << "expected CheckError from the audited run";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(audit::kReservedSlotPriority),
              std::string::npos)
        << e.what();
  }
}

TEST(InvariantAuditorSeededBug, MirrorVsClusterDivergenceIsCaught) {
  Engine engine(SchedConfig{}, 1, 2, 1);
  InvariantAuditor auditor(collect_options());
  auditor.attach(engine);

  // Inject a reservation event that never happened in the cluster: the
  // auditor's mirror now says ReservedIdle while the cluster says Idle.
  Reservation fake;
  fake.job = kJobA;
  fake.priority = 10;
  auditor.on_slot_reserved(engine, kSlot0, fake);

  ASSERT_TRUE(has_id(auditor.violations(), audit::kStateMismatch))
      << auditor.report();
}

TEST(InvariantAuditorSeededBug, AccountingDivergenceIsCaught) {
  // Observe a real run on engine A, then present the totals of an idle
  // engine B: busy slot-seconds no longer reconcile.
  Engine engine_a(SchedConfig{}, 1, 2, 1);
  InvariantAuditor auditor(collect_options());
  auditor.attach(engine_a);
  engine_a.submit(one_stage_job("fg", 10, 2, 5.0));
  engine_a.run();
  ASSERT_TRUE(auditor.clean()) << auditor.report();

  Engine engine_b(SchedConfig{}, 1, 2, 1);
  auditor.on_run_complete(engine_b);
  ASSERT_TRUE(has_id(auditor.violations(), audit::kSlotAccounting))
      << auditor.report();
}

TEST(InvariantAuditorSeededBug, TaskLostToPermanentFailureIsCaught) {
  // A 1-slot cluster whose only node dies for good mid-task: the attempt is
  // killed and re-queued, but no capacity ever comes back, so the stage can
  // never complete.  Engine::run()'s own wedge CHECK would throw before the
  // auditor's end-of-run pass, so drive the raw event loop and invoke the
  // completion audit by hand.
  Engine engine(SchedConfig{}, /*num_nodes=*/1, /*slots_per_node=*/1,
                /*seed=*/1);
  InvariantAuditor auditor(collect_options());
  auditor.attach(engine);
  engine.submit(one_stage_job("fg", /*priority=*/10, 1, 5.0));
  FailureSchedule schedule;
  schedule.events.push_back(
      FailureEvent{FailureEvent::Scope::Node, 0, 1.0, kTimeInfinity});
  FailureInjector injector(schedule);
  injector.attach(engine.sim(), engine);

  engine.sim().run();
  engine.cluster().settle(engine.sim().now());
  auditor.on_run_complete(engine);

  ASSERT_TRUE(has_id(auditor.violations(), audit::kTaskLost))
      << auditor.report();
}

// --- No false positives on real scenarios -----------------------------------

/// run_scenario twin that force-attaches an auditor in throw mode, so these
/// tests audit the full stack regardless of the SSR_AUDIT build flag.
RunResult run_audited(const ClusterSpec& cluster, std::vector<JobSpec> jobs,
                      const RunOptions& options, InvariantAuditor& auditor) {
  Engine engine(options.sched, cluster.nodes, cluster.slots_per_node,
                options.seed);
  if (options.ssr) {
    engine.set_reservation_hook(
        std::make_unique<ReservationManager>(*options.ssr));
  }
  auditor.attach(engine);
  std::vector<JobId> ids;
  for (JobSpec& spec : jobs) ids.push_back(engine.submit(std::move(spec)));
  engine.run();
  RunResult result;
  for (JobId id : ids) {
    result.jobs.push_back(JobResult{id, engine.job_name(id),
                                    engine.graph(id).priority(),
                                    engine.graph(id).submit_time(),
                                    engine.job_finish_time(id),
                                    engine.jct(id)});
  }
  return result;
}

std::vector<JobSpec> fig12_mix(double bg_multiplier) {
  TraceGenConfig cfg;
  cfg.num_jobs = 30;
  cfg.window = 600.0;
  cfg.runtime_multiplier = bg_multiplier;
  cfg.seed = 99;
  std::vector<JobSpec> jobs = make_background_jobs(cfg);
  jobs.push_back(make_kmeans(20, /*priority=*/10, /*submit=*/60.0));
  return jobs;
}

TEST(InvariantAuditorScenario, Fig12BaselineRunsClean) {
  const ClusterSpec cluster{.nodes = 10, .slots_per_node = 2};
  RunOptions options;
  options.seed = 1;
  InvariantAuditor auditor;
  run_audited(cluster, fig12_mix(1.0), options, auditor);
  EXPECT_TRUE(auditor.clean()) << auditor.report();
  EXPECT_GT(auditor.events_audited(), 0u);
}

TEST(InvariantAuditorScenario, Fig12SsrStrictIsolationRunsClean) {
  const ClusterSpec cluster{.nodes = 10, .slots_per_node = 2};
  RunOptions options;
  options.seed = 1;
  options.ssr = SsrConfig{};  // P = 1, infinite-deadline reservations
  options.ssr->min_reserving_priority = 1;
  InvariantAuditor auditor;
  run_audited(cluster, fig12_mix(2.0), options, auditor);
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(InvariantAuditorScenario, Fig14DeadlineAndMitigationRunClean) {
  // The fig14 knob sweep exercises deadline expiry (P < 1) and straggler
  // copies (kills + re-reservation) — the busiest reservation lifecycles.
  const ClusterSpec cluster{.nodes = 10, .slots_per_node = 2};
  for (const double p : {0.5, 0.9}) {
    RunOptions options;
    options.seed = 3;
    options.ssr = SsrConfig{};
    options.ssr->isolation_p = p;
    options.ssr->enable_straggler_mitigation = true;
    InvariantAuditor auditor;
    run_audited(cluster, fig12_mix(1.0), options, auditor);
    EXPECT_TRUE(auditor.clean()) << "P=" << p << "\n" << auditor.report();
  }
}

TEST(InvariantAuditorScenario, SqlChangingParallelismRunsClean) {
  // SQL trees change parallelism across phases: the pre-reservation path
  // (Case-2.3) grabs foreign slots, the release path drops surplus ones.
  const ClusterSpec cluster{.nodes = 5, .slots_per_node = 2};
  std::vector<JobSpec> jobs;
  for (std::uint32_t q = 0; q < 6; ++q) {
    SqlJobParams params;
    params.query_index = q;
    params.base_parallelism = 8;
    params.submit_time = 5.0 * q;
    jobs.push_back(make_sql_query(params));
  }
  RunOptions options;
  options.seed = 7;
  options.ssr = SsrConfig{};
  options.ssr->isolation_p = 0.8;
  InvariantAuditor auditor;
  run_audited(cluster, std::move(jobs), options, auditor);
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(InvariantAuditorScenario, FairPolicyRunsClean) {
  const ClusterSpec cluster{.nodes = 4, .slots_per_node = 2};
  RunOptions options;
  options.seed = 5;
  options.sched.policy = SchedulingPolicy::Fair;
  InvariantAuditor auditor;
  run_audited(cluster, fig12_mix(1.0), options, auditor);
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

}  // namespace
}  // namespace ssr
