// EventLogObserver: serializes every EngineObserver callback into one line
// per event, in callback order, with hexfloat timestamps.
//
// The open-vs-closed equivalence suite attaches one of these to each engine
// and asserts the two logs are *identical vectors* — a far stronger check
// than comparing end-of-run metrics, because it pins the full interleaving
// of scheduling decisions (task starts, reservations, failures, releases)
// at every simulated instant, including same-instant ordering.
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "ssr/sched/engine.h"
#include "ssr/sched/types.h"
#include "ssr/sim/cluster.h"

namespace ssr {

class EventLogObserver : public EngineObserver {
 public:
  const std::vector<std::string>& events() const { return events_; }

  void on_job_submitted(const Engine& e, JobId job) override {
    log(e) << "job_submitted " << job;
  }
  void on_job_finished(const Engine& e, JobId job) override {
    log(e) << "job_finished " << job;
  }
  void on_stage_submitted(const Engine& e, StageId stage) override {
    log(e) << "stage_submitted " << stage;
  }
  void on_stage_finished(const Engine& e, StageId stage) override {
    log(e) << "stage_finished " << stage;
  }
  void on_task_started(const Engine& e, TaskId task, SlotId slot) override {
    log(e) << "task_started " << task << " " << slot;
  }
  void on_task_finished(const Engine& e, TaskId task, SlotId slot) override {
    log(e) << "task_finished " << task << " " << slot;
  }
  void on_task_killed(const Engine& e, TaskId task, SlotId slot) override {
    log(e) << "task_killed " << task << " " << slot;
  }
  void on_task_failed(const Engine& e, TaskId task, SlotId slot) override {
    log(e) << "task_failed " << task << " " << slot;
  }
  void on_task_requeued(const Engine& e, TaskId task) override {
    log(e) << "task_requeued " << task;
  }
  void on_stage_invalidated(const Engine& e, StageId stage) override {
    log(e) << "stage_invalidated " << stage;
  }
  void on_slot_failed(const Engine& e, SlotId slot) override {
    log(e) << "slot_failed " << slot;
  }
  void on_slot_recovered(const Engine& e, SlotId slot) override {
    log(e) << "slot_recovered " << slot;
  }
  void on_slot_reserved(const Engine& e, SlotId slot,
                        const Reservation& r) override {
    log(e) << "slot_reserved " << slot << " for " << r.job << " prio "
           << r.priority << " deadline " << r.deadline << " stage "
           << r.for_stage;
  }
  void on_reservation_released(const Engine& e, SlotId slot,
                               ReservationEndReason reason) override {
    log(e) << "reservation_released " << slot << " reason "
           << static_cast<int>(reason);
  }
  void on_run_complete(const Engine& e) override { log(e) << "run_complete"; }

 private:
  /// Starts a line "t=<hexfloat now> "; the returned stream's destructor
  /// commits it to the log.  Non-movable: log() returns a prvalue, so the
  /// temporary is constructed in place and destroyed exactly once.
  class Line {
   public:
    Line(std::vector<std::string>& sink, SimTime now) : sink_(sink) {
      os_ << std::hexfloat << "t=" << now << " ";
    }
    Line(const Line&) = delete;
    Line& operator=(const Line&) = delete;
    ~Line() { sink_.push_back(os_.str()); }
    template <typename T>
    Line& operator<<(const T& value) {
      os_ << value;
      return *this;
    }

   private:
    std::vector<std::string>& sink_;
    std::ostringstream os_;
  };

  Line log(const Engine& engine) { return Line(events_, engine.now()); }

  std::vector<std::string> events_;
};

}  // namespace ssr
