#!/usr/bin/env python3
"""Unit tests for tools/check_bench_regression.py exit-code contract.

0 = clean, 1 = perf regression, 2 = schema problem, 3 = baseline key
missing from the current reports.  Runs under ctest as
`analyze.check_bench_regression`.
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
CHECK = REPO / "tools" / "check_bench_regression.py"
SCHEMA = "ssr-bench-sched-v1"


def report(records):
    return {"schema": SCHEMA,
            "records": [{"name": n, "items_per_second": ips}
                        for n, ips in records]}


def run_check(baseline_doc, current_doc, *extra):
    with tempfile.TemporaryDirectory() as td:
        base = Path(td) / "baseline.json"
        cur = Path(td) / "current.json"
        base.write_text(json.dumps(baseline_doc))
        cur.write_text(json.dumps(current_doc))
        proc = subprocess.run(
            [sys.executable, str(CHECK), "--baseline", str(base),
             *extra, str(cur)],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout, proc.stderr


class ExitCodes(unittest.TestCase):
    def test_clean_run_exits_zero(self):
        code, out, err = run_check(
            report([("bench_a", 100.0), ("bench_b", 50.0)]),
            report([("bench_a", 101.0), ("bench_b", 49.0)]))
        self.assertEqual(code, 0, out + err)
        self.assertIn("no perf regression", out)

    def test_regression_exits_one(self):
        code, out, err = run_check(
            report([("bench_a", 100.0)]),
            report([("bench_a", 40.0)]))
        self.assertEqual(code, 1, out + err)
        self.assertIn("REGRESSION", out)

    def test_missing_baseline_key_exits_three_with_message(self):
        code, out, err = run_check(
            report([("bench_a", 100.0), ("bench_gone", 70.0)]),
            report([("bench_a", 100.0)]))
        self.assertEqual(code, 3, out + err)
        self.assertIn("bench_gone", err)
        self.assertIn("bench coverage shrank", err)

    def test_missing_key_takes_priority_over_regression(self):
        # Both failure modes at once: the distinct missing-key exit wins so
        # CI logs show the coverage loss first (a regression report against
        # partial coverage is not trustworthy anyway).
        code, out, err = run_check(
            report([("bench_a", 100.0), ("bench_gone", 70.0)]),
            report([("bench_a", 40.0)]))
        self.assertEqual(code, 3, out + err)

    def test_wrong_schema_exits_two(self):
        code, out, err = run_check(
            {"schema": "bogus-v9", "records": []},
            report([("bench_a", 100.0)]))
        self.assertEqual(code, 2, out + err)
        self.assertIn("expected schema", err)

    def test_unreadable_report_exits_two(self):
        with tempfile.TemporaryDirectory() as td:
            base = Path(td) / "baseline.json"
            cur = Path(td) / "current.json"
            base.write_text(json.dumps(report([("bench_a", 1.0)])))
            cur.write_text("{not json")
            proc = subprocess.run(
                [sys.executable, str(CHECK), "--baseline", str(base),
                 str(cur)],
                capture_output=True, text=True)
            self.assertEqual(proc.returncode, 2, proc.stderr)

    def test_new_records_are_informational_only(self):
        code, out, err = run_check(
            report([("bench_a", 100.0)]),
            report([("bench_a", 100.0), ("bench_new", 5.0)]))
        self.assertEqual(code, 0, out + err)
        self.assertIn("bench_new", out)
        self.assertIn("not checked", out)


if __name__ == "__main__":
    unittest.main()
