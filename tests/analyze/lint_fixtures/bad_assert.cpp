// Lint fixture: assert() and abort() must both trip [no-assert].
#include <cassert>
#include <cstdlib>

namespace fixture {

inline void check(int v) {
  assert(v >= 0);
  if (v > 100) {
    std::abort();
  }
}

}  // namespace fixture
