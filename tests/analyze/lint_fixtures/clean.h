#pragma once

// Lint fixture: a conforming header — must produce no findings.

#include <stdexcept>

#define FIXTURE_CHECK(cond)                       \
  do {                                            \
    if (!(cond)) {                                \
      throw std::runtime_error("check failed");   \
    }                                             \
  } while (false)

namespace fixture {
inline void check(int v) { FIXTURE_CHECK(v >= 0); }
}  // namespace fixture
