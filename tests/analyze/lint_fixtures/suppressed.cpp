// Lint fixture: the allow annotation must silence [no-assert] — and must
// not itself be reported as stale, because it suppresses a live finding.
#include <cassert>

namespace fixture {

inline void check(int v) {
  assert(v >= 0);  // ssr-lint: allow(no-assert)
}

}  // namespace fixture
