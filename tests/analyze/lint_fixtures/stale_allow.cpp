// Lint fixture: both annotations are rot — one shields a clean line, the
// other names a retired rule.  Each must trip [stale-suppression].

namespace fixture {

inline int clean() {
  int v = 41;  // ssr-lint: allow(no-assert)
  return v + 1;  // ssr-lint: allow(no-naked-new)
}

}  // namespace fixture
