#ifndef FIXTURE_BAD_GUARD_H_
#define FIXTURE_BAD_GUARD_H_

// Lint fixture: an #ifndef guard instead of #pragma once trips
// [pragma-once].

namespace fixture {
inline int one() { return 1; }
}  // namespace fixture

#endif  // FIXTURE_BAD_GUARD_H_
