// Stale-suppression fixture: both annotations below suppress nothing — one
// sits on a perfectly clean line, the other names a rule that does not
// exist.  Expected: ssr-analyze flags [stale-suppression] twice.
#include <map>

namespace fixture {

class Ledger {
 public:
  void add(int id, double w) { weights_[id] = w; }

 private:
  std::map<int, double> weights_;  // ssr-analyze: allow(pointer-keyed-order)
  double total_ = 0.0;  // ssr-analyze: allow(no-such-rule)
};

}  // namespace fixture
