// Suppression fixture: each pattern below would be a finding, but carries a
// justified allow annotation (same-line and line-above forms).
// Expected: ssr-analyze reports nothing — and no stale-suppression either,
// because every allow suppresses a live finding.
#include <map>

namespace fixture {

struct Node {
  int id;
};

class Arena {
 public:
  void reset() {
    // ssr-analyze: allow(nondet-api)
    Node* scratch = new Node();
    scratch_ = scratch;
  }

 private:
  Node* scratch_ = nullptr;
  std::map<Node*, int> depth_;  // ssr-analyze: allow(pointer-keyed-order)
};

}  // namespace fixture
