// Seeded bugs: every nondeterministic-API hazard the AST rule covers —
// rand(), wall-clock time(), std::random_device, a default-constructed
// engine local, a never-seeded engine field, and a naked new.
// Expected: ssr-analyze flags [nondet-api] six times.
#include <ctime>
#include <random>

namespace fixture {

struct Widget {
  int v = 0;
};

class BadSampler {
 public:
  int draw() {
    std::random_device rd;          // BAD: non-deterministic
    std::mt19937 gen;               // BAD: hidden fixed seed
    int r = rand();                 // BAD: unseeded global state
    long t = time(nullptr);         // BAD: wall clock
    Widget* w = new Widget();       // BAD: naked new
    int out = r + static_cast<int>(t) + w->v + static_cast<int>(gen());
    delete w;
    return out + static_cast<int>(rd());
  }

 private:
  std::mt19937_64 engine_;  // BAD: never seeded (no NSDMI, no ctor)
};

}  // namespace fixture
