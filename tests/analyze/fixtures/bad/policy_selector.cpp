// Seeded bug: a StageSelector policy iterating unordered containers on the
// dispatch path.  The engine consults stage_score / rank_slots while
// ordering stages and slots, so hash order leaks straight into placement
// decisions — including through a helper called from the override, where
// the hazard hides one frame below the entry point.
// Expected: ssr-analyze flags [nondet-iteration] on all three loops.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

class Engine;

class StageSelector {
 public:
  virtual ~StageSelector() = default;
  virtual double stage_score(const Engine& engine, std::uint64_t stage) const = 0;
  virtual bool rank_slots(const Engine& engine, std::uint64_t stage,
                          std::vector<std::uint32_t>& slots) const = 0;
};

class BadHashSelector : public StageSelector {
 public:
  double stage_score(const Engine& engine, std::uint64_t stage) const override {
    (void)engine;
    double score = 0.0;
    for (const auto& [id, rank] : ranks_) {  // BAD: hash order
      if (id == stage) score += rank;
    }
    return score;
  }

  bool rank_slots(const Engine& engine, std::uint64_t stage,
                  std::vector<std::uint32_t>& slots) const override {
    (void)engine;
    (void)stage;
    slots.clear();
    for (std::uint32_t slot : preferred_) {  // BAD: hash order
      slots.push_back(slot);
    }
    return true;
  }

 private:
  std::unordered_map<std::uint64_t, double> ranks_;
  std::unordered_set<std::uint32_t> preferred_;
};

// The hazard one call below the override: the helper itself never touches a
// sink, so only the caller->callee closure from the selector entry points
// can see it.
class BadIndirectSelector : public StageSelector {
 public:
  double stage_score(const Engine& engine, std::uint64_t stage) const override {
    (void)engine;
    return sum_weights(stage);
  }

  bool rank_slots(const Engine& engine, std::uint64_t stage,
                  std::vector<std::uint32_t>& slots) const override {
    (void)engine;
    (void)stage;
    (void)slots;
    return false;
  }

 private:
  double sum_weights(std::uint64_t stage) const {
    double total = 0.0;
    for (const auto& [id, w] : weights_) {  // BAD: hash order via helper
      if (id <= stage) total += w;
    }
    return total;
  }

  std::unordered_map<std::uint64_t, double> weights_;
};

}  // namespace fixture
