// Seeded bug: ordered containers keyed by raw pointers.  std::less on a
// pointer orders by allocation address, which no two runs share.
// Expected: ssr-analyze flags [pointer-keyed-order] on both declarations.
#include <map>
#include <set>

namespace fixture {

struct Task {
  int id;
};

class BadRegistry {
 public:
  void note(Task* t, double weight) { weights_[t] = weight; }

 private:
  std::map<Task*, double> weights_;   // BAD: address-ordered traversal
  std::set<const Task*> watched_;     // BAD: address-ordered traversal
};

}  // namespace fixture
