// Seeded bugs in a miniature observer/capture tree: EngineObserver declares
// on_started and on_finished, but the recorder (a) never overrides
// on_finished and (b) its on_started override records no TraceEventKind;
// the replay auditor never handles kFinished.
// Expected: ssr-analyze flags [observer-schema] at least three times.

namespace fixture {

enum class TraceEventKind { kStarted = 1, kFinished = 2 };

class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void on_started(int id) {}
  virtual void on_finished(int id) {}
};

class TraceRecorder : public EngineObserver {
 public:
  void on_started(int id) override {
    last_ = id;  // BAD: no TraceEventKind recorded; event is dropped
  }
  // BAD: on_finished has no override at all.

 private:
  int last_ = 0;
};

class ReplayAuditor {
 public:
  void on_trace_event(TraceEventKind kind) {
    if (kind == TraceEventKind::kStarted) {
      seen_++;
    }
    // BAD: kFinished never handled; replay skips its transition.
  }

 private:
  int seen_ = 0;
};

}  // namespace fixture
