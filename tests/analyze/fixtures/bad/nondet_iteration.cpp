// Seeded bug: iterating an unordered_map in a function that schedules
// events.  Hash order leaks straight into the event stream.
// Expected: ssr-analyze flags [nondet-iteration] on both loops.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

class Simulator {
 public:
  void schedule_at(double t, int payload);
};

class BadDispatcher {
 public:
  void flush() {
    for (const auto& [id, weight] : pending_) {  // BAD: hash order
      sim_.schedule_at(weight, id);
    }
  }

  void flush_set() {
    for (int id : dirty_) {  // BAD: hash order
      sim_.schedule_at(0.0, id);
    }
  }

 private:
  Simulator sim_;
  std::unordered_map<int, double> pending_;
  std::unordered_set<int> dirty_;
};

}  // namespace fixture
