// Seeded bug: iterating an unordered_map in a function that schedules
// events.  Hash order leaks straight into the event stream — including
// when the map is shard-worker state reached through a local lane
// reference rather than a member of the enclosing class.
// Expected: ssr-analyze flags [nondet-iteration] on all three loops.
#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

class Simulator {
 public:
  void schedule_at(double t, int payload);
};

class BadDispatcher {
 public:
  void flush() {
    for (const auto& [id, weight] : pending_) {  // BAD: hash order
      sim_.schedule_at(weight, id);
    }
  }

  void flush_set() {
    for (int id : dirty_) {  // BAD: hash order
      sim_.schedule_at(0.0, id);
    }
  }

 private:
  Simulator sim_;
  std::unordered_map<int, double> pending_;
  std::unordered_set<int> dirty_;
};

// Shard-worker state: the per-lane map is only reachable through a local
// reference, so the loop's hash-order hazard hides behind one indirection.
struct WorkerLane {
  std::unordered_map<int, double> by_node;
};

class BadShardedDispatcher {
 public:
  void drain(std::size_t i) {
    WorkerLane& lane = lanes_[i];
    for (const auto& [node, t] : lane.by_node) {  // BAD: hash order
      sim_.schedule_at(t, node);
    }
  }

 private:
  Simulator sim_;
  std::vector<WorkerLane> lanes_;
};

}  // namespace fixture
