// Seeded bugs: (1) `count_` is read/written under `mu_` in push() but
// touched with no lock in size_hint() — a race once a second thread
// exists.  (2) `ShardLane` carries its own mutex (the sharded-engine
// worker-state pattern): the worker drains `pending` under the lane's
// lock, but the driver's fast path reads it through a local reference
// with no lock at all.
// Expected: ssr-analyze flags [lock-discipline] at both unguarded
// accesses.
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

namespace fixture {

class BadQueue {
 public:
  void push(int v) {
    std::lock_guard<std::mutex> lk(mu_);
    items_.push_back(v);
    count_ = items_.size();
  }

  std::size_t size_hint() const {
    return count_;  // BAD: no lock; torn read candidate
  }

 private:
  mutable std::mutex mu_;
  std::deque<int> items_;
  std::size_t count_ = 0;
};

// Per-shard worker state guarded by its own mutex, reached through
// locals — the enclosing class owns no mutex, so only the struct-member
// pass can see the discipline.
struct ShardLane {
  std::mutex mu;
  std::deque<int> pending;
};

class BadShardedQueue {
 public:
  void worker_drain(std::size_t i) {
    ShardLane& lane = lanes_[i];
    std::scoped_lock lk(lane.mu);
    lane.pending.clear();
  }

  std::size_t backlog(std::size_t i) {
    ShardLane& lane = lanes_[i];
    return lane.pending.size();  // BAD: no lock on the lane's own mutex
  }

 private:
  std::vector<ShardLane> lanes_;
};

}  // namespace fixture
