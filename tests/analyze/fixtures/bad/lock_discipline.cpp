// Seeded bug: `count_` is read/written under `mu_` in push() but touched
// with no lock in size_hint() — a race once a second thread exists.
// Expected: ssr-analyze flags [lock-discipline] at the unguarded access.
#include <cstddef>
#include <deque>
#include <mutex>

namespace fixture {

class BadQueue {
 public:
  void push(int v) {
    std::lock_guard<std::mutex> lk(mu_);
    items_.push_back(v);
    count_ = items_.size();
  }

  std::size_t size_hint() const {
    return count_;  // BAD: no lock; torn read candidate
  }

 private:
  mutable std::mutex mu_;
  std::deque<int> items_;
  std::size_t count_ = 0;
};

}  // namespace fixture
