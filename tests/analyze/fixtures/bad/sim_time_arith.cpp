// Seeded bugs around simulated-time arithmetic: a float in the tree, an
// integer variable silently truncating a SimTime, and a SimTime computed
// from integer division (quotient truncates before the conversion).
// Expected: ssr-analyze flags [sim-time-arith] three times.
#include <cstdint>

namespace fixture {

using SimTime = double;

class Clock {
 public:
  SimTime now() const { return now_; }

  void tick(SimTime deadline, int total_work, int workers) {
    float lag = 0.25f;  // BAD: float where time flows
    std::int64_t bucket = now_ + lag;  // BAD: truncates the timestamp
    SimTime per_worker = total_work / workers;  // BAD: int division
    now_ = deadline + per_worker + static_cast<SimTime>(bucket);
  }

 private:
  SimTime now_ = 0.0;
};

}  // namespace fixture
