// Clean counterpart: every access to mutex-guarded state takes the lock
// (including inside the wait predicate lambda, which runs under the lock);
// `workers_` is written only in the constructor and is immutable after, so
// it needs no lock at all.
// Expected: ssr-analyze reports nothing.
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace fixture {

class CleanQueue {
 public:
  CleanQueue() {
    workers_.emplace_back([] {});
  }

  void push(int v) {
    std::lock_guard<std::mutex> lk(mu_);
    items_.push_back(v);
    count_ = items_.size();
    cv_.notify_one();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return count_;
  }

  int pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return !items_.empty(); });
    int v = items_.front();
    items_.pop_front();
    count_ = items_.size();
    return v;
  }

  std::size_t worker_count() const { return workers_.size(); }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> items_;
  std::size_t count_ = 0;
  std::vector<std::thread> workers_;  // const after construction
};

// Clean shard-lane pattern: every local reference to a lane locks the
// lane's own mutex before touching its state, and the lock-free helper
// takes the lane as a *parameter* — the caller holds the lock, which is
// exactly the lane-helper idiom the rule must not flag.
struct CleanLane {
  std::mutex mu;
  std::deque<int> pending;
};

class CleanShardedQueue {
 public:
  void worker_drain(std::size_t i) {
    CleanLane& lane = lanes_[i];
    std::scoped_lock lk(lane.mu);
    drain_locked(lane);
  }

  std::size_t backlog(std::size_t i) {
    CleanLane& lane = lanes_[i];
    std::scoped_lock lk(lane.mu);
    return lane.pending.size();
  }

 private:
  static void drain_locked(CleanLane& lane) {
    lane.pending.clear();  // caller holds lane.mu (lane-helper pattern)
  }

  std::vector<CleanLane> lanes_;
};

}  // namespace fixture
