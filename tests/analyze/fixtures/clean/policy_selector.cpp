// Clean counterpart: a StageSelector policy whose unordered state is only
// point-looked-up on the dispatch path; the one iteration is sorted into a
// snapshot before any ordering decision depends on it.
// Expected: ssr-analyze reports nothing.
#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fixture {

class Engine;

class StageSelector {
 public:
  virtual ~StageSelector() = default;
  virtual double stage_score(const Engine& engine, std::uint64_t stage) const = 0;
  virtual bool rank_slots(const Engine& engine, std::uint64_t stage,
                          std::vector<std::uint32_t>& slots) const = 0;
};

class CleanSelector : public StageSelector {
 public:
  double stage_score(const Engine& engine, std::uint64_t stage) const override {
    (void)engine;
    auto it = ranks_.find(stage);  // point lookup only; never iterated
    return it == ranks_.end() ? 0.0 : it->second;
  }

  bool rank_slots(const Engine& engine, std::uint64_t stage,
                  std::vector<std::uint32_t>& slots) const override {
    (void)engine;
    (void)stage;
    // Ordered map: iteration order is the key order, reproducible.
    slots.clear();
    for (const auto& [slot, weight] : slot_weights_) {
      if (weight > 0.0) slots.push_back(slot);
    }
    return !slots.empty();
  }

 private:
  std::unordered_map<std::uint64_t, double> ranks_;
  std::map<std::uint32_t, double> slot_weights_;
};

// Sorted-snapshot idiom below the dispatch path: the unordered state is
// copied and sorted before its order can influence a placement decision.
class CleanSnapshotSelector : public StageSelector {
 public:
  double stage_score(const Engine& engine, std::uint64_t stage) const override {
    (void)engine;
    return top_weight(stage);
  }

  bool rank_slots(const Engine& engine, std::uint64_t stage,
                  std::vector<std::uint32_t>& slots) const override {
    (void)engine;
    (void)stage;
    (void)slots;
    return false;
  }

 private:
  double top_weight(std::uint64_t stage) const {
    std::vector<std::pair<std::uint64_t, double>> snap(weights_.begin(),
                                                       weights_.end());
    std::sort(snap.begin(), snap.end());
    double total = 0.0;
    for (const auto& [id, w] : snap) {  // sorted snapshot: reproducible
      if (id <= stage) total += w;
    }
    return total;
  }

  std::unordered_map<std::uint64_t, double> weights_;
};

}  // namespace fixture
