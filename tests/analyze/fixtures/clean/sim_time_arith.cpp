// Clean counterpart: double end to end, explicit static_cast at every
// deliberate narrowing, numerator promoted before the division.
// Expected: ssr-analyze reports nothing.
#include <cstdint>

namespace fixture {

using SimTime = double;

class Clock {
 public:
  SimTime now() const { return now_; }

  void tick(SimTime deadline, int total_work, int workers) {
    double lag = 0.25;
    std::int64_t bucket = static_cast<std::int64_t>(now_ + lag);
    SimTime per_worker =
        static_cast<double>(total_work) / workers;
    now_ = deadline + per_worker + static_cast<SimTime>(bucket);
  }

 private:
  SimTime now_ = 0.0;
};

}  // namespace fixture
