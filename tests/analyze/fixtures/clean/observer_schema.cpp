// Clean counterpart: every observer callback is overridden by the recorder
// with a distinct TraceEventKind, mirrored by the live auditor, and every
// kind is handled by the replay auditor.
// Expected: ssr-analyze reports nothing.

namespace fixture {

enum class TraceEventKind { kStarted = 1, kFinished = 2 };

class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void on_started(int id) {}
  virtual void on_finished(int id) {}
};

class TraceRecorder : public EngineObserver {
 public:
  void on_started(int id) override {
    record(TraceEventKind::kStarted, id);
  }
  void on_finished(int id) override {
    record(TraceEventKind::kFinished, id);
  }

 private:
  void record(TraceEventKind kind, int id);
};

class InvariantAuditor : public EngineObserver {
 public:
  void on_started(int id) override { open_ += id; }
  void on_finished(int id) override { open_ -= id; }

 private:
  int open_ = 0;
};

class ReplayAuditor {
 public:
  void on_trace_event(TraceEventKind kind) {
    if (kind == TraceEventKind::kStarted) {
      seen_++;
    } else if (kind == TraceEventKind::kFinished) {
      seen_--;
    }
  }

 private:
  int seen_ = 0;
};

}  // namespace fixture
