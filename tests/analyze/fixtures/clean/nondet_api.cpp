// Clean counterpart: seeds are explicit everywhere — engine field seeded in
// the constructor init list, engine local seeded from a parameter, heap
// allocation through make_unique.
// Expected: ssr-analyze reports nothing.
#include <cstdint>
#include <memory>
#include <random>

namespace fixture {

struct Widget {
  int v = 0;
};

class CleanSampler {
 public:
  explicit CleanSampler(std::uint64_t seed) : engine_(seed) {}

  int draw(std::uint64_t stream_seed) {
    std::mt19937 gen(static_cast<std::uint32_t>(stream_seed));
    auto w = std::make_unique<Widget>();
    return static_cast<int>(gen()) + w->v + static_cast<int>(engine_());
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fixture
