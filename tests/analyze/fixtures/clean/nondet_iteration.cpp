// Clean counterpart: ordered containers feed the event stream; the
// unordered map is only ever used for point lookups, never iterated on a
// path that reaches a sink.
// Expected: ssr-analyze reports nothing.
#include <map>
#include <set>
#include <unordered_map>

namespace fixture {

class Simulator {
 public:
  void schedule_at(double t, int payload);
};

class CleanDispatcher {
 public:
  void flush() {
    for (const auto& [id, weight] : pending_) {  // ordered: reproducible
      sim_.schedule_at(weight, id);
    }
  }

  void flush_set() {
    for (int id : dirty_) {  // ordered: reproducible
      sim_.schedule_at(0.0, id);
    }
  }

  double lookup(int id) const {
    auto it = cache_.find(id);  // point lookup only; never iterated
    return it == cache_.end() ? 0.0 : it->second;
  }

 private:
  Simulator sim_;
  std::map<int, double> pending_;
  std::set<int> dirty_;
  std::unordered_map<int, double> cache_;
};

}  // namespace fixture
