// Clean counterpart: ordered containers feed the event stream; the
// unordered map is only ever used for point lookups, never iterated on a
// path that reaches a sink.
// Expected: ssr-analyze reports nothing.
#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fixture {

class Simulator {
 public:
  void schedule_at(double t, int payload);
};

class CleanDispatcher {
 public:
  void flush() {
    for (const auto& [id, weight] : pending_) {  // ordered: reproducible
      sim_.schedule_at(weight, id);
    }
  }

  void flush_set() {
    for (int id : dirty_) {  // ordered: reproducible
      sim_.schedule_at(0.0, id);
    }
  }

  double lookup(int id) const {
    auto it = cache_.find(id);  // point lookup only; never iterated
    return it == cache_.end() ? 0.0 : it->second;
  }

 private:
  Simulator sim_;
  std::map<int, double> pending_;
  std::set<int> dirty_;
  std::unordered_map<int, double> cache_;
};

// Clean shard-worker state: the per-lane unordered map is snapshotted and
// sorted before anything reaches the event stream.
struct OrderedLane {
  std::unordered_map<int, double> by_node;
};

class CleanShardedDispatcher {
 public:
  void drain(std::size_t i) {
    OrderedLane& lane = lanes_[i];
    std::vector<std::pair<int, double>> snap(lane.by_node.begin(),
                                             lane.by_node.end());
    std::sort(snap.begin(), snap.end());
    for (const auto& [node, t] : snap) {  // sorted snapshot: reproducible
      sim_.schedule_at(t, node);
    }
  }

 private:
  Simulator sim_;
  std::vector<OrderedLane> lanes_;
};

}  // namespace fixture
