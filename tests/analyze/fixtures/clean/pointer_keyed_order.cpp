// Clean counterpart: key by the task's stable id, keep pointers as mapped
// values (a value is never a traversal key).
// Expected: ssr-analyze reports nothing.
#include <map>
#include <set>

namespace fixture {

struct Task {
  int id;
};

class CleanRegistry {
 public:
  void note(Task* t, double weight) { weights_[t->id] = weight; }

 private:
  std::map<int, double> weights_;  // id-keyed: reproducible order
  std::map<int, Task*> by_id_;     // pointer is the value, not the key
  std::set<int> watched_;
};

}  // namespace fixture
