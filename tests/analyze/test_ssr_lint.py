#!/usr/bin/env python3
"""Fixture suite for tools/ssr_lint.py.

Asserts each regex rule fires on its lint_fixtures/ seed, each
`ssr-lint: allow` suppression holds, and the stale-suppression audit trips
on rotted annotations.  Runs under ctest as `analyze.ssr_lint_fixtures`.
"""

import subprocess
import sys
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
LINT = REPO / "tools" / "ssr_lint.py"
FIXTURES = REPO / "tests" / "analyze" / "lint_fixtures"


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, str(LINT), *[str(a) for a in args]],
        capture_output=True, text=True, cwd=REPO)
    return proc.returncode, proc.stdout, proc.stderr


class RulesFire(unittest.TestCase):
    def test_no_assert_fires_for_assert_and_abort(self):
        code, out, _ = run_lint(FIXTURES / "bad_assert.cpp")
        self.assertEqual(code, 1, out)
        self.assertEqual(out.count("[no-assert]"), 2, out)

    def test_pragma_once_fires_for_ifndef_guard(self):
        code, out, _ = run_lint(FIXTURES / "bad_guard.h")
        self.assertEqual(code, 1, out)
        self.assertIn("[pragma-once]", out)
        self.assertIn("#ifndef guard", out)


class SuppressionsHold(unittest.TestCase):
    def test_allow_silences_no_assert(self):
        code, out, _ = run_lint(FIXTURES / "suppressed.cpp")
        self.assertEqual(code, 0, out)
        self.assertEqual(out, "")

    def test_stale_allows_are_findings(self):
        code, out, _ = run_lint(FIXTURES / "stale_allow.cpp")
        self.assertEqual(code, 1, out)
        self.assertEqual(out.count("[stale-suppression]"), 2, out)
        # One names a retired rule, one shields a clean line.
        self.assertIn("no-naked-new", out)
        self.assertIn("suppresses nothing", out)


class CleanAndSweep(unittest.TestCase):
    def test_clean_header_passes(self):
        code, out, _ = run_lint(FIXTURES / "clean.h")
        self.assertEqual(code, 0, out)

    def test_repo_sweep_is_clean_and_skips_fixtures(self):
        # The default sweep (src tests bench examples) must skip both fixture
        # corpora — the seeded assert/guard bugs above would fail it
        # otherwise — and the tree itself must lint clean.
        code, out, err = run_lint()
        self.assertEqual(code, 0, out + err)

    def test_list_rules(self):
        code, out, _ = run_lint("--list-rules")
        self.assertEqual(code, 0)
        for rule in ("no-assert", "pragma-once", "stale-suppression"):
            self.assertIn(rule, out)
        # Retired regex rules must be gone (AST versions live in
        # ssr_analyze.py now).
        for retired in ("no-wall-clock", "unseeded-rng", "no-naked-new",
                        "trace-schema"):
            self.assertNotIn(retired, out)


if __name__ == "__main__":
    unittest.main()
