#!/usr/bin/env python3
"""Fixture suite for tools/ssr_analyze.py.

Every analyzer rule has a deliberately-broken fixture it must flag and a
clean fixture it must pass; suppression, stale-suppression, the baseline
workflow, and the repo-sweep fixture exclusion are covered too.  Runs under
ctest as `analyze.ssr_analyze_fixtures` (stdlib unittest; no pytest
dependency in the container).
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
ANALYZE = REPO / "tools" / "ssr_analyze.py"
FIXTURES = REPO / "tests" / "analyze" / "fixtures"

RULES = [
    "nondet-iteration",
    "pointer-keyed-order",
    "lock-discipline",
    "observer-schema",
    "sim-time-arith",
    "nondet-api",
]

# rule -> minimum number of findings its bad fixture must produce.
EXPECTED_MIN = {
    "nondet-iteration": 3,
    "pointer-keyed-order": 2,
    "lock-discipline": 2,
    "observer-schema": 3,
    "sim-time-arith": 3,
    "nondet-api": 6,
}

# Extra fixture pairs that exercise one rule beyond its primary fixture:
# fixture stem -> (rule, minimum findings in the bad variant).  The
# policy_selector pair pins the StageSelector dispatch-path closure — a
# selector override (or a helper below it) iterating an unordered container
# must be flagged even though it never calls a sink itself.
EXTRA_PAIRS = {
    "policy_selector": ("nondet-iteration", 3),
}


def run_analyzer(*args):
    """Returns (exit_code, findings list, raw stdout)."""
    proc = subprocess.run(
        [sys.executable, str(ANALYZE), "--json", "-", "--root", str(REPO),
         *[str(a) for a in args]],
        capture_output=True, text=True, cwd=REPO)
    findings = []
    if proc.stdout:
        # --json - prints the JSON doc after the human lines; the doc is the
        # last {...} block.
        start = proc.stdout.find('{\n  "schema"')
        if start != -1:
            findings = json.loads(proc.stdout[start:])["findings"]
    return proc.returncode, findings, proc.stdout + proc.stderr


class BadFixturesAreFlagged(unittest.TestCase):
    def check_bad(self, stem, rule, expected_min):
        path = FIXTURES / "bad" / (stem + ".cpp")
        self.assertTrue(path.is_file(), f"missing fixture {path}")
        code, findings, out = run_analyzer(path)
        hits = [f for f in findings if f["rule"] == rule]
        self.assertEqual(code, 1, f"{stem}: expected exit 1, got {code}\n{out}")
        self.assertGreaterEqual(
            len(hits), expected_min,
            f"{stem}: expected >= {expected_min} findings, "
            f"got {len(hits)}\n{out}")
        wrong = [f for f in findings if f["rule"] != rule]
        self.assertEqual(
            wrong, [], f"{stem}: unexpected cross-rule findings\n{out}")


# One test method per rule so a broken rule names itself in the ctest log.
for _rule in RULES:
    def _make(rule):
        return lambda self: self.check_bad(
            rule.replace("-", "_"), rule, EXPECTED_MIN[rule])
    setattr(BadFixturesAreFlagged, f"test_{_rule.replace('-', '_')}",
            _make(_rule))

for _stem, (_rule, _min) in EXTRA_PAIRS.items():
    def _make_extra(stem, rule, expected_min):
        return lambda self: self.check_bad(stem, rule, expected_min)
    setattr(BadFixturesAreFlagged, f"test_{_stem}",
            _make_extra(_stem, _rule, _min))


class CleanFixturesPass(unittest.TestCase):
    def check_clean(self, stem):
        path = FIXTURES / "clean" / (stem + ".cpp")
        self.assertTrue(path.is_file(), f"missing fixture {path}")
        code, findings, out = run_analyzer(path)
        self.assertEqual(code, 0, f"{stem}: clean fixture flagged\n{out}")
        self.assertEqual(findings, [])


for _stem in [r.replace("-", "_") for r in RULES] + sorted(EXTRA_PAIRS):
    def _make_clean(stem):
        return lambda self: self.check_clean(stem)
    setattr(CleanFixturesPass, f"test_{_stem}", _make_clean(_stem))


class Suppressions(unittest.TestCase):
    def test_allow_silences_finding(self):
        code, findings, out = run_analyzer(FIXTURES / "suppressed.cpp")
        self.assertEqual(code, 0, out)
        self.assertEqual(findings, [])

    def test_stale_allow_is_a_finding(self):
        code, findings, out = run_analyzer(FIXTURES / "stale_allow.cpp")
        self.assertEqual(code, 1, out)
        stale = [f for f in findings if f["rule"] == "stale-suppression"]
        self.assertEqual(len(stale), 2, out)
        messages = " ".join(f["message"] for f in stale)
        self.assertIn("no-such-rule", messages)


class BaselineWorkflow(unittest.TestCase):
    def test_baselined_findings_do_not_fail(self):
        bad = FIXTURES / "bad" / "nondet_api.cpp"
        with tempfile.TemporaryDirectory() as td:
            baseline = Path(td) / "baseline.json"
            proc = subprocess.run(
                [sys.executable, str(ANALYZE), "--root", str(REPO),
                 "--baseline", str(baseline), "--update-baseline", str(bad)],
                capture_output=True, text=True, cwd=REPO)
            self.assertEqual(proc.returncode, 0, proc.stderr)
            doc = json.loads(baseline.read_text())
            self.assertEqual(doc["schema"], "ssr-analyze-baseline-v1")
            self.assertGreater(len(doc["findings"]), 0)

            # Same findings, now baselined: the run is clean.
            code, findings, out = run_analyzer(
                "--baseline", baseline, bad)
            self.assertEqual(code, 0, out)
            self.assertTrue(all(f["baselined"] for f in findings), out)

    def test_unknown_baseline_schema_is_usage_error(self):
        with tempfile.TemporaryDirectory() as td:
            baseline = Path(td) / "baseline.json"
            baseline.write_text('{"schema": "bogus-v0", "findings": []}')
            proc = subprocess.run(
                [sys.executable, str(ANALYZE), "--root", str(REPO),
                 "--baseline", str(baseline),
                 str(FIXTURES / "clean" / "nondet_api.cpp")],
                capture_output=True, text=True, cwd=REPO)
            self.assertEqual(proc.returncode, 2, proc.stderr)


class RepoSweep(unittest.TestCase):
    def test_fixture_corpus_is_excluded_from_sweeps(self):
        # A directory sweep over tests/ must skip the deliberately-broken
        # corpus — if it didn't, the seeded bugs above would all fire here.
        code, findings, out = run_analyzer("tests")
        self.assertEqual(code, 0, out)
        self.assertEqual([f for f in findings if not f["baselined"]], [])

    def test_committed_baseline_is_empty(self):
        # The tree itself must be clean: true positives get fixed, not
        # baselined away (the committed baseline only absorbs genuinely
        # disputed findings, and today there are none).
        doc = json.loads(
            (REPO / "tools" / "ssr_analyze_baseline.json").read_text())
        self.assertEqual(doc["schema"], "ssr-analyze-baseline-v1")
        self.assertEqual(doc["findings"], [])

    def test_list_rules(self):
        proc = subprocess.run(
            [sys.executable, str(ANALYZE), "--list-rules"],
            capture_output=True, text=True, cwd=REPO)
        self.assertEqual(proc.returncode, 0)
        for rule in RULES + ["stale-suppression"]:
            self.assertIn(rule, proc.stdout)


if __name__ == "__main__":
    unittest.main()
