// Heartbeat failure-detector suite (sim/failure_detector.h).
//
// The detector is a pure schedule transform, so most of the contract is
// testable without an engine: pass-through when disabled, the detection
// latency bound, invisibility of sub-timeout outages, false suspicions under
// channel noise (and their guaranteed clearing), per-target stream
// independence, and input validation.  Two end-to-end legs pin the
// integration: a differential no-op — event streams of detector-off runs are
// byte-identical to runs that never had a detector field set at all — and a
// false-suspicion reconciliation run where the engine kills healthy nodes on
// suspicion and the late recovery reconciles through the same epoch guards
// as a true recovery, with every job still completing.
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "event_stream.h"
#include "ssr/common/check.h"
#include "ssr/exp/harness.h"
#include "ssr/exp/scenario.h"
#include "ssr/metrics/trace_capture.h"
#include "ssr/sim/failure_detector.h"
#include "ssr/sim/failure_injector.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

namespace ssr {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

FailureEvent node_failure(std::uint32_t id, SimTime fail, SimTime recover) {
  return FailureEvent{FailureEvent::Scope::Node, id, fail, recover};
}

// --- Pass-through (detector off) ---------------------------------------------

TEST(FailureDetector, DisabledConfigPassesTruthThroughVerbatim) {
  FailureSchedule truth;
  truth.events.push_back(node_failure(2, 30.0, 60.0));
  truth.events.push_back(node_failure(1, 10.0, kTimeInfinity));

  // heartbeat_period == 0 disables the detector regardless of the other
  // knobs (even invalid ones — nothing else is read).
  FailureDetectorConfig off;
  off.heartbeat_loss = 0.75;
  off.seed = 99;
  const DetectionOutcome out = detect_failures(truth, off, 8);

  EXPECT_TRUE(out.suspicions.empty());
  EXPECT_EQ(out.false_suspicions(), 0u);
  ASSERT_EQ(out.detected.events.size(), truth.events.size());
  for (std::size_t i = 0; i < truth.events.size(); ++i) {
    EXPECT_EQ(out.detected.events[i].scope, truth.events[i].scope);
    EXPECT_EQ(out.detected.events[i].id, truth.events[i].id);
    EXPECT_EQ(out.detected.events[i].fail_at, truth.events[i].fail_at);
    EXPECT_EQ(out.detected.events[i].recover_at, truth.events[i].recover_at);
  }
}

// --- Deterministic single-target timelines -----------------------------------

TEST(FailureDetector, SuspicionFiresAtTimeoutThBeatAndClearsAtNextDelivery) {
  FailureSchedule truth;
  truth.events.push_back(node_failure(1, 11.0, 45.0));  // beats 20/30/40 missed

  FailureDetectorConfig cfg;
  cfg.heartbeat_period = 10.0;
  cfg.timeout_beats = 3;
  const DetectionOutcome out = detect_failures(truth, cfg, 4);

  ASSERT_EQ(out.suspicions.size(), 1u);
  const SuspicionRecord& s = out.suspicions.front();
  EXPECT_EQ(s.id, 1u);
  EXPECT_EQ(s.suspected_at, 40.0);  // third consecutive missed beat
  EXPECT_EQ(s.cleared_at, 50.0);    // first delivered beat after recovery
  EXPECT_EQ(s.truth_fail_at, 11.0);
  EXPECT_FALSE(s.false_suspicion());
  EXPECT_EQ(s.latency(), 29.0);

  // The engine-facing schedule is exactly the suspicion window.
  ASSERT_EQ(out.detected.events.size(), 1u);
  EXPECT_EQ(out.detected.events.front().fail_at, 40.0);
  EXPECT_EQ(out.detected.events.front().recover_at, 50.0);
}

TEST(FailureDetector, OutageShorterThanTimeoutWindowIsNeverDetected) {
  FailureSchedule truth;
  truth.events.push_back(node_failure(1, 11.0, 35.0));  // misses only 20, 30

  FailureDetectorConfig cfg;
  cfg.heartbeat_period = 10.0;
  cfg.timeout_beats = 3;
  const DetectionOutcome out = detect_failures(truth, cfg, 4);
  EXPECT_TRUE(out.suspicions.empty());
  EXPECT_TRUE(out.detected.events.empty());
}

TEST(FailureDetector, PermanentFailureYieldsUnclearedSuspicion) {
  FailureSchedule truth;
  truth.events.push_back(node_failure(2, 11.0, kTimeInfinity));

  FailureDetectorConfig cfg;
  cfg.heartbeat_period = 10.0;
  cfg.timeout_beats = 2;
  const DetectionOutcome out = detect_failures(truth, cfg, 4);
  ASSERT_EQ(out.suspicions.size(), 1u);
  EXPECT_EQ(out.suspicions.front().suspected_at, 30.0);
  EXPECT_EQ(out.suspicions.front().cleared_at, kTimeInfinity);
  ASSERT_EQ(out.detected.events.size(), 1u);
  EXPECT_EQ(out.detected.events.front().recover_at, kTimeInfinity);
}

// --- Latency bound over random schedules -------------------------------------

TEST(FailureDetector, DetectionLatencyBoundHoldsOver100RandomSchedules) {
  std::uint64_t detections = 0;
  for (std::uint64_t trial = 0; trial < 100; ++trial) {
    std::uint64_t s = 0xde7ec7ull ^ (trial * 0x85ebull);
    RandomFailureConfig f;
    f.num_nodes = 3 + static_cast<std::uint32_t>(splitmix64(s) % 6);
    f.horizon = 120.0;
    f.failures = 1 + static_cast<std::uint32_t>(splitmix64(s) % 5);
    f.min_downtime = 1.0;
    f.max_downtime = 40.0;
    f.permanent_fraction = static_cast<double>(splitmix64(s) % 3) * 0.2;
    f.seed = 0x1a7e + trial;

    FailureDetectorConfig cfg;
    cfg.heartbeat_period = 1.0 + static_cast<double>(splitmix64(s) % 5);
    cfg.timeout_beats = 1 + static_cast<std::uint32_t>(splitmix64(s) % 4);
    const SimDuration bound =
        static_cast<double>(cfg.timeout_beats) * cfg.heartbeat_period;

    const DetectionOutcome out =
        detect_failures(make_random_node_failures(f), cfg, f.num_nodes);
    SCOPED_TRACE("trial " + std::to_string(trial));
    EXPECT_EQ(out.detected.events.size(), out.suspicions.size());
    for (const SuspicionRecord& rec : out.suspicions) {
      // A noiseless channel can never fabricate a suspicion...
      ASSERT_FALSE(rec.false_suspicion());
      // ...and every real detection lags the truth by at most the window.
      EXPECT_GE(rec.latency(), 0.0);
      EXPECT_LE(rec.latency(), bound + 1e-9);
      EXPECT_GT(rec.cleared_at, rec.suspected_at);
      ++detections;
    }
  }
  EXPECT_GT(detections, 50u);  // the sweep must actually detect things
}

// --- Channel noise -----------------------------------------------------------

TEST(FailureDetector, LossyChannelFabricatesFalseSuspicionsThatAllClear) {
  FailureDetectorConfig cfg;
  cfg.heartbeat_period = 5.0;
  cfg.timeout_beats = 2;
  cfg.heartbeat_loss = 0.5;
  cfg.noise_horizon = 200.0;
  cfg.seed = 1;

  const DetectionOutcome out = detect_failures(FailureSchedule{}, cfg, 4);
  EXPECT_FALSE(out.suspicions.empty());
  EXPECT_EQ(out.false_suspicions(), out.suspicions.size());
  for (const SuspicionRecord& s : out.suspicions) {
    EXPECT_TRUE(s.false_suspicion());
    // Node 0's channel is reliable: it can never be falsely suspected.
    EXPECT_NE(s.id, 0u);
    // Noise stops at the horizon, so every false suspicion eventually ends
    // at a delivered beat.
    EXPECT_LT(s.cleared_at, kTimeInfinity);
    EXPECT_LE(s.cleared_at, cfg.noise_horizon + cfg.heartbeat_period);
  }
}

TEST(FailureDetector, AddingMonitoredNodesNeverPerturbsExistingStreams) {
  FailureDetectorConfig cfg;
  cfg.heartbeat_period = 5.0;
  cfg.timeout_beats = 2;
  cfg.heartbeat_loss = 0.4;
  cfg.noise_horizon = 150.0;
  cfg.seed = 7;

  const DetectionOutcome small = detect_failures(FailureSchedule{}, cfg, 4);
  const DetectionOutcome large = detect_failures(FailureSchedule{}, cfg, 6);

  // Nodes 1..3 are monitored in both runs; their windows must be identical —
  // each target draws from an independent fork keyed by its position, so
  // widening the monitored set only appends streams.
  std::vector<SuspicionRecord> small_low, large_low;
  for (const SuspicionRecord& s : small.suspicions) small_low.push_back(s);
  for (const SuspicionRecord& s : large.suspicions) {
    if (s.id < 4) large_low.push_back(s);
  }
  ASSERT_EQ(small_low.size(), large_low.size());
  for (std::size_t i = 0; i < small_low.size(); ++i) {
    EXPECT_EQ(small_low[i].id, large_low[i].id);
    EXPECT_EQ(small_low[i].suspected_at, large_low[i].suspected_at);
    EXPECT_EQ(small_low[i].cleared_at, large_low[i].cleared_at);
  }
}

TEST(FailureDetector, TransformIsDeterministic) {
  FailureSchedule truth;
  truth.events.push_back(node_failure(1, 12.0, 44.0));
  truth.events.push_back(node_failure(3, 30.0, kTimeInfinity));
  FailureDetectorConfig cfg;
  cfg.heartbeat_period = 3.0;
  cfg.timeout_beats = 2;
  cfg.heartbeat_loss = 0.2;
  cfg.noise_horizon = 100.0;
  cfg.seed = 42;

  const DetectionOutcome a = detect_failures(truth, cfg, 6);
  const DetectionOutcome b = detect_failures(truth, cfg, 6);
  ASSERT_EQ(a.suspicions.size(), b.suspicions.size());
  for (std::size_t i = 0; i < a.suspicions.size(); ++i) {
    EXPECT_EQ(a.suspicions[i].id, b.suspicions[i].id);
    EXPECT_EQ(a.suspicions[i].suspected_at, b.suspicions[i].suspected_at);
    EXPECT_EQ(a.suspicions[i].cleared_at, b.suspicions[i].cleared_at);
    EXPECT_EQ(a.suspicions[i].truth_fail_at, b.suspicions[i].truth_fail_at);
  }
}

// --- Validation --------------------------------------------------------------

TEST(FailureDetector, InvalidConfigsAreRejected) {
  FailureSchedule truth;
  truth.events.push_back(node_failure(1, 10.0, 20.0));

  FailureDetectorConfig cfg;
  cfg.heartbeat_period = 5.0;
  cfg.timeout_beats = 0;
  EXPECT_THROW(detect_failures(truth, cfg, 4), CheckError);

  cfg.timeout_beats = 2;
  cfg.heartbeat_loss = 1.0;  // a fully-lossy channel never clears
  EXPECT_THROW(detect_failures(truth, cfg, 4), CheckError);

  cfg.heartbeat_loss = 0.1;
  cfg.noise_horizon = -1.0;
  EXPECT_THROW(detect_failures(truth, cfg, 4), CheckError);
}

// --- End-to-end: differential no-op ------------------------------------------

/// Run a scenario through the shared harness with an event-log observer
/// attached, returning the full serialized callback stream.
std::vector<std::string> harness_event_log(const ClusterSpec& cluster,
                                           std::vector<JobSpec> jobs,
                                           const RunOptions& options) {
  ScenarioHarness harness(cluster, options);
  EventLogObserver log;
  harness.engine().add_observer(&log);
  std::vector<JobId> ids;
  ids.reserve(jobs.size());
  for (JobSpec& spec : jobs) {
    ids.push_back(harness.engine().submit(std::move(spec)));
  }
  harness.engine().run();
  harness.collect(ids);
  return log.events();
}

ClusterSpec small_cluster() { return ClusterSpec{.nodes = 6, .slots_per_node = 2}; }

std::vector<JobSpec> small_mix(std::uint64_t seed) {
  TraceGenConfig bg;
  bg.num_jobs = 6;
  bg.window = 120.0;
  bg.seed = seed;
  std::vector<JobSpec> jobs = make_background_jobs(bg);
  jobs.push_back(make_kmeans(6, 10, 30.0));
  return jobs;
}

TEST(FailureDetectorDifferential, PeriodZeroRunIsByteIdenticalToDefault) {
  // Same truth failure schedule on both sides; side B sets every detector
  // knob except the period, which stays 0 — the detector must be a strict
  // no-op, down to the exact callback interleaving.
  RunOptions base;
  base.seed = 5;
  base.ssr = SsrConfig{};
  base.ssr->min_reserving_priority = 1;
  base.failures.events.push_back(node_failure(2, 40.0, 70.0));
  base.failures.events.push_back(node_failure(4, 55.0, kTimeInfinity));

  RunOptions with_detector_fields = base;
  with_detector_fields.detector.heartbeat_loss = 0.9;
  with_detector_fields.detector.timeout_beats = 7;
  with_detector_fields.detector.seed = 123;

  const std::vector<std::string> a =
      harness_event_log(small_cluster(), small_mix(501), base);
  const std::vector<std::string> b =
      harness_event_log(small_cluster(), small_mix(501), with_detector_fields);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(FailureDetectorDifferential, CleanChannelOnHealthyClusterIsNoOp) {
  // Detector armed (period > 0) but no truth failures and no noise: the
  // detected schedule is empty, no injector attaches, and the run is
  // byte-identical to one that never had detector or failure machinery.
  RunOptions plain;
  plain.seed = 9;

  RunOptions detected = plain;
  detected.detector.heartbeat_period = 3.0;
  detected.detector.timeout_beats = 2;

  const std::vector<std::string> a =
      harness_event_log(small_cluster(), small_mix(777), plain);
  const std::vector<std::string> b =
      harness_event_log(small_cluster(), small_mix(777), detected);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// --- End-to-end: suspicion consequences --------------------------------------

/// Time of the first slot_failed event in the run's capture.
SimTime first_slot_failure_at(const std::string& capture_path) {
  // Bind the replayer to a local: a range-for over the temporary's
  // events() would iterate a vector the temporary takes with it.
  const TraceReplayer replayer = TraceReplayer::from_file(capture_path);
  for (const TraceEvent& e : replayer.events()) {
    if (e.kind == TraceEventKind::kSlotFailed) return e.time;
  }
  ADD_FAILURE() << "no slot_failed event in " << capture_path;
  return -1.0;
}

TEST(FailureDetectorEndToEnd, DetectionLagDelaysFailureConsequences) {
  // One permanent truth failure; the detected schedule must push the
  // kill/dead-time consequences to the suspicion instant, not the truth
  // instant — visible as a later slot_failed event than the oracle run's.
  RunOptions oracle;
  oracle.seed = 3;
  oracle.failures.events.push_back(node_failure(1, 40.0, kTimeInfinity));
  oracle.capture_path = testing::TempDir() + "ssr_detector_oracle.trace";

  RunOptions lagged = oracle;
  lagged.detector.heartbeat_period = 4.0;
  lagged.detector.timeout_beats = 3;
  lagged.capture_path = testing::TempDir() + "ssr_detector_lagged.trace";

  const RunResult oracle_run =
      run_scenario(small_cluster(), small_mix(601), oracle);
  const RunResult lagged_run =
      run_scenario(small_cluster(), small_mix(601), lagged);

  EXPECT_EQ(oracle_run.suspicions, 0u);
  EXPECT_EQ(lagged_run.suspicions, 1u);
  EXPECT_EQ(lagged_run.false_suspicions, 0u);
  EXPECT_GT(oracle_run.recovery.slots_failed, 0u);
  EXPECT_GT(lagged_run.recovery.slots_failed, 0u);

  // The oracle kills the node's slots at the truth instant; the detector run
  // only at the suspicion beat, within the latency bound (3 beats x 4s).
  const SimTime oracle_at = first_slot_failure_at(oracle.capture_path);
  const SimTime lagged_at = first_slot_failure_at(lagged.capture_path);
  EXPECT_DOUBLE_EQ(oracle_at, 40.0);
  EXPECT_GT(lagged_at, 40.0);
  EXPECT_LE(lagged_at, 40.0 + 12.0);
  std::remove(oracle.capture_path.c_str());
  std::remove(lagged.capture_path.c_str());
}

TEST(FailureDetectorEndToEnd, FalseSuspicionsReconcileAndEveryJobCompletes) {
  // Healthy cluster, lossy channel over the whole run: the engine kills
  // slots on pure noise, the false suspicions clear as recoveries through
  // the ordinary epoch guards, and the workload still completes.
  RunOptions o;
  o.seed = 11;
  o.ssr = SsrConfig{};
  o.ssr->min_reserving_priority = 1;
  o.detector.heartbeat_period = 5.0;
  o.detector.timeout_beats = 2;
  o.detector.heartbeat_loss = 0.3;
  o.detector.noise_horizon = 150.0;
  o.detector.seed = 2;

  // run_scenario throws if any job wedges; reaching the result is liveness.
  const RunResult run = run_scenario(small_cluster(), small_mix(901), o);
  EXPECT_GT(run.suspicions, 0u);
  EXPECT_EQ(run.false_suspicions, run.suspicions);
  // Every suspicion window killed and then recovered real capacity.
  EXPECT_GT(run.recovery.slots_failed, 0u);
  EXPECT_EQ(run.recovery.slots_failed, run.recovery.slots_recovered);
  EXPECT_GT(run.dead_time, 0.0);
  for (const JobResult& j : run.jobs) {
    EXPECT_GE(j.finish, j.submit) << j.name << " never finished";
  }
  // Reconciliation is deterministic: the same options reproduce the same
  // outcome counters exactly.
  const RunResult again = run_scenario(small_cluster(), small_mix(901), o);
  EXPECT_EQ(run.recovery.slots_failed, again.recovery.slots_failed);
  EXPECT_EQ(run.recovery.tasks_failed, again.recovery.tasks_failed);
  EXPECT_EQ(run.makespan, again.makespan);
}

}  // namespace
}  // namespace ssr
