// Parameterized sweeps over the workload generators: every SQL template and
// several ML scales must produce valid DAGs that run to completion alone.
#include <gtest/gtest.h>

#include "ssr/sched/engine.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/sqlbench.h"

namespace ssr {
namespace {

class SqlTemplateSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SqlTemplateSweep, TemplateValidatesAndRuns) {
  SqlJobParams p;
  p.query_index = GetParam();
  p.base_parallelism = 8;
  const JobSpec spec = make_sql_query(p);

  JobGraph g(JobId{0}, spec);
  EXPECT_GE(g.num_stages(), 4u);
  EXPECT_LE(g.num_stages(), 9u);
  EXPECT_GE(g.roots().size(), 1u);
  EXPECT_LE(g.roots().size(), 2u);
  // Exactly one final stage (queries produce one result).
  std::uint32_t finals = 0;
  for (std::uint32_t i = 0; i < g.num_stages(); ++i) {
    if (g.is_final_stage(i)) ++finals;
  }
  EXPECT_EQ(finals, 1u);

  Engine engine(SchedConfig{}, 4, 4, GetParam() + 1);
  const JobId id = engine.submit(spec);
  engine.run();
  EXPECT_TRUE(engine.job_finished(id));
  EXPECT_GT(engine.jct(id), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, SqlTemplateSweep,
                         ::testing::Range<std::uint32_t>(0, 20));

struct MlScale {
  std::uint32_t parallelism;
  std::uint32_t cluster_slots;
};

class MlScaleSweep : public ::testing::TestWithParam<MlScale> {};

TEST_P(MlScaleSweep, AllThreeAppsRunAtThisScale) {
  const MlScale& s = GetParam();
  for (auto make : {make_kmeans, make_svm, make_pagerank}) {
    Engine engine(SchedConfig{}, 1, s.cluster_slots, 3);
    const JobId id = engine.submit(make(s.parallelism, 10, 0.0));
    engine.run();
    EXPECT_TRUE(engine.job_finished(id));
    // Lower bound: at least (total work) / slots.
    EXPECT_GT(engine.jct(id), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, MlScaleSweep,
                         ::testing::Values(MlScale{1, 1}, MlScale{2, 4},
                                           MlScale{8, 4}, MlScale{32, 16},
                                           MlScale{64, 64}));

TEST(SchedConfigKnobs, TaskOverheadLengthensEveryAttempt) {
  SchedConfig with_overhead;
  with_overhead.task_overhead = 0.5;
  Engine engine(with_overhead, 1, 2, 1);
  const JobId id = engine.submit(JobBuilder("j")
                                     .stage(2, fixed_duration(10.0))
                                     .stage(2, fixed_duration(10.0))
                                     .build());
  engine.run();
  // Two phases, each 10 + 0.5.
  EXPECT_DOUBLE_EQ(engine.jct(id), 21.0);
}

TEST(SchedConfigKnobs, ConfigValidation) {
  SchedConfig bad;
  bad.locality_slowdown = 0.5;
  EXPECT_THROW(Engine(bad, 1, 1, 1), CheckError);
  bad = {};
  bad.locality_wait = -1.0;
  EXPECT_THROW(Engine(bad, 1, 1, 1), CheckError);
}

}  // namespace
}  // namespace ssr
