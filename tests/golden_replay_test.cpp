// Golden-replay regression suite: pins the simulator's end-to-end metric
// digests for figure-shaped scenarios to committed reference files.
//
// Each digest captures, in hexfloat (bit-exact) form, the per-job JCT
// vector, per-job busy and reserved-idle slot-seconds, the run totals, and
// an audit-clean marker (under -DSSR_AUDIT=ON builds the run would have
// thrown on any invariant violation before reaching the digest).  Any
// scheduling change that perturbs even one placement decision shifts these
// numbers, so the suite locks the hot-path index rewrite to the behaviour
// of the original full-scan scheduler.
//
// The scenario inputs live in golden_scenarios.h, shared with the
// open-vs-closed equivalence suite (open_system_test), which must reproduce
// these exact digests through the stepping API.
//
// Regenerate after an *intentional* behaviour change with:
//   SSR_UPDATE_GOLDEN=1 ./tests/golden_replay_test
// and review the digest diff like any other code change.
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "golden_scenarios.h"
#include "run_digest.h"
#include "ssr/exp/scenario.h"

namespace ssr {
namespace {

/// Run every pass of a scenario through the closed harness and return the
/// digest plus the per-pass results (for scenario-specific assertions).
std::string closed_digest(GoldenScenario scenario,
                          std::vector<RunResult>* results = nullptr) {
  std::ostringstream digest;
  for (GoldenPass& pass : scenario.passes) {
    RunResult run =
        run_scenario(scenario.cluster, std::move(pass.jobs), pass.options);
    append_run(digest, pass.title, run);
    if (results != nullptr) results->push_back(std::move(run));
  }
  return digest.str();
}

TEST(GoldenReplay, Fig12ShapedIsolation) {
  const GoldenScenario s = fig12_scenario();
  compare_golden(s.file, closed_digest(s));
}

TEST(GoldenReplay, Fig14ShapedTradeoff) {
  const GoldenScenario s = fig14_scenario();
  compare_golden(s.file, closed_digest(s));
}

TEST(GoldenReplay, Fig15ShapedLargeScale) {
  const GoldenScenario s = fig15_scenario();
  compare_golden(s.file, closed_digest(s));
}

// One golden per zoo policy (DESIGN.md §14): each pins the full placement
// behaviour of its selector/hook on the fig12 isolation shape, so a change
// to any policy — or to the selector seam underneath all of them — shows
// up as a reviewed digest diff rather than a silent drift.
TEST(GoldenReplay, PolicyZooScenarios) {
  for (ZooPolicy policy : all_zoo_policies()) {
    const GoldenScenario s = zoo_policy_scenario(policy);
    SCOPED_TRACE(s.name);
    compare_golden(s.file, closed_digest(s));
  }
}

TEST(GoldenReplay, FailureRecoveryShapedScenario) {
  const GoldenScenario s = failure_recovery_scenario();
  std::vector<RunResult> results;
  const std::string digest = closed_digest(s, &results);

  // The scenario must actually drive the recovery machinery it pins.
  ASSERT_EQ(results.size(), 1u);
  const RunResult& run = results.front();
  EXPECT_GT(run.recovery.slots_failed, 0u);
  EXPECT_GT(run.recovery.tasks_failed, 0u);
  EXPECT_GT(run.recovery.tasks_requeued, 0u);
  EXPECT_GT(run.recovery.failures_masked, 0u);
  EXPECT_GT(run.recovery.stages_invalidated, 0u);
  EXPECT_GT(run.recovery.reservations_broken, 0u);
  EXPECT_GT(run.dead_time, 0.0);

  compare_golden(s.file, digest);
}

}  // namespace
}  // namespace ssr
