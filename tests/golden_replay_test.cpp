// Golden-replay regression suite: pins the simulator's end-to-end metric
// digests for figure-shaped scenarios to committed reference files.
//
// Each digest captures, in hexfloat (bit-exact) form, the per-job JCT
// vector, per-job busy and reserved-idle slot-seconds, the run totals, and
// an audit-clean marker (under -DSSR_AUDIT=ON builds the run would have
// thrown on any invariant violation before reaching the digest).  Any
// scheduling change that perturbs even one placement decision shifts these
// numbers, so the suite locks the hot-path index rewrite to the behaviour
// of the original full-scan scheduler.
//
// Regenerate after an *intentional* behaviour change with:
//   SSR_UPDATE_GOLDEN=1 ./tests/golden_replay_test
// and review the digest diff like any other code change.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ssr/exp/scenario.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/sqlbench.h"
#include "ssr/workload/tracegen.h"

namespace ssr {
namespace {

// One run's contribution to a digest.  Hexfloat round-trips doubles exactly,
// so a digest match implies bit-identical metrics, not just close ones.
void append_run(std::ostringstream& out, const std::string& title,
                const RunResult& run) {
  out << std::hexfloat;
  out << "run " << title << " jobs=" << run.jobs.size() << '\n';
  for (const JobResult& j : run.jobs) {
    out << "  job " << j.id << ' ' << j.name << " priority=" << j.priority
        << " jct=" << j.jct << " busy=" << j.busy_seconds
        << " reserved_idle=" << j.reserved_idle_seconds << '\n';
  }
  out << "  makespan " << run.makespan << '\n';
  out << "  busy_time " << run.busy_time << '\n';
  out << "  reserved_idle_time " << run.reserved_idle_time << '\n';
  out << "  tasks started=" << run.task_totals.tasks_started
      << " finished=" << run.task_totals.tasks_finished
      << " killed=" << run.task_totals.tasks_killed
      << " copies=" << run.task_totals.copies_started
      << " local=" << run.task_totals.local_starts << '\n';
  out << "  reservations_expired " << run.reservations_expired << '\n';
  // Failure-free digests (fig12/fig14/fig15) stay byte-identical: the
  // recovery block only appears once a run actually saw an injected fault.
  if (run.recovery.slots_failed > 0 || run.dead_time > 0.0) {
    out << "  recovery slots_failed=" << run.recovery.slots_failed
        << " slots_recovered=" << run.recovery.slots_recovered
        << " tasks_failed=" << run.recovery.tasks_failed
        << " tasks_requeued=" << run.recovery.tasks_requeued
        << " failures_masked=" << run.recovery.failures_masked
        << " stages_invalidated=" << run.recovery.stages_invalidated
        << " reservations_broken=" << run.recovery.reservations_broken
        << '\n';
    out << "  dead_time " << run.dead_time << '\n';
  }
  // The run completed without a CheckError; in -DSSR_AUDIT=ON builds this
  // line also certifies the invariant auditor saw no violation.
  out << "  audit_clean 1\n";
}

void compare_golden(const std::string& file, const std::string& actual) {
  const std::string path = std::string(SSR_GOLDEN_DIR) + "/" + file;
  if (std::getenv("SSR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — regenerate with SSR_UPDATE_GOLDEN=1 ./tests/golden_replay_test";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual)
      << "metric digest diverged from " << path
      << "; if the behaviour change is intentional, regenerate with "
         "SSR_UPDATE_GOLDEN=1 and review the diff";
}

// Fig. 12 shape: 50x2 cluster, trace background, one high-priority KMeans
// foreground; contrasted with and without strict SSR.
TEST(GoldenReplay, Fig12ShapedIsolation) {
  const ClusterSpec cluster{.nodes = 50, .slots_per_node = 2};
  TraceGenConfig bg;
  bg.num_jobs = 12;
  bg.window = 450.0;
  bg.seed = 1001;

  RunOptions base;
  base.seed = 1;
  RunOptions with_ssr = base;
  with_ssr.ssr = SsrConfig{};
  with_ssr.ssr->min_reserving_priority = 1;

  std::vector<JobSpec> jobs = make_background_jobs(bg);
  jobs.push_back(make_kmeans(20, 10, bg.window * 0.25));

  std::ostringstream digest;
  append_run(digest, "fig12/nossr", run_scenario(cluster, jobs, base));
  append_run(digest, "fig12/ssr",
             run_scenario(cluster, std::move(jobs), with_ssr));
  compare_golden("fig12.golden", digest.str());
}

// Fig. 14 shape: the isolation-utilization knob.  P < 1 arms reservation
// deadlines, so this digest also pins the expiry machinery.
TEST(GoldenReplay, Fig14ShapedTradeoff) {
  const ClusterSpec cluster{.nodes = 50, .slots_per_node = 2};
  TraceGenConfig bg;
  bg.num_jobs = 12;
  bg.window = 450.0;
  bg.seed = 2001;

  std::ostringstream digest;
  for (const double p : {1.0, 0.4, 0.05}) {
    RunOptions o;
    o.seed = 1;
    o.ssr = SsrConfig{};
    o.ssr->min_reserving_priority = 1;
    o.ssr->isolation_p = p;
    std::vector<JobSpec> jobs = make_background_jobs(bg);
    jobs.push_back(make_svm(20, 10, bg.window * 0.25));
    std::ostringstream title;
    title << "fig14/P=" << p;
    append_run(digest, title.str(),
               run_scenario(cluster, std::move(jobs), o));
  }
  compare_golden("fig14.golden", digest.str());
}

// Fig. 15 shape (scaled 1/8): 125 nodes x 4 slots, trace background, SQL
// foreground queries — the scenario the hot-path indexes were built for.
TEST(GoldenReplay, Fig15ShapedLargeScale) {
  const ClusterSpec cluster{.nodes = 125, .slots_per_node = 4};
  TraceGenConfig bg;
  bg.num_jobs = 500;
  bg.window = 1800.0;
  bg.seed = 43;

  std::ostringstream digest;
  for (int pass = 0; pass < 2; ++pass) {
    RunOptions o;
    o.sched.locality_wait = 3.0;
    o.sched.locality_slowdown = 5.0;
    o.seed = 1;
    if (pass == 1) {
      o.ssr = SsrConfig{};
      o.ssr->min_reserving_priority = 1;
    }
    std::vector<JobSpec> jobs = make_background_jobs(bg);
    for (std::uint32_t q = 0; q < 10; ++q) {
      SqlJobParams p;
      p.query_index = q;
      p.base_parallelism = 20;
      p.priority = 10;
      p.submit_time = bg.window * 0.2 + 30.0 * q;
      jobs.push_back(make_sql_query(p));
    }
    append_run(digest, pass == 0 ? "fig15/nossr" : "fig15/ssr",
               run_scenario(cluster, std::move(jobs), o));
  }
  compare_golden("fig15.golden", digest.str());
}

// Failure-recovery shape: the fig12 isolation scenario, scaled down, with a
// deterministic node-failure schedule injected mid-run.  The digest pins the
// full kill -> re-queue -> copy-wins ordering: attempts killed by dead slots
// re-enter the queue, straggler copies already running elsewhere win the
// race and mask failures, and invalidated resident outputs force producer
// stages to re-run — all without losing a single task.
TEST(GoldenReplay, FailureRecoveryShapedScenario) {
  const ClusterSpec cluster{.nodes = 10, .slots_per_node = 2};
  TraceGenConfig bg;
  bg.num_jobs = 8;
  bg.window = 300.0;
  bg.seed = 3001;

  RunOptions o;
  o.seed = 1;
  o.ssr = SsrConfig{};
  o.ssr->min_reserving_priority = 1;
  o.ssr->enable_straggler_mitigation = true;
  // Two transient node outages during the foreground job plus one permanent
  // loss, so the digest covers kill/re-queue, recovery, and a node that
  // never comes back (its resident outputs stay lost).
  o.failures.events.push_back(
      FailureEvent{FailureEvent::Scope::Node, 0, 120.0, 160.0});
  o.failures.events.push_back(
      FailureEvent{FailureEvent::Scope::Node, 7, 140.0, 170.0});
  o.failures.events.push_back(
      FailureEvent{FailureEvent::Scope::Node, 5, 110.0, kTimeInfinity});

  std::vector<JobSpec> jobs = make_background_jobs(bg);
  jobs.push_back(make_kmeans(12, 10, bg.window * 0.25));

  const RunResult run = run_scenario(cluster, std::move(jobs), o);
  // The scenario must actually drive the recovery machinery it pins.
  EXPECT_GT(run.recovery.slots_failed, 0u);
  EXPECT_GT(run.recovery.tasks_failed, 0u);
  EXPECT_GT(run.recovery.tasks_requeued, 0u);
  EXPECT_GT(run.recovery.failures_masked, 0u);
  EXPECT_GT(run.recovery.stages_invalidated, 0u);
  EXPECT_GT(run.recovery.reservations_broken, 0u);
  EXPECT_GT(run.dead_time, 0.0);

  std::ostringstream digest;
  append_run(digest, "failure/ssr+mitigation", run);
  compare_golden("failure_recovery.golden", digest.str());
}

}  // namespace
}  // namespace ssr
