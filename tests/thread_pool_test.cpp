// Tests for the fixed-size worker pool that backs the sweep subsystem.
// The sweep's determinism guarantee only needs the pool to (a) run every
// submitted task exactly once, (b) carry results and exceptions back through
// futures, and (c) never drop queued work at shutdown; these tests pin each
// of those properties plus the degenerate pool sizes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ssr/common/check.h"
#include "ssr/common/thread_pool.h"

namespace ssr {
namespace {

TEST(ThreadPool, RunsEveryTaskAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);

  std::vector<std::future<int>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  // sum of squares 0..99
  EXPECT_EQ(sum, 99LL * 100 * 199 / 6);
  EXPECT_EQ(pool.tasks_submitted(), 100u);
}

TEST(ThreadPool, ResultsIndependentOfCompletionOrder) {
  // Early tasks sleep longer than late ones, so completion order is roughly
  // the reverse of submission order — yet each future still yields the value
  // of *its* task.
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(pool.submit([i] {
      std::this_thread::sleep_for(std::chrono::microseconds((12 - i) * 200));
      return i;
    }));
  }
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
  }
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task; subsequent work still runs.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  {
    ThreadPool pool(1);
    // Block the lone worker, then pile up queued tasks behind it.
    pool.submit([open] { open.wait(); });
    for (int i = 0; i < 20; ++i) {
      pool.submit([&ran] { ++ran; });
    }
    EXPECT_LT(ran.load(), 20);
    gate.set_value();
    // Pool destroyed here with (most of) the queue still pending.
  }
  EXPECT_EQ(ran.load(), 20) << "destructor must drain, not discard";
}

TEST(ThreadPool, ZeroWorkersRunsInlineOnCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  auto f = pool.submit([caller] { return std::this_thread::get_id() == caller; });
  // With no workers the task already ran inside submit().
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_TRUE(f.get());
  EXPECT_EQ(pool.tasks_submitted(), 1u);
}

TEST(ThreadPool, SingleWorkerPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&ran] { ++ran; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 500);
  EXPECT_EQ(pool.tasks_submitted(), 500u);
}

}  // namespace
}  // namespace ssr
