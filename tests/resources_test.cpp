// Tests for heterogeneous slot resources (Sec. III-C): fit checks in the
// scheduler and the SSR core's right-size release + pre-reservation.
#include <gtest/gtest.h>

#include <memory>

#include "ssr/common/check.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/sched/engine.h"

namespace ssr {
namespace {

// Cluster layout: node 0 has two small slots {1,1}; node 1 has two big
// slots {2,4}.
std::vector<std::vector<Resources>> mixed_cluster() {
  return {{Resources{1.0, 1.0}, Resources{1.0, 1.0}},
          {Resources{2.0, 4.0}, Resources{2.0, 4.0}}};
}

TEST(Resources, FitsInIsComponentwise) {
  EXPECT_TRUE((Resources{1, 1}.fits_in(Resources{1, 1})));
  EXPECT_TRUE((Resources{1, 2}.fits_in(Resources{2, 4})));
  EXPECT_FALSE((Resources{2, 1}.fits_in(Resources{1, 4})));
  EXPECT_FALSE((Resources{1, 5}.fits_in(Resources{2, 4})));
}

TEST(Resources, BigTasksOnlyRunOnBigSlots) {
  Engine engine(SchedConfig{}, mixed_cluster(), 1);
  const JobId big = engine.submit(JobBuilder("big")
                                      .stage(4, fixed_duration(10.0))
                                      .demand({2.0, 4.0})
                                      .build());
  engine.run();
  // 4 big tasks on the 2 big slots: two rounds -> 20 s.
  EXPECT_DOUBLE_EQ(engine.jct(big), 20.0);
  // The small slots never ran anything.
  engine.cluster().settle(engine.sim().now());
  EXPECT_DOUBLE_EQ(engine.cluster().slot(SlotId{0}).busy_time(), 0.0);
  EXPECT_DOUBLE_EQ(engine.cluster().slot(SlotId{1}).busy_time(), 0.0);
}

TEST(Resources, ImpossibleDemandIsRejectedAtSubmit) {
  Engine engine(SchedConfig{}, mixed_cluster(), 1);
  EXPECT_THROW(engine.submit(JobBuilder("huge")
                                 .stage(1, fixed_duration(1.0))
                                 .demand({8.0, 8.0})
                                 .build()),
               CheckError);
}

TEST(Resources, SsrReleasesUnfitSlotAndPreReservesRightSize) {
  // Phase 1 runs on the small slots; phase 2 demands big slots.  SSR must
  // NOT hold the small slots across the barrier; instead it pre-reserves
  // the big ones (freed by the background job) so phase 2 starts on time.
  SchedConfig sched;
  sched.locality_wait = 1.0;
  Engine engine(sched, mixed_cluster(), 1);
  engine.set_reservation_hook(
      std::make_unique<ReservationManager>(SsrConfig{}));
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .demand({1.0, 1.0})
                                     .stage(2, fixed_duration(6.0))
                                     .demand({2.0, 4.0})
                                     .build());
  // Background holds the big slots until t=8, then hungers for anything.
  const JobId bg = engine.submit(JobBuilder("bg")
                                     .priority(0)
                                     .stage(2, fixed_duration(8.0))
                                     .demand({1.0, 1.0})
                                     .build());
  engine.run();
  // t=5: fg task 0 finishes on a small slot; downstream demand {2,4} does
  // not fit -> the small slot is released (bg has no pending work, so it
  // idles).  t=8: bg's tasks finish on the big slots -> both pre-reserved
  // for fg.  t=10: barrier clears; phase-2 tasks are non-local on the big
  // slots (their parents ran on the small ones) and wait out the 1 s
  // locality wait before accepting: start 11, runtime 6 * 5 = 30 -> 41.
  EXPECT_DOUBLE_EQ(engine.jct(fg), 41.0);
  EXPECT_TRUE(engine.job_finished(bg));
  engine.cluster().settle(engine.sim().now());
  // The small slots were NOT held across the barrier: fg's reserved-idle
  // time is exactly the big slots' pre-reservation window 8..11 (barrier at
  // 10 plus the 1 s locality wait), 2 slots x 3 s.
  EXPECT_DOUBLE_EQ(engine.cluster().reserved_idle_time_of(fg), 6.0);
}

TEST(Resources, WithoutSsrBigPhaseWaitsForBigSlots) {
  // Same scenario, no SSR: bg re-grabs a big slot at t=8 (it has a second
  // wave via a wider stage), delaying fg's phase 2.
  SchedConfig sched;
  sched.locality_wait = 1.0;
  Engine engine(sched, mixed_cluster(), 1);
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .demand({1.0, 1.0})
                                     .stage(2, fixed_duration(6.0))
                                     .demand({2.0, 4.0})
                                     .build());
  engine.submit(JobBuilder("bg")
                    .priority(0)
                    .stage(4, fixed_duration(8.0))
                    .demand({1.0, 1.0})
                    .build());
  engine.run();
  // bg occupies big slots 0..8 and (with its 3rd/4th tasks pending at t=0
  // having taken the small...
  // Layout at t=0: fg takes small slots? fg and bg race: fg submitted
  // first, takes slots 0,1 (small); bg takes 2,3 (big) and queues 2 tasks.
  // t=5: fg frees a small slot -> bg runs there 5..13.  t=8: big slots
  // free -> bg's last task takes one 8..16.  fg's phase 2 (t=10) needs big
  // slots: one is free at 10 (big slot released at 8 idles? no — bg's
  // pending task took it at 8; the other big slot freed at 8 goes idle).
  // Exact numbers depend on offer order; assert only that fg is slower
  // than the SSR run's 41 s.
  EXPECT_GT(engine.jct(fg), 41.0);
}

TEST(Resources, HeterogeneousClusterValidation) {
  using Layout = std::vector<std::vector<Resources>>;
  const Layout empty;
  Layout zero_capacity;
  zero_capacity.push_back({Resources{0.0, 1.0}});
  auto make_empty = [&] { Cluster c{empty}; };
  auto make_zero = [&] { Cluster c{zero_capacity}; };
  EXPECT_THROW(make_empty(), CheckError);
  EXPECT_THROW(make_zero(), CheckError);
}

}  // namespace
}  // namespace ssr
