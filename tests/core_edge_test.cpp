// Edge-case tests for the reservation core: join DAGs, reservation expiry
// accounting, leftover-release on fully-placed, deadline + mitigation
// interplay, and override interactions.
#include <gtest/gtest.h>

#include <memory>

#include "ssr/core/reservation_manager.h"
#include "ssr/metrics/collectors.h"
#include "ssr/sched/engine.h"

namespace ssr {
namespace {

std::unique_ptr<ReservationManager> make_ssr(SsrConfig cfg = {}) {
  return std::make_unique<ReservationManager>(cfg);
}

TEST(CoreEdge, JoinDagReservesAcrossMultiParentBarrier) {
  // Two scan stages feed a join.  The fast scan's slots are reserved while
  // the slow scan still runs; the join then starts with all four slots even
  // though a background job is hungry throughout.
  Engine engine(SchedConfig{}, 1, 4, 1);
  engine.set_reservation_hook(make_ssr());
  JobSpec fg = JobBuilder("join")
                   .priority(10)
                   .stage_with_parents(2, fixed_duration(1.0), {})
                   .stage_with_parents(2, fixed_duration(1.0), {})
                   .stage_with_parents(4, fixed_duration(5.0), {0, 1})
                   .build();
  fg.stages[0].explicit_durations = std::vector<double>{4.0, 4.0};
  fg.stages[1].explicit_durations = std::vector<double>{9.0, 9.0};
  const JobId fg_id = engine.submit(std::move(fg));
  const JobId bg = engine.submit(JobBuilder("bg")
                                     .priority(0)
                                     .submit_at(0.5)
                                     .stage(4, fixed_duration(100.0))
                                     .build());
  engine.run();
  // Scan A done at 4 -> its 2 slots reserved (not given to bg).  Scan B done
  // at 9 -> join starts at 9 with 4 slots -> fg JCT = 14.
  EXPECT_DOUBLE_EQ(engine.jct(fg_id), 14.0);
  // bg only starts at 14: JCT = 14 + 100 - 0.5.
  EXPECT_DOUBLE_EQ(engine.jct(bg), 113.5);
}

TEST(CoreEdge, ExpiryCounterTracksDeadlineReleases) {
  SsrConfig cfg;
  cfg.isolation_p = 0.5;
  auto manager = make_ssr(cfg);
  ReservationManager* mgr = manager.get();
  Engine engine(SchedConfig{}, 1, 2, 1);
  engine.set_reservation_hook(std::move(manager));
  engine.submit(JobBuilder("fg")
                    .priority(10)
                    .stage(2, fixed_duration(1.0))
                    .explicit_durations({5.0, 100.0})
                    .stage(2, fixed_duration(5.0))
                    .build());
  engine.submit(JobBuilder("bg")
                    .priority(0)
                    .submit_at(1.0)
                    .stage(1, fixed_duration(20.0))
                    .build());
  engine.run();
  EXPECT_EQ(mgr->reservations_expired(), 1u);
}

TEST(CoreEdge, LeftoverReservationsReleasedWhenStagePlaced) {
  // Case-1 (unknown parallelism) reserves all 4 slots, but the downstream
  // phase only needs 2: the extra 2 reservations must be released the
  // moment the downstream is fully placed, letting bg in at the barrier.
  Engine engine(SchedConfig{}, 1, 4, 1);
  auto manager = make_ssr();
  ReservationManager* mgr = manager.get();
  engine.set_reservation_hook(std::move(manager));
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .parallelism_known(false)
                                     .stage(4, fixed_duration(1.0))
                                     .explicit_durations({2.0, 2.0, 2.0, 4.0})
                                     .stage(2, fixed_duration(6.0))
                                     .build());
  const JobId bg = engine.submit(JobBuilder("bg")
                                     .priority(0)
                                     .submit_at(0.5)
                                     .stage(2, fixed_duration(10.0))
                                     .build());
  engine.run();
  // Barrier at 4; downstream takes 2 reserved slots (local), leftover 2
  // released at 4 -> bg runs 4..14; fg JCT = 10.
  EXPECT_DOUBLE_EQ(engine.jct(fg), 10.0);
  EXPECT_DOUBLE_EQ(engine.jct(bg), 13.5);
  EXPECT_EQ(mgr->reserved_count(fg), 0u);  // nothing left at the end
}

TEST(CoreEdge, MitigationRespectsDeadlineExpiredSlots) {
  // With a tight deadline (P = 0.3) and heavy stragglers, reservations can
  // expire before the mitigation trigger fires; the run must stay live and
  // copies never run on unreserved slots.
  SsrConfig cfg;
  cfg.isolation_p = 0.3;
  cfg.enable_straggler_mitigation = true;
  Engine engine(SchedConfig{}, 1, 4, 1);
  auto manager = make_ssr(cfg);
  ReservationManager* mgr = manager.get();
  engine.set_reservation_hook(std::move(manager));
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(4, uniform_duration(1.0, 2.0))
                                     .explicit_durations({1.0, 1.0, 50.0, 80.0})
                                     .stage(4, fixed_duration(2.0))
                                     .build());
  engine.submit(JobBuilder("bg")
                    .priority(0)
                    .submit_at(0.5)
                    .stage(8, fixed_duration(30.0))
                    .build());
  engine.run();
  EXPECT_TRUE(engine.job_finished(fg));
  // Either copies launched before expiry or none at all — both are legal;
  // the invariant is liveness plus bounded reservations.
  EXPECT_EQ(mgr->reserved_count(fg), 0u);
}

TEST(CoreEdge, OverrideConsumesPreReservation) {
  // A higher-priority job can take even pre-reserved slots.
  SsrConfig cfg;
  cfg.prereserve_threshold = 0.4;
  Engine engine(SchedConfig{}, 1, 4, 1);
  engine.set_reservation_hook(make_ssr(cfg));
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .stage(4, fixed_duration(5.0))
                                     .build());
  const JobId vip = engine.submit(JobBuilder("vip")
                                      .priority(20)
                                      .submit_at(6.0)
                                      .stage(4, fixed_duration(3.0))
                                      .build());
  engine.run();
  // At t=5 fg reserves its freed slot and pre-reserves the 2 idle slots.
  // vip (prio 20) arrives at 6 and overrides all three reserved slots for
  // its first 3 tasks (6..9); its 4th waits for one of them (9..12):
  // JCT = 12 - 6 = 6.  fg survives and re-arms its pre-reservation demand.
  EXPECT_DOUBLE_EQ(engine.jct(vip), 6.0);
  EXPECT_TRUE(engine.job_finished(fg));
}

TEST(CoreEdge, SameJobParallelStagesShareReservations) {
  // A diamond: one root fans out to two middle stages that join.  The
  // mechanism must not deadlock on reservations between the job's own
  // concurrent stages.
  Engine engine(SchedConfig{}, 1, 4, 1);
  engine.set_reservation_hook(make_ssr());
  JobSpec fg = JobBuilder("diamond")
                   .priority(10)
                   .stage_with_parents(4, fixed_duration(2.0), {})
                   .stage_with_parents(2, fixed_duration(3.0), {0})
                   .stage_with_parents(2, fixed_duration(4.0), {0})
                   .stage_with_parents(4, fixed_duration(1.0), {1, 2})
                   .build();
  const JobId id = engine.submit(std::move(fg));
  engine.run();
  // Root 0..2; middles run in parallel 2..5 and 2..6; join 6..7.
  EXPECT_DOUBLE_EQ(engine.jct(id), 7.0);
}

TEST(CoreEdge, ZeroLengthContentionWindowIsHarmless) {
  // Background arrives exactly at the barrier instant: reservation vs offer
  // ordering must still favor the reserving job's downstream.
  Engine engine(SchedConfig{}, 1, 2, 1);
  engine.set_reservation_hook(make_ssr());
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .stage(2, fixed_duration(5.0))
                                     .build());
  engine.submit(JobBuilder("bg")
                    .priority(0)
                    .submit_at(10.0)  // exactly the barrier
                    .stage(2, fixed_duration(50.0))
                    .build());
  engine.run();
  EXPECT_DOUBLE_EQ(engine.jct(fg), 15.0);
}

}  // namespace
}  // namespace ssr
