// Unit tests for the discrete-event engine and the cluster slot state
// machine, including failure injection on illegal transitions.
#include <gtest/gtest.h>

#include <vector>

#include "ssr/common/check.h"
#include "ssr/sim/cluster.h"
#include "ssr/sim/simulator.h"

namespace ssr {
namespace {

TaskId task_of(std::uint32_t job, std::uint32_t stage, std::uint32_t index,
               std::uint32_t attempt = 0) {
  return TaskId{StageId{JobId{job}, stage}, index, attempt};
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.processed_events(), 3u);
}

TEST(Simulator, SameTimeEventsFireInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedSchedulingFromCallbacks) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_after(2.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), CheckError);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), CheckError);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilFiresBoundaryTiesInBandOrder) {
  // An injected failure and an ordinary (internal) completion tied exactly
  // at the advance horizon: both fire — the boundary is inclusive — with
  // the failure first, whatever the scheduling order; the event an epsilon
  // past the horizon must not be over-stepped.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5.0, EventBand::kInternal, [&] { order.push_back(2); });
  sim.schedule_at(5.0, EventBand::kArrival, [&] { order.push_back(1); });
  sim.schedule_at(5.0, EventBand::kFailure, [&] { order.push_back(0); });
  sim.schedule_at(5.0 + 1e-9, EventBand::kFailure, [&] { order.push_back(9); });
  sim.run_until(5.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 5.0 + 1e-9);
}

TEST(Simulator, StepUntilIsBoundedSingleStep) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(8.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step_until(5.0));  // fires the 2.0 event only
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);  // clock moved to the event, not beyond
  EXPECT_FALSE(sim.step_until(5.0));  // 8.0 is past the horizon: no pop
  EXPECT_EQ(sim.pending_events(), 1u);
  // A callback scheduling *at the horizon* still lands inside run_until.
  sim.schedule_at(5.0, [&] { sim.schedule_at(5.0, [&] { fired += 10; }); });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 11);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Cluster, LayoutAndInitialState) {
  Cluster c(3, 2);
  EXPECT_EQ(c.num_nodes(), 3u);
  EXPECT_EQ(c.num_slots(), 6u);
  EXPECT_EQ(c.idle_slots().size(), 6u);
  EXPECT_TRUE(c.reserved_idle_slots().empty());
  EXPECT_EQ(c.slot(SlotId{0}).node(), (NodeId{0}));
  EXPECT_EQ(c.slot(SlotId{5}).node(), (NodeId{2}));
}

TEST(Cluster, TaskLifecycleRecordsResidentOutput) {
  Cluster c(1, 2);
  const SlotId s{0};
  const TaskId t = task_of(0, 0, 0);
  c.start_task(s, t, 1.0);
  EXPECT_EQ(c.slot(s).state(), SlotState::Busy);
  EXPECT_EQ(c.idle_slots().size(), 1u);
  EXPECT_EQ(*c.slot(s).running_task(), t);
  c.finish_task(s, 4.0);
  EXPECT_EQ(c.slot(s).state(), SlotState::Idle);
  EXPECT_TRUE(c.slot(s).has_output(t.stage));
  EXPECT_DOUBLE_EQ(c.slot(s).busy_time(), 3.0);
}

TEST(Cluster, KillDoesNotRecordOutput) {
  Cluster c(1, 1);
  const SlotId s{0};
  const TaskId t = task_of(0, 0, 0);
  c.start_task(s, t, 0.0);
  c.kill_task(s, 2.0);
  EXPECT_EQ(c.slot(s).state(), SlotState::Idle);
  EXPECT_FALSE(c.slot(s).has_output(t.stage));
  EXPECT_DOUBLE_EQ(c.slot(s).busy_time(), 2.0);
}

TEST(Cluster, ReservationLifecycleAndAccounting) {
  Cluster c(1, 2);
  const SlotId s{0};
  Reservation r;
  r.job = JobId{7};
  r.priority = 3;
  r.deadline = 100.0;
  c.reserve(s, r, 10.0);
  EXPECT_EQ(c.slot(s).state(), SlotState::ReservedIdle);
  EXPECT_EQ(c.reserved_idle_slots().size(), 1u);
  EXPECT_EQ(c.slot(s).reservation()->job, (JobId{7}));
  c.release_reservation(s, 25.0);
  EXPECT_EQ(c.slot(s).state(), SlotState::Idle);
  EXPECT_DOUBLE_EQ(c.slot(s).reserved_idle_time(), 15.0);
  EXPECT_DOUBLE_EQ(c.reserved_idle_time_of(JobId{7}), 15.0);
  EXPECT_DOUBLE_EQ(c.reserved_idle_time_of(JobId{8}), 0.0);
}

TEST(Cluster, ReservationConsumedByTaskStart) {
  Cluster c(1, 1);
  const SlotId s{0};
  Reservation r;
  r.job = JobId{1};
  c.reserve(s, r, 0.0);
  c.start_task(s, task_of(1, 1, 0), 5.0);
  EXPECT_EQ(c.slot(s).state(), SlotState::Busy);
  EXPECT_FALSE(c.slot(s).reservation().has_value());
  EXPECT_DOUBLE_EQ(c.slot(s).reserved_idle_time(), 5.0);
}

TEST(Cluster, ReleaseIfCurrentValidatesToken) {
  Cluster c(1, 1);
  const SlotId s{0};
  Reservation r;
  r.job = JobId{1};
  const std::uint64_t token = c.reserve(s, r, 0.0);
  // Consume, then re-reserve: the old token must be stale.
  c.start_task(s, task_of(1, 1, 0), 1.0);
  c.finish_task(s, 2.0);
  const std::uint64_t token2 = c.reserve(s, r, 2.0);
  EXPECT_FALSE(c.release_if_current(s, token, 3.0));
  EXPECT_EQ(c.slot(s).state(), SlotState::ReservedIdle);
  EXPECT_TRUE(c.release_if_current(s, token2, 3.0));
  EXPECT_EQ(c.slot(s).state(), SlotState::Idle);
}

TEST(Cluster, IllegalTransitionsThrow) {
  Cluster c(1, 2);
  const SlotId s{0};
  EXPECT_THROW(c.finish_task(s, 1.0), CheckError);   // not busy
  EXPECT_THROW(c.kill_task(s, 1.0), CheckError);     // not busy
  EXPECT_THROW(c.release_reservation(s, 1.0), CheckError);  // not reserved
  c.start_task(s, task_of(0, 0, 0), 1.0);
  EXPECT_THROW(c.start_task(s, task_of(0, 0, 1), 2.0), CheckError);
  Reservation r;
  EXPECT_THROW(c.reserve(s, r, 2.0), CheckError);  // busy slots can't reserve
  EXPECT_THROW(c.finish_task(s, 0.5), CheckError);  // time moved backwards
}

TEST(Cluster, ForgetJobOutputs) {
  Cluster c(1, 1);
  const SlotId s{0};
  c.start_task(s, task_of(3, 0, 0), 0.0);
  c.finish_task(s, 1.0);
  c.start_task(s, task_of(4, 0, 0), 1.0);
  c.finish_task(s, 2.0);
  EXPECT_TRUE(c.slot(s).has_output(StageId{JobId{3}, 0}));
  c.forget_job_outputs(JobId{3});
  EXPECT_FALSE(c.slot(s).has_output(StageId{JobId{3}, 0}));
  EXPECT_TRUE(c.slot(s).has_output(StageId{JobId{4}, 0}));
}

TEST(Cluster, ReservedIdleIndexesTrackTransitions) {
  Cluster c(2, 2);
  Reservation r1;
  r1.job = JobId{1};
  r1.priority = 5;
  Reservation r2;
  r2.job = JobId{2};
  r2.priority = 3;
  c.reserve(SlotId{2}, r1, 0.0);
  c.reserve(SlotId{0}, r1, 0.0);
  c.reserve(SlotId{1}, r2, 0.0);

  // Per-job view: id-ordered subsequence of the reserved set.
  EXPECT_EQ(c.reserved_idle_slots_of(JobId{1}),
            (std::set<SlotId>{SlotId{0}, SlotId{2}}));
  EXPECT_EQ(c.reserved_idle_slots_of(JobId{2}), (std::set<SlotId>{SlotId{1}}));
  EXPECT_TRUE(c.reserved_idle_slots_of(JobId{9}).empty());

  // Priority buckets, each id-ordered.
  ASSERT_EQ(c.reserved_idle_by_priority().size(), 2u);
  EXPECT_EQ(c.reserved_idle_by_priority().at(5),
            (std::set<SlotId>{SlotId{0}, SlotId{2}}));
  EXPECT_EQ(c.reserved_idle_by_priority().at(3),
            (std::set<SlotId>{SlotId{1}}));

  // Consuming a reservation by task start and releasing one both unindex;
  // drained buckets disappear entirely.
  c.start_task(SlotId{0}, task_of(1, 0, 0), 1.0);
  c.release_reservation(SlotId{1}, 1.0);
  EXPECT_EQ(c.reserved_idle_slots_of(JobId{1}), (std::set<SlotId>{SlotId{2}}));
  EXPECT_TRUE(c.reserved_idle_slots_of(JobId{2}).empty());
  EXPECT_EQ(c.reserved_idle_by_priority().count(3), 0u);
  EXPECT_EQ(c.reserved_idle_by_priority().at(5), (std::set<SlotId>{SlotId{2}}));
}

TEST(Cluster, FitsAnySlotUsesDistinctCapacities) {
  Cluster homo(2, 2);
  EXPECT_TRUE(homo.fits_any_slot(Resources{1.0, 1.0}));
  EXPECT_FALSE(homo.fits_any_slot(Resources{1.5, 1.0}));

  const Cluster hetero(std::vector<std::vector<Resources>>{
      {{1.0, 1.0}, {1.0, 1.0}}, {{2.0, 4.0}}});
  EXPECT_TRUE(hetero.fits_any_slot(Resources{2.0, 4.0}));
  EXPECT_TRUE(hetero.fits_any_slot(Resources{1.0, 2.0}));
  EXPECT_FALSE(hetero.fits_any_slot(Resources{2.0, 5.0}));
}

TEST(Cluster, ForgetJobOutputsOnlyVisitsOwningSlots) {
  // Two jobs leave outputs on disjoint slots; forgetting one must not
  // disturb the other's residency (exercises the per-job output index).
  Cluster c(2, 2);
  c.start_task(SlotId{0}, task_of(1, 0, 0), 0.0);
  c.start_task(SlotId{1}, task_of(2, 0, 0), 0.0);
  c.finish_task(SlotId{0}, 1.0);
  c.finish_task(SlotId{1}, 1.0);
  c.forget_job_outputs(JobId{1});
  c.forget_job_outputs(JobId{1});  // idempotent: index entry already gone
  EXPECT_FALSE(c.slot(SlotId{0}).has_output(StageId{JobId{1}, 0}));
  EXPECT_TRUE(c.slot(SlotId{1}).has_output(StageId{JobId{2}, 0}));
}

TEST(Cluster, UtilizationAggregatesAcrossSlots) {
  Cluster c(1, 2);
  c.start_task(SlotId{0}, task_of(0, 0, 0), 0.0);
  c.start_task(SlotId{1}, task_of(0, 0, 1), 0.0);
  c.finish_task(SlotId{0}, 5.0);
  c.finish_task(SlotId{1}, 10.0);
  c.settle(10.0);
  EXPECT_DOUBLE_EQ(c.total_busy_time(), 15.0);
  EXPECT_DOUBLE_EQ(c.utilization(10.0), 0.75);
}

}  // namespace
}  // namespace ssr
