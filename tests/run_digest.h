// Shared metric-digest helpers for the golden-replay and open-system
// equivalence suites.
//
// A digest captures, in hexfloat (bit-exact) form, the per-job JCT vector,
// per-job busy and reserved-idle slot-seconds, and the run totals; a digest
// match therefore implies bit-identical metrics, not just close ones.  Both
// suites must format runs identically — the equivalence suite asserts that
// an open-system (submit/advance_to/drain) replay of a golden scenario
// reproduces the *committed* golden digest byte for byte — so the formatter
// lives here, in one place.
//
// Consumers must be compiled with SSR_GOLDEN_DIR pointing at tests/golden/.
#pragma once

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ssr/exp/run_digest.h"
#include "ssr/exp/scenario.h"

namespace ssr {

// One run's contribution to a digest.  Hexfloat round-trips doubles exactly,
// so a digest match implies bit-identical metrics, not just close ones.
// (The formatter itself lives in exp/run_digest.h so the non-gtest
// replay-verify tool shares it; this wrapper keeps the historical test-side
// name.)
inline void append_run(std::ostringstream& out, const std::string& title,
                       const RunResult& run) {
  append_run_digest(out, title, run);
}

/// Contents of a committed golden file; nullopt when it does not exist.
inline std::optional<std::string> read_golden(const std::string& file) {
  const std::string path = std::string(SSR_GOLDEN_DIR) + "/" + file;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Compare `actual` against the committed golden file; with
/// SSR_UPDATE_GOLDEN=1 in the environment, rewrite the file instead (and
/// skip).  Only the golden-replay suite regenerates; read-only consumers
/// (the equivalence suite) use read_golden().
inline void compare_golden(const std::string& file, const std::string& actual) {
  const std::string path = std::string(SSR_GOLDEN_DIR) + "/" + file;
  if (std::getenv("SSR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::optional<std::string> expected = read_golden(file);
  ASSERT_TRUE(expected.has_value())
      << "missing golden file " << path
      << " — regenerate with SSR_UPDATE_GOLDEN=1 ./tests/golden_replay_test";
  EXPECT_EQ(*expected, actual)
      << "metric digest diverged from " << path
      << "; if the behaviour change is intentional, regenerate with "
         "SSR_UPDATE_GOLDEN=1 and review the diff";
}

}  // namespace ssr
