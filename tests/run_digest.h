// Shared metric-digest helpers for the golden-replay and open-system
// equivalence suites.
//
// A digest captures, in hexfloat (bit-exact) form, the per-job JCT vector,
// per-job busy and reserved-idle slot-seconds, and the run totals; a digest
// match therefore implies bit-identical metrics, not just close ones.  Both
// suites must format runs identically — the equivalence suite asserts that
// an open-system (submit/advance_to/drain) replay of a golden scenario
// reproduces the *committed* golden digest byte for byte — so the formatter
// lives here, in one place.
//
// Consumers must be compiled with SSR_GOLDEN_DIR pointing at tests/golden/.
#pragma once

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ssr/exp/scenario.h"

namespace ssr {

// One run's contribution to a digest.  Hexfloat round-trips doubles exactly,
// so a digest match implies bit-identical metrics, not just close ones.
inline void append_run(std::ostringstream& out, const std::string& title,
                       const RunResult& run) {
  out << std::hexfloat;
  out << "run " << title << " jobs=" << run.jobs.size() << '\n';
  for (const JobResult& j : run.jobs) {
    out << "  job " << j.id << ' ' << j.name << " priority=" << j.priority
        << " jct=" << j.jct << " busy=" << j.busy_seconds
        << " reserved_idle=" << j.reserved_idle_seconds << '\n';
  }
  out << "  makespan " << run.makespan << '\n';
  out << "  busy_time " << run.busy_time << '\n';
  out << "  reserved_idle_time " << run.reserved_idle_time << '\n';
  out << "  tasks started=" << run.task_totals.tasks_started
      << " finished=" << run.task_totals.tasks_finished
      << " killed=" << run.task_totals.tasks_killed
      << " copies=" << run.task_totals.copies_started
      << " local=" << run.task_totals.local_starts << '\n';
  out << "  reservations_expired " << run.reservations_expired << '\n';
  // Failure-free digests (fig12/fig14/fig15) stay byte-identical: the
  // recovery block only appears once a run actually saw an injected fault.
  if (run.recovery.slots_failed > 0 || run.dead_time > 0.0) {
    out << "  recovery slots_failed=" << run.recovery.slots_failed
        << " slots_recovered=" << run.recovery.slots_recovered
        << " tasks_failed=" << run.recovery.tasks_failed
        << " tasks_requeued=" << run.recovery.tasks_requeued
        << " failures_masked=" << run.recovery.failures_masked
        << " stages_invalidated=" << run.recovery.stages_invalidated
        << " reservations_broken=" << run.recovery.reservations_broken
        << '\n';
    out << "  dead_time " << run.dead_time << '\n';
  }
  // The run completed without a CheckError; in -DSSR_AUDIT=ON builds this
  // line also certifies the invariant auditor saw no violation.
  out << "  audit_clean 1\n";
}

/// Contents of a committed golden file; nullopt when it does not exist.
inline std::optional<std::string> read_golden(const std::string& file) {
  const std::string path = std::string(SSR_GOLDEN_DIR) + "/" + file;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Compare `actual` against the committed golden file; with
/// SSR_UPDATE_GOLDEN=1 in the environment, rewrite the file instead (and
/// skip).  Only the golden-replay suite regenerates; read-only consumers
/// (the equivalence suite) use read_golden().
inline void compare_golden(const std::string& file, const std::string& actual) {
  const std::string path = std::string(SSR_GOLDEN_DIR) + "/" + file;
  if (std::getenv("SSR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::optional<std::string> expected = read_golden(file);
  ASSERT_TRUE(expected.has_value())
      << "missing golden file " << path
      << " — regenerate with SSR_UPDATE_GOLDEN=1 ./tests/golden_replay_test";
  EXPECT_EQ(*expected, actual)
      << "metric digest diverged from " << path
      << "; if the behaviour change is intentional, regenerate with "
         "SSR_UPDATE_GOLDEN=1 and review the diff";
}

}  // namespace ssr
