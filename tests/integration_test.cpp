// Integration tests: full scenarios through the exp harness, exercising the
// whole stack (workload synthesis -> scheduler -> SSR core -> metrics) and
// the paper's end-to-end claims at a small scale.
#include <gtest/gtest.h>

#include "ssr/exp/scenario.h"
#include "ssr/workload/adjust.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/sqlbench.h"
#include "ssr/workload/tracegen.h"

namespace ssr {
namespace {

RunOptions baseline_options(std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  return o;
}

RunOptions ssr_options(std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  o.ssr = SsrConfig{};
  return o;
}

std::vector<JobSpec> contention_mix(double bg_multiplier = 1.0) {
  TraceGenConfig cfg;
  cfg.num_jobs = 30;
  cfg.window = 600.0;
  cfg.runtime_multiplier = bg_multiplier;
  cfg.seed = 99;
  auto jobs = make_background_jobs(cfg);
  jobs.push_back(make_kmeans(20, /*priority=*/10, /*submit=*/60.0));
  return jobs;
}

TEST(Integration, SsrShrinksForegroundSlowdownUnderContention) {
  const ClusterSpec cluster{.nodes = 10, .slots_per_node = 2};
  const double alone =
      alone_jct(cluster, make_kmeans(20, 10, 0.0), baseline_options());

  const RunResult base =
      run_scenario(cluster, contention_mix(), baseline_options());
  const RunResult ssr = run_scenario(cluster, contention_mix(), ssr_options());

  const double slow_base = slowdown(base.jct_of("kmeans"), alone);
  const double slow_ssr = slowdown(ssr.jct_of("kmeans"), alone);
  // The paper's headline: priority alone does not isolate; SSR nearly does.
  EXPECT_GT(slow_base, 1.2);
  EXPECT_LT(slow_ssr, slow_base);
  EXPECT_LT(slow_ssr, 1.2);
}

TEST(Integration, SsrCostsReservedIdleTimeBaselineDoesNot) {
  const ClusterSpec cluster{.nodes = 10, .slots_per_node = 2};
  const RunResult base =
      run_scenario(cluster, contention_mix(), baseline_options());
  const RunResult ssr = run_scenario(cluster, contention_mix(), ssr_options());
  EXPECT_DOUBLE_EQ(base.reserved_idle_time, 0.0);
  EXPECT_GT(ssr.reserved_idle_time, 0.0);
}

TEST(Integration, WeakerIsolationReducesReservedIdleTime) {
  const ClusterSpec cluster{.nodes = 10, .slots_per_node = 2};
  RunOptions strict = ssr_options();
  RunOptions weak = ssr_options();
  weak.ssr->isolation_p = 0.3;
  const RunResult r_strict =
      run_scenario(cluster, contention_mix(), strict);
  const RunResult r_weak = run_scenario(cluster, contention_mix(), weak);
  EXPECT_LT(r_weak.reserved_idle_time, r_strict.reserved_idle_time);
}

TEST(Integration, SqlQueriesRunUnderAllPolicies) {
  const ClusterSpec cluster{.nodes = 8, .slots_per_node = 2};
  std::vector<JobSpec> jobs;
  for (std::uint32_t q = 0; q < 20; ++q) {
    SqlJobParams p;
    p.query_index = q;
    p.base_parallelism = 8;
    p.priority = 10;
    p.submit_time = 40.0 * q;
    jobs.push_back(make_sql_query(p));
  }
  for (const bool with_ssr : {false, true}) {
    RunOptions o = with_ssr ? ssr_options() : baseline_options();
    const RunResult r = run_scenario(cluster, jobs, o);
    EXPECT_EQ(r.jobs.size(), 20u);
    for (const auto& j : r.jobs) EXPECT_GT(j.jct, 0.0);
  }
}

TEST(Integration, BackgroundBarelySlowedBySsr) {
  // Sec. VI-B: reservations for the foreground cost background jobs < 0.1%
  // on average in the paper's large cluster; at this small scale we allow a
  // looser (but still tight) bound.
  const ClusterSpec cluster{.nodes = 10, .slots_per_node = 2};
  const RunResult base =
      run_scenario(cluster, contention_mix(), baseline_options());
  const RunResult ssr = run_scenario(cluster, contention_mix(), ssr_options());
  const double bg_base = base.mean_jct_with_prefix("bg-");
  const double bg_ssr = ssr.mean_jct_with_prefix("bg-");
  EXPECT_LT(bg_ssr, bg_base * 1.25);
}

TEST(Integration, DeterministicAcrossRuns) {
  const ClusterSpec cluster{.nodes = 6, .slots_per_node = 2};
  const RunResult a = run_scenario(cluster, contention_mix(), ssr_options(7));
  const RunResult b = run_scenario(cluster, contention_mix(), ssr_options(7));
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].jct, b.jobs[i].jct);
  }
  EXPECT_DOUBLE_EQ(a.busy_time, b.busy_time);
  EXPECT_DOUBLE_EQ(a.reserved_idle_time, b.reserved_idle_time);
}

TEST(Integration, StragglerMitigationHelpsHeavyTails) {
  // Pareto-adjusted foreground (alpha = 1.6), no contention: mitigation
  // must cut the JCT substantially (Fig. 17 reports ~73% on average).
  const ClusterSpec cluster{.nodes = 13, .slots_per_node = 2};
  Rng rng(21);
  JobSpec heavy = pareto_adjust(make_kmeans(25, 10, 0.0), 1.6, rng);

  RunOptions off = ssr_options(3);
  RunOptions on = ssr_options(3);
  on.ssr->enable_straggler_mitigation = true;

  const double jct_off = alone_jct(cluster, heavy, off);
  const double jct_on = alone_jct(cluster, heavy, on);
  EXPECT_LT(jct_on, jct_off * 0.7);
}

TEST(Integration, BenchArgsParse) {
  const char* argv[] = {"bin", "--scale", "4", "--seed", "77"};
  const BenchArgs args = BenchArgs::parse(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.scale, 4.0);
  EXPECT_EQ(args.seed, 77u);
  EXPECT_EQ(args.scaled(1000), 250u);
  EXPECT_EQ(args.scaled(2), 1u);
}

}  // namespace
}  // namespace ssr
