// Tests for the speculative-slot-reservation core: Algorithm 1 (all three
// parallelism cases), the ApprovalLogic, the reservation deadline knob
// (Sec. IV-B) and straggler mitigation (Sec. IV-C).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ssr/audit/invariant_auditor.h"
#include "ssr/common/check.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/metrics/collectors.h"
#include "ssr/sched/engine.h"

namespace ssr {
namespace {

SchedConfig quick_sched() {
  SchedConfig c;
  c.locality_wait = 3.0;
  c.locality_slowdown = 5.0;
  return c;
}

std::unique_ptr<ReservationManager> make_ssr(SsrConfig cfg = {}) {
  return std::make_unique<ReservationManager>(cfg);
}

/// The Sec. II pathology scenario: 2 slots; fg job with a skewed phase 1
/// ([5, 10]) and a phase 2; bg job with long tasks arriving at t=1.
struct Pathology {
  static constexpr double kBgTask = 100.0;

  explicit Pathology(std::optional<SsrConfig> ssr) : engine(quick_sched(), 1, 2, 1) {
    if (ssr) engine.set_reservation_hook(make_ssr(*ssr));
    fg = engine.submit(JobBuilder("fg")
                           .priority(10)
                           .stage(2, fixed_duration(1.0))
                           .explicit_durations({5.0, 10.0})
                           .stage(2, fixed_duration(5.0))
                           .build());
    bg = engine.submit(JobBuilder("bg")
                           .priority(0)
                           .submit_at(1.0)
                           .stage(2, fixed_duration(kBgTask))
                           .build());
  }
  Engine engine;
  JobId fg, bg;
};

TEST(ReservationManager, EnforcesIsolationInThePathologyScenario) {
  // Without SSR (tested in sched_engine_test) fg's JCT is 20.  With SSR the
  // slot freed at t=5 is reserved: phase 2 starts with both slots at t=10
  // and finishes at 15 — identical to running alone.
  Pathology p{SsrConfig{}};
  p.engine.run();
  EXPECT_DOUBLE_EQ(p.engine.jct(p.fg), 15.0);
  // bg starts only after fg is done at 15: both tasks run 15..115.
  EXPECT_DOUBLE_EQ(p.engine.jct(p.bg), 114.0);
}

TEST(ReservationManager, ReservedSlotCountsAsUtilizationLoss) {
  Pathology p{SsrConfig{}};
  p.engine.run();
  p.engine.cluster().settle(p.engine.sim().now());
  // Slot reserved from t=5 to t=10 for fg: exactly 5 slot-seconds idle.
  EXPECT_DOUBLE_EQ(p.engine.cluster().total_reserved_idle_time(), 5.0);
  EXPECT_DOUBLE_EQ(p.engine.cluster().reserved_idle_time_of(p.fg), 5.0);
}

TEST(ReservationManager, FinalPhaseSlotsAreReleasedNotReserved) {
  // A single-phase job must never reserve (Algorithm 1 line 2-3): bg starts
  // on the freed slot immediately.
  Engine engine(quick_sched(), 1, 2, 1);
  engine.set_reservation_hook(make_ssr());
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .build());
  const JobId bg = engine.submit(JobBuilder("bg")
                                     .priority(0)
                                     .submit_at(1.0)
                                     .stage(1, fixed_duration(10.0))
                                     .build());
  engine.run();
  EXPECT_DOUBLE_EQ(engine.jct(fg), 10.0);
  // bg runs 5..15 on the freed slot: jct = 15 - 1.
  EXPECT_DOUBLE_EQ(engine.jct(bg), 14.0);
}

TEST(ReservationManager, DecreasingParallelismReleasesFirstFinishers) {
  // Phase 1 has 4 tasks, phase 2 has 2 (m > n): the first 2 freed slots go
  // to bg immediately; the last 2 are reserved.
  Engine engine(quick_sched(), 1, 4, 1);
  engine.set_reservation_hook(make_ssr());
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(4, fixed_duration(1.0))
                                     .explicit_durations({2.0, 4.0, 6.0, 8.0})
                                     .stage(2, fixed_duration(5.0))
                                     .build());
  const JobId bg = engine.submit(JobBuilder("bg")
                                     .priority(0)
                                     .submit_at(0.5)
                                     .stage(4, fixed_duration(50.0))
                                     .build());
  engine.run();
  // Slots freed at 2 and 4 go to bg (busy 2..52, 4..54).  Slots freed at 6
  // and 8 are reserved; phase 2 starts at 8 on both: fg JCT = 13.
  EXPECT_DOUBLE_EQ(engine.jct(fg), 13.0);
  // bg's last two tasks start at 13 (fg done) -> 63; jct = 63 - 0.5.
  EXPECT_DOUBLE_EQ(engine.jct(bg), 62.5);
}

TEST(ReservationManager, Case1UnknownParallelismReservesEverySlot) {
  // Same shape as the m>n test but with parallelism hidden (Case-1): all 4
  // slots are reserved, so bg cannot start until fg finishes entirely.
  Engine engine(quick_sched(), 1, 4, 1);
  engine.set_reservation_hook(make_ssr());
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .parallelism_known(false)
                                     .stage(4, fixed_duration(1.0))
                                     .explicit_durations({2.0, 4.0, 6.0, 8.0})
                                     .stage(2, fixed_duration(5.0))
                                     .build());
  const JobId bg = engine.submit(JobBuilder("bg")
                                     .priority(0)
                                     .submit_at(0.5)
                                     .stage(4, fixed_duration(50.0))
                                     .build());
  engine.run();
  EXPECT_DOUBLE_EQ(engine.jct(fg), 13.0);
  // bg's first tasks start at 8 when phase 2 consumes only 2 of 4 reserved
  // slots and the leftover reservations are released on fully-placed.
  EXPECT_DOUBLE_EQ(engine.jct(bg), 62.5);
}

TEST(ReservationManager, IncreasingParallelismPreReserves) {
  // Phase 1 has 2 tasks, phase 2 has 4 (m < n).  With R = 0.4, after the
  // first task finishes (fraction 0.5 > R) the manager pre-reserves 2 extra
  // slots, so phase 2 launches all 4 tasks at the barrier.
  SsrConfig cfg;
  cfg.prereserve_threshold = 0.4;
  Engine engine(quick_sched(), 1, 4, 1);
  engine.set_reservation_hook(make_ssr(cfg));
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .stage(4, fixed_duration(5.0))
                                     .build());
  const JobId bg = engine.submit(JobBuilder("bg")
                                     .priority(0)
                                     .submit_at(1.0)
                                     .stage(4, fixed_duration(100.0))
                                     .build());
  engine.run();
  // t=1: bg takes the 2 idle slots (busy to 101).  t=5: fg task 0 finishes,
  // slot reserved; fraction 0.5 > R but no idle slots exist to pre-reserve.
  // t=10: barrier clears with 2 slots; tasks 2,3 run at 101 only... unless
  // pre-reservation grabbed slots.  With none available the test still
  // verifies phase 2 uses both reserved slots serially: 10+5, 15+5 -> 20.
  // (Non-local placement never happens: bg holds the other slots past 20.)
  EXPECT_DOUBLE_EQ(engine.jct(fg), 20.0);
  EXPECT_TRUE(engine.job_finished(bg));
}

TEST(ReservationManager, PreReservationGrabsSlotsFreedByOtherJobs) {
  // Like above, but bg's tasks are short, so bg slots free *during* fg's
  // phase 1 after the threshold is crossed: pre-reservation grabs them and
  // phase 2 starts 4-wide at the barrier.
  SsrConfig cfg;
  cfg.prereserve_threshold = 0.4;
  Engine engine(quick_sched(), 1, 4, 1);
  engine.set_reservation_hook(make_ssr(cfg));
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .stage(4, fixed_duration(5.0))
                                     .build());
  engine.submit(JobBuilder("bg")
                    .priority(0)
                    .submit_at(1.0)
                    .stage(2, fixed_duration(6.0))
                    .build());
  engine.run();
  // bg runs 1..7 on the two idle slots.  t=5: fg reserves its slot,
  // threshold crossed (0.5 > 0.4), nothing idle yet.  t=7: bg's slots free
  // -> pre-reserved for fg's phase 2.  t=10: tasks 0,1 start local on the
  // warm reserved slots; tasks 2,3 honor the 3 s locality wait before
  // exercising the guaranteed pre-reserved (remote) slots at t=13, running
  // 5 * 5 = 25 s: JCT = 13 + 25 = 38.
  EXPECT_DOUBLE_EQ(engine.jct(fg), 38.0);
}

TEST(ReservationManager, HigherPriorityOverridesReservation) {
  // fg (prio 10) reserves at t=5; vip (prio 20) arrives at t=6 and takes the
  // reserved slot despite the reservation.
  Engine engine(quick_sched(), 1, 2, 1);
  engine.set_reservation_hook(make_ssr());
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .stage(2, fixed_duration(5.0))
                                     .build());
  const JobId vip = engine.submit(JobBuilder("vip")
                                      .priority(20)
                                      .submit_at(6.0)
                                      .stage(1, fixed_duration(2.0))
                                      .build());
  engine.run();
  // vip runs 6..8 on the reserved slot and fg re-reserves it... the slot is
  // idle at 8 with no reservation; fg's phase 2 still starts at 10 finding
  // the slot free: JCT 15 (vip's incursion fits inside the barrier gap).
  EXPECT_DOUBLE_EQ(engine.jct(vip), 2.0);
  EXPECT_DOUBLE_EQ(engine.jct(fg), 15.0);
}

TEST(ReservationManager, DeadlineExpiryReleasesSlots) {
  // P < 1 imposes a finite deadline.  Phase 1 durations [5, 100] with
  // alpha = 1.6, N = 2, P = 0.5:
  //   D = t_m * (1 - P^{1/2})^{-1/1.6} = 5 * (1 - 0.7071)^{-0.625} ~ 10.77
  // so the reservation made at t=5 expires at ~10.77 and bg grabs the slot
  // long before the straggler finishes at 100.
  SsrConfig cfg;
  cfg.isolation_p = 0.5;
  cfg.pareto_alpha = 1.6;
  Engine engine(quick_sched(), 1, 2, 1);
  engine.set_reservation_hook(make_ssr(cfg));
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 100.0})
                                     .stage(2, fixed_duration(5.0))
                                     .build());
  const JobId bg = engine.submit(JobBuilder("bg")
                                     .priority(0)
                                     .submit_at(1.0)
                                     .stage(1, fixed_duration(20.0))
                                     .build());
  engine.run();
  const double expected_deadline =
      5.0 * std::pow(1.0 - std::pow(0.5, 0.5), -1.0 / 1.6);
  // bg starts exactly at the deadline and runs 20 s.
  EXPECT_NEAR(engine.jct(bg), expected_deadline + 20.0 - 1.0, 1e-9);
  EXPECT_TRUE(engine.job_finished(fg));
}

TEST(ReservationManager, StrictIsolationNeverExpires) {
  // P = 1: same scenario, but the reservation holds for the full 100 s
  // straggler; bg only runs after fg's phase 2 releases the cluster.
  Engine engine(quick_sched(), 1, 2, 1);
  engine.set_reservation_hook(make_ssr());
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 100.0})
                                     .stage(2, fixed_duration(5.0))
                                     .build());
  const JobId bg = engine.submit(JobBuilder("bg")
                                     .priority(0)
                                     .submit_at(1.0)
                                     .stage(1, fixed_duration(20.0))
                                     .build());
  engine.run();
  EXPECT_DOUBLE_EQ(engine.jct(fg), 105.0);
  EXPECT_DOUBLE_EQ(engine.jct(bg), 105.0 + 20.0 - 1.0);
}

TEST(ReservationManager, StragglerMitigationUsesReservedSlots) {
  // Phase of 4 tasks [1, 1, 60, 60]; copies resample from uniform(1, 2).
  // After the two short tasks finish at t=1, 2 reserved slots = 2 ongoing
  // tasks: copies launch immediately and win in ~2 s instead of 60.
  SsrConfig cfg;
  cfg.enable_straggler_mitigation = true;
  auto manager = make_ssr(cfg);
  ReservationManager* mgr = manager.get();
  Engine engine(quick_sched(), 1, 4, 1);
  engine.set_reservation_hook(std::move(manager));
  TaskStatsCollector stats;
  engine.add_observer(&stats);
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(4, uniform_duration(1.0, 2.0))
                                     .explicit_durations({1.0, 1.0, 60.0, 60.0})
                                     .stage(4, fixed_duration(2.0))
                                     .build());
  engine.run();
  EXPECT_EQ(mgr->copies_launched(), 2u);
  EXPECT_EQ(stats.stats(fg).copies_started, 2u);
  EXPECT_EQ(stats.stats(fg).copies_won, 2u);
  EXPECT_EQ(stats.stats(fg).tasks_killed, 2u);
  // Phase 1 ends by t = 1 + 2 = 3 at the latest (vs 60 unmitigated).  The
  // winning copies deposit their outputs on the two reserved slots, so two
  // of phase 2's four tasks run remote (2 * 5 = 10 s): JCT <= 3 + 10 = 13,
  // a ~5x improvement over the unmitigated 62.
  EXPECT_LE(engine.jct(fg), 13.0);
}

TEST(ReservationManager, MitigationDisabledKeepsSlotsIdle) {
  SsrConfig cfg;  // mitigation off by default
  auto manager = make_ssr(cfg);
  ReservationManager* mgr = manager.get();
  Engine engine(quick_sched(), 1, 4, 1);
  engine.set_reservation_hook(std::move(manager));
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(4, uniform_duration(1.0, 2.0))
                                     .explicit_durations({1.0, 1.0, 60.0, 60.0})
                                     .stage(4, fixed_duration(2.0))
                                     .build());
  engine.run();
  EXPECT_EQ(mgr->copies_launched(), 0u);
  EXPECT_DOUBLE_EQ(engine.jct(fg), 62.0);
}

TEST(ReservationManager, CopyLosesWhenOriginalFinishesFirst) {
  // Original straggler needs 3 s; copies drawn from uniform(50, 51) lose.
  SsrConfig cfg;
  cfg.enable_straggler_mitigation = true;
  Engine engine(quick_sched(), 1, 2, 1);
  auto manager = make_ssr(cfg);
  ReservationManager* mgr = manager.get();
  engine.set_reservation_hook(std::move(manager));
  TaskStatsCollector stats;
  engine.add_observer(&stats);
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, uniform_duration(50.0, 51.0))
                                     .explicit_durations({1.0, 3.0})
                                     .stage(2, fixed_duration(1.0))
                                     .build());
  engine.run();
  EXPECT_EQ(mgr->copies_launched(), 1u);
  EXPECT_EQ(stats.stats(fg).copies_won, 0u);
  EXPECT_EQ(stats.stats(fg).tasks_killed, 1u);  // the copy was killed
  // Phase 1 still ends at t=3 (original wins): JCT = 4.
  EXPECT_DOUBLE_EQ(engine.jct(fg), 4.0);
}

TEST(ReservationManager, MinPriorityRestrictsWhoReserves) {
  SsrConfig cfg;
  cfg.min_reserving_priority = 5;
  Engine engine(quick_sched(), 1, 2, 1);
  engine.set_reservation_hook(make_ssr(cfg));
  // fg has priority 0 < 5: it must NOT reserve; the baseline pathology
  // behavior (JCT 20) reappears.
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(0)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .stage(2, fixed_duration(5.0))
                                     .build());
  engine.submit(JobBuilder("bg")
                    .priority(0)
                    .submit_at(1.0)
                    .stage(2, fixed_duration(100.0))
                    .build());
  engine.run();
  EXPECT_DOUBLE_EQ(engine.jct(fg), 20.0);
}

TEST(ReservationManager, FairSchedulerKeepsShareThroughBarrier) {
  // The Fig. 13 scenario: fair policy, job-1 with 3 pipelined phases vs a
  // map-only job-2.  With SSR job-1 retains its share through barriers.
  SchedConfig sched = quick_sched();
  sched.policy = SchedulingPolicy::Fair;
  Engine engine(sched, 1, 4, 1);
  engine.set_reservation_hook(make_ssr());
  const JobId wf = engine.submit(JobBuilder("workflow")
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({4.0, 8.0})
                                     .stage(2, fixed_duration(8.0))
                                     .stage(2, fixed_duration(8.0))
                                     .build());
  const JobId mo = engine.submit(
      JobBuilder("maponly").stage(20, fixed_duration(8.0)).build());
  engine.run();
  // Workflow alone on its 2-slot share: 8 + 8 + 8 = 24.
  EXPECT_DOUBLE_EQ(engine.jct(wf), 24.0);
  EXPECT_TRUE(engine.job_finished(mo));
}

// --- Reservation release on slot death ---------------------------------------
//
// A failed slot must drop its reservation with ReservationEndReason::
// SlotFailed (never Expired), the manager must forget the record without
// counting an expiry, and the run must still complete.  One test per
// Algorithm 1 parallelism case, each audited end to end.

struct ReleaseReasonLog final : EngineObserver {
  std::vector<std::pair<SlotId, ReservationEndReason>> released;

  void on_reservation_released(const Engine&, SlotId slot,
                               ReservationEndReason reason) override {
    released.emplace_back(slot, reason);
  }
  std::size_t count(ReservationEndReason reason) const {
    std::size_t n = 0;
    for (const auto& [slot, r] : released) {
      if (r == reason) ++n;
    }
    return n;
  }
};

TEST(ReservationManager, DecreasingParallelismReservationDiesWithSlot) {
  // Case m > n: the slot reserved at the t=5 finish dies at t=6.  The
  // reservation breaks, phase 2 falls back to the surviving slot, and the
  // invalidated phase-1 output forces its producer task to re-run.
  Pathology p{SsrConfig{}};
  ReleaseReasonLog releases;
  p.engine.add_observer(&releases);
  RecoveryStatsCollector recovery;
  p.engine.add_observer(&recovery);
  audit::InvariantAuditor auditor;
  auditor.attach(p.engine);
  p.engine.sim().schedule_at(6.0, [&] {
    ASSERT_EQ(p.engine.cluster().reserved_idle_slots().size(), 1u);
    p.engine.fail_slot(*p.engine.cluster().reserved_idle_slots().begin());
  });
  p.engine.run();
  EXPECT_TRUE(p.engine.job_finished(p.fg));
  EXPECT_TRUE(p.engine.job_finished(p.bg));
  EXPECT_EQ(releases.count(ReservationEndReason::SlotFailed), 1u);
  EXPECT_EQ(recovery.stats().reservations_broken, 1u);
  EXPECT_EQ(recovery.stats().slots_failed, 1u);
  // A broken reservation is not a deadline expiry.
  EXPECT_EQ(releases.count(ReservationEndReason::Expired), 0u);
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(ReservationManager, Case1UnknownParallelismReservationDiesWithSlot) {
  // Case-1 (parallelism hidden): every freed slot is reserved; one of the
  // two reservations held at t=5 dies.
  Engine engine(quick_sched(), 1, 4, 1);
  engine.set_reservation_hook(make_ssr());
  ReleaseReasonLog releases;
  engine.add_observer(&releases);
  RecoveryStatsCollector recovery;
  engine.add_observer(&recovery);
  audit::InvariantAuditor auditor;
  auditor.attach(engine);
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .parallelism_known(false)
                                     .stage(4, fixed_duration(1.0))
                                     .explicit_durations({2.0, 4.0, 6.0, 8.0})
                                     .stage(2, fixed_duration(5.0))
                                     .build());
  engine.sim().schedule_at(5.0, [&] {
    ASSERT_EQ(engine.cluster().reserved_idle_slots().size(), 2u);
    engine.fail_slot(*engine.cluster().reserved_idle_slots().begin());
  });
  engine.run();
  EXPECT_TRUE(engine.job_finished(fg));
  EXPECT_EQ(releases.count(ReservationEndReason::SlotFailed), 1u);
  EXPECT_EQ(recovery.stats().reservations_broken, 1u);
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(ReservationManager, PreReservedSlotDiesBeforeTheBarrier) {
  // Case m < n: bg's slots freed at t=7 are pre-reserved for fg's wide
  // phase 2; one of them dies at t=8, before the t=10 barrier.
  SsrConfig cfg;
  cfg.prereserve_threshold = 0.4;
  Engine engine(quick_sched(), 1, 4, 1);
  engine.set_reservation_hook(make_ssr(cfg));
  ReleaseReasonLog releases;
  engine.add_observer(&releases);
  RecoveryStatsCollector recovery;
  engine.add_observer(&recovery);
  audit::InvariantAuditor auditor;
  auditor.attach(engine);
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .stage(4, fixed_duration(5.0))
                                     .build());
  const JobId bg = engine.submit(JobBuilder("bg")
                                     .priority(0)
                                     .submit_at(1.0)
                                     .stage(2, fixed_duration(6.0))
                                     .build());
  engine.sim().schedule_at(8.0, [&] {
    // t=5 reservation plus two pre-reservations from bg's t=7 finishes.
    ASSERT_EQ(engine.cluster().reserved_idle_slots().size(), 3u);
    engine.fail_slot(*engine.cluster().reserved_idle_slots().rbegin());
  });
  engine.run();
  EXPECT_TRUE(engine.job_finished(fg));
  EXPECT_TRUE(engine.job_finished(bg));
  EXPECT_EQ(releases.count(ReservationEndReason::SlotFailed), 1u);
  EXPECT_EQ(recovery.stats().reservations_broken, 1u);
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(ReservationManager, FinalPhaseSlotDeathBreaksNoReservation) {
  // Algorithm 1 line 2-3: a final-phase finish releases its slot without
  // reserving, so killing that freed slot breaks nothing — the death is
  // absorbed as plain capacity loss.
  Engine engine(quick_sched(), 1, 2, 1);
  engine.set_reservation_hook(make_ssr());
  ReleaseReasonLog releases;
  engine.add_observer(&releases);
  RecoveryStatsCollector recovery;
  engine.add_observer(&recovery);
  audit::InvariantAuditor auditor;
  auditor.attach(engine);
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .build());
  engine.sim().schedule_at(6.0, [&] {
    ASSERT_TRUE(engine.cluster().reserved_idle_slots().empty());
    ASSERT_FALSE(engine.cluster().idle_slots().empty());
    engine.fail_slot(*engine.cluster().idle_slots().begin());
  });
  engine.run();
  EXPECT_TRUE(engine.job_finished(fg));
  EXPECT_DOUBLE_EQ(engine.jct(fg), 10.0);
  EXPECT_EQ(releases.count(ReservationEndReason::SlotFailed), 0u);
  EXPECT_EQ(recovery.stats().reservations_broken, 0u);
  EXPECT_EQ(recovery.stats().slots_failed, 1u);
  EXPECT_EQ(recovery.stats().tasks_requeued, 0u);
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(ReservationManager, ConfigValidation) {
  SsrConfig bad;
  bad.isolation_p = 0.0;
  EXPECT_THROW(ReservationManager{bad}, CheckError);
  bad = {};
  bad.pareto_alpha = 1.0;
  EXPECT_THROW(ReservationManager{bad}, CheckError);
  bad = {};
  bad.prereserve_threshold = 1.5;
  EXPECT_THROW(ReservationManager{bad}, CheckError);
}

}  // namespace
}  // namespace ssr
