// Unit tests for job specs, the DAG validator and the builder.
#include <gtest/gtest.h>

#include "ssr/common/check.h"
#include "ssr/dag/job.h"

namespace ssr {
namespace {

JobSpec chain3() {
  return JobBuilder("chain")
      .priority(5)
      .stage(4, fixed_duration(1.0))
      .stage(4, fixed_duration(1.0))
      .stage(2, fixed_duration(1.0))
      .build();
}

TEST(JobBuilder, BuildsChainWithImplicitParents) {
  const JobSpec spec = chain3();
  ASSERT_EQ(spec.stages.size(), 3u);
  EXPECT_TRUE(spec.stages[0].parents.empty());
  EXPECT_EQ(spec.stages[1].parents, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(spec.stages[2].parents, (std::vector<std::uint32_t>{1}));
}

TEST(JobGraph, DerivesChildrenRootsAndFinals) {
  JobGraph g(JobId{1}, chain3());
  EXPECT_EQ(g.num_stages(), 3u);
  EXPECT_EQ(g.roots(), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(g.children(0), (std::vector<std::uint32_t>{1}));
  EXPECT_FALSE(g.is_final_stage(0));
  EXPECT_TRUE(g.is_final_stage(2));
  EXPECT_EQ(g.total_tasks(), 10u);
}

TEST(JobGraph, DownstreamParallelismFollowsHints) {
  JobGraph g(JobId{1}, chain3());
  EXPECT_EQ(g.downstream_parallelism(0), 4u);
  EXPECT_EQ(g.downstream_parallelism(1), 2u);  // shrinking
  EXPECT_EQ(g.downstream_parallelism(2), std::nullopt);  // final stage
}

TEST(JobGraph, Case1HidesParallelism) {
  JobSpec spec = chain3();
  spec.parallelism_known = false;
  JobGraph g(JobId{1}, std::move(spec));
  EXPECT_EQ(g.downstream_parallelism(0), std::nullopt);
}

TEST(JobGraph, MultiParentJoinSumsChildWidths) {
  // Two scans joined: stage 2 depends on stages 0 and 1.
  JobSpec spec = JobBuilder("join")
                     .stage_with_parents(8, fixed_duration(1.0), {})
                     .stage_with_parents(4, fixed_duration(1.0), {})
                     .stage_with_parents(6, fixed_duration(1.0), {0, 1})
                     .build();
  JobGraph g(JobId{2}, std::move(spec));
  EXPECT_EQ(g.roots(), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(g.downstream_parallelism(0), 6u);
  EXPECT_EQ(g.downstream_parallelism(1), 6u);
  EXPECT_EQ(g.first_child(0), 2u);
}

TEST(JobGraph, RejectsMalformedSpecs) {
  // No stages.
  EXPECT_THROW(JobGraph(JobId{0}, JobSpec{}), CheckError);

  // Zero parallelism.
  JobSpec zero = JobBuilder("z").stage(0, fixed_duration(1.0)).build();
  EXPECT_THROW(JobGraph(JobId{0}, std::move(zero)), CheckError);

  // Missing duration model.
  JobSpec no_dist;
  no_dist.name = "n";
  StageSpec nd;
  nd.num_tasks = 1;
  no_dist.stages.push_back(nd);
  EXPECT_THROW(JobGraph(JobId{0}, std::move(no_dist)), CheckError);

  // Forward edge (parent index >= own index) — would be a cycle or worse.
  JobSpec fwd;
  fwd.name = "f";
  StageSpec s;
  s.num_tasks = 1;
  s.duration = fixed_duration(1.0);
  s.parents = {0};  // self-reference at index 0
  fwd.stages.push_back(s);
  EXPECT_THROW(JobGraph(JobId{0}, std::move(fwd)), CheckError);
}

TEST(JobGraph, RejectsMismatchedExplicitDurations) {
  JobSpec spec = JobBuilder("e")
                     .stage(3, fixed_duration(1.0))
                     .explicit_durations({1.0, 2.0})  // wrong size
                     .build();
  EXPECT_THROW(JobGraph(JobId{0}, std::move(spec)), CheckError);

  JobSpec neg = JobBuilder("n")
                    .stage(2, fixed_duration(1.0))
                    .explicit_durations({1.0, -2.0})
                    .build();
  EXPECT_THROW(JobGraph(JobId{0}, std::move(neg)), CheckError);
}

TEST(JobBuilder, SettersPropagate) {
  const JobSpec spec = JobBuilder("x")
                           .priority(9)
                           .submit_at(12.5)
                           .parallelism_known(false)
                           .fair_weight(2.0)
                           .stage(1, fixed_duration(1.0))
                           .build();
  EXPECT_EQ(spec.priority, 9);
  EXPECT_DOUBLE_EQ(spec.submit_time, 12.5);
  EXPECT_FALSE(spec.parallelism_known);
  EXPECT_DOUBLE_EQ(spec.fair_weight, 2.0);
}

}  // namespace
}  // namespace ssr
