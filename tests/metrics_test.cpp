// Tests for the metrics collectors (running-task series, task stats, JCT
// records) against engine-driven scenarios, and for the structured metrics
// registry (registry.h): metric resolution and label-group isolation,
// histogram bucket semantics, JSON export (escaping, empty-run eagerness),
// and the engine/recovery/tenant wiring through RunOptions.metrics.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ssr/common/check.h"
#include "ssr/exp/open_scenario.h"
#include "ssr/exp/scenario.h"
#include "ssr/metrics/collectors.h"
#include "ssr/metrics/engine_metrics.h"
#include "ssr/metrics/registry.h"
#include "ssr/sched/engine.h"
#include "ssr/workload/open_arrival.h"
#include "ssr/workload/tracegen.h"

namespace ssr {
namespace {

TEST(JctCollector, RecordsCompletionsInFinishOrder) {
  Engine engine(SchedConfig{}, 1, 2, 1);
  JctCollector jcts;
  engine.add_observer(&jcts);
  engine.submit(JobBuilder("slow").priority(5)
                    .stage(1, fixed_duration(20.0)).build());
  engine.submit(JobBuilder("fast").priority(5)
                    .submit_at(1.0).stage(1, fixed_duration(5.0)).build());
  engine.run();

  const auto& recs = jcts.completions();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name, "fast");  // finishes at 6
  EXPECT_EQ(recs[1].name, "slow");  // finishes at 20
  EXPECT_DOUBLE_EQ(recs[0].jct(), 5.0);
  EXPECT_DOUBLE_EQ(recs[1].jct(), 20.0);
  EXPECT_EQ(recs[0].priority, 5);
}

TEST(JctCollector, NamedAndPriorityQueries) {
  Engine engine(SchedConfig{}, 2, 2, 1);
  JctCollector jcts;
  engine.add_observer(&jcts);
  engine.submit(JobBuilder("a").priority(10)
                    .stage(1, fixed_duration(4.0)).build());
  engine.submit(JobBuilder("a").priority(10)
                    .stage(1, fixed_duration(6.0)).build());
  engine.submit(JobBuilder("b").priority(0)
                    .stage(1, fixed_duration(8.0)).build());
  engine.run();

  const auto a = jcts.jcts_named("a");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(jcts.mean_jct_with_priority_at_least(5), 5.0);
  EXPECT_DOUBLE_EQ(jcts.mean_jct_with_priority_below(5), 8.0);
  EXPECT_DOUBLE_EQ(jcts.mean_jct_with_priority_at_least(100), 0.0);
}

TEST(RunningTasksSeries, UnknownJobYieldsEmptySeries) {
  RunningTasksSeries series;
  EXPECT_TRUE(series.changes(JobId{99}).empty());
  const auto sampled = series.sampled(JobId{99}, 1.0, 5.0);
  ASSERT_EQ(sampled.size(), 6u);
  for (const auto& [t, v] : sampled) EXPECT_EQ(v, 0);
}

TEST(RunningTasksSeries, RejectsNonPositiveInterval) {
  RunningTasksSeries series;
  EXPECT_THROW(series.sampled(JobId{0}, 0.0, 5.0), CheckError);
}

TEST(TaskStats, TotalsAggregateAcrossJobs) {
  Engine engine(SchedConfig{}, 2, 2, 1);
  TaskStatsCollector stats;
  engine.add_observer(&stats);
  engine.submit(JobBuilder("x").stage(3, fixed_duration(2.0)).build());
  engine.submit(JobBuilder("y").stage(2, fixed_duration(2.0)).build());
  engine.run();
  const JobTaskStats t = stats.totals();
  EXPECT_EQ(t.tasks_started, 5u);
  EXPECT_EQ(t.tasks_finished, 5u);
  EXPECT_EQ(t.copies_started, 0u);
  EXPECT_EQ(stats.stats(JobId{42}).tasks_started, 0u);  // unknown job
}

// --- Metrics registry --------------------------------------------------------

std::string registry_json(const MetricsRegistry& registry) {
  std::ostringstream os;
  registry.write_json(os);
  return os.str();
}

TEST(MetricsRegistry, ResolvingSameNameAndLabelsYieldsSameInstance) {
  MetricsRegistry registry;
  registry.counter("hits").inc();
  registry.counter("hits").inc(2);
  EXPECT_EQ(registry.counter("hits").value(), 3u);
  EXPECT_EQ(registry.num_metrics(), 1u);

  registry.gauge("level").set(4.5);
  registry.gauge("level").add(0.5);
  EXPECT_DOUBLE_EQ(registry.gauge("level").value(), 5.0);
  EXPECT_EQ(registry.num_metrics(), 2u);
}

TEST(MetricsRegistry, LabelGroupsIsolateSeries) {
  MetricsRegistry registry;
  MetricGroup a = registry.group({{"tenant", "a"}});
  MetricGroup b = registry.group({{"tenant", "b"}});
  a.counter("jobs").inc(3);
  b.counter("jobs").inc(7);
  // Same metric name, disjoint series — and the unlabeled root is a third.
  EXPECT_EQ(a.counter("jobs").value(), 3u);
  EXPECT_EQ(b.counter("jobs").value(), 7u);
  EXPECT_EQ(registry.counter("jobs").value(), 0u);
  EXPECT_EQ(registry.num_metrics(), 3u);
  // A fresh handle with equal labels resolves the same storage.
  EXPECT_EQ(registry.group({{"tenant", "a"}}).counter("jobs").value(), 3u);
}

TEST(MetricsRegistry, TypeAndBucketMismatchesAreRejected) {
  MetricsRegistry registry;
  registry.counter("m").inc();
  EXPECT_THROW(registry.gauge("m"), CheckError);
  registry.histogram("h", {1.0, 2.0});
  EXPECT_THROW(registry.histogram("h", {1.0, 4.0}), CheckError);
  EXPECT_THROW(registry.counter("h"), CheckError);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), CheckError);
  EXPECT_THROW(Histogram({2.0, 1.0}), CheckError);
}

TEST(Histogram, BucketBoundariesUseLeSemantics) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(1.0);    // lands in le=1 (v <= bound, Prometheus "le")
  h.observe(1.001);  // first bucket whose bound >= v is le=2
  h.observe(2.0);    // le=2, boundary again
  h.observe(4.0);    // le=4
  h.observe(4.001);  // +inf overflow
  h.observe(-1.0);   // below every bound -> le=1

  const std::vector<std::uint64_t>& counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // 1.0, -1.0
  EXPECT_EQ(counts[1], 2u);  // 1.001, 2.0
  EXPECT_EQ(counts[2], 1u);  // 4.0
  EXPECT_EQ(counts[3], 1u);  // 4.001
  EXPECT_EQ(h.count(), 6u);
  // Cumulative counts are what the export writes.
  EXPECT_EQ(h.cumulative(0), 2u);
  EXPECT_EQ(h.cumulative(1), 4u);
  EXPECT_EQ(h.cumulative(2), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.001 + 2.0 + 4.0 + 4.001 - 1.0);
}

TEST(MetricsRegistry, JsonEscapesLabelAndNameText) {
  MetricsRegistry registry;
  registry.group({{"tenant", "a\"b\\c\nd"}}).counter("odd\"name").inc();
  const std::string json = registry_json(registry);
  EXPECT_NE(json.find("\"odd\\\"name\""), std::string::npos) << json;
  EXPECT_NE(json.find("a\\\"b\\\\c\\u000ad"), std::string::npos) << json;
  // The raw control byte must never reach the document.
  EXPECT_EQ(json.find('\n' + std::string("d")), std::string::npos);
}

TEST(MetricsRegistry, HistogramExportEndsWithInfBucket) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {0.5, 1.0});
  h.observe(0.25);
  h.observe(2.0);
  const std::string json = registry_json(registry);
  EXPECT_NE(json.find("\"schema\": \"ssr-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 0.5, \"count\": 1}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"le\": 1, \"count\": 1}"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\": \"inf\", \"count\": 2}"), std::string::npos)
      << json;
}

// --- Engine wiring -----------------------------------------------------------

TEST(EngineMetrics, EmptyRunStillExportsEverySeries) {
  // Series are created eagerly at observer construction, so a registry that
  // never sees an event still exports a complete all-zero document.
  MetricsRegistry registry;
  EngineMetrics metrics(registry, "idle");
  const std::string json = registry_json(registry);
  for (const char* name :
       {"jobs_submitted", "jobs_finished", "tasks_started", "tasks_finished",
        "tasks_killed", "stages_submitted", "reservations_made",
        "makespan_seconds", "utilization", "task_duration_seconds",
        "jct_seconds"}) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << "missing eager series " << name;
  }
  EXPECT_NE(json.find("{\"policy\":\"idle\"}"), std::string::npos) << json;
  // Entry storage is reference-stable across resolutions.
  EXPECT_EQ(&registry.counter("probe"), &registry.counter("probe"));
}

TEST(EngineMetrics, ScenarioRunFeedsRegistryAndRecoverySnapshot) {
  TraceGenConfig bg;
  bg.num_jobs = 5;
  bg.window = 100.0;
  bg.seed = 71;

  MetricsRegistry registry;
  RunOptions o;
  o.seed = 4;
  o.metrics = &registry;
  o.metrics_policy = "chaoslite";
  o.failures.events.push_back(
      FailureEvent{FailureEvent::Scope::Node, 1, 30.0, 60.0});

  const RunResult run = run_scenario(ClusterSpec{.nodes = 4, .slots_per_node = 2},
                                     make_background_jobs(bg), o);

  MetricGroup g = registry.group({{"policy", "chaoslite"}});
  EXPECT_EQ(g.counter("jobs_submitted").value(), run.jobs.size());
  EXPECT_EQ(g.counter("jobs_finished").value(), run.jobs.size());
  EXPECT_EQ(g.counter("tasks_started").value(), run.task_totals.tasks_started);
  EXPECT_EQ(g.counter("tasks_finished").value(),
            run.task_totals.tasks_finished);
  EXPECT_EQ(g.counter("tasks_failed").value(), run.task_totals.tasks_failed);
  EXPECT_DOUBLE_EQ(g.gauge("makespan_seconds").value(), run.makespan);
  EXPECT_EQ(g.histogram("jct_seconds", default_duration_bounds()).count(),
            run.jobs.size());
  // collect() snapshots the recovery counters into the same policy group.
  EXPECT_EQ(g.counter("recovery_slots_failed").value(),
            run.recovery.slots_failed);
  EXPECT_EQ(g.counter("recovery_tasks_requeued").value(),
            run.recovery.tasks_requeued);
  EXPECT_GT(run.recovery.slots_failed, 0u);
}

TEST(EngineMetrics, OpenRunRecordsPerTenantLabelGroups) {
  std::vector<OpenTenantProfile> profiles;
  for (const char* name : {"batch", "interactive"}) {
    OpenTenantProfile p;
    p.tenant = name;
    p.mean_interarrival = 10.0;
    p.num_jobs = 4;
    p.min_parallelism = 2;
    p.max_parallelism = 4;
    profiles.push_back(p);
  }
  OpenScenarioSpec spec;
  for (const char* name : {"batch", "interactive"}) {
    VirtualClusterSpec vc;
    vc.name = name;
    vc.max_slots = 6;
    vc.queue_when_full = true;
    spec.tenants.push_back(vc);
  }

  MetricsRegistry registry;
  RunOptions o;
  o.seed = 6;
  o.metrics = &registry;
  o.metrics_policy = "open";

  const RunResult run =
      run_open_scenario(ClusterSpec{.nodes = 4, .slots_per_node = 2}, spec,
                        make_open_arrivals(profiles, 99), o);

  ASSERT_EQ(run.tenants.size(), 2u);
  for (const TenantResult& t : run.tenants) {
    // Live per-tenant event series under {policy, tenant}...
    MetricGroup g =
        registry.group({{"policy", "open"}, {"tenant", t.name}});
    EXPECT_EQ(g.counter("jobs_finished").value(), t.completed) << t.name;
    // ...and the end-of-run admission-ledger snapshot under {tenant}.
    MetricGroup ledger = registry.group({{"tenant", t.name}});
    EXPECT_EQ(ledger.counter("jobs_admitted_total").value(), t.admitted);
    EXPECT_EQ(ledger.counter("jobs_rejected_total").value(), t.rejected);
    EXPECT_DOUBLE_EQ(ledger.gauge("mean_jct_seconds").value(), t.mean_jct);
  }
  const std::string json = registry_json(registry);
  EXPECT_NE(json.find("\"tenant\":\"interactive\""), std::string::npos);
}

}  // namespace
}  // namespace ssr
