// Tests for the metrics collectors (running-task series, task stats, JCT
// records) against engine-driven scenarios.
#include <gtest/gtest.h>

#include "ssr/common/check.h"
#include "ssr/metrics/collectors.h"
#include "ssr/sched/engine.h"

namespace ssr {
namespace {

TEST(JctCollector, RecordsCompletionsInFinishOrder) {
  Engine engine(SchedConfig{}, 1, 2, 1);
  JctCollector jcts;
  engine.add_observer(&jcts);
  engine.submit(JobBuilder("slow").priority(5)
                    .stage(1, fixed_duration(20.0)).build());
  engine.submit(JobBuilder("fast").priority(5)
                    .submit_at(1.0).stage(1, fixed_duration(5.0)).build());
  engine.run();

  const auto& recs = jcts.completions();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name, "fast");  // finishes at 6
  EXPECT_EQ(recs[1].name, "slow");  // finishes at 20
  EXPECT_DOUBLE_EQ(recs[0].jct(), 5.0);
  EXPECT_DOUBLE_EQ(recs[1].jct(), 20.0);
  EXPECT_EQ(recs[0].priority, 5);
}

TEST(JctCollector, NamedAndPriorityQueries) {
  Engine engine(SchedConfig{}, 2, 2, 1);
  JctCollector jcts;
  engine.add_observer(&jcts);
  engine.submit(JobBuilder("a").priority(10)
                    .stage(1, fixed_duration(4.0)).build());
  engine.submit(JobBuilder("a").priority(10)
                    .stage(1, fixed_duration(6.0)).build());
  engine.submit(JobBuilder("b").priority(0)
                    .stage(1, fixed_duration(8.0)).build());
  engine.run();

  const auto a = jcts.jcts_named("a");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(jcts.mean_jct_with_priority_at_least(5), 5.0);
  EXPECT_DOUBLE_EQ(jcts.mean_jct_with_priority_below(5), 8.0);
  EXPECT_DOUBLE_EQ(jcts.mean_jct_with_priority_at_least(100), 0.0);
}

TEST(RunningTasksSeries, UnknownJobYieldsEmptySeries) {
  RunningTasksSeries series;
  EXPECT_TRUE(series.changes(JobId{99}).empty());
  const auto sampled = series.sampled(JobId{99}, 1.0, 5.0);
  ASSERT_EQ(sampled.size(), 6u);
  for (const auto& [t, v] : sampled) EXPECT_EQ(v, 0);
}

TEST(RunningTasksSeries, RejectsNonPositiveInterval) {
  RunningTasksSeries series;
  EXPECT_THROW(series.sampled(JobId{0}, 0.0, 5.0), CheckError);
}

TEST(TaskStats, TotalsAggregateAcrossJobs) {
  Engine engine(SchedConfig{}, 2, 2, 1);
  TaskStatsCollector stats;
  engine.add_observer(&stats);
  engine.submit(JobBuilder("x").stage(3, fixed_duration(2.0)).build());
  engine.submit(JobBuilder("y").stage(2, fixed_duration(2.0)).build());
  engine.run();
  const JobTaskStats t = stats.totals();
  EXPECT_EQ(t.tasks_started, 5u);
  EXPECT_EQ(t.tasks_finished, 5u);
  EXPECT_EQ(t.copies_started, 0u);
  EXPECT_EQ(stats.stats(JobId{42}).tasks_started, 0u);  // unknown job
}

}  // namespace
}  // namespace ssr
