// Chaos property suite for the fault-injection and recovery layer.
//
// Each trial derives a random cluster, background trace mix, reservation
// policy, and a seeded random node-failure schedule, then runs the scenario
// under a throw-on-violation InvariantAuditor.  The properties pinned here
// are the failure-model contract of DESIGN.md §9:
//
//  * liveness — every job completes despite killed attempts, broken
//    reservations, and invalidated resident outputs (Engine::run() itself
//    throws if the simulation wedges with unfinished jobs);
//  * no event lost — every submitted stage is complete at end of run (the
//    auditor's task-lost invariant) and the running-task / slot state
//    machines stay legal through every failure transition;
//  * accounting — busy, reserved-idle, and dead slot-seconds implied by the
//    observer stream match the cluster's own accounting.
//
// The schedules mix transient and permanent node failures; the generator
// never makes node 0 permanent, so a kernel of capacity always survives and
// liveness is well-defined.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ssr/audit/invariant_auditor.h"
#include "ssr/audit/tenant_audit.h"
#include "ssr/audit/violation.h"
#include "ssr/core/naive_policies.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/exp/policy_zoo.h"
#include "ssr/metrics/collectors.h"
#include "ssr/sched/engine.h"
#include "ssr/sched/virtual_cluster.h"
#include "ssr/sim/failure_detector.h"
#include "ssr/sim/failure_injector.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/open_arrival.h"
#include "ssr/workload/tracegen.h"

namespace ssr {
namespace {

// Deterministic per-trial parameter derivation (lint forbids unseeded RNG;
// splitmix64 gives well-mixed streams from the trial index alone).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

enum class HookKind : std::uint64_t {
  kNone = 0,       // NullReservationHook
  kSsrStrict,      // ReservationManager, P = 1
  kSsrDeadline,    // ReservationManager, P < 1 (expiry machinery live)
  kSsrMitigation,  // ReservationManager with straggler copies (races x faults)
  kStatic,         // static carve-out
  kTimeout,        // timeout holds
  kCount
};

struct ChaosParams {
  std::uint32_t nodes;
  std::uint32_t slots_per_node;
  TraceGenConfig bg;
  std::uint32_t fg_parallelism;
  SimTime fg_submit;
  SimDuration locality_wait;
  HookKind hook;
  RandomFailureConfig failures;
  std::uint64_t engine_seed;
};

ChaosParams derive_params(std::uint64_t trial) {
  std::uint64_t s = 0x5eedc4a05f00dull ^ (trial * 0x9d7ull);
  ChaosParams p;
  p.nodes = 2 + static_cast<std::uint32_t>(splitmix64(s) % 7);
  p.slots_per_node = 1 + static_cast<std::uint32_t>(splitmix64(s) % 2);
  p.bg.num_jobs = 3 + static_cast<std::uint32_t>(splitmix64(s) % 6);
  p.bg.window = 60.0 + static_cast<double>(splitmix64(s) % 4) * 30.0;
  p.bg.large_job_max_tasks = 20;  // bound per-trial work
  p.bg.seed = 11 + trial * 131;
  p.fg_parallelism = 4 + static_cast<std::uint32_t>(splitmix64(s) % 6);
  p.fg_submit = p.bg.window * 0.25;
  const double waits[] = {0.0, 1.0, 3.0};
  p.locality_wait = waits[splitmix64(s) % 3];
  p.hook = static_cast<HookKind>(splitmix64(s) %
                                 static_cast<std::uint64_t>(HookKind::kCount));
  p.failures.num_nodes = p.nodes;
  // Failures land throughout the busy part of the run, including after the
  // nominal submission window (recovery re-runs push work past it).
  p.failures.horizon = p.bg.window * 1.5;
  p.failures.failures = 1 + static_cast<std::uint32_t>(splitmix64(s) % 4);
  p.failures.min_downtime = 2.0;
  p.failures.max_downtime = 25.0;
  // Up to a third of windows are permanent; node 0 is never permanent, so
  // capacity for progress always survives.
  p.failures.permanent_fraction =
      static_cast<double>(splitmix64(s) % 3) * 0.15;
  p.failures.seed = 0xfa11 + trial;
  p.engine_seed = 1 + trial;
  return p;
}

std::unique_ptr<ReservationHook> make_hook(HookKind kind) {
  switch (kind) {
    case HookKind::kNone:
      return std::make_unique<NullReservationHook>();
    case HookKind::kSsrStrict: {
      SsrConfig cfg;
      cfg.min_reserving_priority = 1;
      return std::make_unique<ReservationManager>(cfg);
    }
    case HookKind::kSsrDeadline: {
      SsrConfig cfg;
      cfg.min_reserving_priority = 1;
      cfg.isolation_p = 0.4;
      return std::make_unique<ReservationManager>(cfg);
    }
    case HookKind::kSsrMitigation: {
      SsrConfig cfg;
      cfg.min_reserving_priority = 1;
      cfg.enable_straggler_mitigation = true;
      return std::make_unique<ReservationManager>(cfg);
    }
    case HookKind::kStatic:
      return std::make_unique<StaticReservationHook>(1, 1);
    case HookKind::kTimeout:
      return std::make_unique<TimeoutReservationHook>(15.0);
    case HookKind::kCount:
      break;
  }
  SSR_CHECK_MSG(false, "bad hook kind");
  return nullptr;
}

struct TrialOutcome {
  RecoveryStats recovery;
  std::uint64_t events_audited = 0;
  std::uint64_t suspicions = 0;
  std::uint64_t false_suspicions = 0;
};

/// Event-queue configuration for a chaos leg: sharded lanes and the calendar
/// backend are pure performance knobs, so every leg must reproduce the
/// sequential outcome exactly (DESIGN.md §13).
struct QueueSetup {
  EventQueueBackend backend = EventQueueBackend::kBinaryHeap;
  std::uint32_t shards = 1;
};

/// `detector` transforms the trial's ground-truth schedule into what the
/// engine believes (sim/failure_detector.h); the default config passes the
/// truth through verbatim, preserving the original chaos semantics.
TrialOutcome run_chaos_trial(const ChaosParams& p,
                             const FailureDetectorConfig& detector = {},
                             const QueueSetup& queue = {}) {
  SchedConfig cfg;
  cfg.locality_wait = p.locality_wait;
  cfg.event_queue_backend = queue.backend;
  cfg.event_shards = queue.shards;
  Engine engine(cfg, p.nodes, p.slots_per_node, p.engine_seed);
  engine.set_reservation_hook(make_hook(p.hook));

  RecoveryStatsCollector recovery;
  engine.add_observer(&recovery);
  audit::InvariantAuditor auditor;  // throw_on_violation = true
  auditor.attach(engine);

  const DetectionOutcome detection =
      detect_failures(make_random_node_failures(p.failures), detector, p.nodes);
  FailureInjector injector(detection.detected);
  injector.attach(engine.sim(), engine);

  std::vector<JobId> ids;
  for (JobSpec& spec : make_background_jobs(p.bg)) {
    ids.push_back(engine.submit(std::move(spec)));
  }
  ids.push_back(engine.submit(make_kmeans(p.fg_parallelism, 10, p.fg_submit)));
  engine.run();  // throws CheckError if any job wedges or an invariant breaks

  for (JobId id : ids) {
    EXPECT_TRUE(engine.job_finished(id)) << "job " << id << " never finished";
  }
  EXPECT_TRUE(auditor.clean()) << auditor.report();
  return TrialOutcome{recovery.stats(), auditor.events_audited(),
                      detection.suspicions.size(),
                      detection.false_suspicions()};
}

TEST(Chaos, EveryJobCompletesAndAuditStaysCleanOn200FailureScenarios) {
  constexpr std::uint64_t kTrials = 200;
  RecoveryStats totals;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    const ChaosParams p = derive_params(trial);
    SCOPED_TRACE("trial " + std::to_string(trial) + " (hook kind " +
                 std::to_string(static_cast<int>(p.hook)) + ")");
    const TrialOutcome outcome = run_chaos_trial(p);
    ASSERT_GT(outcome.events_audited, 0u);
    totals.slots_failed += outcome.recovery.slots_failed;
    totals.slots_recovered += outcome.recovery.slots_recovered;
    totals.tasks_failed += outcome.recovery.tasks_failed;
    totals.tasks_requeued += outcome.recovery.tasks_requeued;
    totals.failures_masked += outcome.recovery.failures_masked;
    totals.stages_invalidated += outcome.recovery.stages_invalidated;
    totals.reservations_broken += outcome.recovery.reservations_broken;
  }
  // The sweep must actually exercise the failure paths it claims to lock
  // down, not just schedule failures that land on idle clusters.
  EXPECT_GT(totals.slots_failed, 100u);
  EXPECT_GT(totals.slots_recovered, 50u);
  EXPECT_GT(totals.tasks_failed, 50u);
  EXPECT_GT(totals.tasks_requeued, 50u);
  EXPECT_GT(totals.stages_invalidated, 0u);
}

// --- Heartbeat-detector noise leg -------------------------------------------
//
// The same seeded chaos trials, but the engine no longer sees the truth: a
// heartbeat detector with a lossy channel decides what it believes.  Late
// detections, missed short outages and outright false suspicions (healthy
// nodes killed on noise, then recovered when the channel clears) all flow
// through the ordinary kill/requeue/epoch-guard machinery, so the liveness
// and audit properties must survive unchanged.

FailureDetectorConfig derive_detector(std::uint64_t trial) {
  std::uint64_t s = 0xbea7f00dull ^ (trial * 0x2d1ull);
  FailureDetectorConfig d;
  d.heartbeat_period = 2.0 + static_cast<double>(splitmix64(s) % 4);
  d.timeout_beats = 2 + static_cast<std::uint32_t>(splitmix64(s) % 2);
  d.heartbeat_loss = 0.1 + static_cast<double>(splitmix64(s) % 3) * 0.1;
  d.seed = 0xd07 + trial;
  return d;
}

TEST(Chaos, DetectorNoiseRunsCompleteAndAuditStaysCleanOn100Trials) {
  constexpr std::uint64_t kTrials = 100;
  RecoveryStats totals;
  std::uint64_t suspicions = 0, false_suspicions = 0;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    const ChaosParams p = derive_params(trial);
    FailureDetectorConfig d = derive_detector(trial);
    // Channel noise covers the whole busy window, not just the truth span,
    // so healthy nodes can be falsely suspected at any point of the run.
    d.noise_horizon = p.failures.horizon;
    SCOPED_TRACE("detector trial " + std::to_string(trial) + " (hook kind " +
                 std::to_string(static_cast<int>(p.hook)) + ")");
    const TrialOutcome outcome = run_chaos_trial(p, d);
    ASSERT_GT(outcome.events_audited, 0u);
    totals.slots_failed += outcome.recovery.slots_failed;
    totals.slots_recovered += outcome.recovery.slots_recovered;
    totals.tasks_failed += outcome.recovery.tasks_failed;
    totals.tasks_requeued += outcome.recovery.tasks_requeued;
    suspicions += outcome.suspicions;
    false_suspicions += outcome.false_suspicions;
  }
  // The leg must actually exercise suspicion-driven failures, including
  // false ones — otherwise it degenerates into the truth-schedule sweep.
  EXPECT_GT(suspicions, 100u);
  EXPECT_GT(false_suspicions, 50u);
  EXPECT_GT(totals.slots_failed, 100u);
  EXPECT_GT(totals.tasks_requeued, 25u);
}

TEST(Chaos, DetectorNoiseRunsAreDeterministic) {
  const ChaosParams p = derive_params(27);
  FailureDetectorConfig d = derive_detector(27);
  d.noise_horizon = p.failures.horizon;
  const TrialOutcome a = run_chaos_trial(p, d);
  const TrialOutcome b = run_chaos_trial(p, d);
  EXPECT_EQ(a.events_audited, b.events_audited);
  EXPECT_EQ(a.suspicions, b.suspicions);
  EXPECT_EQ(a.false_suspicions, b.false_suspicions);
  EXPECT_EQ(a.recovery.slots_failed, b.recovery.slots_failed);
  EXPECT_EQ(a.recovery.tasks_requeued, b.recovery.tasks_requeued);
}

// --- Open-arrival x failure-schedule leg ------------------------------------
//
// The closed-batch sweep above drives Engine::run(); this leg drives the
// stepping API the way a long-lived service does — advance to each arrival
// instant, push the job through virtual-cluster admission control, and only
// then drain — while the same seeded node-failure schedules play out
// underneath.  The properties are the closed sweep's plus the admission
// layer's: every *admitted* job completes, no queue strands work at
// quiescence, and the tenant audit stays clean next to the slot-level one.

struct OpenChaosParams {
  std::uint32_t nodes;
  std::uint32_t slots_per_node;
  SimDuration locality_wait;
  HookKind hook;
  RandomFailureConfig failures;
  std::vector<VirtualClusterSpec> tenants;
  std::vector<OpenTenantProfile> profiles;
  std::uint64_t engine_seed;
  std::uint64_t arrival_seed;
};

OpenChaosParams derive_open_params(std::uint64_t trial) {
  std::uint64_t s = 0x09e2a55c4a05ull ^ (trial * 0x6b5ull);
  OpenChaosParams p;
  p.nodes = 3 + static_cast<std::uint32_t>(splitmix64(s) % 6);
  p.slots_per_node = 1 + static_cast<std::uint32_t>(splitmix64(s) % 2);
  const std::uint32_t total = p.nodes * p.slots_per_node;
  const double waits[] = {0.0, 1.0, 3.0};
  p.locality_wait = waits[splitmix64(s) % 3];
  p.hook = static_cast<HookKind>(splitmix64(s) %
                                 static_cast<std::uint64_t>(HookKind::kCount));

  const std::uint32_t num_tenants = 2 + static_cast<std::uint32_t>(splitmix64(s) % 2);
  double expected_span = 0.0;
  for (std::uint32_t ti = 0; ti < num_tenants; ++ti) {
    VirtualClusterSpec vc;
    vc.name = "t" + std::to_string(ti);
    // Minima stay small so any tenant count fits any cluster; maxima range
    // from tight (forcing queue/reject traffic) to the full cluster.
    vc.min_slots = static_cast<std::uint32_t>(splitmix64(s) % 2);
    vc.max_slots = 2 + static_cast<std::uint32_t>(splitmix64(s) % total);
    vc.queue_when_full = (splitmix64(s) % 4) != 0;
    p.tenants.push_back(vc);

    OpenTenantProfile prof;
    prof.tenant = "t" + std::to_string(ti);
    prof.mean_interarrival = 8.0 + static_cast<double>(splitmix64(s) % 4) * 6.0;
    prof.num_jobs = 4 + static_cast<std::uint32_t>(splitmix64(s) % 5);
    prof.min_parallelism = 2;
    prof.max_parallelism = 2 + static_cast<std::uint32_t>(splitmix64(s) % 5);
    prof.priority = static_cast<int>(splitmix64(s) % 3) * 5;
    p.profiles.push_back(prof);
    expected_span = std::max(
        expected_span, prof.mean_interarrival * static_cast<double>(prof.num_jobs));
  }

  p.failures.num_nodes = p.nodes;
  p.failures.horizon = expected_span * 1.5;
  p.failures.failures = 1 + static_cast<std::uint32_t>(splitmix64(s) % 4);
  p.failures.min_downtime = 2.0;
  p.failures.max_downtime = 25.0;
  p.failures.permanent_fraction =
      static_cast<double>(splitmix64(s) % 3) * 0.15;
  p.failures.seed = 0x0fa11 + trial * 3;
  p.engine_seed = 0x10001 + trial;
  p.arrival_seed = 0x20002 + trial * 7;
  return p;
}

struct OpenTrialOutcome {
  RecoveryStats recovery;
  std::uint64_t events_audited = 0;
  std::uint64_t admitted = 0;
  std::uint64_t queued = 0;
  std::uint64_t rejected = 0;
};

OpenTrialOutcome run_open_chaos_trial(const OpenChaosParams& p,
                                      const QueueSetup& queue = {}) {
  SchedConfig cfg;
  cfg.locality_wait = p.locality_wait;
  cfg.event_queue_backend = queue.backend;
  cfg.event_shards = queue.shards;
  Engine engine(cfg, p.nodes, p.slots_per_node, p.engine_seed);
  engine.set_reservation_hook(make_hook(p.hook));

  RecoveryStatsCollector recovery;
  engine.add_observer(&recovery);
  audit::InvariantAuditor auditor;  // throw_on_violation = true
  auditor.attach(engine);

  FailureInjector injector(make_random_node_failures(p.failures));
  injector.attach(engine.sim(), engine);

  VirtualClusterManager vcm(engine);
  for (const VirtualClusterSpec& vc : p.tenants) vcm.add_cluster(vc);

  for (OpenArrival& a : make_open_arrivals(p.profiles, p.arrival_seed)) {
    engine.advance_to(a.at);
    vcm.submit_job(a.tenant, std::move(a.spec));
  }
  engine.drain();  // throws if anything wedges, strands a queue, or trips audit

  // Every *admitted* job completed; rejected submissions never entered.
  for (const AdmissionRecord& a : vcm.admission_log()) {
    EXPECT_TRUE(engine.job_finished(a.job))
        << a.tenant << " job " << a.job << " admitted but never finished";
  }
  EXPECT_TRUE(vcm.all_queues_empty());
  EXPECT_TRUE(auditor.clean()) << auditor.report();
  const auto tenant_violations =
      audit::audit_virtual_clusters(vcm, p.nodes * p.slots_per_node);
  EXPECT_TRUE(tenant_violations.empty())
      << audit::format_report(tenant_violations);

  OpenTrialOutcome out;
  out.recovery = recovery.stats();
  out.events_audited = auditor.events_audited();
  for (const std::string& t : vcm.tenant_names()) {
    const TenantStats& s = vcm.stats(t);
    EXPECT_EQ(s.admitted, s.completed) << t;
    out.admitted += s.admitted;
    out.queued += s.queued_total;
    out.rejected += s.rejected;
  }
  return out;
}

TEST(Chaos, OpenArrivalRunsSurvive100FailureScenarios) {
  constexpr std::uint64_t kTrials = 100;
  RecoveryStats totals;
  std::uint64_t admitted = 0, queued = 0, rejected = 0;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    const OpenChaosParams p = derive_open_params(trial);
    SCOPED_TRACE("open trial " + std::to_string(trial) + " (hook kind " +
                 std::to_string(static_cast<int>(p.hook)) + ")");
    const OpenTrialOutcome outcome = run_open_chaos_trial(p);
    ASSERT_GT(outcome.events_audited, 0u);
    totals.slots_failed += outcome.recovery.slots_failed;
    totals.slots_recovered += outcome.recovery.slots_recovered;
    totals.tasks_failed += outcome.recovery.tasks_failed;
    totals.tasks_requeued += outcome.recovery.tasks_requeued;
    totals.stages_invalidated += outcome.recovery.stages_invalidated;
    admitted += outcome.admitted;
    queued += outcome.queued;
    rejected += outcome.rejected;
  }
  // The sweep must hit the paths it claims to: real failures landing on busy
  // slots, and admission traffic through all three outcomes.
  EXPECT_GT(totals.slots_failed, 50u);
  EXPECT_GT(totals.tasks_failed, 25u);
  EXPECT_GT(totals.tasks_requeued, 25u);
  EXPECT_GT(admitted, 500u);
  EXPECT_GT(queued, 50u);
  EXPECT_GT(rejected, 50u);
}

TEST(Chaos, OpenArrivalFailureRunsAreDeterministic) {
  const OpenChaosParams p = derive_open_params(42);
  const OpenTrialOutcome a = run_open_chaos_trial(p);
  const OpenTrialOutcome b = run_open_chaos_trial(p);
  EXPECT_EQ(a.events_audited, b.events_audited);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.queued, b.queued);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.recovery.slots_failed, b.recovery.slots_failed);
  EXPECT_EQ(a.recovery.tasks_failed, b.recovery.tasks_failed);
  EXPECT_EQ(a.recovery.tasks_requeued, b.recovery.tasks_requeued);
}

// --- Policy-zoo chaos leg ----------------------------------------------------
//
// Every zoo policy (exp/policy_zoo.h) replayed through the seeded chaos
// trials — with per-stage demand vectors on — under the throw-on-violation
// auditor.  Odd trials additionally route the truth schedule through a
// lossy heartbeat detector, so each policy also faces late detections and
// false suspicions.  The properties are the standard chaos contract:
// liveness (every job completes), audit-clean, and failure paths actually
// exercised.  The table-driven hook earns its keep here: expiry-driven
// wakeups, reservations broken by node deaths, and the go-quiet-at-drain
// rule all run under fault injection.

TrialOutcome run_zoo_chaos_trial(ZooPolicy policy, const ChaosParams& p,
                                 const FailureDetectorConfig& detector = {}) {
  const ClusterSpec cluster{
      .nodes = p.nodes, .slots_per_node = p.slots_per_node, .node_slots = {}};
  RunOptions options;
  options.sched.locality_wait = p.locality_wait;
  apply_zoo_policy(policy, cluster, options);

  Engine engine(options.sched, p.nodes, p.slots_per_node, p.engine_seed);
  std::unique_ptr<ReservationHook> hook;
  if (options.hook_factory) {
    hook = options.hook_factory();
  } else if (options.ssr.has_value()) {
    hook = std::make_unique<ReservationManager>(*options.ssr);
  } else {
    hook = std::make_unique<NullReservationHook>();
  }
  engine.set_reservation_hook(std::move(hook));

  RecoveryStatsCollector recovery;
  engine.add_observer(&recovery);
  audit::InvariantAuditor auditor;  // throw_on_violation = true
  auditor.attach(engine);

  const DetectionOutcome detection =
      detect_failures(make_random_node_failures(p.failures), detector, p.nodes);
  FailureInjector injector(detection.detected);
  injector.attach(engine.sim(), engine);

  TraceGenConfig bg = p.bg;
  bg.vary_demand = true;
  std::vector<JobId> ids;
  for (JobSpec& spec : make_background_jobs(bg)) {
    ids.push_back(engine.submit(std::move(spec)));
  }
  ids.push_back(engine.submit(make_kmeans(p.fg_parallelism, 10, p.fg_submit)));
  engine.run();  // throws CheckError if any job wedges or an invariant breaks

  for (JobId id : ids) {
    EXPECT_TRUE(engine.job_finished(id)) << "job " << id << " never finished";
  }
  EXPECT_TRUE(auditor.clean()) << auditor.report();
  return TrialOutcome{recovery.stats(), auditor.events_audited(),
                      detection.suspicions.size(),
                      detection.false_suspicions()};
}

TEST(Chaos, PolicyZooSurvivesFailuresAndDetectorNoiseOn40TrialsEach) {
  constexpr std::uint64_t kTrialsPerPolicy = 40;
  for (ZooPolicy policy : all_zoo_policies()) {
    RecoveryStats totals;
    std::uint64_t suspicions = 0;
    for (std::uint64_t trial = 0; trial < kTrialsPerPolicy; ++trial) {
      const ChaosParams p = derive_params(trial);
      FailureDetectorConfig d;
      if (trial % 2 == 1) {
        d = derive_detector(trial);
        d.noise_horizon = p.failures.horizon;
      }
      SCOPED_TRACE(std::string(zoo_policy_name(policy)) + " trial " +
                   std::to_string(trial));
      const TrialOutcome outcome = run_zoo_chaos_trial(policy, p, d);
      ASSERT_GT(outcome.events_audited, 0u);
      totals.slots_failed += outcome.recovery.slots_failed;
      totals.slots_recovered += outcome.recovery.slots_recovered;
      totals.tasks_failed += outcome.recovery.tasks_failed;
      totals.tasks_requeued += outcome.recovery.tasks_requeued;
      totals.reservations_broken += outcome.recovery.reservations_broken;
      suspicions += outcome.suspicions;
    }
    // Per policy: the leg must actually exercise failure recovery and the
    // detector-noise path, not just run clean scenarios.
    EXPECT_GT(totals.slots_failed, 20u) << zoo_policy_name(policy);
    EXPECT_GT(totals.tasks_requeued, 10u) << zoo_policy_name(policy);
    EXPECT_GT(suspicions, 10u) << zoo_policy_name(policy);
  }
}

// Reservation-carrying zoo policies must see their reservations broken by
// node failures at least somewhere across the sweep — otherwise the
// chaos leg never tests the hook's on_slot_failed reconciliation.
TEST(Chaos, ZooReservationPoliciesSeeBrokenReservations) {
  for (ZooPolicy policy : {ZooPolicy::kSsr, ZooPolicy::kTableDriven}) {
    std::uint64_t broken = 0;
    for (std::uint64_t trial = 0; trial < 40 && broken == 0; ++trial) {
      const ChaosParams p = derive_params(trial);
      broken += run_zoo_chaos_trial(policy, p).recovery.reservations_broken;
    }
    EXPECT_GT(broken, 0u) << zoo_policy_name(policy);
  }
}

// --- Sharded-engine / calendar-queue legs -----------------------------------
//
// The same seeded chaos trials, replayed with the event queue swapped for
// each sharded/calendar configuration: every audited counter must reproduce
// the sequential run exactly.  (Byte-level digest and trace equality over
// these configurations lives in shard_determinism_test; these legs keep the
// chaos generator itself — with its heavier failure mixes and invariant
// auditor — pointed at the alternate backends.)

const QueueSetup kAltQueues[] = {
    {EventQueueBackend::kCalendar, 1},
    {EventQueueBackend::kBinaryHeap, 4},
    {EventQueueBackend::kCalendar, 4},
};

void expect_outcomes_equal(const TrialOutcome& a, const TrialOutcome& b) {
  EXPECT_EQ(a.events_audited, b.events_audited);
  EXPECT_EQ(a.suspicions, b.suspicions);
  EXPECT_EQ(a.false_suspicions, b.false_suspicions);
  EXPECT_EQ(a.recovery.slots_failed, b.recovery.slots_failed);
  EXPECT_EQ(a.recovery.slots_recovered, b.recovery.slots_recovered);
  EXPECT_EQ(a.recovery.tasks_failed, b.recovery.tasks_failed);
  EXPECT_EQ(a.recovery.tasks_requeued, b.recovery.tasks_requeued);
  EXPECT_EQ(a.recovery.failures_masked, b.recovery.failures_masked);
  EXPECT_EQ(a.recovery.stages_invalidated, b.recovery.stages_invalidated);
  EXPECT_EQ(a.recovery.reservations_broken, b.recovery.reservations_broken);
}

TEST(Chaos, ShardedAndCalendarEnginesReproduceSequentialFailureOutcomes) {
  for (std::uint64_t trial = 0; trial < 200; trial += 5) {
    const ChaosParams p = derive_params(trial);
    FailureDetectorConfig d;
    if (trial % 2 == 1) {
      d = derive_detector(trial);
      d.noise_horizon = p.failures.horizon;
    }
    const TrialOutcome reference = run_chaos_trial(p, d);
    for (const QueueSetup& queue : kAltQueues) {
      SCOPED_TRACE("trial " + std::to_string(trial) + " backend " +
                   std::to_string(static_cast<int>(queue.backend)) +
                   " shards " + std::to_string(queue.shards));
      expect_outcomes_equal(reference, run_chaos_trial(p, d, queue));
    }
  }
}

TEST(Chaos, ShardedAndCalendarEnginesReproduceSequentialOpenOutcomes) {
  for (std::uint64_t trial = 0; trial < 100; trial += 5) {
    const OpenChaosParams p = derive_open_params(trial);
    const OpenTrialOutcome reference = run_open_chaos_trial(p);
    for (const QueueSetup& queue : kAltQueues) {
      SCOPED_TRACE("open trial " + std::to_string(trial) + " backend " +
                   std::to_string(static_cast<int>(queue.backend)) +
                   " shards " + std::to_string(queue.shards));
      const OpenTrialOutcome got = run_open_chaos_trial(p, queue);
      EXPECT_EQ(reference.events_audited, got.events_audited);
      EXPECT_EQ(reference.admitted, got.admitted);
      EXPECT_EQ(reference.queued, got.queued);
      EXPECT_EQ(reference.rejected, got.rejected);
      EXPECT_EQ(reference.recovery.slots_failed, got.recovery.slots_failed);
      EXPECT_EQ(reference.recovery.tasks_failed, got.recovery.tasks_failed);
      EXPECT_EQ(reference.recovery.tasks_requeued, got.recovery.tasks_requeued);
    }
  }
}

// Determinism under failure: the same trial parameters reproduce the same
// recovery counters event for event.
TEST(Chaos, FailureRunsAreDeterministic) {
  const ChaosParams p = derive_params(13);
  const TrialOutcome a = run_chaos_trial(p);
  const TrialOutcome b = run_chaos_trial(p);
  EXPECT_EQ(a.events_audited, b.events_audited);
  EXPECT_EQ(a.recovery.slots_failed, b.recovery.slots_failed);
  EXPECT_EQ(a.recovery.slots_recovered, b.recovery.slots_recovered);
  EXPECT_EQ(a.recovery.tasks_failed, b.recovery.tasks_failed);
  EXPECT_EQ(a.recovery.tasks_requeued, b.recovery.tasks_requeued);
  EXPECT_EQ(a.recovery.failures_masked, b.recovery.failures_masked);
  EXPECT_EQ(a.recovery.stages_invalidated, b.recovery.stages_invalidated);
  EXPECT_EQ(a.recovery.reservations_broken, b.recovery.reservations_broken);
}

}  // namespace
}  // namespace ssr
