// Unit tests for ssr/common: rng, distributions, stats, tables.
#include <gtest/gtest.h>

#include <cmath>

#include "ssr/common/check.h"
#include "ssr/common/distributions.h"
#include "ssr/common/rng.h"
#include "ssr/common/stats.h"
#include "ssr/common/table.h"

namespace ssr {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkedStreamsAreIndependentOfParentDraws) {
  Rng parent1(7);
  Rng parent2(7);
  // Consume from parent1 before forking; fork seeds must not depend on how
  // many draws the parent made.
  (void)parent1.uniform(0, 1);
  (void)parent1.uniform(0, 1);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(child1.uniform(0, 1), child2.uniform(0, 1));
  }
}

TEST(Rng, ParetoSamplesRespectScaleMinimum) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(1.6, 2.0), 2.0);
  }
}

TEST(Rng, ParetoSampleMeanMatchesAnalytic) {
  Rng rng(5);
  const double alpha = 2.5, scale = 1.0;
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.pareto(alpha, scale));
  const double expected = alpha * scale / (alpha - 1.0);
  EXPECT_NEAR(stats.mean(), expected, 0.03 * expected);
}

TEST(Distributions, FixedAlwaysSame) {
  Rng rng(1);
  auto d = fixed_duration(3.5);
  EXPECT_DOUBLE_EQ(d->sample(rng), 3.5);
  EXPECT_DOUBLE_EQ(d->mean(), 3.5);
}

TEST(Distributions, UniformWithinBounds) {
  Rng rng(1);
  auto d = uniform_duration(2.0, 4.0);
  for (int i = 0; i < 1000; ++i) {
    const double x = d->sample(rng);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 4.0);
  }
  EXPECT_DOUBLE_EQ(d->mean(), 3.0);
}

TEST(Distributions, ParetoWithMeanHitsRequestedMean) {
  Rng rng(9);
  auto d = pareto_duration_with_mean(1.6, 10.0);
  EXPECT_DOUBLE_EQ(d->mean(), 10.0);
  OnlineStats stats;
  for (int i = 0; i < 500000; ++i) stats.add(d->sample(rng));
  // alpha = 1.6 has infinite variance; allow a loose Monte-Carlo band.
  EXPECT_NEAR(stats.mean(), 10.0, 1.5);
}

TEST(Distributions, LognormalMeanAnalytic) {
  Rng rng(4);
  auto d = lognormal_duration(5.0, 0.4);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(d->sample(rng));
  EXPECT_NEAR(stats.mean(), d->mean(), 0.05 * d->mean());
  EXPECT_NEAR(d->mean(), 5.0 * std::exp(0.5 * 0.4 * 0.4), 1e-9);
}

TEST(Distributions, EmpiricalSamplesFromList) {
  Rng rng(2);
  auto d = empirical_duration({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d->mean(), 2.0);
  for (int i = 0; i < 100; ++i) {
    const double x = d->sample(rng);
    EXPECT_TRUE(x == 1.0 || x == 2.0 || x == 3.0);
  }
}

TEST(Distributions, ScaledMultiplies) {
  Rng rng(2);
  auto d = scaled_duration(fixed_duration(4.0), 2.5);
  EXPECT_DOUBLE_EQ(d->sample(rng), 10.0);
  EXPECT_DOUBLE_EQ(d->mean(), 10.0);
}

TEST(Distributions, RejectsInvalidParameters) {
  EXPECT_THROW(fixed_duration(0.0), CheckError);
  EXPECT_THROW(uniform_duration(-1.0, 2.0), CheckError);
  EXPECT_THROW(pareto_duration(0.9, 1.0), CheckError);
  EXPECT_THROW(pareto_duration(1.6, 0.0), CheckError);
  EXPECT_THROW(empirical_duration({}), CheckError);
  EXPECT_THROW(scaled_duration(fixed_duration(1.0), 0.0), CheckError);
}

TEST(Stats, WelfordMatchesDirectComputation) {
  OnlineStats s;
  const std::vector<double> xs = {1, 2, 3, 4, 100};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 22.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  // Sample variance: sum((x-22)^2)/4
  double acc = 0;
  for (double x : xs) acc += (x - 22.0) * (x - 22.0);
  EXPECT_NEAR(s.variance(), acc / 4.0, 1e-9);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_THROW(percentile({}, 0.5), CheckError);
  EXPECT_THROW(percentile(xs, 1.5), CheckError);
}

TEST(Table, RendersAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", TablePrinter::num(1.2345, 2)});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), CheckError);
}

TEST(Check, MacrosThrowWithContext) {
  try {
    SSR_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
  }
}

TEST(Check, MsgAcceptsStreamedExpressions) {
  const int wanted = 3;
  const int got = 7;
  try {
    SSR_CHECK_MSG(wanted == got, "wanted " << wanted << " but got " << got);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("wanted 3 but got 7"),
              std::string::npos)
        << e.what();
  }
}

TEST(Check, MsgStreamIsLazilyEvaluated) {
  // The message chain must only run on failure; a passing check with a
  // side-effecting message must not observe the side effect.
  int calls = 0;
  auto expensive = [&calls] {
    ++calls;
    return std::string("never shown");
  };
  SSR_CHECK_MSG(true, expensive());
  EXPECT_EQ(calls, 0);
}

TEST(Check, OpMacroPrintsBothOperands) {
  const std::size_t lhs = 4;
  try {
    SSR_CHECK_EQ(lhs, 9u);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lhs == 9u"), std::string::npos) << what;
    EXPECT_NE(what.find("operands were 4 == 9"), std::string::npos) << what;
  }
}

TEST(Check, OpMacroEvaluatesOperandsOnce) {
  int evaluations = 0;
  auto next = [&evaluations] { return ++evaluations; };
  SSR_CHECK_LE(next(), 5);
  EXPECT_EQ(evaluations, 1);
}

TEST(Check, OpMacroVariantsPass) {
  SSR_CHECK_EQ(2, 2);
  SSR_CHECK_NE(2, 3);
  SSR_CHECK_LT(2, 3);
  SSR_CHECK_LE(3, 3);
  SSR_CHECK_GT(4, 3);
  SSR_CHECK_GE(4.0, 4.0);
  EXPECT_THROW(SSR_CHECK_GT(1, 2), CheckError);
  EXPECT_THROW(SSR_CHECK_NE(5, 5), CheckError);
}

}  // namespace
}  // namespace ssr
