// Tests for the Sec. III-A strawman policies: static carve-outs and
// timeout-based (Spark dynamic-allocation style) reservations.
#include <gtest/gtest.h>

#include <memory>

#include "ssr/common/check.h"
#include "ssr/core/naive_policies.h"
#include "ssr/sched/engine.h"

namespace ssr {
namespace {

TEST(StaticReservation, CarveOutBlocksLowPriorityJobs) {
  // 4 slots, 2 statically reserved for the class (priority >= 10).  The
  // low-priority job can only ever use the 2 unreserved slots.
  Engine engine(SchedConfig{}, 1, 4, 1);
  engine.set_reservation_hook(
      std::make_unique<StaticReservationHook>(2, /*class_min_priority=*/10));
  const JobId lo = engine.submit(
      JobBuilder("lo").priority(0).stage(4, fixed_duration(10.0)).build());
  engine.run();
  // 4 tasks on 2 usable slots: 2 rounds -> 20 s.
  EXPECT_DOUBLE_EQ(engine.jct(lo), 20.0);
}

TEST(StaticReservation, ClassJobsUseTheCarveOut) {
  Engine engine(SchedConfig{}, 1, 4, 1);
  auto hook = std::make_unique<StaticReservationHook>(2, 10);
  StaticReservationHook* h = hook.get();
  engine.set_reservation_hook(std::move(hook));
  const JobId lo = engine.submit(
      JobBuilder("lo").priority(0).stage(2, fixed_duration(50.0)).build());
  const JobId hi = engine.submit(JobBuilder("hi")
                                     .priority(10)
                                     .submit_at(1.0)
                                     .stage(2, fixed_duration(5.0))
                                     .build());
  engine.run();
  // lo starts on the 2 unreserved slots at t=0; hi lands on the carve-out
  // immediately at t=1 despite the cluster being "full".
  EXPECT_DOUBLE_EQ(engine.jct(hi), 5.0);
  EXPECT_DOUBLE_EQ(engine.jct(lo), 50.0);
  // The carve-out replenishes after use.
  EXPECT_EQ(h->held_slots(), 2u);
}

TEST(StaticReservation, OverProvisioningWastesSlots) {
  Engine engine(SchedConfig{}, 1, 4, 1);
  engine.set_reservation_hook(std::make_unique<StaticReservationHook>(3, 10));
  engine.submit(
      JobBuilder("lo").priority(0).stage(2, fixed_duration(10.0)).build());
  engine.run();
  engine.cluster().settle(engine.sim().now());
  // Only 1 slot usable: 2 tasks serialize (20 s); 3 slots idle-reserved the
  // whole time: 60 slot-seconds of waste.
  EXPECT_DOUBLE_EQ(engine.cluster().total_reserved_idle_time(), 60.0);
  EXPECT_DOUBLE_EQ(
      engine.cluster().reserved_idle_time_of(StaticReservationHook::kClassJob),
      60.0);
}

TEST(TimeoutReservation, HoldsSlotUntilTimeout) {
  // fg's slot freed at t=5 is held 3 s; bg can only grab it at t=8.
  Engine engine(SchedConfig{}, 1, 2, 1);
  engine.set_reservation_hook(std::make_unique<TimeoutReservationHook>(3.0));
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .stage(2, fixed_duration(5.0))
                                     .build());
  const JobId bg = engine.submit(JobBuilder("bg")
                                     .priority(0)
                                     .submit_at(1.0)
                                     .stage(1, fixed_duration(100.0))
                                     .build());
  engine.run();
  // Hold expires at 8 < barrier at 10: bg takes the slot 8..108, fg's
  // phase 2 serializes on one slot: 10..15, 15..20.
  EXPECT_DOUBLE_EQ(engine.jct(fg), 20.0);
  EXPECT_DOUBLE_EQ(engine.jct(bg), 107.0);
}

TEST(TimeoutReservation, LongTimeoutIsolatesButBlindly) {
  // Timeout 10 s covers the barrier: fg is isolated like SSR...
  Engine engine(SchedConfig{}, 1, 2, 1);
  engine.set_reservation_hook(std::make_unique<TimeoutReservationHook>(10.0));
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .stage(2, fixed_duration(5.0))
                                     .build());
  const JobId bg = engine.submit(JobBuilder("bg")
                                     .priority(0)
                                     .submit_at(1.0)
                                     .stage(1, fixed_duration(10.0))
                                     .build());
  engine.run();
  EXPECT_DOUBLE_EQ(engine.jct(fg), 15.0);
  // bg starts when fg finishes at 15 (job completion releases holds):
  // 15..25, jct = 24.
  EXPECT_DOUBLE_EQ(engine.jct(bg), 24.0);
}

TEST(TimeoutReservation, HoldsBlindlyWithNoDownstream) {
  // A map-only job: its freed slots are held although no downstream phase
  // exists — pure waste (the paper's first criticism of this policy).
  Engine engine(SchedConfig{}, 1, 2, 1);
  engine.set_reservation_hook(std::make_unique<TimeoutReservationHook>(30.0));
  const JobId job = engine.submit(JobBuilder("maponly")
                                      .priority(5)
                                      .stage(2, fixed_duration(1.0))
                                      .explicit_durations({5.0, 10.0})
                                      .build());
  engine.run();
  engine.cluster().settle(engine.sim().now());
  // The t=5 slot is held 5..10 for nothing; released at job end.
  EXPECT_DOUBLE_EQ(engine.cluster().reserved_idle_time_of(job), 5.0);
}

TEST(TimeoutReservation, RejectsNonPositiveTimeout) {
  EXPECT_THROW(TimeoutReservationHook{0.0}, CheckError);
  EXPECT_THROW(TimeoutReservationHook{-1.0}, CheckError);
}

}  // namespace
}  // namespace ssr
