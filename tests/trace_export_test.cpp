// Tests for the Chrome-tracing exporter: live observer feeding, the
// engine-free record_* core, per-tenant process tracks, and JSON hygiene
// (empty runs, escaping, metadata events).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "ssr/core/reservation_manager.h"
#include "ssr/metrics/trace_export.h"
#include "ssr/sched/engine.h"

namespace ssr {
namespace {

std::string export_json(const TraceExporter& trace) {
  std::ostringstream os;
  trace.write_json(os);
  return os.str();
}

TEST(TraceExport, RecordsEveryAttemptAsCompleteEvent) {
  Engine engine(SchedConfig{}, 1, 2, 1);
  TraceExporter trace;
  engine.add_observer(&trace);
  engine.submit(JobBuilder("j")
                    .stage(2, fixed_duration(5.0))
                    .stage(2, fixed_duration(5.0))
                    .build());
  engine.run();
  EXPECT_EQ(trace.event_count(), 4u);

  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("submit j"), std::string::npos);
  EXPECT_NE(json.find("finish j"), std::string::npos);
  // 5 simulated seconds -> 5000 trace us.
  EXPECT_NE(json.find("\"dur\":5000"), std::string::npos);
}

TEST(TraceExport, MarksKilledStragglerAttempts) {
  SsrConfig cfg;
  cfg.enable_straggler_mitigation = true;
  Engine engine(SchedConfig{}, 1, 4, 1);
  engine.set_reservation_hook(std::make_unique<ReservationManager>(cfg));
  TraceExporter trace;
  engine.add_observer(&trace);
  engine.submit(JobBuilder("fg")
                    .priority(10)
                    .stage(4, uniform_duration(1.0, 2.0))
                    .explicit_durations({1.0, 1.0, 60.0, 60.0})
                    .stage(4, fixed_duration(2.0))
                    .build());
  engine.run();
  std::ostringstream os;
  trace.write_json(os);
  EXPECT_NE(os.str().find("(killed)"), std::string::npos);
  EXPECT_NE(os.str().find("\"killed\":true"), std::string::npos);
}

TEST(TraceExport, EscapesJobNames) {
  Engine engine(SchedConfig{}, 1, 1, 1);
  TraceExporter trace;
  engine.add_observer(&trace);
  engine.submit(JobBuilder("we\"ird\\name")
                    .stage(1, fixed_duration(1.0))
                    .build());
  engine.run();
  std::ostringstream os;
  trace.write_json(os);
  EXPECT_NE(os.str().find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(TraceExport, EmptyRunWritesValidDocumentWithClusterTrack) {
  // No events at all: still a well-formed document with the default process
  // track's metadata, so a viewer opens it without complaint.
  TraceExporter trace;
  EXPECT_EQ(trace.event_count(), 0u);
  const std::string json = export_json(trace);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cluster\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
  ASSERT_EQ(trace.tracks().size(), 1u);
  EXPECT_EQ(trace.tracks().front(), "cluster");
}

TEST(TraceExport, RecordCoreAssignsTenantTracks) {
  // The engine-free record_* seam (what the capture replay feeder drives):
  // tenanted attempts land on per-tenant process tracks, untenanted ones on
  // track 0, and track ids are stable across repeats of the same tenant.
  TraceExporter trace;
  TaskId t0{{JobId{0}, 0}, 0, 0};
  TaskId t1{{JobId{1}, 0}, 0, 0};
  TaskId t2{{JobId{2}, 0}, 0, 0};
  trace.record_task_started(1.0, t0, SlotId{0}, "a", "alpha");
  trace.record_task_started(1.0, t1, SlotId{1}, "b", "beta");
  trace.record_task_started(2.0, t2, SlotId{2}, "c", "");
  trace.record_task_finished(4.0, t0, SlotId{0});
  trace.record_task_finished(5.0, t1, SlotId{1});
  trace.record_task_killed(6.0, t2, SlotId{2});
  trace.record_instant("submit a", 0.5);

  ASSERT_EQ(trace.tracks().size(), 3u);
  EXPECT_EQ(trace.tracks()[0], "cluster");
  EXPECT_EQ(trace.tracks()[1], "alpha");
  EXPECT_EQ(trace.tracks()[2], "beta");
  EXPECT_EQ(trace.event_count(), 3u);

  const std::string json = export_json(trace);
  // One process_name metadata record per track...
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"beta\""), std::string::npos);
  // ...attempts carry their track as the pid...
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  // ...and the untenanted attempt stays on pid 0.
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"killed\":true"), std::string::npos);
  EXPECT_NE(json.find("submit a"), std::string::npos);
}

TEST(TraceExport, LiveObserverUsesTenantResolver) {
  Engine engine(SchedConfig{}, 1, 2, 1);
  TraceExporter trace;
  const std::string tenant = "svc";
  trace.set_tenant_resolver(
      [&tenant](JobId job) { return job.v == 0 ? &tenant : nullptr; });
  engine.add_observer(&trace);
  engine.submit(JobBuilder("metered").stage(1, fixed_duration(2.0)).build());
  engine.submit(JobBuilder("plain").stage(1, fixed_duration(2.0)).build());
  engine.run();

  ASSERT_EQ(trace.tracks().size(), 2u);
  EXPECT_EQ(trace.tracks()[1], "svc");
  const std::string json = export_json(trace);
  EXPECT_NE(json.find("\"name\":\"svc\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

}  // namespace
}  // namespace ssr
