// Tests for the Chrome-tracing exporter.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "ssr/core/reservation_manager.h"
#include "ssr/metrics/trace_export.h"
#include "ssr/sched/engine.h"

namespace ssr {
namespace {

TEST(TraceExport, RecordsEveryAttemptAsCompleteEvent) {
  Engine engine(SchedConfig{}, 1, 2, 1);
  TraceExporter trace;
  engine.add_observer(&trace);
  engine.submit(JobBuilder("j")
                    .stage(2, fixed_duration(5.0))
                    .stage(2, fixed_duration(5.0))
                    .build());
  engine.run();
  EXPECT_EQ(trace.event_count(), 4u);

  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("submit j"), std::string::npos);
  EXPECT_NE(json.find("finish j"), std::string::npos);
  // 5 simulated seconds -> 5000 trace us.
  EXPECT_NE(json.find("\"dur\":5000"), std::string::npos);
}

TEST(TraceExport, MarksKilledStragglerAttempts) {
  SsrConfig cfg;
  cfg.enable_straggler_mitigation = true;
  Engine engine(SchedConfig{}, 1, 4, 1);
  engine.set_reservation_hook(std::make_unique<ReservationManager>(cfg));
  TraceExporter trace;
  engine.add_observer(&trace);
  engine.submit(JobBuilder("fg")
                    .priority(10)
                    .stage(4, uniform_duration(1.0, 2.0))
                    .explicit_durations({1.0, 1.0, 60.0, 60.0})
                    .stage(4, fixed_duration(2.0))
                    .build());
  engine.run();
  std::ostringstream os;
  trace.write_json(os);
  EXPECT_NE(os.str().find("(killed)"), std::string::npos);
  EXPECT_NE(os.str().find("\"killed\":true"), std::string::npos);
}

TEST(TraceExport, EscapesJobNames) {
  Engine engine(SchedConfig{}, 1, 1, 1);
  TraceExporter trace;
  engine.add_observer(&trace);
  engine.submit(JobBuilder("we\"ird\\name")
                    .stage(1, fixed_duration(1.0))
                    .build());
  engine.run();
  std::ostringstream os;
  trace.write_json(os);
  EXPECT_NE(os.str().find("we\\\"ird\\\\name"), std::string::npos);
}

}  // namespace
}  // namespace ssr
