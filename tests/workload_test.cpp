// Tests for the workload synthesizers: ML chains, SQL DAG templates,
// Google-trace-like background jobs, and the Fig. 17 Pareto adjustment.
#include <gtest/gtest.h>

#include <set>

#include "ssr/common/check.h"
#include "ssr/common/stats.h"
#include "ssr/dag/job.h"
#include "ssr/workload/adjust.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/sqlbench.h"
#include "ssr/workload/tracegen.h"

namespace ssr {
namespace {

TEST(MlBench, ChainShapeAndStableParallelism) {
  const JobSpec spec = make_kmeans(20, 10, 5.0);
  EXPECT_EQ(spec.name, "kmeans");
  EXPECT_EQ(spec.priority, 10);
  EXPECT_DOUBLE_EQ(spec.submit_time, 5.0);
  ASSERT_EQ(spec.stages.size(), 9u);  // load + 8 iterations
  for (const auto& st : spec.stages) {
    EXPECT_EQ(st.num_tasks, 20u);  // stable parallelism (Case-1 safe)
  }
  // Chain: each non-root stage depends on its predecessor only.
  for (std::size_t i = 1; i < spec.stages.size(); ++i) {
    EXPECT_EQ(spec.stages[i].parents,
              (std::vector<std::uint32_t>{static_cast<std::uint32_t>(i - 1)}));
  }
  // Load phase is heavier than iteration phases.
  EXPECT_GT(spec.stages[0].duration->mean(), spec.stages[1].duration->mean());
}

TEST(MlBench, ThreeAppsDifferInShape) {
  const JobSpec k = make_kmeans(8, 0);
  const JobSpec s = make_svm(8, 0);
  const JobSpec p = make_pagerank(8, 0);
  EXPECT_NE(k.stages.size(), s.stages.size());
  EXPECT_NE(s.stages.size(), p.stages.size());
  // All three validate as DAGs.
  (void)JobGraph(JobId{0}, k);
  (void)JobGraph(JobId{1}, s);
  (void)JobGraph(JobId{2}, p);
}

TEST(SqlBench, TemplatesChangeParallelismAcrossPhases) {
  int with_expansion = 0, with_shrink = 0;
  for (std::uint32_t q = 0; q < 20; ++q) {
    SqlJobParams params;
    params.query_index = q;
    params.base_parallelism = 16;
    const JobSpec spec = make_sql_query(params);
    JobGraph g(JobId{q}, spec);  // must validate
    bool expands = false, shrinks = false;
    for (std::uint32_t i = 0; i < g.num_stages(); ++i) {
      const auto n = g.downstream_parallelism(i);
      if (!n) continue;
      if (*n > g.stage(i).num_tasks) expands = true;
      if (*n < g.stage(i).num_tasks) shrinks = true;
    }
    with_expansion += expands ? 1 : 0;
    with_shrink += shrinks ? 1 : 0;
  }
  // The suite must exercise both directions of parallelism change.
  EXPECT_GE(with_expansion, 5);
  EXPECT_GE(with_shrink, 5);
}

TEST(SqlBench, JoinTemplatesHaveTwoRoots) {
  SqlJobParams params;
  params.query_index = 0;  // q % 3 == 0 -> join template
  const JobSpec spec = make_sql_query(params);
  JobGraph g(JobId{0}, spec);
  EXPECT_EQ(g.roots().size(), 2u);
}

TEST(SqlBench, RejectsBadQueryIndex) {
  SqlJobParams params;
  params.query_index = 20;
  EXPECT_THROW(make_sql_query(params), CheckError);
}

TEST(TraceGen, DeterministicInSeed) {
  TraceGenConfig cfg;
  cfg.num_jobs = 50;
  const auto a = make_background_jobs(cfg);
  const auto b = make_background_jobs(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].stages.size(), b[i].stages.size());
    EXPECT_EQ(a[i].stages[0].num_tasks, b[i].stages[0].num_tasks);
  }
}

TEST(TraceGen, RespectsWindowAndCounts) {
  TraceGenConfig cfg;
  cfg.num_jobs = 200;
  cfg.window = 1000.0;
  const auto jobs = make_background_jobs(cfg);
  EXPECT_EQ(jobs.size(), 200u);
  for (const auto& j : jobs) {
    EXPECT_GE(j.submit_time, 0.0);
    EXPECT_LE(j.submit_time, 1000.0);
    EXPECT_FALSE(j.parallelism_known);  // trace jobs are Case-1
    EXPECT_GE(j.stages.size(), 1u);
    EXPECT_LE(j.stages.size(), 2u);
    (void)JobGraph(JobId{0}, j);  // validates
  }
}

TEST(TraceGen, RuntimeMultiplierProlongsTasks) {
  TraceGenConfig base;
  base.num_jobs = 20;
  TraceGenConfig doubled = base;
  doubled.runtime_multiplier = 2.0;
  const auto a = make_background_jobs(base);
  const auto b = make_background_jobs(doubled);
  EXPECT_NEAR(b[0].stages[0].duration->mean(),
              2.0 * a[0].stages[0].duration->mean(), 1e-9);
}

TEST(TraceGen, MixesSmallAndLargeJobs) {
  TraceGenConfig cfg;
  cfg.num_jobs = 500;
  const auto jobs = make_background_jobs(cfg);
  int small = 0, large = 0;
  for (const auto& j : jobs) {
    if (j.stages[0].num_tasks <= cfg.small_job_max_tasks) {
      ++small;
    } else {
      ++large;
    }
  }
  EXPECT_GT(small, large);  // most jobs are small (Sec. III-C)
  EXPECT_GT(large, 0);
}

TEST(Adjust, ParetoAdjustPreservesStageMeans) {
  Rng rng(3);
  JobSpec spec = make_kmeans(50, 0);
  const double original_mean = spec.stages[2].duration->mean();
  spec = pareto_adjust(std::move(spec), 1.6, rng);
  for (const auto& st : spec.stages) {
    ASSERT_TRUE(st.explicit_durations.has_value());
    EXPECT_EQ(st.explicit_durations->size(), st.num_tasks);
  }
  // The resampling distribution is the same-mean Pareto.
  EXPECT_NEAR(spec.stages[2].duration->mean(), original_mean, 1e-9);
  // Empirical mean over a wide stage is in the right ballpark (heavy tail
  // makes this noisy; just require the right order of magnitude).
  const double emp = mean_of(*spec.stages[2].explicit_durations);
  EXPECT_GT(emp, 0.2 * original_mean);
  EXPECT_LT(emp, 5.0 * original_mean);
}

TEST(Adjust, ProlongScalesExplicitAndModel) {
  JobSpec spec = JobBuilder("p")
                     .stage(2, fixed_duration(3.0))
                     .explicit_durations({1.0, 2.0})
                     .build();
  spec = prolong(std::move(spec), 2.0);
  EXPECT_DOUBLE_EQ(spec.stages[0].duration->mean(), 6.0);
  EXPECT_DOUBLE_EQ((*spec.stages[0].explicit_durations)[1], 4.0);
}

TEST(Adjust, ScaleParallelismDoubles) {
  JobSpec spec = make_svm(16, 0);
  spec = scale_parallelism(std::move(spec), 2.0);
  for (const auto& st : spec.stages) EXPECT_EQ(st.num_tasks, 32u);
}

}  // namespace
}  // namespace ssr
