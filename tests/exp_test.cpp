// Tests for the experiment harness (src/ssr/exp).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "ssr/common/check.h"
#include "ssr/exp/scenario.h"
#include "ssr/exp/sweep.h"

namespace ssr {
namespace {

TEST(RunResult, JctOfThrowsForUnknownName) {
  RunResult r;
  JobResult a;
  a.name = "alpha";
  a.jct = 7.0;
  r.jobs.push_back(a);
  EXPECT_DOUBLE_EQ(r.jct_of("alpha"), 7.0);
  EXPECT_THROW(r.jct_of("beta"), CheckError);
}

TEST(RunResult, MeanJctWithPrefix) {
  RunResult r;
  for (double jct : {2.0, 4.0}) {
    JobResult j;
    j.name = "bg-x";
    j.jct = jct;
    r.jobs.push_back(j);
  }
  JobResult other;
  other.name = "fg";
  other.jct = 100.0;
  r.jobs.push_back(other);
  EXPECT_DOUBLE_EQ(r.mean_jct_with_prefix("bg-"), 3.0);
  EXPECT_DOUBLE_EQ(r.mean_jct_with_prefix("zzz"), 0.0);
}

TEST(Scenario, RunScenarioPopulatesAggregates) {
  const ClusterSpec cluster{.nodes = 1, .slots_per_node = 2};
  std::vector<JobSpec> jobs;
  jobs.push_back(JobBuilder("a").stage(2, fixed_duration(10.0)).build());
  RunOptions o;
  const RunResult r = run_scenario(cluster, std::move(jobs), o);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(r.jobs[0].jct, 10.0);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
  EXPECT_DOUBLE_EQ(r.busy_time, 20.0);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
  EXPECT_EQ(r.task_totals.tasks_finished, 2u);
}

TEST(Scenario, SlowdownHelper) {
  EXPECT_DOUBLE_EQ(slowdown(30.0, 10.0), 3.0);
}

TEST(BenchArgs, DefaultsAndScaleSetFlag) {
  const char* argv[] = {"bin"};
  const BenchArgs args = BenchArgs::parse(1, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.scale, 1.0);
  EXPECT_FALSE(args.scale_set);
  EXPECT_EQ(args.seed, 1u);

  const char* argv2[] = {"bin", "--scale", "2"};
  const BenchArgs args2 = BenchArgs::parse(3, const_cast<char**>(argv2));
  EXPECT_TRUE(args2.scale_set);
  const char* bad[] = {"bin", "--scale", "0.5"};
  EXPECT_THROW(BenchArgs::parse(3, const_cast<char**>(bad)), CheckError);
}

// Convenience: parse a fixed flag/value pair and expect CheckError.
void expect_parse_throws(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "bin");
  EXPECT_THROW(BenchArgs::parse(static_cast<int>(argv.size()),
                                const_cast<char**>(argv.data())),
               CheckError)
      << "argv: " << argv[1];
}

TEST(BenchArgs, AcceptsJobsCsvJsonFlags) {
  const char* argv[] = {"bin",   "--jobs", "4",      "--csv", "/tmp/t.csv",
                        "--json", "/tmp/t.json", "--seed", "42"};
  const BenchArgs args = BenchArgs::parse(9, const_cast<char**>(argv));
  EXPECT_EQ(args.jobs, 4u);
  EXPECT_EQ(args.csv, "/tmp/t.csv");
  EXPECT_EQ(args.json, "/tmp/t.json");
  EXPECT_EQ(args.seed, 42u);
  EXPECT_EQ(BenchArgs{}.jobs, 0u);  // default: one worker per core
}

TEST(BenchArgs, RejectsNonPositiveScaleAndJobs) {
  expect_parse_throws({"--scale", "0"});
  expect_parse_throws({"--scale", "-2"});
  expect_parse_throws({"--jobs", "0"});
  expect_parse_throws({"--jobs", "-3"});
  expect_parse_throws({"--jobs", "100000"});  // implausibly large
}

TEST(BenchArgs, RejectsMalformedNumbers) {
  expect_parse_throws({"--scale", "abc"});
  expect_parse_throws({"--scale", "10x"});  // trailing garbage
  expect_parse_throws({"--scale", ""});
  expect_parse_throws({"--jobs", "2x"});
  expect_parse_throws({"--jobs", "1.5"});
  expect_parse_throws({"--seed", "junk"});
  expect_parse_throws({"--seed", "-1"});
  expect_parse_throws({"--seed", "99999999999999999999999999"});  // overflow
}

TEST(BenchArgs, RejectsUnknownFlagsAndMissingValues) {
  expect_parse_throws({"--bogus"});
  expect_parse_throws({"extra"});
  expect_parse_throws({"--scale"});  // flag with no value
  expect_parse_throws({"--jobs"});
  expect_parse_throws({"--csv"});
}

TEST(SummaryStats, ComputesMomentsAndPercentiles) {
  const SummaryStats s = SummaryStats::of({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  // sample stddev = sqrt(2.5); sem = stddev / sqrt(5)
  EXPECT_NEAR(s.sem, std::sqrt(2.5) / std::sqrt(5.0), 1e-12);

  const SummaryStats one = SummaryStats::of({7.0});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.sem, 0.0);
  EXPECT_DOUBLE_EQ(one.p99, 7.0);

  EXPECT_EQ(SummaryStats::of({}).n, 0u);
}

TEST(Summarize, GroupsByLabelInFirstAppearanceOrder) {
  std::vector<TrialResult> results;
  for (const char* label : {"b", "a", "b"}) {
    TrialResult tr;
    tr.index = results.size();
    tr.label = label;
    JobResult j;
    j.name = "x";
    j.jct = static_cast<double>(results.size() + 1);
    tr.run.jobs.push_back(j);
    tr.run.makespan = j.jct;
    tr.run.utilization = 0.5;
    results.push_back(std::move(tr));
  }
  const std::vector<GroupSummary> groups = summarize(results);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].label, "b");
  EXPECT_EQ(groups[0].trials, 2u);
  EXPECT_DOUBLE_EQ(groups[0].metrics.at("jct").mean, 2.0);  // (1 + 3) / 2
  EXPECT_EQ(groups[1].label, "a");
  EXPECT_EQ(groups[1].trials, 1u);
  EXPECT_DOUBLE_EQ(groups[1].metrics.at("makespan").mean, 2.0);
}

TEST(SweepEmission, CsvQuotesAndTagColumns) {
  TrialResult tr;
  tr.index = 0;
  tr.label = "has,comma";
  tr.tags = {{"knob", "0.5"}};
  tr.seed = 9;
  JobResult j;
  j.name = "job";
  j.jct = 1.5;
  tr.run.jobs.push_back(j);
  std::ostringstream os;
  write_trials_csv(os, {tr});
  const std::string out = os.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos)
      << "labels containing commas must be quoted:\n" << out;
  EXPECT_NE(out.find("tag:knob"), std::string::npos) << out;

  std::ostringstream js;
  write_summary_json(js, summarize({tr}));
  EXPECT_NE(js.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(js.str().find("\"jct\""), std::string::npos);
}

}  // namespace
}  // namespace ssr
