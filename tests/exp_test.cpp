// Tests for the experiment harness (src/ssr/exp).
#include <gtest/gtest.h>

#include "ssr/common/check.h"
#include "ssr/exp/scenario.h"

namespace ssr {
namespace {

TEST(RunResult, JctOfThrowsForUnknownName) {
  RunResult r;
  JobResult a;
  a.name = "alpha";
  a.jct = 7.0;
  r.jobs.push_back(a);
  EXPECT_DOUBLE_EQ(r.jct_of("alpha"), 7.0);
  EXPECT_THROW(r.jct_of("beta"), CheckError);
}

TEST(RunResult, MeanJctWithPrefix) {
  RunResult r;
  for (double jct : {2.0, 4.0}) {
    JobResult j;
    j.name = "bg-x";
    j.jct = jct;
    r.jobs.push_back(j);
  }
  JobResult other;
  other.name = "fg";
  other.jct = 100.0;
  r.jobs.push_back(other);
  EXPECT_DOUBLE_EQ(r.mean_jct_with_prefix("bg-"), 3.0);
  EXPECT_DOUBLE_EQ(r.mean_jct_with_prefix("zzz"), 0.0);
}

TEST(Scenario, RunScenarioPopulatesAggregates) {
  const ClusterSpec cluster{.nodes = 1, .slots_per_node = 2};
  std::vector<JobSpec> jobs;
  jobs.push_back(JobBuilder("a").stage(2, fixed_duration(10.0)).build());
  RunOptions o;
  const RunResult r = run_scenario(cluster, std::move(jobs), o);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(r.jobs[0].jct, 10.0);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
  EXPECT_DOUBLE_EQ(r.busy_time, 20.0);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
  EXPECT_EQ(r.task_totals.tasks_finished, 2u);
}

TEST(Scenario, SlowdownHelper) {
  EXPECT_DOUBLE_EQ(slowdown(30.0, 10.0), 3.0);
}

TEST(BenchArgs, DefaultsAndScaleSetFlag) {
  const char* argv[] = {"bin"};
  const BenchArgs args = BenchArgs::parse(1, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.scale, 1.0);
  EXPECT_FALSE(args.scale_set);
  EXPECT_EQ(args.seed, 1u);

  const char* argv2[] = {"bin", "--scale", "2"};
  const BenchArgs args2 = BenchArgs::parse(3, const_cast<char**>(argv2));
  EXPECT_TRUE(args2.scale_set);
  const char* bad[] = {"bin", "--scale", "0.5"};
  EXPECT_THROW(BenchArgs::parse(3, const_cast<char**>(bad)), CheckError);
}

}  // namespace
}  // namespace ssr
