// The golden-replay scenario definitions, shared between suites.
//
// golden_replay_test pins these scenarios' closed-batch (run_scenario)
// digests to committed files under tests/golden/; open_system_test replays
// the *same* inputs through the open-system stepping API and asserts the
// digests — and therefore the committed goldens — are reproduced byte for
// byte.  Keeping the job mixes and options in one header is what makes that
// a statement about the engine rather than about two test files agreeing.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ssr/exp/policy_zoo.h"
#include "ssr/exp/scenario.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/sqlbench.h"
#include "ssr/workload/tracegen.h"

namespace ssr {

struct GoldenPass {
  std::string title;  ///< digest line header, e.g. "fig12/nossr"
  RunOptions options;
  std::vector<JobSpec> jobs;
};

struct GoldenScenario {
  std::string name;  ///< test-facing name, e.g. "fig12"
  std::string file;  ///< committed digest under tests/golden/
  ClusterSpec cluster;
  std::vector<GoldenPass> passes{};
};

// Fig. 12 shape: 50x2 cluster, trace background, one high-priority KMeans
// foreground; contrasted with and without strict SSR.
inline GoldenScenario fig12_scenario() {
  GoldenScenario s{.name = "fig12",
                   .file = "fig12.golden",
                   .cluster = {.nodes = 50, .slots_per_node = 2}};
  TraceGenConfig bg;
  bg.num_jobs = 12;
  bg.window = 450.0;
  bg.seed = 1001;

  RunOptions base;
  base.seed = 1;
  RunOptions with_ssr = base;
  with_ssr.ssr = SsrConfig{};
  with_ssr.ssr->min_reserving_priority = 1;

  std::vector<JobSpec> jobs = make_background_jobs(bg);
  jobs.push_back(make_kmeans(20, 10, bg.window * 0.25));
  s.passes.push_back({"fig12/nossr", base, jobs});
  s.passes.push_back({"fig12/ssr", with_ssr, std::move(jobs)});
  return s;
}

// Fig. 14 shape: the isolation-utilization knob.  P < 1 arms reservation
// deadlines, so this digest also pins the expiry machinery.
inline GoldenScenario fig14_scenario() {
  GoldenScenario s{.name = "fig14",
                   .file = "fig14.golden",
                   .cluster = {.nodes = 50, .slots_per_node = 2}};
  TraceGenConfig bg;
  bg.num_jobs = 12;
  bg.window = 450.0;
  bg.seed = 2001;

  for (const double p : {1.0, 0.4, 0.05}) {
    RunOptions o;
    o.seed = 1;
    o.ssr = SsrConfig{};
    o.ssr->min_reserving_priority = 1;
    o.ssr->isolation_p = p;
    std::vector<JobSpec> jobs = make_background_jobs(bg);
    jobs.push_back(make_svm(20, 10, bg.window * 0.25));
    std::ostringstream title;
    title << "fig14/P=" << p;
    s.passes.push_back({title.str(), o, std::move(jobs)});
  }
  return s;
}

// Fig. 15 shape (scaled 1/8): 125 nodes x 4 slots, trace background, SQL
// foreground queries — the scenario the hot-path indexes were built for.
inline GoldenScenario fig15_scenario() {
  GoldenScenario s{.name = "fig15",
                   .file = "fig15.golden",
                   .cluster = {.nodes = 125, .slots_per_node = 4}};
  TraceGenConfig bg;
  bg.num_jobs = 500;
  bg.window = 1800.0;
  bg.seed = 43;

  for (int pass = 0; pass < 2; ++pass) {
    RunOptions o;
    o.sched.locality_wait = 3.0;
    o.sched.locality_slowdown = 5.0;
    o.seed = 1;
    if (pass == 1) {
      o.ssr = SsrConfig{};
      o.ssr->min_reserving_priority = 1;
    }
    std::vector<JobSpec> jobs = make_background_jobs(bg);
    for (std::uint32_t q = 0; q < 10; ++q) {
      SqlJobParams p;
      p.query_index = q;
      p.base_parallelism = 20;
      p.priority = 10;
      p.submit_time = bg.window * 0.2 + 30.0 * q;
      jobs.push_back(make_sql_query(p));
    }
    s.passes.push_back(
        {pass == 0 ? "fig15/nossr" : "fig15/ssr", o, std::move(jobs)});
  }
  return s;
}

// Failure-recovery shape: the fig12 isolation scenario, scaled down, with a
// deterministic node-failure schedule injected mid-run.  The digest pins the
// full kill -> re-queue -> copy-wins ordering: attempts killed by dead slots
// re-enter the queue, straggler copies already running elsewhere win the
// race and mask failures, and invalidated resident outputs force producer
// stages to re-run — all without losing a single task.
inline GoldenScenario failure_recovery_scenario() {
  GoldenScenario s{.name = "failure_recovery",
                   .file = "failure_recovery.golden",
                   .cluster = {.nodes = 10, .slots_per_node = 2}};
  TraceGenConfig bg;
  bg.num_jobs = 8;
  bg.window = 300.0;
  bg.seed = 3001;

  RunOptions o;
  o.seed = 1;
  o.ssr = SsrConfig{};
  o.ssr->min_reserving_priority = 1;
  o.ssr->enable_straggler_mitigation = true;
  // Two transient node outages during the foreground job plus one permanent
  // loss, so the digest covers kill/re-queue, recovery, and a node that
  // never comes back (its resident outputs stay lost).
  o.failures.events.push_back(
      FailureEvent{FailureEvent::Scope::Node, 0, 120.0, 160.0});
  o.failures.events.push_back(
      FailureEvent{FailureEvent::Scope::Node, 7, 140.0, 170.0});
  o.failures.events.push_back(
      FailureEvent{FailureEvent::Scope::Node, 5, 110.0, kTimeInfinity});

  std::vector<JobSpec> jobs = make_background_jobs(bg);
  jobs.push_back(make_kmeans(12, 10, bg.window * 0.25));
  s.passes.push_back({"failure/ssr+mitigation", o, std::move(jobs)});
  return s;
}

// Policy-zoo goldens: the fig12 isolation shape run once per zoo policy
// (exp/policy_zoo.h), with per-stage demand vectors on so resource-vector
// arithmetic is under digest everywhere.  The packing pass additionally
// runs on a heterogeneous cluster — capacity spread is what gives
// packing_waste a gradient; on a homogeneous cluster every slot ties and
// the selector collapses to id order.  The undersized {0.5,1,1} slots also
// pin the per-slot fits_in rejection path.
inline GoldenScenario zoo_policy_scenario(ZooPolicy policy) {
  const std::string name = zoo_policy_name(policy);
  GoldenScenario s{.name = "policy_" + name,
                   .file = "policy_" + name + ".golden",
                   .cluster = {.nodes = 50, .slots_per_node = 2}};
  if (policy == ZooPolicy::kPacking) {
    s.cluster.node_slots.assign(
        s.cluster.nodes,
        {Resources{1.0, 1.0, 1.0}, Resources{1.0, 1.0, 1.0}});
    for (std::size_t n = 1; n < s.cluster.node_slots.size(); n += 2) {
      s.cluster.node_slots[n] = {Resources{2.0, 2.0, 2.0},
                                 Resources{0.5, 1.0, 1.0}};
    }
  }
  TraceGenConfig bg;
  bg.num_jobs = 12;
  bg.window = 450.0;
  bg.seed = 1001;
  bg.vary_demand = true;

  RunOptions o;
  o.seed = 1;
  apply_zoo_policy(policy, s.cluster, o);

  std::vector<JobSpec> jobs = make_background_jobs(bg);
  jobs.push_back(make_kmeans(20, 10, bg.window * 0.25));
  s.passes.push_back({"policy_zoo/" + name, o, std::move(jobs)});
  return s;
}

inline std::vector<GoldenScenario> golden_scenarios() {
  std::vector<GoldenScenario> all;
  all.push_back(fig12_scenario());
  all.push_back(fig14_scenario());
  all.push_back(fig15_scenario());
  all.push_back(failure_recovery_scenario());
  for (ZooPolicy policy : all_zoo_policies()) {
    all.push_back(zoo_policy_scenario(policy));
  }
  return all;
}

}  // namespace ssr
