// Property-based tests: invariants checked over randomized workload sweeps
// (parameterized gtest).  These complement the example-driven unit tests by
// exercising the scheduler + SSR core on hundreds of generated scenarios.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ssr/audit/tenant_audit.h"
#include "ssr/audit/violation.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/exp/scenario.h"
#include "ssr/exp/sweep.h"
#include "ssr/sched/engine.h"
#include "ssr/sched/virtual_cluster.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/open_arrival.h"
#include "ssr/workload/sqlbench.h"
#include "ssr/workload/tracegen.h"

namespace ssr {
namespace {

/// Decorates a ReservationManager, auditing every approval decision against
/// the cluster's actual slot state: a reserved slot must never be approved
/// for an equal-or-lower-priority foreign job, and an idle slot must always
/// be approved (work conservation at the approval layer).
class AuditingHook : public ReservationHook {
 public:
  explicit AuditingHook(SsrConfig cfg) : inner_(cfg) {}

  void on_task_finished(Engine& e, const TaskFinishInfo& i) override {
    inner_.on_task_finished(e, i);
  }
  void on_task_killed(Engine& e, const TaskFinishInfo& i) override {
    inner_.on_task_killed(e, i);
  }
  void on_slot_idle(Engine& e, SlotId s) override { inner_.on_slot_idle(e, s); }
  bool approve(const Engine& e, SlotId slot, JobId job,
               int priority) const override {
    const bool result = inner_.approve(e, slot, job, priority);
    const Slot& s = e.cluster().slot(slot);
    switch (s.state()) {
      case SlotState::Idle:
        EXPECT_TRUE(result) << "idle slot denied";
        break;
      case SlotState::ReservedIdle: {
        const Reservation& r = *s.reservation();
        const bool allowed = r.job == job || priority > r.priority;
        EXPECT_EQ(result, allowed)
            << "approval decision diverged from Algorithm 1's rule";
        if (!allowed) ++denied_;
        break;
      }
      case SlotState::Busy:
        EXPECT_FALSE(result) << "busy slot approved";
        break;
      case SlotState::Dead:
        EXPECT_FALSE(result) << "dead slot approved";
        break;
    }
    return result;
  }
  void on_stage_submitted(Engine& e, StageId s) override {
    inner_.on_stage_submitted(e, s);
  }
  void on_stage_fully_placed(Engine& e, StageId s) override {
    inner_.on_stage_fully_placed(e, s);
  }
  void on_task_started(Engine& e, TaskId t, SlotId s) override {
    inner_.on_task_started(e, t, s);
  }
  void on_job_finished(Engine& e, JobId j) override {
    inner_.on_job_finished(e, j);
  }

  std::uint64_t denied() const { return denied_; }

 private:
  ReservationManager inner_;
  mutable std::uint64_t denied_ = 0;
};

/// Barrier auditor usable under random contention.
class BarrierAuditor : public EngineObserver {
 public:
  void on_stage_finished(const Engine& engine, StageId stage) override {
    finish_[stage] = engine.sim().now();
  }
  void on_task_started(const Engine& engine, TaskId task, SlotId) override {
    const JobGraph& g = engine.graph(task.stage.job);
    for (std::uint32_t p : g.stage(task.stage.index).parents) {
      auto it = finish_.find(g.stage_id(p));
      ASSERT_NE(it, finish_.end());
      ASSERT_LE(it->second, engine.sim().now());
    }
  }

 private:
  std::map<StageId, SimTime> finish_;
};

std::vector<JobSpec> random_mix(std::uint64_t seed) {
  TraceGenConfig bg;
  bg.num_jobs = 25;
  bg.window = 400.0;
  bg.seed = seed;
  auto jobs = make_background_jobs(bg);
  jobs.push_back(make_kmeans(12, 10, 50.0));
  SqlJobParams sql;
  sql.query_index = static_cast<std::uint32_t>(seed % 20);
  sql.base_parallelism = 10;
  sql.priority = 10;
  sql.submit_time = 80.0;
  jobs.push_back(make_sql_query(sql));
  return jobs;
}

struct SweepCase {
  std::uint64_t seed;
  double isolation_p;
  bool mitigate;
  SchedulingPolicy policy;
};

class RandomScenarioSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RandomScenarioSweep, InvariantsHoldEndToEnd) {
  const SweepCase& c = GetParam();
  SchedConfig sched;
  sched.policy = c.policy;
  Engine engine(sched, 8, 2, c.seed);

  SsrConfig cfg;
  cfg.isolation_p = c.isolation_p;
  cfg.enable_straggler_mitigation = c.mitigate;
  auto hook = std::make_unique<AuditingHook>(cfg);
  engine.set_reservation_hook(std::move(hook));

  BarrierAuditor barriers;
  engine.add_observer(&barriers);

  std::vector<JobId> ids;
  for (JobSpec& spec : random_mix(c.seed)) {
    ids.push_back(engine.submit(std::move(spec)));
  }
  engine.run();  // throws if any job wedges (liveness)

  for (JobId id : ids) {
    EXPECT_TRUE(engine.job_finished(id));
    EXPECT_GT(engine.jct(id), 0.0);
  }
  // Accounting sanity: settling twice is idempotent; utilization in [0, 1].
  engine.cluster().settle(engine.sim().now());
  const double util = engine.cluster().utilization(engine.sim().now());
  EXPECT_GE(util, 0.0);
  EXPECT_LE(util, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomScenarioSweep,
    ::testing::Values(
        SweepCase{1, 1.0, false, SchedulingPolicy::Priority},
        SweepCase{2, 1.0, true, SchedulingPolicy::Priority},
        SweepCase{3, 0.5, false, SchedulingPolicy::Priority},
        SweepCase{4, 0.5, true, SchedulingPolicy::Priority},
        SweepCase{5, 0.2, true, SchedulingPolicy::Priority},
        SweepCase{6, 1.0, false, SchedulingPolicy::Fair},
        SweepCase{7, 1.0, true, SchedulingPolicy::Fair},
        SweepCase{8, 0.7, true, SchedulingPolicy::Fair},
        SweepCase{9, 0.9, false, SchedulingPolicy::Fair},
        SweepCase{10, 0.3, false, SchedulingPolicy::Priority}));

class AloneJctProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AloneJctProperty, ChainAloneEqualsSumOfStageMaxima) {
  // A stable-parallelism chain job alone on a big-enough cluster finishes in
  // exactly the sum of per-stage maxima: barriers add no other delay and
  // every downstream task finds a data-local slot.  (Width-expanding chains
  // would legitimately pay locality penalties for the extra tasks.)
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  JobBuilder b("chain");
  double expected = 0.0;
  const int stages = 2 + static_cast<int>(seed % 4);
  const std::uint32_t width =
      2 + static_cast<std::uint32_t>(rng.uniform_int(0, 6));
  for (int s = 0; s < stages; ++s) {
    std::vector<double> durations(width);
    double mx = 0.0;
    for (double& d : durations) {
      d = rng.uniform(1.0, 20.0);
      mx = std::max(mx, d);
    }
    b.stage(width, fixed_duration(1.0)).explicit_durations(durations);
    expected += mx;
  }
  Engine engine(SchedConfig{}, 4, 4, seed);
  const JobId id = engine.submit(b.build());
  engine.run();
  EXPECT_NEAR(engine.jct(id), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AloneJctProperty,
                         ::testing::Range<std::uint64_t>(100, 120));

class ConservationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationProperty, BusyTimeEqualsExecutedWork) {
  // Without SSR and without locality penalties (single-stage jobs only),
  // total busy slot-time must equal the sum of all task durations: no work
  // is lost, duplicated, or inflated.
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  Engine engine(SchedConfig{}, 3, 2, seed);
  double total_work = 0.0;
  for (int j = 0; j < 12; ++j) {
    const std::uint32_t width = 1 + static_cast<std::uint32_t>(rng.uniform_int(0, 8));
    std::vector<double> durations(width);
    for (double& d : durations) {
      d = rng.uniform(0.5, 30.0);
      total_work += d;
    }
    engine.submit(JobBuilder("j" + std::to_string(j))
                      .priority(static_cast<int>(seed + j) % 3)
                      .submit_at(rng.uniform(0.0, 60.0))
                      .stage(width, fixed_duration(1.0))
                      .explicit_durations(durations)
                      .build());
  }
  engine.run();
  engine.cluster().settle(engine.sim().now());
  EXPECT_NEAR(engine.cluster().total_busy_time(), total_work, 1e-6);
  EXPECT_DOUBLE_EQ(engine.cluster().total_reserved_idle_time(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationProperty,
                         ::testing::Range<std::uint64_t>(200, 215));

class SweepAccountingProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SweepAccountingProperty, InvariantsHoldOverRandomizedTrials) {
  // Run randomized contended scenarios through the parallel sweep runner and
  // check the slot-time ledger on every RunResult it hands back:
  //  * busy + reserved-idle slot-seconds can never exceed the cluster's
  //    capacity over the run (total_slots x makespan);
  //  * utilization is a fraction of that capacity, so it lives in [0, 1];
  //  * no job finishes before it was submitted.
  // These hold for the baseline, for SSR, and for the naive policies — the
  // accounting is policy-independent.
  const std::uint64_t seed = GetParam();
  std::vector<Trial> grid;
  for (const bool use_ssr : {false, true}) {
    Trial t;
    t.cluster = ClusterSpec{.nodes = 8, .slots_per_node = 2};
    t.jobs = random_mix(seed);
    if (use_ssr) {
      SsrConfig cfg;
      cfg.isolation_p = 0.25 + 0.15 * static_cast<double>(seed % 6);
      cfg.enable_straggler_mitigation = (seed % 2) == 0;
      t.options.ssr = cfg;
    }
    t.options.seed = seed;
    t.label = use_ssr ? "ssr" : "baseline";
    grid.push_back(std::move(t));
  }
  SweepOptions options;
  options.num_workers = 2;
  const SweepRunner runner(options);
  const std::vector<TrialResult> results = runner.run(grid);
  ASSERT_EQ(results.size(), grid.size());

  for (const TrialResult& tr : results) {
    const RunResult& r = tr.run;
    const double capacity =
        static_cast<double>(grid[tr.index].cluster.total_slots()) *
        r.makespan;
    EXPECT_GT(r.makespan, 0.0) << tr.label;
    EXPECT_GE(r.busy_time, 0.0) << tr.label;
    EXPECT_GE(r.reserved_idle_time, 0.0) << tr.label;
    EXPECT_LE(r.busy_time + r.reserved_idle_time, capacity * (1.0 + 1e-9))
        << tr.label << ": slot-time ledger exceeds cluster capacity";
    EXPECT_GE(r.utilization, 0.0) << tr.label;
    EXPECT_LE(r.utilization, 1.0 + 1e-9) << tr.label;
    for (const JobResult& j : r.jobs) {
      EXPECT_GE(j.finish, j.submit) << tr.label << " job " << j.name;
      EXPECT_NEAR(j.jct, j.finish - j.submit, 1e-9) << tr.label;
    }
    // Baseline runs reserve nothing, so their ledger has no reserved-idle.
    if (tr.label == "baseline") {
      EXPECT_DOUBLE_EQ(r.reserved_idle_time, 0.0);
      EXPECT_EQ(r.reservations_expired, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepAccountingProperty,
                         ::testing::Range<std::uint64_t>(400, 412));

TEST(ReservationProperty, StrictIsolationGivesBarrierContinuity) {
  // With SSR at P = 1 and stable parallelism, a foreground chain running
  // against arbitrary lower-priority contention must progress through
  // every barrier without delay: stage k+1 starts exactly when stage k
  // finishes (its slots were reserved), so the contended JCT (from first
  // task start) equals the alone JCT.
  for (std::uint64_t seed = 300; seed < 310; ++seed) {
    const ClusterSpec cluster{.nodes = 6, .slots_per_node = 2};
    RunOptions o;
    o.seed = seed;
    // Materialize explicit durations so the alone and contended runs execute
    // the *identical* job (the engine RNG's draw order differs between them).
    JobSpec fg = make_kmeans(12, 10, 0.0);
    Rng duration_rng(seed * 7 + 1);
    for (StageSpec& st : fg.stages) {
      std::vector<double> d(st.num_tasks);
      for (double& x : d) x = st.duration->sample(duration_rng);
      st.explicit_durations = std::move(d);
    }
    const double alone = alone_jct(cluster, fg, o);

    Engine engine(SchedConfig{}, 6, 2, seed);
    engine.set_reservation_hook(
        std::make_unique<ReservationManager>(SsrConfig{}));
    TraceGenConfig bg;
    bg.num_jobs = 20;
    bg.window = 200.0;
    bg.seed = seed;
    for (JobSpec& spec : make_background_jobs(bg)) {
      engine.submit(std::move(spec));
    }
    // Submit the foreground at t=0 so its phase 1 starts on the empty
    // cluster (isolation protects steady state, not admission).
    const JobId fg_id = engine.submit(fg);
    engine.run();
    EXPECT_NEAR(engine.jct(fg_id), alone, alone * 0.02) << "seed " << seed;
  }
}

/// Drives one open-arrival stream through a VirtualClusterManager: advance to
/// each arrival instant, submit, and (optionally) run `at_arrival` first so
/// tests can interleave resize/transfer with live traffic.
void drive_open_arrivals(
    Engine& engine, VirtualClusterManager& vcm,
    std::vector<OpenArrival> arrivals,
    const std::function<void(std::size_t)>& at_arrival = nullptr) {
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    engine.advance_to(arrivals[i].at);
    if (at_arrival) at_arrival(i);
    vcm.submit_job(arrivals[i].tenant, std::move(arrivals[i].spec));
  }
  engine.drain();
}

void expect_tenant_audit_clean(const VirtualClusterManager& vcm,
                               std::uint32_t physical_slots) {
  const auto violations = audit::audit_virtual_clusters(vcm, physical_slots);
  EXPECT_TRUE(violations.empty()) << audit::format_report(violations);
}

class VirtualClusterProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(VirtualClusterProperty, AdmissionNeverExceedsMaxShare) {
  // At every instant, each tenant's in-flight slot demand stays within its
  // elastic maximum share.  Demand only grows at admission, so checking after
  // every submit_job (plus the replayed admission log) covers all instants.
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 11 + 3);
  const std::uint32_t nodes = 4 + static_cast<std::uint32_t>(rng.uniform_int(0, 4));
  Engine engine(SchedConfig{}, nodes, 2, seed);
  const std::uint32_t total = nodes * 2;
  VirtualClusterManager vcm(engine);
  vcm.add_cluster({.name = "gold",
                   .min_slots = total / 3,
                   .max_slots = total / 2 + 1,
                   .queue_when_full = true});
  vcm.add_cluster({.name = "silver",
                   .min_slots = total / 4,
                   .max_slots = total / 2,
                   .queue_when_full = (seed % 2) == 0});

  std::vector<OpenTenantProfile> profiles;
  profiles.push_back({.tenant = "gold",
                      .mean_interarrival = 12.0,
                      .num_jobs = 20,
                      .min_parallelism = 2,
                      .max_parallelism = total,
                      .priority = 5});
  profiles.push_back({.tenant = "silver",
                      .mean_interarrival = 9.0,
                      .num_jobs = 25,
                      .min_parallelism = 2,
                      .max_parallelism = total,
                      .priority = 0});
  drive_open_arrivals(engine, vcm, make_open_arrivals(profiles, seed),
                      [&](std::size_t) {
                        for (const std::string& t : vcm.tenant_names()) {
                          EXPECT_LE(vcm.stats(t).demand_in_flight,
                                    vcm.spec(t).max_slots)
                              << t;
                        }
                      });

  for (const AdmissionRecord& a : vcm.admission_log()) {
    EXPECT_LE(a.in_flight_after, a.max_at_admit) << a.tenant << " " << a.job;
    EXPECT_GE(a.admitted_at, a.requested_at) << a.tenant << " " << a.job;
  }
  EXPECT_TRUE(vcm.all_queues_empty());
  for (const std::string& t : vcm.tenant_names()) {
    const TenantStats& s = vcm.stats(t);
    EXPECT_EQ(s.submitted, s.admitted + s.rejected) << t;
    EXPECT_EQ(s.admitted, s.completed) << t;
    EXPECT_EQ(s.jobs_in_flight, 0u) << t;
    EXPECT_EQ(s.demand_in_flight, 0u) << t;
    EXPECT_LE(s.peak_demand_in_flight, vcm.spec(t).max_slots) << t;
  }
  expect_tenant_audit_clean(vcm, total);
}

TEST_P(VirtualClusterProperty, TransferConservesTotalShares) {
  // Elastic resize via transfer() moves shares between tenants but conserves
  // the totals exactly, even while arrivals and completions are in flight.
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 13 + 7);
  Engine engine(SchedConfig{}, 6, 2, seed);  // 12 physical slots
  VirtualClusterManager vcm(engine);
  vcm.add_cluster({.name = "a", .min_slots = 4, .max_slots = 10});
  vcm.add_cluster({.name = "b", .min_slots = 2, .max_slots = 10});
  vcm.add_cluster({.name = "c", .min_slots = 0, .max_slots = 8});
  const std::uint32_t total_min = 6, total_max = 28;

  std::vector<OpenTenantProfile> profiles;
  for (const char* name : {"a", "b", "c"}) {
    // Widest stages reach lround(1.5 x parallelism) = 6 slots, never more
    // than any reachable maximum (transfers below keep max >= 6), so queued
    // heads always fit and transfers stay legal.
    profiles.push_back({.tenant = name,
                        .mean_interarrival = 10.0,
                        .num_jobs = 15,
                        .min_parallelism = 2,
                        .max_parallelism = 4});
  }
  const std::vector<std::string> names = vcm.tenant_names();
  std::uint64_t transfers = 0;
  drive_open_arrivals(
      engine, vcm, make_open_arrivals(profiles, seed), [&](std::size_t) {
        if (rng.uniform_int(0, 2) != 0) return;
        const std::string& from = names[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(names.size()) - 1))];
        const std::string& to = names[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(names.size()) - 1))];
        if (from == to || vcm.spec(from).min_slots < 1 ||
            vcm.spec(from).max_slots < 7) {
          return;
        }
        vcm.transfer(from, to, 1);
        ++transfers;
        std::uint32_t sum_min = 0, sum_max = 0;
        for (const std::string& t : names) {
          sum_min += vcm.spec(t).min_slots;
          sum_max += vcm.spec(t).max_slots;
        }
        EXPECT_EQ(sum_min, total_min);
        EXPECT_EQ(sum_max, total_max);
      });
  EXPECT_GT(transfers, 0u) << "sweep never exercised transfer()";
  EXPECT_TRUE(vcm.all_queues_empty());
  expect_tenant_audit_clean(vcm, 12);
}

TEST_P(VirtualClusterProperty, StarvedTenantQueueDrainsByQuiescence) {
  // A tenant squeezed well below the physical cluster queues most of its
  // traffic behind a slot-hungry neighbor — but every queued job is admitted
  // and completed by quiescence (drain() strands nothing), because a queued
  // head always fits the tenant's maximum share.
  const std::uint64_t seed = GetParam();
  Engine engine(SchedConfig{}, 6, 2, seed);  // 12 physical slots
  VirtualClusterManager vcm(engine);
  vcm.add_cluster({.name = "hog", .min_slots = 6, .max_slots = 12});
  vcm.add_cluster({.name = "starved", .min_slots = 2, .max_slots = 6});

  std::vector<OpenTenantProfile> profiles;
  profiles.push_back({.tenant = "hog",
                      .mean_interarrival = 8.0,
                      .num_jobs = 30,
                      .min_parallelism = 6,
                      .max_parallelism = 10,
                      .priority = 5});
  // Widest stage <= lround(1.5 x 4) = 6 == max share, so nothing is ever
  // rejected: every over-quota submission round-trips through the queue.
  profiles.push_back({.tenant = "starved",
                      .mean_interarrival = 15.0,
                      .num_jobs = 12,
                      .min_parallelism = 3,
                      .max_parallelism = 4});
  drive_open_arrivals(engine, vcm, make_open_arrivals(profiles, seed));

  const TenantStats& s = vcm.stats("starved");
  EXPECT_EQ(s.submitted, 12u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.admitted, 12u);
  EXPECT_EQ(s.completed, 12u);
  EXPECT_GT(s.queued_total, 0u) << "sweep never exercised the queue";
  EXPECT_GT(s.max_queue_delay, 0.0);
  EXPECT_TRUE(vcm.all_queues_empty());
  EXPECT_EQ(vcm.queued_jobs("starved"), 0u);
  expect_tenant_audit_clean(vcm, 12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VirtualClusterProperty,
                         ::testing::Range<std::uint64_t>(500, 512));

}  // namespace
}  // namespace ssr
