// Property-based tests: invariants checked over randomized workload sweeps
// (parameterized gtest).  These complement the example-driven unit tests by
// exercising the scheduler + SSR core on hundreds of generated scenarios.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ssr/audit/tenant_audit.h"
#include "ssr/audit/violation.h"
#include "ssr/common/check.h"
#include "ssr/common/rng.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/exp/harness.h"
#include "ssr/exp/policy_zoo.h"
#include "ssr/exp/scenario.h"
#include "ssr/exp/sweep.h"
#include "ssr/sched/engine.h"
#include "ssr/sched/policies/table_driven.h"
#include "ssr/sched/virtual_cluster.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/open_arrival.h"
#include "ssr/workload/sqlbench.h"
#include "ssr/workload/tracegen.h"

namespace ssr {
namespace {

/// Decorates a ReservationManager, auditing every approval decision against
/// the cluster's actual slot state: a reserved slot must never be approved
/// for an equal-or-lower-priority foreign job, and an idle slot must always
/// be approved (work conservation at the approval layer).
class AuditingHook : public ReservationHook {
 public:
  explicit AuditingHook(SsrConfig cfg) : inner_(cfg) {}

  void on_task_finished(Engine& e, const TaskFinishInfo& i) override {
    inner_.on_task_finished(e, i);
  }
  void on_task_killed(Engine& e, const TaskFinishInfo& i) override {
    inner_.on_task_killed(e, i);
  }
  void on_slot_idle(Engine& e, SlotId s) override { inner_.on_slot_idle(e, s); }
  bool approve(const Engine& e, SlotId slot, JobId job,
               int priority) const override {
    const bool result = inner_.approve(e, slot, job, priority);
    const Slot& s = e.cluster().slot(slot);
    switch (s.state()) {
      case SlotState::Idle:
        EXPECT_TRUE(result) << "idle slot denied";
        break;
      case SlotState::ReservedIdle: {
        const Reservation& r = *s.reservation();
        const bool allowed = r.job == job || priority > r.priority;
        EXPECT_EQ(result, allowed)
            << "approval decision diverged from Algorithm 1's rule";
        if (!allowed) ++denied_;
        break;
      }
      case SlotState::Busy:
        EXPECT_FALSE(result) << "busy slot approved";
        break;
      case SlotState::Dead:
        EXPECT_FALSE(result) << "dead slot approved";
        break;
    }
    return result;
  }
  void on_stage_submitted(Engine& e, StageId s) override {
    inner_.on_stage_submitted(e, s);
  }
  void on_stage_fully_placed(Engine& e, StageId s) override {
    inner_.on_stage_fully_placed(e, s);
  }
  void on_task_started(Engine& e, TaskId t, SlotId s) override {
    inner_.on_task_started(e, t, s);
  }
  void on_job_finished(Engine& e, JobId j) override {
    inner_.on_job_finished(e, j);
  }

  std::uint64_t denied() const { return denied_; }

 private:
  ReservationManager inner_;
  mutable std::uint64_t denied_ = 0;
};

/// Barrier auditor usable under random contention.
class BarrierAuditor : public EngineObserver {
 public:
  void on_stage_finished(const Engine& engine, StageId stage) override {
    finish_[stage] = engine.sim().now();
  }
  void on_task_started(const Engine& engine, TaskId task, SlotId) override {
    const JobGraph& g = engine.graph(task.stage.job);
    for (std::uint32_t p : g.stage(task.stage.index).parents) {
      auto it = finish_.find(g.stage_id(p));
      ASSERT_NE(it, finish_.end());
      ASSERT_LE(it->second, engine.sim().now());
    }
  }

 private:
  std::map<StageId, SimTime> finish_;
};

std::vector<JobSpec> random_mix(std::uint64_t seed) {
  TraceGenConfig bg;
  bg.num_jobs = 25;
  bg.window = 400.0;
  bg.seed = seed;
  auto jobs = make_background_jobs(bg);
  jobs.push_back(make_kmeans(12, 10, 50.0));
  SqlJobParams sql;
  sql.query_index = static_cast<std::uint32_t>(seed % 20);
  sql.base_parallelism = 10;
  sql.priority = 10;
  sql.submit_time = 80.0;
  jobs.push_back(make_sql_query(sql));
  return jobs;
}

struct SweepCase {
  std::uint64_t seed;
  double isolation_p;
  bool mitigate;
  SchedulingPolicy policy;
};

class RandomScenarioSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RandomScenarioSweep, InvariantsHoldEndToEnd) {
  const SweepCase& c = GetParam();
  SchedConfig sched;
  sched.policy = c.policy;
  Engine engine(sched, 8, 2, c.seed);

  SsrConfig cfg;
  cfg.isolation_p = c.isolation_p;
  cfg.enable_straggler_mitigation = c.mitigate;
  auto hook = std::make_unique<AuditingHook>(cfg);
  engine.set_reservation_hook(std::move(hook));

  BarrierAuditor barriers;
  engine.add_observer(&barriers);

  std::vector<JobId> ids;
  for (JobSpec& spec : random_mix(c.seed)) {
    ids.push_back(engine.submit(std::move(spec)));
  }
  engine.run();  // throws if any job wedges (liveness)

  for (JobId id : ids) {
    EXPECT_TRUE(engine.job_finished(id));
    EXPECT_GT(engine.jct(id), 0.0);
  }
  // Accounting sanity: settling twice is idempotent; utilization in [0, 1].
  engine.cluster().settle(engine.sim().now());
  const double util = engine.cluster().utilization(engine.sim().now());
  EXPECT_GE(util, 0.0);
  EXPECT_LE(util, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomScenarioSweep,
    ::testing::Values(
        SweepCase{1, 1.0, false, SchedulingPolicy::Priority},
        SweepCase{2, 1.0, true, SchedulingPolicy::Priority},
        SweepCase{3, 0.5, false, SchedulingPolicy::Priority},
        SweepCase{4, 0.5, true, SchedulingPolicy::Priority},
        SweepCase{5, 0.2, true, SchedulingPolicy::Priority},
        SweepCase{6, 1.0, false, SchedulingPolicy::Fair},
        SweepCase{7, 1.0, true, SchedulingPolicy::Fair},
        SweepCase{8, 0.7, true, SchedulingPolicy::Fair},
        SweepCase{9, 0.9, false, SchedulingPolicy::Fair},
        SweepCase{10, 0.3, false, SchedulingPolicy::Priority}));

class AloneJctProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AloneJctProperty, ChainAloneEqualsSumOfStageMaxima) {
  // A stable-parallelism chain job alone on a big-enough cluster finishes in
  // exactly the sum of per-stage maxima: barriers add no other delay and
  // every downstream task finds a data-local slot.  (Width-expanding chains
  // would legitimately pay locality penalties for the extra tasks.)
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  JobBuilder b("chain");
  double expected = 0.0;
  const int stages = 2 + static_cast<int>(seed % 4);
  const std::uint32_t width =
      2 + static_cast<std::uint32_t>(rng.uniform_int(0, 6));
  for (int s = 0; s < stages; ++s) {
    std::vector<double> durations(width);
    double mx = 0.0;
    for (double& d : durations) {
      d = rng.uniform(1.0, 20.0);
      mx = std::max(mx, d);
    }
    b.stage(width, fixed_duration(1.0)).explicit_durations(durations);
    expected += mx;
  }
  Engine engine(SchedConfig{}, 4, 4, seed);
  const JobId id = engine.submit(b.build());
  engine.run();
  EXPECT_NEAR(engine.jct(id), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AloneJctProperty,
                         ::testing::Range<std::uint64_t>(100, 120));

class ConservationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationProperty, BusyTimeEqualsExecutedWork) {
  // Without SSR and without locality penalties (single-stage jobs only),
  // total busy slot-time must equal the sum of all task durations: no work
  // is lost, duplicated, or inflated.
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  Engine engine(SchedConfig{}, 3, 2, seed);
  double total_work = 0.0;
  for (int j = 0; j < 12; ++j) {
    const std::uint32_t width = 1 + static_cast<std::uint32_t>(rng.uniform_int(0, 8));
    std::vector<double> durations(width);
    for (double& d : durations) {
      d = rng.uniform(0.5, 30.0);
      total_work += d;
    }
    engine.submit(JobBuilder("j" + std::to_string(j))
                      .priority(static_cast<int>(seed + j) % 3)
                      .submit_at(rng.uniform(0.0, 60.0))
                      .stage(width, fixed_duration(1.0))
                      .explicit_durations(durations)
                      .build());
  }
  engine.run();
  engine.cluster().settle(engine.sim().now());
  EXPECT_NEAR(engine.cluster().total_busy_time(), total_work, 1e-6);
  EXPECT_DOUBLE_EQ(engine.cluster().total_reserved_idle_time(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationProperty,
                         ::testing::Range<std::uint64_t>(200, 215));

class SweepAccountingProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SweepAccountingProperty, InvariantsHoldOverRandomizedTrials) {
  // Run randomized contended scenarios through the parallel sweep runner and
  // check the slot-time ledger on every RunResult it hands back:
  //  * busy + reserved-idle slot-seconds can never exceed the cluster's
  //    capacity over the run (total_slots x makespan);
  //  * utilization is a fraction of that capacity, so it lives in [0, 1];
  //  * no job finishes before it was submitted.
  // These hold for the baseline, for SSR, and for the naive policies — the
  // accounting is policy-independent.
  const std::uint64_t seed = GetParam();
  std::vector<Trial> grid;
  for (const bool use_ssr : {false, true}) {
    Trial t;
    t.cluster = ClusterSpec{.nodes = 8, .slots_per_node = 2, .node_slots = {}};
    t.jobs = random_mix(seed);
    if (use_ssr) {
      SsrConfig cfg;
      cfg.isolation_p = 0.25 + 0.15 * static_cast<double>(seed % 6);
      cfg.enable_straggler_mitigation = (seed % 2) == 0;
      t.options.ssr = cfg;
    }
    t.options.seed = seed;
    t.label = use_ssr ? "ssr" : "baseline";
    grid.push_back(std::move(t));
  }
  SweepOptions options;
  options.num_workers = 2;
  const SweepRunner runner(options);
  const std::vector<TrialResult> results = runner.run(grid);
  ASSERT_EQ(results.size(), grid.size());

  for (const TrialResult& tr : results) {
    const RunResult& r = tr.run;
    const double capacity =
        static_cast<double>(grid[tr.index].cluster.total_slots()) *
        r.makespan;
    EXPECT_GT(r.makespan, 0.0) << tr.label;
    EXPECT_GE(r.busy_time, 0.0) << tr.label;
    EXPECT_GE(r.reserved_idle_time, 0.0) << tr.label;
    EXPECT_LE(r.busy_time + r.reserved_idle_time, capacity * (1.0 + 1e-9))
        << tr.label << ": slot-time ledger exceeds cluster capacity";
    EXPECT_GE(r.utilization, 0.0) << tr.label;
    EXPECT_LE(r.utilization, 1.0 + 1e-9) << tr.label;
    for (const JobResult& j : r.jobs) {
      EXPECT_GE(j.finish, j.submit) << tr.label << " job " << j.name;
      EXPECT_NEAR(j.jct, j.finish - j.submit, 1e-9) << tr.label;
    }
    // Baseline runs reserve nothing, so their ledger has no reserved-idle.
    if (tr.label == "baseline") {
      EXPECT_DOUBLE_EQ(r.reserved_idle_time, 0.0);
      EXPECT_EQ(r.reservations_expired, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepAccountingProperty,
                         ::testing::Range<std::uint64_t>(400, 412));

TEST(ReservationProperty, StrictIsolationGivesBarrierContinuity) {
  // With SSR at P = 1 and stable parallelism, a foreground chain running
  // against arbitrary lower-priority contention must progress through
  // every barrier without delay: stage k+1 starts exactly when stage k
  // finishes (its slots were reserved), so the contended JCT (from first
  // task start) equals the alone JCT.
  for (std::uint64_t seed = 300; seed < 310; ++seed) {
    const ClusterSpec cluster{.nodes = 6, .slots_per_node = 2, .node_slots = {}};
    RunOptions o;
    o.seed = seed;
    // Materialize explicit durations so the alone and contended runs execute
    // the *identical* job (the engine RNG's draw order differs between them).
    JobSpec fg = make_kmeans(12, 10, 0.0);
    Rng duration_rng(seed * 7 + 1);
    for (StageSpec& st : fg.stages) {
      std::vector<double> d(st.num_tasks);
      for (double& x : d) x = st.duration->sample(duration_rng);
      st.explicit_durations = std::move(d);
    }
    const double alone = alone_jct(cluster, fg, o);

    Engine engine(SchedConfig{}, 6, 2, seed);
    engine.set_reservation_hook(
        std::make_unique<ReservationManager>(SsrConfig{}));
    TraceGenConfig bg;
    bg.num_jobs = 20;
    bg.window = 200.0;
    bg.seed = seed;
    for (JobSpec& spec : make_background_jobs(bg)) {
      engine.submit(std::move(spec));
    }
    // Submit the foreground at t=0 so its phase 1 starts on the empty
    // cluster (isolation protects steady state, not admission).
    const JobId fg_id = engine.submit(fg);
    engine.run();
    EXPECT_NEAR(engine.jct(fg_id), alone, alone * 0.02) << "seed " << seed;
  }
}

/// Drives one open-arrival stream through a VirtualClusterManager: advance to
/// each arrival instant, submit, and (optionally) run `at_arrival` first so
/// tests can interleave resize/transfer with live traffic.
void drive_open_arrivals(
    Engine& engine, VirtualClusterManager& vcm,
    std::vector<OpenArrival> arrivals,
    const std::function<void(std::size_t)>& at_arrival = nullptr) {
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    engine.advance_to(arrivals[i].at);
    if (at_arrival) at_arrival(i);
    vcm.submit_job(arrivals[i].tenant, std::move(arrivals[i].spec));
  }
  engine.drain();
}

void expect_tenant_audit_clean(const VirtualClusterManager& vcm,
                               std::uint32_t physical_slots) {
  const auto violations = audit::audit_virtual_clusters(vcm, physical_slots);
  EXPECT_TRUE(violations.empty()) << audit::format_report(violations);
}

class VirtualClusterProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(VirtualClusterProperty, AdmissionNeverExceedsMaxShare) {
  // At every instant, each tenant's in-flight slot demand stays within its
  // elastic maximum share.  Demand only grows at admission, so checking after
  // every submit_job (plus the replayed admission log) covers all instants.
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 11 + 3);
  const std::uint32_t nodes = 4 + static_cast<std::uint32_t>(rng.uniform_int(0, 4));
  Engine engine(SchedConfig{}, nodes, 2, seed);
  const std::uint32_t total = nodes * 2;
  VirtualClusterManager vcm(engine);
  vcm.add_cluster({.name = "gold",
                   .min_slots = total / 3,
                   .max_slots = total / 2 + 1,
                   .queue_when_full = true});
  vcm.add_cluster({.name = "silver",
                   .min_slots = total / 4,
                   .max_slots = total / 2,
                   .queue_when_full = (seed % 2) == 0});

  std::vector<OpenTenantProfile> profiles;
  profiles.push_back({.tenant = "gold",
                      .mean_interarrival = 12.0,
                      .num_jobs = 20,
                      .min_parallelism = 2,
                      .max_parallelism = total,
                      .priority = 5});
  profiles.push_back({.tenant = "silver",
                      .mean_interarrival = 9.0,
                      .num_jobs = 25,
                      .min_parallelism = 2,
                      .max_parallelism = total,
                      .priority = 0});
  drive_open_arrivals(engine, vcm, make_open_arrivals(profiles, seed),
                      [&](std::size_t) {
                        for (const std::string& t : vcm.tenant_names()) {
                          EXPECT_LE(vcm.stats(t).demand_in_flight,
                                    vcm.spec(t).max_slots)
                              << t;
                        }
                      });

  for (const AdmissionRecord& a : vcm.admission_log()) {
    EXPECT_LE(a.in_flight_after, a.max_at_admit) << a.tenant << " " << a.job;
    EXPECT_GE(a.admitted_at, a.requested_at) << a.tenant << " " << a.job;
  }
  EXPECT_TRUE(vcm.all_queues_empty());
  for (const std::string& t : vcm.tenant_names()) {
    const TenantStats& s = vcm.stats(t);
    EXPECT_EQ(s.submitted, s.admitted + s.rejected) << t;
    EXPECT_EQ(s.admitted, s.completed) << t;
    EXPECT_EQ(s.jobs_in_flight, 0u) << t;
    EXPECT_EQ(s.demand_in_flight, 0u) << t;
    EXPECT_LE(s.peak_demand_in_flight, vcm.spec(t).max_slots) << t;
  }
  expect_tenant_audit_clean(vcm, total);
}

TEST_P(VirtualClusterProperty, TransferConservesTotalShares) {
  // Elastic resize via transfer() moves shares between tenants but conserves
  // the totals exactly, even while arrivals and completions are in flight.
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 13 + 7);
  Engine engine(SchedConfig{}, 6, 2, seed);  // 12 physical slots
  VirtualClusterManager vcm(engine);
  vcm.add_cluster({.name = "a", .min_slots = 4, .max_slots = 10});
  vcm.add_cluster({.name = "b", .min_slots = 2, .max_slots = 10});
  vcm.add_cluster({.name = "c", .min_slots = 0, .max_slots = 8});
  const std::uint32_t total_min = 6, total_max = 28;

  std::vector<OpenTenantProfile> profiles;
  for (const char* name : {"a", "b", "c"}) {
    // Widest stages reach lround(1.5 x parallelism) = 6 slots, never more
    // than any reachable maximum (transfers below keep max >= 6), so queued
    // heads always fit and transfers stay legal.
    profiles.push_back({.tenant = name,
                        .mean_interarrival = 10.0,
                        .num_jobs = 15,
                        .min_parallelism = 2,
                        .max_parallelism = 4});
  }
  const std::vector<std::string> names = vcm.tenant_names();
  std::uint64_t transfers = 0;
  drive_open_arrivals(
      engine, vcm, make_open_arrivals(profiles, seed), [&](std::size_t) {
        if (rng.uniform_int(0, 2) != 0) return;
        const std::string& from = names[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(names.size()) - 1))];
        const std::string& to = names[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(names.size()) - 1))];
        if (from == to || vcm.spec(from).min_slots < 1 ||
            vcm.spec(from).max_slots < 7) {
          return;
        }
        vcm.transfer(from, to, 1);
        ++transfers;
        std::uint32_t sum_min = 0, sum_max = 0;
        for (const std::string& t : names) {
          sum_min += vcm.spec(t).min_slots;
          sum_max += vcm.spec(t).max_slots;
        }
        EXPECT_EQ(sum_min, total_min);
        EXPECT_EQ(sum_max, total_max);
      });
  EXPECT_GT(transfers, 0u) << "sweep never exercised transfer()";
  EXPECT_TRUE(vcm.all_queues_empty());
  expect_tenant_audit_clean(vcm, 12);
}

TEST_P(VirtualClusterProperty, StarvedTenantQueueDrainsByQuiescence) {
  // A tenant squeezed well below the physical cluster queues most of its
  // traffic behind a slot-hungry neighbor — but every queued job is admitted
  // and completed by quiescence (drain() strands nothing), because a queued
  // head always fits the tenant's maximum share.
  const std::uint64_t seed = GetParam();
  Engine engine(SchedConfig{}, 6, 2, seed);  // 12 physical slots
  VirtualClusterManager vcm(engine);
  vcm.add_cluster({.name = "hog", .min_slots = 6, .max_slots = 12});
  vcm.add_cluster({.name = "starved", .min_slots = 2, .max_slots = 6});

  std::vector<OpenTenantProfile> profiles;
  profiles.push_back({.tenant = "hog",
                      .mean_interarrival = 8.0,
                      .num_jobs = 30,
                      .min_parallelism = 6,
                      .max_parallelism = 10,
                      .priority = 5});
  // Widest stage <= lround(1.5 x 4) = 6 == max share, so nothing is ever
  // rejected: every over-quota submission round-trips through the queue.
  profiles.push_back({.tenant = "starved",
                      .mean_interarrival = 15.0,
                      .num_jobs = 12,
                      .min_parallelism = 3,
                      .max_parallelism = 4});
  drive_open_arrivals(engine, vcm, make_open_arrivals(profiles, seed));

  const TenantStats& s = vcm.stats("starved");
  EXPECT_EQ(s.submitted, 12u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.admitted, 12u);
  EXPECT_EQ(s.completed, 12u);
  EXPECT_GT(s.queued_total, 0u) << "sweep never exercised the queue";
  EXPECT_GT(s.max_queue_delay, 0.0);
  EXPECT_TRUE(vcm.all_queues_empty());
  EXPECT_EQ(vcm.queued_jobs("starved"), 0u);
  expect_tenant_audit_clean(vcm, 12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VirtualClusterProperty,
                         ::testing::Range<std::uint64_t>(500, 512));

// --- Resource-vector arithmetic (common/resources.h) -------------------------
//
// Components are drawn as multiples of 0.25 — exact binary fractions — so
// sums and differences are exact and the properties can use EXPECT_EQ
// rather than tolerances.

Resources quarter_grid_vector(Rng& rng) {
  return {0.25 * static_cast<double>(rng.uniform_int(1, 16)),
          0.25 * static_cast<double>(rng.uniform_int(1, 16)),
          0.25 * static_cast<double>(rng.uniform_int(1, 16))};
}

TEST(ResourceVectorProperty, ArithmeticIsExactAndConserving) {
  Rng rng(0x5e50);
  for (int i = 0; i < 500; ++i) {
    const Resources a = quarter_grid_vector(rng);
    const Resources b = quarter_grid_vector(rng);
    // Round-trip: adding then removing a demand restores the capacity
    // exactly — the failure-recovery path (reserve, kill, re-reserve)
    // relies on this never drifting.
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
    // total() is additive, and a demand always fits the capacity that
    // includes it (no over-commit by construction).
    EXPECT_DOUBLE_EQ((a + b).total(), a.total() + b.total());
    EXPECT_TRUE(a.fits_in(a));
    EXPECT_TRUE(a.fits_in(a + b));
    // Waste of a fitting placement is the total slack, and never negative.
    if (a.fits_in(b)) {
      EXPECT_DOUBLE_EQ(packing_waste(a, b), (b - a).total());
      EXPECT_GE(packing_waste(a, b), 0.0);
    }
    // fits_in is a partial order: reflexive (above), antisymmetric on the
    // grid, and transitive.
    const Resources c = quarter_grid_vector(rng);
    if (a.fits_in(b) && b.fits_in(a)) {
      EXPECT_EQ(a, b);
    }
    if (a.fits_in(b) && b.fits_in(c)) {
      EXPECT_TRUE(a.fits_in(c));
    }
  }
}

// No over-commit, under contention *and* failure recovery: on a
// heterogeneous cluster with per-stage demand vectors, every task start
// must fit its slot's capacity vector — including re-runs placed after
// kill/re-queue cycles, where a task that lost its big slot must not be
// resurrected onto a small one.
struct FitAuditor final : EngineObserver {
  std::uint64_t starts = 0;
  void on_task_started(const Engine& e, TaskId t, SlotId s) override {
    ++starts;
    const Resources& demand =
        e.graph(t.stage.job).stage(t.stage.index).demand;
    ASSERT_TRUE(demand.fits_in(e.cluster().slot(s).capacity()))
        << "task " << t << " over-committed slot " << s;
  }
};

TEST(ResourceVectorProperty, NoOverCommitUnderFailureRecovery) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    ClusterSpec cluster;
    cluster.nodes = 6;
    cluster.slots_per_node = 2;
    cluster.node_slots.assign(
        6, {Resources{1.0, 1.0, 1.0}, Resources{1.0, 1.0, 1.0}});
    cluster.node_slots[1] = {Resources{2.0, 2.0, 2.0},
                             Resources{0.5, 1.0, 1.0}};
    cluster.node_slots[4] = {Resources{2.0, 2.0, 2.0},
                             Resources{0.5, 1.0, 1.0}};

    RunOptions options;
    options.seed = 100 + seed;
    apply_zoo_policy(ZooPolicy::kPacking, cluster, options);
    // Two transient outages plus one permanent node loss mid-run.
    options.failures.events.push_back(
        FailureEvent{FailureEvent::Scope::Node, 1, 60.0, 90.0});
    options.failures.events.push_back(
        FailureEvent{FailureEvent::Scope::Node, 3, 80.0, 120.0});
    options.failures.events.push_back(
        FailureEvent{FailureEvent::Scope::Node, 4, 70.0, kTimeInfinity});

    TraceGenConfig bg;
    bg.num_jobs = 8;
    bg.window = 200.0;
    bg.large_job_max_tasks = 20;
    bg.seed = 9000 + seed;
    bg.vary_demand = true;

    ScenarioHarness harness(cluster, options);
    FitAuditor fits;
    harness.engine().add_observer(&fits);
    std::vector<JobId> ids;
    for (JobSpec& spec : make_background_jobs(bg)) {
      ids.push_back(harness.engine().submit(std::move(spec)));
    }
    ids.push_back(harness.engine().submit(make_kmeans(6, 10, 50.0)));
    harness.engine().run();  // throws if recovery wedges any job
    const RunResult run = harness.collect(ids);

    double attributed = 0.0;
    for (const JobResult& j : run.jobs) {
      EXPECT_GT(j.jct, 0.0) << "seed " << seed << ": " << j.name;
      attributed += j.busy_seconds;
    }
    // Busy-time conservation across the recovery machinery: the per-job
    // attribution (task-stats collector) must sum back to the cluster's
    // ledger even when attempts were killed, re-queued and re-run.
    EXPECT_NEAR(attributed, run.busy_time,
                1e-6 * std::max(1.0, run.busy_time))
        << "seed " << seed;
    EXPECT_GT(fits.starts, 0u);
    EXPECT_GT(run.recovery.tasks_requeued, 0u)
        << "seed " << seed << ": schedule never exercised recovery";
  }
}

// --- Table-driven timetable invariants (sched/policies/table_driven.h) ------
//
// Random timetables on a 0.25-grid (exact binary fractions: fmod and the
// window arithmetic are exact, so the invariants can be asserted with
// EXPECT_EQ across whole cycles).

TableDrivenConfig random_timetable(Rng& rng) {
  TableDrivenConfig config;
  const std::int64_t cycle_ticks = rng.uniform_int(8, 200);
  config.major_cycle = 0.25 * static_cast<double>(cycle_ticks);
  const int windows = static_cast<int>(rng.uniform_int(1, 4));
  // 2*windows distinct grid points, sorted, paired into [start, end).
  std::vector<std::int64_t> ticks;
  while (static_cast<int>(ticks.size()) < 2 * windows) {
    const std::int64_t t = rng.uniform_int(0, cycle_ticks);
    bool dup = false;
    for (std::int64_t seen : ticks) dup = dup || seen == t;
    if (!dup) ticks.push_back(t);
  }
  std::sort(ticks.begin(), ticks.end());
  for (int w = 0; w < windows; ++w) {
    config.intervals.push_back({0.25 * static_cast<double>(ticks[2 * w]),
                                0.25 * static_cast<double>(ticks[2 * w + 1])});
  }
  config.reserved_slots = 1;
  return config;
}

TEST(TableTimetableProperty, WindowsNeverOverlapAndCycleWraps) {
  Rng rng(0x7ab1e);
  for (int trial = 0; trial < 200; ++trial) {
    const TableDrivenConfig config = random_timetable(rng);
    const TableDrivenHook hook(config);
    const double cycle = config.major_cycle;

    // Partitions never overlap: every phase point belongs to at most one
    // window (the ctor validated sortedness/disjointness; this checks the
    // geometry directly).
    for (double p = 0.0; p < cycle; p += 0.25) {
      int covering = 0;
      for (const TableInterval& w : config.intervals) {
        if (p >= w.start && p < w.end) ++covering;
      }
      ASSERT_LE(covering, 1) << "phase " << p << " covered twice";
      ASSERT_EQ(hook.in_window(p), covering == 1) << "phase " << p;
    }

    for (int probe = 0; probe < 50; ++probe) {
      const double t =
          0.25 * static_cast<double>(rng.uniform_int(0, 40 * 200));
      // Cycle wrap: membership is purely a function of the phase.
      ASSERT_EQ(hook.in_window(t), hook.in_window(t + cycle));
      ASSERT_EQ(hook.in_window(t), hook.in_window(t + 7.0 * cycle));
      if (hook.in_window(t)) {
        const double end = hook.window_end(t);
        ASSERT_GT(end, t);
        ASSERT_LE(end - t, cycle);
        // Half-open: the window is live on [t, end) and closed at `end`
        // unless an adjacent window starts exactly there.
        ASSERT_TRUE(hook.in_window(end - 0.25));
        bool adjacent = false;
        for (const TableInterval& w : config.intervals) {
          adjacent = adjacent || w.start == std::fmod(end, cycle);
        }
        ASSERT_EQ(hook.in_window(end), adjacent) << "t=" << t;
      } else {
        const double next = hook.next_window_start_after(t);
        ASSERT_GT(next, t);
        ASSERT_LE(next - t, cycle);
        // `next` is a window start...
        bool is_start = false;
        for (const TableInterval& w : config.intervals) {
          is_start = is_start || w.start == std::fmod(next, cycle);
        }
        ASSERT_TRUE(is_start) << "t=" << t << " next=" << next;
        // ...and no window is live anywhere in (t, next).
        for (double q = t + 0.25; q < next; q += 0.25) {
          ASSERT_FALSE(hook.in_window(q))
              << "window live at " << q << " before wakeup at " << next;
        }
      }
    }

    // Malformed timetables must be rejected at construction.
    TableDrivenConfig overlapping = config;
    if (!overlapping.intervals.empty()) {
      overlapping.intervals.push_back(overlapping.intervals.back());
      EXPECT_THROW(TableDrivenHook{overlapping}, CheckError);
    }
    TableDrivenConfig outside = config;
    outside.intervals.push_back(
        {cycle + 0.25, cycle + 0.5});
    EXPECT_THROW(TableDrivenHook{outside}, CheckError);
  }
}

}  // namespace
}  // namespace ssr
