// Determinism tests for the parallel sweep runner (ssr/exp/sweep.h).
//
// The contract under test: a sweep's results are a pure function of its
// grid — bit-identical for worker counts 1, N, hardware_concurrency, and
// across repeated runs — because every trial owns a private Engine and its
// seed is fixed before execution.  We fingerprint every float through
// std::hexfloat so "bit-identical" means exactly that, not "close".
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ssr/common/check.h"
#include "ssr/exp/sweep.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

namespace ssr {
namespace {

/// Bit-exact fingerprint of a RunResult: every double rendered as hexfloat.
std::string fingerprint(const RunResult& r) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const JobResult& j : r.jobs) {
    os << j.id.v << '|' << j.name << '|' << j.priority << '|' << j.submit
       << '|' << j.finish << '|' << j.jct << '\n';
  }
  os << r.makespan << '|' << r.busy_time << '|' << r.reserved_idle_time
     << '|' << r.utilization << '|' << r.reservations_expired << '\n';
  const JobTaskStats& t = r.task_totals;
  os << t.tasks_started << '|' << t.tasks_finished << '|' << t.tasks_killed
     << '|' << t.copies_started << '|' << t.copies_won << '|'
     << t.local_starts << '\n';
  return os.str();
}

std::string fingerprint(const std::vector<TrialResult>& results) {
  std::ostringstream os;
  for (const TrialResult& tr : results) {
    os << tr.index << '#' << tr.label << '#' << tr.seed << '#';
    for (const auto& [k, v] : tr.tags) os << k << '=' << v << ';';
    os << '\n' << fingerprint(tr.run);
  }
  return os.str();
}

/// A small but non-trivial grid: contended + alone trials, with and without
/// SSR, across a few seeds.  Contention exercises the scheduler paths where
/// nondeterminism would actually hide (preemption, reservations, stragglers).
std::vector<Trial> make_grid() {
  std::vector<Trial> grid;
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    for (const bool use_ssr : {false, true}) {
      Trial t;
      t.cluster = ClusterSpec{.nodes = 4, .slots_per_node = 2};
      TraceGenConfig bg;
      bg.num_jobs = 8;
      bg.window = 150.0;
      bg.seed = seed + 1000;
      t.jobs = make_background_jobs(bg);
      t.jobs.push_back(make_kmeans(6, 10, 20.0));
      if (use_ssr) {
        SsrConfig cfg;
        cfg.enable_straggler_mitigation = true;
        t.options.ssr = cfg;
      }
      t.options.seed = seed;
      t.label = use_ssr ? "ssr" : "baseline";
      t.tags = {{"seed", std::to_string(seed)}};
      grid.push_back(std::move(t));
    }
  }
  return grid;
}

std::vector<TrialResult> run_with_workers(const std::vector<Trial>& grid,
                                          unsigned workers) {
  SweepOptions options;
  options.num_workers = workers;
  const SweepRunner runner(options);
  return runner.run(grid);
}

TEST(SweepDeterminism, BitIdenticalAcrossWorkerCounts) {
  const std::vector<Trial> grid = make_grid();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  const std::string serial = fingerprint(run_with_workers(grid, 1));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(fingerprint(run_with_workers(grid, 2)), serial)
      << "2 workers diverged from serial";
  EXPECT_EQ(fingerprint(run_with_workers(grid, hw)), serial)
      << "hardware_concurrency workers diverged from serial";
  EXPECT_EQ(fingerprint(run_with_workers(grid, 2)), serial)
      << "repeated run with 2 workers is not reproducible";
}

TEST(SweepDeterminism, ResultsArriveInGridOrder) {
  const std::vector<Trial> grid = make_grid();
  const std::vector<TrialResult> results = run_with_workers(grid, 2);
  ASSERT_EQ(results.size(), grid.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].label, grid[i].label);
    EXPECT_EQ(results[i].tags, grid[i].tags);
    EXPECT_EQ(results[i].seed, grid[i].options.seed);
    EXPECT_FALSE(results[i].run.jobs.empty());
  }
}

TEST(SweepDeterminism, CsvEmissionIsStableAcrossWorkerCounts) {
  const std::vector<Trial> grid = make_grid();
  std::ostringstream a;
  std::ostringstream b;
  write_trials_csv(a, run_with_workers(grid, 1));
  write_trials_csv(b, run_with_workers(grid, 2));
  EXPECT_FALSE(a.str().empty());
  EXPECT_EQ(a.str(), b.str());

  std::ostringstream sa;
  std::ostringstream sb;
  write_summary_csv(sa, summarize(run_with_workers(grid, 1)));
  write_summary_csv(sb, summarize(run_with_workers(grid, 2)));
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(SweepDeterminism, BaseSeedDerivationOverridesTrialSeeds) {
  std::vector<Trial> grid = make_grid();
  SweepOptions options;
  options.num_workers = 2;
  options.base_seed = 99;
  const SweepRunner runner(options);
  const std::vector<TrialResult> results = runner.run(grid);
  ASSERT_EQ(results.size(), grid.size());
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].seed, derive_trial_seed(99, i));
    seeds.insert(results[i].seed);
  }
  // splitmix64-derived seeds are decorrelated, in particular distinct.
  EXPECT_EQ(seeds.size(), results.size());

  // The derived-seed mode is itself deterministic across worker counts.
  SweepOptions serial = options;
  serial.num_workers = 1;
  EXPECT_EQ(fingerprint(SweepRunner(serial).run(grid)),
            fingerprint(results));
}

TEST(SweepDeterminism, DeriveTrialSeedIsAPureInjectiveLookingMap) {
  EXPECT_EQ(derive_trial_seed(1, 0), derive_trial_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 0xDEADBEEFull}) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      seen.insert(derive_trial_seed(base, index));
    }
  }
  EXPECT_EQ(seen.size(), 3u * 64u) << "collisions across bases/indices";
}

TEST(SweepDeterminism, TrialExceptionPropagatesFromRun) {
  std::vector<Trial> grid = make_grid();
  // Poison one mid-grid trial; its failure must surface from run() even
  // though other trials complete on other workers.
  grid[2].options.hook_factory = []() -> std::unique_ptr<ReservationHook> {
    SSR_CHECK_MSG(false, "poisoned trial");
    return nullptr;
  };
  SweepOptions options;
  options.num_workers = 2;
  const SweepRunner runner(options);
  EXPECT_THROW(runner.run(grid), CheckError);
}

TEST(SweepDeterminism, ZeroWorkersResolvesToHardwareConcurrency) {
  const SweepRunner runner{SweepOptions{}};
  EXPECT_GE(runner.num_workers(), 1u);
  const std::vector<Trial> grid = make_grid();
  EXPECT_EQ(fingerprint(runner.run(grid)),
            fingerprint(run_with_workers(grid, 1)));
}

}  // namespace
}  // namespace ssr
