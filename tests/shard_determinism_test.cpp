// Shard-count determinism suite: the DESIGN.md §13 contract, as a test.
//
// The sharded event queue and the calendar backend are *pure performance
// knobs*: for any backend x shard-count configuration the engine must
// produce output bit-identical to the sequential reference (binary heap,
// one shard) — same observer event stream, same metric digest, same
// RunResult, same binary trace capture.  This suite pins that contract on
// two fronts:
//
//  * the committed golden scenarios (fig12/fig14/fig15/failure_recovery),
//    whose digests every configuration must reproduce byte for byte; and
//  * 108 seeded random scenarios — 60 closed-batch and 48 open-system —
//    with random node-failure schedules and (on half the closed trials)
//    heartbeat-detector noise, so the equality claim covers the kill /
//    re-queue / copy-race / false-suspicion machinery, not just the happy
//    path.
//
// Every comparison includes the ssr-trace capture bytes: the trace is the
// full observer stream (metrics/trace_capture.h), so byte equality there
// means event-for-event identical scheduling, not merely equal totals.
//
// CI matrix hook: SSR_SHARDS=<n> in the environment narrows the shard list
// to {n} (the sequential reference always runs), letting the tsan leg split
// shard counts across matrix jobs.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ssr/exp/open_scenario.h"
#include "ssr/exp/run_digest.h"
#include "ssr/exp/scenario.h"
#include "ssr/sim/failure_injector.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/open_arrival.h"
#include "ssr/workload/tracegen.h"

#include "golden_scenarios.h"
#include "run_digest.h"

namespace ssr {
namespace {

struct QueueConfig {
  EventQueueBackend backend;
  std::uint32_t shards;
};

std::string config_name(const QueueConfig& c) {
  std::string name =
      c.backend == EventQueueBackend::kBinaryHeap ? "heap" : "calendar";
  return name + "/shards=" + std::to_string(c.shards);
}

// The full matrix: both backends x shards {1, 2, 4, 8}.  heap/1 is also the
// reference configuration; keeping it in the matrix makes the comparison
// framework itself part of what is tested (reference vs itself must hold).
std::vector<QueueConfig> all_configs() {
  std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8};
  if (const char* env = std::getenv("SSR_SHARDS")) {
    const std::string text(env);
    if (!text.empty() &&
        text.find_first_not_of("0123456789") == std::string::npos) {
      const unsigned long n = std::stoul(text);
      if (n >= 1 && n <= 256) {
        shard_counts = {static_cast<std::uint32_t>(n)};
      }
    }
  }
  std::vector<QueueConfig> configs;
  for (const EventQueueBackend backend :
       {EventQueueBackend::kBinaryHeap, EventQueueBackend::kCalendar}) {
    for (const std::uint32_t shards : shard_counts) {
      configs.push_back({backend, shards});
    }
  }
  return configs;
}

void apply_config(RunOptions& o, const QueueConfig& c) {
  o.sched.event_queue_backend = c.backend;
  o.sched.event_shards = c.shards;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read trace capture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Digest + the fields append_run_digest leaves out, so "equal" here means
// the *whole* RunResult, tenants included.
void expect_results_equal(const RunResult& ref, const RunResult& got,
                          const std::string& what) {
  std::ostringstream ref_digest, got_digest;
  append_run_digest(ref_digest, what, ref);
  append_run_digest(got_digest, what, got);
  EXPECT_EQ(ref_digest.str(), got_digest.str()) << what << ": digest diverged";
  EXPECT_EQ(ref.utilization, got.utilization) << what;
  EXPECT_EQ(ref.dead_time, got.dead_time) << what;
  EXPECT_EQ(ref.suspicions, got.suspicions) << what;
  EXPECT_EQ(ref.false_suspicions, got.false_suspicions) << what;
  ASSERT_EQ(ref.tenants.size(), got.tenants.size()) << what;
  for (std::size_t i = 0; i < ref.tenants.size(); ++i) {
    const TenantResult& a = ref.tenants[i];
    const TenantResult& b = got.tenants[i];
    EXPECT_EQ(a.name, b.name) << what;
    EXPECT_EQ(a.admitted, b.admitted) << what << " tenant " << a.name;
    EXPECT_EQ(a.rejected, b.rejected) << what << " tenant " << a.name;
    EXPECT_EQ(a.completed, b.completed) << what << " tenant " << a.name;
    EXPECT_EQ(a.queued, b.queued) << what << " tenant " << a.name;
    EXPECT_EQ(a.peak_demand, b.peak_demand) << what << " tenant " << a.name;
    EXPECT_EQ(a.mean_queue_delay, b.mean_queue_delay)
        << what << " tenant " << a.name;
    EXPECT_EQ(a.max_queue_delay, b.max_queue_delay)
        << what << " tenant " << a.name;
    EXPECT_EQ(a.mean_jct, b.mean_jct) << what << " tenant " << a.name;
  }
}

// --- Golden-scenario leg ----------------------------------------------------
//
// Every configuration must reproduce the *committed* golden digests (not
// merely agree with a fresh sequential run): the goldens were generated by
// the sequential engine, so matching them is the bit-identical claim against
// the strongest available reference.

TEST(ShardDeterminism, GoldenScenariosReproduceCommittedDigests) {
  const std::vector<QueueConfig> configs = all_configs();
  for (const GoldenScenario& scenario : golden_scenarios()) {
    const std::optional<std::string> expected = read_golden(scenario.file);
    ASSERT_TRUE(expected.has_value())
        << "missing golden " << scenario.file
        << " — regenerate with SSR_UPDATE_GOLDEN=1 ./tests/golden_replay_test";
    for (const QueueConfig& config : configs) {
      SCOPED_TRACE(scenario.name + " under " + config_name(config));
      std::ostringstream digest;
      for (const GoldenPass& pass : scenario.passes) {
        RunOptions o = pass.options;
        apply_config(o, config);
        append_run(digest, pass.title,
                   run_scenario(scenario.cluster, pass.jobs, o));
      }
      EXPECT_EQ(*expected, digest.str())
          << scenario.name << " digest diverged under " << config_name(config);
    }
  }
}

TEST(ShardDeterminism, GoldenTraceCapturesAreByteIdentical) {
  // Trace the failure-recovery golden (the richest event mix: kills,
  // re-queues, copy races, invalidations) under every configuration and
  // require byte-equal captures.
  const GoldenScenario scenario = failure_recovery_scenario();
  const std::string ref_path = ::testing::TempDir() + "shard_ref.trace";
  const std::string got_path = ::testing::TempDir() + "shard_got.trace";

  const GoldenPass& pass = scenario.passes.front();
  RunOptions ref_options = pass.options;
  ref_options.capture_path = ref_path;
  run_scenario(scenario.cluster, pass.jobs, ref_options);
  const std::string ref_bytes = file_bytes(ref_path);
  ASSERT_FALSE(ref_bytes.empty());

  for (const QueueConfig& config : all_configs()) {
    RunOptions o = pass.options;
    apply_config(o, config);
    o.capture_path = got_path;
    run_scenario(scenario.cluster, pass.jobs, o);
    EXPECT_TRUE(ref_bytes == file_bytes(got_path))
        << "trace capture diverged under " << config_name(config);
  }
}

// --- Random closed-batch leg ------------------------------------------------
//
// Chaos-sized scenarios (small clusters, trace background + KMeans
// foreground) with seeded random node-failure schedules; odd trials add
// heartbeat-detector noise so false suspicions flow through the comparison.

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct ClosedScenario {
  ClusterSpec cluster;
  std::vector<JobSpec> jobs;
  RunOptions options;
};

ClosedScenario derive_closed(std::uint64_t trial) {
  std::uint64_t s = 0x5aa4dull ^ (trial * 0xb5adull);
  ClosedScenario sc;
  sc.cluster.nodes = 2 + static_cast<std::uint32_t>(splitmix64(s) % 7);
  sc.cluster.slots_per_node = 1 + static_cast<std::uint32_t>(splitmix64(s) % 2);

  TraceGenConfig bg;
  bg.num_jobs = 3 + static_cast<std::uint32_t>(splitmix64(s) % 6);
  bg.window = 60.0 + static_cast<double>(splitmix64(s) % 4) * 30.0;
  bg.large_job_max_tasks = 20;  // bound per-trial work
  bg.seed = 17 + trial * 151;
  sc.jobs = make_background_jobs(bg);
  const std::uint32_t fg_par = 4 + static_cast<std::uint32_t>(splitmix64(s) % 6);
  sc.jobs.push_back(make_kmeans(fg_par, 10, bg.window * 0.25));

  RunOptions& o = sc.options;
  const double waits[] = {0.0, 1.0, 3.0};
  o.sched.locality_wait = waits[splitmix64(s) % 3];
  o.seed = 1 + trial;
  // Policy mix: none, strict SSR, deadline SSR, SSR + straggler copies.
  switch (splitmix64(s) % 4) {
    case 0:
      break;
    case 1:
      o.ssr = SsrConfig{};
      o.ssr->min_reserving_priority = 1;
      break;
    case 2:
      o.ssr = SsrConfig{};
      o.ssr->min_reserving_priority = 1;
      o.ssr->isolation_p = 0.4;
      break;
    default:
      o.ssr = SsrConfig{};
      o.ssr->min_reserving_priority = 1;
      o.ssr->enable_straggler_mitigation = true;
      break;
  }

  RandomFailureConfig failures;
  failures.num_nodes = sc.cluster.nodes;
  failures.horizon = bg.window * 1.5;
  failures.failures = 1 + static_cast<std::uint32_t>(splitmix64(s) % 4);
  failures.min_downtime = 2.0;
  failures.max_downtime = 25.0;
  // Node 0 is never permanent, so liveness is well-defined.
  failures.permanent_fraction = static_cast<double>(splitmix64(s) % 3) * 0.15;
  failures.seed = 0x5fa11 + trial;
  o.failures = make_random_node_failures(failures);

  if (trial % 2 == 1) {
    o.detector.heartbeat_period = 2.0 + static_cast<double>(splitmix64(s) % 4);
    o.detector.timeout_beats = 2 + static_cast<std::uint32_t>(splitmix64(s) % 2);
    o.detector.heartbeat_loss = 0.1 + static_cast<double>(splitmix64(s) % 3) * 0.1;
    o.detector.noise_horizon = failures.horizon;
    o.detector.seed = 0xd17 + trial;
  }
  return sc;
}

TEST(ShardDeterminism, RandomFailureScenariosMatchSequentialOn60Trials) {
  constexpr std::uint64_t kTrials = 60;
  const std::vector<QueueConfig> configs = all_configs();
  const std::string ref_path = ::testing::TempDir() + "shard_closed_ref.trace";
  const std::string got_path = ::testing::TempDir() + "shard_closed_got.trace";
  std::uint64_t failed_runs = 0, noisy_runs = 0;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    const ClosedScenario sc = derive_closed(trial);
    RunOptions ref_options = sc.options;
    ref_options.capture_path = ref_path;
    const RunResult ref = run_scenario(sc.cluster, sc.jobs, ref_options);
    const std::string ref_bytes = file_bytes(ref_path);
    if (ref.recovery.slots_failed > 0) ++failed_runs;
    if (ref.false_suspicions > 0) ++noisy_runs;

    for (const QueueConfig& config : configs) {
      const std::string what =
          "closed trial " + std::to_string(trial) + " / " + config_name(config);
      SCOPED_TRACE(what);
      RunOptions o = sc.options;
      apply_config(o, config);
      o.capture_path = got_path;
      const RunResult got = run_scenario(sc.cluster, sc.jobs, o);
      expect_results_equal(ref, got, what);
      EXPECT_TRUE(ref_bytes == file_bytes(got_path))
          << what << ": trace capture diverged";
    }
  }
  // The sweep must actually exercise failure recovery and detector noise —
  // determinism over idle clusters would prove nothing.
  EXPECT_GT(failed_runs, 20u);
  EXPECT_GT(noisy_runs, 5u);
}

// --- Random open-system leg -------------------------------------------------
//
// Multi-tenant open-arrival runs (advance_to + admission + drain) with the
// same failure machinery underneath: the stepping API must also be
// backend/shard-invariant, tenant counters included.

struct OpenScenarioCase {
  ClusterSpec cluster;
  OpenScenarioSpec spec;
  std::vector<OpenTenantProfile> profiles;
  std::uint64_t arrival_seed = 0;
  RunOptions options;
};

OpenScenarioCase derive_open(std::uint64_t trial) {
  std::uint64_t s = 0x09e27ull ^ (trial * 0x8c5full);
  OpenScenarioCase sc;
  sc.cluster.nodes = 3 + static_cast<std::uint32_t>(splitmix64(s) % 6);
  sc.cluster.slots_per_node = 1 + static_cast<std::uint32_t>(splitmix64(s) % 2);
  const std::uint32_t total = sc.cluster.total_slots();

  const std::uint32_t num_tenants =
      2 + static_cast<std::uint32_t>(splitmix64(s) % 2);
  double expected_span = 0.0;
  for (std::uint32_t ti = 0; ti < num_tenants; ++ti) {
    VirtualClusterSpec vc;
    vc.name = "t" + std::to_string(ti);
    vc.min_slots = static_cast<std::uint32_t>(splitmix64(s) % 2);
    vc.max_slots = 2 + static_cast<std::uint32_t>(splitmix64(s) % total);
    vc.queue_when_full = (splitmix64(s) % 4) != 0;
    sc.spec.tenants.push_back(vc);

    OpenTenantProfile prof;
    prof.tenant = vc.name;
    prof.mean_interarrival = 8.0 + static_cast<double>(splitmix64(s) % 4) * 6.0;
    prof.num_jobs = 4 + static_cast<std::uint32_t>(splitmix64(s) % 5);
    prof.min_parallelism = 2;
    prof.max_parallelism = 2 + static_cast<std::uint32_t>(splitmix64(s) % 5);
    prof.priority = static_cast<int>(splitmix64(s) % 3) * 5;
    sc.profiles.push_back(prof);
    expected_span =
        std::max(expected_span,
                 prof.mean_interarrival * static_cast<double>(prof.num_jobs));
  }
  sc.arrival_seed = 0x40004 + trial * 7;

  RunOptions& o = sc.options;
  const double waits[] = {0.0, 1.0, 3.0};
  o.sched.locality_wait = waits[splitmix64(s) % 3];
  o.seed = 0x30003 + trial;
  if (splitmix64(s) % 2 == 0) {
    o.ssr = SsrConfig{};
    o.ssr->min_reserving_priority = 1;
  }

  RandomFailureConfig failures;
  failures.num_nodes = sc.cluster.nodes;
  failures.horizon = expected_span * 1.5;
  failures.failures = 1 + static_cast<std::uint32_t>(splitmix64(s) % 4);
  failures.min_downtime = 2.0;
  failures.max_downtime = 25.0;
  failures.permanent_fraction = static_cast<double>(splitmix64(s) % 3) * 0.15;
  failures.seed = 0x6fa11 + trial * 3;
  o.failures = make_random_node_failures(failures);
  return sc;
}

TEST(ShardDeterminism, OpenSystemScenariosMatchSequentialOn48Trials) {
  constexpr std::uint64_t kTrials = 48;
  const std::vector<QueueConfig> configs = all_configs();
  const std::string ref_path = ::testing::TempDir() + "shard_open_ref.trace";
  const std::string got_path = ::testing::TempDir() + "shard_open_got.trace";
  std::uint64_t failed_runs = 0, admission_traffic = 0;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    const OpenScenarioCase sc = derive_open(trial);
    RunOptions ref_options = sc.options;
    ref_options.capture_path = ref_path;
    const RunResult ref = run_open_scenario(
        sc.cluster, sc.spec, make_open_arrivals(sc.profiles, sc.arrival_seed),
        ref_options);
    const std::string ref_bytes = file_bytes(ref_path);
    if (ref.recovery.slots_failed > 0) ++failed_runs;
    for (const TenantResult& t : ref.tenants) {
      admission_traffic += t.queued + t.rejected;
    }

    for (const QueueConfig& config : configs) {
      const std::string what =
          "open trial " + std::to_string(trial) + " / " + config_name(config);
      SCOPED_TRACE(what);
      RunOptions o = sc.options;
      apply_config(o, config);
      o.capture_path = got_path;
      const RunResult got = run_open_scenario(
          sc.cluster, sc.spec, make_open_arrivals(sc.profiles, sc.arrival_seed),
          o);
      expect_results_equal(ref, got, what);
      EXPECT_TRUE(ref_bytes == file_bytes(got_path))
          << what << ": trace capture diverged";
    }
  }
  // The open sweep must hit real failures and real admission-control traffic.
  EXPECT_GT(failed_runs, 15u);
  EXPECT_GT(admission_traffic, 20u);
}

}  // namespace
}  // namespace ssr
