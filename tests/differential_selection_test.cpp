// Differential property suite for the scheduling hot path.
//
// The engine's optimized candidate enumeration (per-job reserved-idle
// buckets, sorted preferred sets, priority-bucket merges) must make exactly
// the placement decisions of the original full linear scans.  The
// ReferenceSelector fixture forces the engine down the reference path while
// forwarding every callback to the real hook, so running one seeded random
// scenario twice — once with the hook as-is, once wrapped — and comparing
// the complete (time, task, slot) event sequences checks the two
// enumerations decision for decision.
//
// The scenarios randomize cluster size, background trace mix, locality
// configuration and reservation policy (none / SSR manager with and without
// deadlines / static carve-out / timeout holds), covering every
// ReservedApprovalModel the engine special-cases.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "ssr/core/naive_policies.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/exp/harness.h"
#include "ssr/exp/policy_zoo.h"
#include "ssr/exp/scenario.h"
#include "ssr/sched/engine.h"
#include "ssr/sched/policies/table_driven.h"
#include "ssr/sched/reference_selector.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

namespace ssr {
namespace {

// Deterministic per-trial parameter derivation (lint forbids unseeded RNG;
// splitmix64 gives well-mixed streams from the trial index alone).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

enum class HookKind : std::uint64_t {
  kNone = 0,       // NullReservationHook (NeverApprove model)
  kSsrStrict,      // ReservationManager, P = 1
  kSsrDeadline,    // ReservationManager, P < 1 (expiry machinery live)
  kStatic,         // static carve-out (PriorityOverride, sentinel job id)
  kTimeout,        // timeout holds (PriorityOverride)
  kCount
};

struct TrialParams {
  std::uint32_t nodes;
  std::uint32_t slots_per_node;
  TraceGenConfig bg;
  std::uint32_t fg_parallelism;
  SimTime fg_submit;
  SimDuration locality_wait;
  HookKind hook;
  std::uint32_t static_slots;
  SimDuration timeout;
  std::uint64_t engine_seed;
};

TrialParams derive_params(std::uint64_t trial) {
  std::uint64_t s = 0xabcdef1234567890ull ^ (trial * 0x51ul);
  TrialParams p;
  p.nodes = 2 + static_cast<std::uint32_t>(splitmix64(s) % 12);
  p.slots_per_node = 1 + static_cast<std::uint32_t>(splitmix64(s) % 3);
  p.bg.num_jobs = 3 + static_cast<std::uint32_t>(splitmix64(s) % 12);
  p.bg.window = 60.0 + static_cast<double>(splitmix64(s) % 6) * 30.0;
  p.bg.large_job_max_tasks = 30;  // bound per-trial work
  p.bg.seed = 5 + trial * 77;
  p.fg_parallelism = 4 + static_cast<std::uint32_t>(splitmix64(s) % 8);
  p.fg_submit = p.bg.window * 0.25;
  const double waits[] = {0.0, 1.0, 3.0};
  p.locality_wait = waits[splitmix64(s) % 3];
  p.hook = static_cast<HookKind>(splitmix64(s) %
                                 static_cast<std::uint64_t>(HookKind::kCount));
  // A carve-out of the whole cluster would starve the background class
  // forever (a real failure mode of static reservation, but a wedged run,
  // not a differential signal) — keep at least half the slots unreserved.
  const std::uint32_t total_slots = p.nodes * p.slots_per_node;
  p.static_slots = std::min<std::uint32_t>(
      1 + static_cast<std::uint32_t>(splitmix64(s) % 4),
      std::max<std::uint32_t>(1, total_slots / 2));
  p.timeout = 5.0 + static_cast<double>(splitmix64(s) % 4) * 10.0;
  p.engine_seed = 1 + trial;
  return p;
}

std::unique_ptr<ReservationHook> make_hook(const TrialParams& p) {
  switch (p.hook) {
    case HookKind::kNone:
      return std::make_unique<NullReservationHook>();
    case HookKind::kSsrStrict: {
      SsrConfig cfg;
      cfg.min_reserving_priority = 1;
      return std::make_unique<ReservationManager>(cfg);
    }
    case HookKind::kSsrDeadline: {
      SsrConfig cfg;
      cfg.min_reserving_priority = 1;
      cfg.isolation_p = 0.4;
      return std::make_unique<ReservationManager>(cfg);
    }
    case HookKind::kStatic:
      return std::make_unique<StaticReservationHook>(p.static_slots, 1);
    case HookKind::kTimeout:
      return std::make_unique<TimeoutReservationHook>(p.timeout);
    case HookKind::kCount:
      break;
  }
  SSR_CHECK_MSG(false, "bad hook kind");
  return nullptr;
}

// One scheduling event; doubles compare exactly, so equality of two event
// vectors means bit-identical timing and placement.
enum class EventKind : int { kStart = 0, kFinish, kKill };
using SchedEvent = std::tuple<double, EventKind, TaskId, SlotId>;

struct EventLog final : EngineObserver {
  std::vector<SchedEvent> events;

  void on_task_started(const Engine& e, TaskId t, SlotId s) override {
    events.emplace_back(e.sim().now(), EventKind::kStart, t, s);
  }
  void on_task_finished(const Engine& e, TaskId t, SlotId s) override {
    events.emplace_back(e.sim().now(), EventKind::kFinish, t, s);
  }
  void on_task_killed(const Engine& e, TaskId t, SlotId s) override {
    events.emplace_back(e.sim().now(), EventKind::kKill, t, s);
  }
};

// End-of-run metric totals; doubles compare exactly, so equality means
// bit-identical accounting, not just close numbers.
struct RunTotals {
  double busy = 0.0;
  double reserved_idle = 0.0;
  double dead = 0.0;
  double now = 0.0;

  bool operator==(const RunTotals&) const = default;
};

struct TrialResult {
  std::vector<SchedEvent> events;
  RunTotals totals;
};

TrialResult run_trial(const TrialParams& p, bool reference,
                      bool empty_injector = false,
                      EventQueueBackend backend = EventQueueBackend::kBinaryHeap,
                      std::uint32_t shards = 1) {
  SchedConfig cfg;
  cfg.locality_wait = p.locality_wait;
  cfg.event_queue_backend = backend;
  cfg.event_shards = shards;
  Engine engine(cfg, p.nodes, p.slots_per_node, p.engine_seed);
  std::unique_ptr<ReservationHook> hook = make_hook(p);
  if (reference) {
    hook = std::make_unique<ReferenceSelector>(std::move(hook));
  }
  engine.set_reservation_hook(std::move(hook));
  EventLog log;
  engine.add_observer(&log);
  // An attached injector with an empty schedule must be a perfect no-op:
  // it enqueues nothing, so the event sequence and every metric stay
  // bit-identical to a run that never saw an injector.
  FailureInjector injector({});
  if (empty_injector) {
    injector.attach(engine.sim(), engine);
  }
  for (JobSpec& spec : make_background_jobs(p.bg)) {
    engine.submit(std::move(spec));
  }
  engine.submit(make_kmeans(p.fg_parallelism, 10, p.fg_submit));
  engine.run();
  TrialResult result;
  result.events = std::move(log.events);
  result.totals.busy = engine.cluster().total_busy_time();
  result.totals.reserved_idle = engine.cluster().total_reserved_idle_time();
  result.totals.dead = engine.cluster().total_dead_time();
  result.totals.now = engine.sim().now();
  return result;
}

std::string describe(const SchedEvent& e) {
  std::ostringstream os;
  os << std::hexfloat << "t=" << std::get<0>(e) << " kind="
     << static_cast<int>(std::get<1>(e)) << ' ' << std::get<2>(e) << " on "
     << std::get<3>(e);
  return os.str();
}

TEST(DifferentialSelection, OptimizedMatchesReferenceOn200Scenarios) {
  constexpr std::uint64_t kTrials = 200;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    const TrialParams p = derive_params(trial);
    const std::vector<SchedEvent> optimized = run_trial(p, false).events;
    const std::vector<SchedEvent> reference = run_trial(p, true).events;
    ASSERT_EQ(optimized.size(), reference.size())
        << "trial " << trial << " (hook kind "
        << static_cast<int>(p.hook) << "): event counts diverged";
    for (std::size_t i = 0; i < optimized.size(); ++i) {
      ASSERT_EQ(optimized[i], reference[i])
          << "trial " << trial << " (hook kind " << static_cast<int>(p.hook)
          << ") diverged at event " << i << ":\n  optimized: "
          << describe(optimized[i]) << "\n  reference: "
          << describe(reference[i]);
    }
  }
}

// The wrapper itself must be transparent: wrapping the hook twice (model
// still Custom) reproduces the single-wrapped run exactly.
TEST(DifferentialSelection, ReferenceSelectorIsTransparent) {
  const TrialParams p = derive_params(7);
  SchedConfig cfg;
  cfg.locality_wait = p.locality_wait;
  Engine engine(cfg, p.nodes, p.slots_per_node, p.engine_seed);
  engine.set_reservation_hook(std::make_unique<ReferenceSelector>(
      std::make_unique<ReferenceSelector>(make_hook(p))));
  EventLog log;
  engine.add_observer(&log);
  for (JobSpec& spec : make_background_jobs(p.bg)) {
    engine.submit(std::move(spec));
  }
  engine.submit(make_kmeans(p.fg_parallelism, 10, p.fg_submit));
  engine.run();
  EXPECT_EQ(log.events, run_trial(p, true).events);
}

// The optimized selection must also match the reference when the *event
// queue* underneath is swapped for the calendar backend and sharded lanes:
// the optimized run uses each alternate configuration while the reference
// run stays on the sequential binary heap, so a single comparison covers
// both the candidate-enumeration equivalence and the queue's bit-identical
// merge contract (DESIGN.md §13) in one differential signal.
TEST(DifferentialSelection, OptimizedShardedEnginesMatchSequentialReference) {
  struct Alt {
    EventQueueBackend backend;
    std::uint32_t shards;
  };
  const Alt alts[] = {{EventQueueBackend::kCalendar, 1},
                      {EventQueueBackend::kBinaryHeap, 4},
                      {EventQueueBackend::kCalendar, 4}};
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    const TrialParams p = derive_params(trial);
    const std::vector<SchedEvent> reference = run_trial(p, true).events;
    for (const Alt& alt : alts) {
      const std::vector<SchedEvent> optimized =
          run_trial(p, false, false, alt.backend, alt.shards).events;
      ASSERT_EQ(optimized.size(), reference.size())
          << "trial " << trial << " shards " << alt.shards << " backend "
          << static_cast<int>(alt.backend) << ": event counts diverged";
      for (std::size_t i = 0; i < optimized.size(); ++i) {
        ASSERT_EQ(optimized[i], reference[i])
            << "trial " << trial << " shards " << alt.shards << " backend "
            << static_cast<int>(alt.backend) << " diverged at event " << i
            << ":\n  optimized: " << describe(optimized[i])
            << "\n  reference: " << describe(reference[i]);
      }
    }
  }
}

// --- Policy-zoo legs ---------------------------------------------------------
//
// Every zoo policy (exp/policy_zoo.h) must uphold the same determinism
// contract as the default scheduler: the complete scheduling event sequence
// is a function of the scenario alone, not of the event-queue backend or
// shard count (DESIGN.md §13).  Each trial randomizes cluster size, trace
// mix and locality config exactly like the hook trials above, turns on
// per-stage demand vectors (so the packing selector makes real decisions),
// and runs through the full ScenarioHarness — under -DSSR_AUDIT=ON the
// 12-invariant auditor rides every one of these runs.

struct ZooOutcome {
  std::vector<SchedEvent> events;
  RunTotals totals;
  RunResult run;
  std::uint32_t total_slots = 0;
};

ZooOutcome run_zoo_trial(ZooPolicy policy, std::uint64_t trial,
                         EventQueueBackend backend, std::uint32_t shards) {
  const TrialParams p = derive_params(trial);
  const ClusterSpec cluster{
      .nodes = p.nodes, .slots_per_node = p.slots_per_node, .node_slots = {}};
  RunOptions options;
  options.seed = p.engine_seed;
  options.sched.locality_wait = p.locality_wait;
  apply_zoo_policy(policy, cluster, options);
  options.sched.event_queue_backend = backend;
  options.sched.event_shards = shards;
  TraceGenConfig bg = p.bg;
  bg.vary_demand = true;
  ScenarioHarness harness(cluster, options);
  EventLog log;
  harness.engine().add_observer(&log);
  std::vector<JobId> ids;
  for (JobSpec& spec : make_background_jobs(bg)) {
    ids.push_back(harness.engine().submit(std::move(spec)));
  }
  ids.push_back(
      harness.engine().submit(make_kmeans(p.fg_parallelism, 10, p.fg_submit)));
  harness.engine().run();
  ZooOutcome out;
  out.run = harness.collect(ids);
  out.events = std::move(log.events);
  out.totals.busy = harness.engine().cluster().total_busy_time();
  out.totals.reserved_idle =
      harness.engine().cluster().total_reserved_idle_time();
  out.totals.dead = harness.engine().cluster().total_dead_time();
  out.totals.now = harness.engine().sim().now();
  out.total_slots = cluster.total_slots();
  return out;
}

// Completion and conservation: every submitted job finishes, and the
// per-job busy attribution sums back to the cluster's total busy time (the
// two are accumulated by independent collectors, so agreement is a real
// cross-check, not a tautology — tolerance covers summation order only).
void check_zoo_run(const ZooOutcome& out, const std::string& label) {
  ASSERT_FALSE(out.run.jobs.empty()) << label;
  double attributed_busy = 0.0;
  for (const JobResult& j : out.run.jobs) {
    ASSERT_GT(j.jct, 0.0) << label << ": job " << j.name << " never finished";
    ASSERT_GE(j.finish, j.submit) << label << ": job " << j.name;
    attributed_busy += j.busy_seconds;
  }
  ASSERT_NEAR(attributed_busy, out.totals.busy,
              1e-6 * std::max(1.0, out.totals.busy))
      << label << ": per-job busy attribution lost slot-seconds";
  // Slot-time conservation: busy + reserved-idle + dead slot-seconds can
  // never exceed the cluster's capacity over the simulated horizon.
  const double capacity =
      static_cast<double>(out.total_slots) * out.totals.now;
  ASSERT_LE(out.totals.busy + out.totals.reserved_idle + out.totals.dead,
            capacity + 1e-6 * std::max(1.0, capacity))
      << label << ": slot-time over-commit";
}

TEST(DifferentialSelection, ZooPoliciesAreBackendAndShardInvariant) {
  constexpr std::uint64_t kTrialsPerPolicy = 40;
  struct Alt {
    EventQueueBackend backend;
    std::uint32_t shards;
  };
  const Alt alts[] = {
      {EventQueueBackend::kBinaryHeap, 2}, {EventQueueBackend::kBinaryHeap, 4},
      {EventQueueBackend::kBinaryHeap, 8}, {EventQueueBackend::kCalendar, 1},
      {EventQueueBackend::kCalendar, 2},   {EventQueueBackend::kCalendar, 4},
      {EventQueueBackend::kCalendar, 8}};
  for (ZooPolicy policy : all_zoo_policies()) {
    for (std::uint64_t trial = 0; trial < kTrialsPerPolicy; ++trial) {
      const std::string label = std::string(zoo_policy_name(policy)) +
                                " trial " + std::to_string(trial);
      const ZooOutcome reference =
          run_zoo_trial(policy, trial, EventQueueBackend::kBinaryHeap, 1);
      check_zoo_run(reference, label);
      for (const Alt& alt : alts) {
        const ZooOutcome other =
            run_zoo_trial(policy, trial, alt.backend, alt.shards);
        ASSERT_EQ(other.events.size(), reference.events.size())
            << label << " shards " << alt.shards << " backend "
            << static_cast<int>(alt.backend) << ": event counts diverged";
        for (std::size_t i = 0; i < reference.events.size(); ++i) {
          ASSERT_EQ(other.events[i], reference.events[i])
              << label << " shards " << alt.shards << " backend "
              << static_cast<int>(alt.backend) << " diverged at event " << i
              << ":\n  alt:       " << describe(other.events[i])
              << "\n  reference: " << describe(reference.events[i]);
        }
        ASSERT_TRUE(other.totals == reference.totals)
            << label << " shards " << alt.shards << ": totals diverged";
      }
    }
  }
}

// The selector seam must be path-independent: with a StageSelector (and,
// for the table policy, a reservation hook) installed, the optimized
// indexed candidate enumeration must make exactly the decisions of the
// reference full-scan path.  rank_slots() permutes — never adds or drops —
// candidates after enumeration on both paths, so acceptance-order equality
// here is precisely the soundness claim in DESIGN.md §14.
TEST(DifferentialSelection, ZooSelectorsMatchReferenceSelection) {
  constexpr std::uint64_t kTrialsPerPolicy = 40;
  const ZooPolicy selector_policies[] = {ZooPolicy::kDagps, ZooPolicy::kPacking,
                                         ZooPolicy::kTableDriven};
  for (ZooPolicy policy : selector_policies) {
    for (std::uint64_t trial = 0; trial < kTrialsPerPolicy; ++trial) {
      const TrialParams p = derive_params(trial);
      const ClusterSpec cluster{.nodes = p.nodes,
                                .slots_per_node = p.slots_per_node,
                                .node_slots = {}};
      RunOptions options;
      options.seed = p.engine_seed;
      options.sched.locality_wait = p.locality_wait;
      apply_zoo_policy(policy, cluster, options);
      TraceGenConfig bg = p.bg;
      bg.vary_demand = true;

      std::vector<SchedEvent> runs[2];
      for (int reference = 0; reference < 2; ++reference) {
        SchedConfig cfg = options.sched;
        Engine engine(cfg, p.nodes, p.slots_per_node, p.engine_seed);
        std::unique_ptr<ReservationHook> hook;
        if (options.hook_factory) {
          hook = options.hook_factory();
        } else {
          hook = std::make_unique<NullReservationHook>();
        }
        if (reference != 0) {
          hook = std::make_unique<ReferenceSelector>(std::move(hook));
        }
        engine.set_reservation_hook(std::move(hook));
        EventLog log;
        engine.add_observer(&log);
        TraceGenConfig cfg_bg = bg;
        for (JobSpec& spec : make_background_jobs(cfg_bg)) {
          engine.submit(std::move(spec));
        }
        engine.submit(make_kmeans(p.fg_parallelism, 10, p.fg_submit));
        engine.run();
        runs[reference] = std::move(log.events);
      }
      ASSERT_EQ(runs[0].size(), runs[1].size())
          << zoo_policy_name(policy) << " trial " << trial
          << ": event counts diverged";
      for (std::size_t i = 0; i < runs[0].size(); ++i) {
        ASSERT_EQ(runs[0][i], runs[1][i])
            << zoo_policy_name(policy) << " trial " << trial
            << " diverged at event " << i << ":\n  optimized: "
            << describe(runs[0][i]) << "\n  reference: "
            << describe(runs[1][i]);
      }
    }
  }
}

// A FailureInjector attached with an empty schedule must leave the run
// bit-identical — same event stream, same metric totals — to a run that
// never attached an injector (run_scenario relies on this to make the
// `failures` option safe to thread through every experiment).
TEST(DifferentialSelection, EmptyFailureScheduleIsANoOp) {
  constexpr std::uint64_t kTrials = 50;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    const TrialParams p = derive_params(trial);
    const TrialResult plain = run_trial(p, false);
    const TrialResult injected = run_trial(p, false, /*empty_injector=*/true);
    ASSERT_EQ(plain.events.size(), injected.events.size())
        << "trial " << trial << " (hook kind " << static_cast<int>(p.hook)
        << "): event counts diverged";
    for (std::size_t i = 0; i < plain.events.size(); ++i) {
      ASSERT_EQ(plain.events[i], injected.events[i])
          << "trial " << trial << " diverged at event " << i << ":\n  plain: "
          << describe(plain.events[i]) << "\n  injected: "
          << describe(injected.events[i]);
    }
    ASSERT_TRUE(plain.totals == injected.totals)
        << "trial " << trial << ": metric totals diverged";
  }
}

}  // namespace
}  // namespace ssr
