// Unit tests for the flat-heap EventQueue and its move-only callback type:
// time ordering, same-instant FIFO, interleaved push/pop, and move-only
// callable support (the properties the simulator's determinism rests on).
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "ssr/common/check.h"
#include "ssr/sim/event_queue.h"

namespace ssr {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  while (!q.empty()) {
    auto [at, fn] = q.pop();
    fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameInstantFifo) {
  // Tie-break by insertion order must hold for many events at one instant —
  // a plain (time)-keyed heap would pop them in arbitrary sift order.
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    q.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, InterleavedPushPopKeepsOrdering) {
  // Pops interleaved with pushes (the simulator's actual usage: callbacks
  // schedule new events).  Sequence numbers must keep FIFO among equal
  // times even across partial drains.
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(10); });
  q.push(2.0, [&] { order.push_back(20); });
  q.pop().second();  // fires 10
  q.push(2.0, [&] { order.push_back(21); });
  q.push(1.5, [&] { order.push_back(15); });
  q.pop().second();  // fires 15
  q.push(2.0, [&] { order.push_back(22); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{10, 15, 20, 21, 22}));
}

TEST(EventQueue, NextTimeOnEmptyIsInfinity) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeInfinity);
  q.push(4.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.0);
  q.pop();
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, MoveOnlyCallbacksAreSupported) {
  // std::function would reject this lambda (unique_ptr capture makes it
  // non-copyable); the queue's UniqueCallback only ever moves.
  EventQueue q;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  q.push(1.0, [p = std::move(payload), &seen] { seen = *p; });
  auto [at, fn] = q.pop();
  EXPECT_DOUBLE_EQ(at, 1.0);
  fn();
  EXPECT_EQ(seen, 42);
}

TEST(EventQueue, PopMovesCallbackOut) {
  // The callback owns its captures after pop(): destroying the queue before
  // invoking must be safe (pop transfers, not references).
  auto q = std::make_unique<EventQueue>();
  auto payload = std::make_unique<int>(7);
  int seen = 0;
  q->push(1.0, [p = std::move(payload), &seen] { seen = *p; });
  auto [at, fn] = q->pop();
  q.reset();
  fn();
  EXPECT_EQ(seen, 7);
}

TEST(EventQueue, RejectsEmptyCallbackAndEmptyPop) {
  EventQueue q;
  EXPECT_THROW(q.push(1.0, UniqueCallback{}), CheckError);
  EXPECT_THROW(q.pop(), CheckError);
}

TEST(EventQueue, BandsOrderSameInstantEvents) {
  // At one timestamp, failures precede arrivals precede internal events —
  // regardless of push order.  This is the tie-break the open-vs-closed
  // equivalence rests on: a closed harness pushes failure schedules first
  // and all arrivals before any internal event, so seq order coincides with
  // band order there; open-mode submission reproduces it via bands alone.
  EventQueue q;
  std::vector<int> order;
  q.push(5.0, EventBand::kInternal, [&] { order.push_back(2); });
  q.push(5.0, EventBand::kArrival, [&] { order.push_back(1); });
  q.push(5.0, EventBand::kFailure, [&] { order.push_back(0); });
  q.push(5.0, EventBand::kInternal, [&] { order.push_back(3); });
  q.push(5.0, EventBand::kArrival, [&] { order.push_back(11); });
  q.push(5.0, EventBand::kFailure, [&] { order.push_back(10); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 10, 1, 11, 2, 3}));
}

TEST(EventQueue, BandsLoseToTime) {
  // Bands only break exact-time ties; an earlier internal event still beats
  // a later failure.
  EventQueue q;
  std::vector<int> order;
  q.push(2.0, EventBand::kFailure, [&] { order.push_back(2); });
  q.push(1.0, EventBand::kInternal, [&] { order.push_back(1); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, PopIfAtOrBeforeIsBounded) {
  // The bounded-advance primitive must pop events at or before the horizon
  // — boundary inclusive — and must not pop (not even inspect-and-drop)
  // anything strictly past it.
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  q.push(3.0, [&] { order.push_back(3); });

  auto ev = q.pop_if_at_or_before(2.0);
  ASSERT_TRUE(ev.has_value());
  EXPECT_DOUBLE_EQ(ev->first, 1.0);
  ev->second();

  ev = q.pop_if_at_or_before(2.0);  // exactly at the horizon: fires
  ASSERT_TRUE(ev.has_value());
  EXPECT_DOUBLE_EQ(ev->first, 2.0);
  ev->second();

  ev = q.pop_if_at_or_before(2.0);  // 3.0 is past the horizon: stays queued
  EXPECT_FALSE(ev.has_value());
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.peek_time(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, BoundedAdvanceRespectsBandsOnHorizonTie) {
  // The satellite case: an injected failure and a stage completion tied at
  // the advance horizon.  advance_to(t) must fire both (boundary is
  // inclusive) with the failure first, and must not over-step past t.
  EventQueue q;
  std::vector<int> order;
  q.push(7.0, EventBand::kInternal, [&] { order.push_back(2); });  // completion
  q.push(7.0, EventBand::kFailure, [&] { order.push_back(1); });  // failure
  q.push(7.0 + 1e-9, EventBand::kFailure, [&] { order.push_back(3); });

  while (auto ev = q.pop_if_at_or_before(7.0)) ev->second();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // failure won the tie
  EXPECT_EQ(q.size(), 1u);  // the epsilon-later failure was not over-stepped
}

}  // namespace
}  // namespace ssr
