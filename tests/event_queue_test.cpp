// Unit tests for the flat-heap EventQueue and its move-only callback type:
// time ordering, same-instant FIFO, interleaved push/pop, and move-only
// callable support (the properties the simulator's determinism rests on).
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "ssr/common/check.h"
#include "ssr/sim/event_queue.h"

namespace ssr {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  while (!q.empty()) {
    auto [at, fn] = q.pop();
    fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameInstantFifo) {
  // Tie-break by insertion order must hold for many events at one instant —
  // a plain (time)-keyed heap would pop them in arbitrary sift order.
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    q.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, InterleavedPushPopKeepsOrdering) {
  // Pops interleaved with pushes (the simulator's actual usage: callbacks
  // schedule new events).  Sequence numbers must keep FIFO among equal
  // times even across partial drains.
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(10); });
  q.push(2.0, [&] { order.push_back(20); });
  q.pop().second();  // fires 10
  q.push(2.0, [&] { order.push_back(21); });
  q.push(1.5, [&] { order.push_back(15); });
  q.pop().second();  // fires 15
  q.push(2.0, [&] { order.push_back(22); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{10, 15, 20, 21, 22}));
}

TEST(EventQueue, NextTimeOnEmptyIsInfinity) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeInfinity);
  q.push(4.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.0);
  q.pop();
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, MoveOnlyCallbacksAreSupported) {
  // std::function would reject this lambda (unique_ptr capture makes it
  // non-copyable); the queue's UniqueCallback only ever moves.
  EventQueue q;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  q.push(1.0, [p = std::move(payload), &seen] { seen = *p; });
  auto [at, fn] = q.pop();
  EXPECT_DOUBLE_EQ(at, 1.0);
  fn();
  EXPECT_EQ(seen, 42);
}

TEST(EventQueue, PopMovesCallbackOut) {
  // The callback owns its captures after pop(): destroying the queue before
  // invoking must be safe (pop transfers, not references).
  auto q = std::make_unique<EventQueue>();
  auto payload = std::make_unique<int>(7);
  int seen = 0;
  q->push(1.0, [p = std::move(payload), &seen] { seen = *p; });
  auto [at, fn] = q->pop();
  q.reset();
  fn();
  EXPECT_EQ(seen, 7);
}

TEST(EventQueue, RejectsEmptyCallbackAndEmptyPop) {
  EventQueue q;
  EXPECT_THROW(q.push(1.0, UniqueCallback{}), CheckError);
  EXPECT_THROW(q.pop(), CheckError);
}

}  // namespace
}  // namespace ssr
