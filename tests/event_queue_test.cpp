// Unit tests for the EventQueue and its move-only callback type: time
// ordering, same-instant FIFO, interleaved push/pop, move-only callable
// support (the properties the simulator's determinism rests on), plus the
// backend/shard matrix — every storage configuration must pop the identical
// sequence, and the calendar backend's resize / far-future machinery gets
// targeted edge-case coverage.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "ssr/common/check.h"
#include "ssr/sim/event_queue.h"

namespace ssr {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  while (!q.empty()) {
    auto [at, fn] = q.pop();
    fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameInstantFifo) {
  // Tie-break by insertion order must hold for many events at one instant —
  // a plain (time)-keyed heap would pop them in arbitrary sift order.
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    q.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, InterleavedPushPopKeepsOrdering) {
  // Pops interleaved with pushes (the simulator's actual usage: callbacks
  // schedule new events).  Sequence numbers must keep FIFO among equal
  // times even across partial drains.
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(10); });
  q.push(2.0, [&] { order.push_back(20); });
  q.pop().second();  // fires 10
  q.push(2.0, [&] { order.push_back(21); });
  q.push(1.5, [&] { order.push_back(15); });
  q.pop().second();  // fires 15
  q.push(2.0, [&] { order.push_back(22); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{10, 15, 20, 21, 22}));
}

TEST(EventQueue, NextTimeOnEmptyIsInfinity) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeInfinity);
  q.push(4.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.0);
  q.pop();
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, MoveOnlyCallbacksAreSupported) {
  // std::function would reject this lambda (unique_ptr capture makes it
  // non-copyable); the queue's UniqueCallback only ever moves.
  EventQueue q;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  q.push(1.0, [p = std::move(payload), &seen] { seen = *p; });
  auto [at, fn] = q.pop();
  EXPECT_DOUBLE_EQ(at, 1.0);
  fn();
  EXPECT_EQ(seen, 42);
}

TEST(EventQueue, PopMovesCallbackOut) {
  // The callback owns its captures after pop(): destroying the queue before
  // invoking must be safe (pop transfers, not references).
  auto q = std::make_unique<EventQueue>();
  auto payload = std::make_unique<int>(7);
  int seen = 0;
  q->push(1.0, [p = std::move(payload), &seen] { seen = *p; });
  auto [at, fn] = q->pop();
  q.reset();
  fn();
  EXPECT_EQ(seen, 7);
}

TEST(EventQueue, RejectsEmptyCallbackAndEmptyPop) {
  EventQueue q;
  EXPECT_THROW(q.push(1.0, UniqueCallback{}), CheckError);
  EXPECT_THROW(q.pop(), CheckError);
}

TEST(EventQueue, BandsOrderSameInstantEvents) {
  // At one timestamp, failures precede arrivals precede internal events —
  // regardless of push order.  This is the tie-break the open-vs-closed
  // equivalence rests on: a closed harness pushes failure schedules first
  // and all arrivals before any internal event, so seq order coincides with
  // band order there; open-mode submission reproduces it via bands alone.
  EventQueue q;
  std::vector<int> order;
  q.push(5.0, EventBand::kInternal, [&] { order.push_back(2); });
  q.push(5.0, EventBand::kArrival, [&] { order.push_back(1); });
  q.push(5.0, EventBand::kFailure, [&] { order.push_back(0); });
  q.push(5.0, EventBand::kInternal, [&] { order.push_back(3); });
  q.push(5.0, EventBand::kArrival, [&] { order.push_back(11); });
  q.push(5.0, EventBand::kFailure, [&] { order.push_back(10); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 10, 1, 11, 2, 3}));
}

TEST(EventQueue, BandsLoseToTime) {
  // Bands only break exact-time ties; an earlier internal event still beats
  // a later failure.
  EventQueue q;
  std::vector<int> order;
  q.push(2.0, EventBand::kFailure, [&] { order.push_back(2); });
  q.push(1.0, EventBand::kInternal, [&] { order.push_back(1); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, PopIfAtOrBeforeIsBounded) {
  // The bounded-advance primitive must pop events at or before the horizon
  // — boundary inclusive — and must not pop (not even inspect-and-drop)
  // anything strictly past it.
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  q.push(3.0, [&] { order.push_back(3); });

  auto ev = q.pop_if_at_or_before(2.0);
  ASSERT_TRUE(ev.has_value());
  EXPECT_DOUBLE_EQ(ev->first, 1.0);
  ev->second();

  ev = q.pop_if_at_or_before(2.0);  // exactly at the horizon: fires
  ASSERT_TRUE(ev.has_value());
  EXPECT_DOUBLE_EQ(ev->first, 2.0);
  ev->second();

  ev = q.pop_if_at_or_before(2.0);  // 3.0 is past the horizon: stays queued
  EXPECT_FALSE(ev.has_value());
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.peek_time(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, BoundedAdvanceRespectsBandsOnHorizonTie) {
  // The satellite case: an injected failure and a stage completion tied at
  // the advance horizon.  advance_to(t) must fire both (boundary is
  // inclusive) with the failure first, and must not over-step past t.
  EventQueue q;
  std::vector<int> order;
  q.push(7.0, EventBand::kInternal, [&] { order.push_back(2); });  // completion
  q.push(7.0, EventBand::kFailure, [&] { order.push_back(1); });  // failure
  q.push(7.0 + 1e-9, EventBand::kFailure, [&] { order.push_back(3); });

  while (auto ev = q.pop_if_at_or_before(7.0)) ev->second();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // failure won the tie
  EXPECT_EQ(q.size(), 1u);  // the epsilon-later failure was not over-stepped
}

// --- Backend / shard matrix --------------------------------------------------

/// The storage configurations the determinism contract quantifies over.  All
/// of them must produce the identical pop sequence for any workload.
std::vector<EventQueueOptions> AllConfigs(std::uint32_t num_nodes) {
  std::vector<EventQueueOptions> configs;
  for (EventQueueBackend backend :
       {EventQueueBackend::kBinaryHeap, EventQueueBackend::kCalendar}) {
    for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
      configs.push_back(EventQueueOptions{backend, shards, num_nodes});
    }
  }
  return configs;
}

std::string ConfigName(const EventQueueOptions& o) {
  return std::string(o.backend == EventQueueBackend::kCalendar ? "calendar"
                                                               : "heap") +
         "/shards=" + std::to_string(o.shards);
}

/// One scripted interleaving of pushes and pops, replayed against a config.
/// Returns the (time, payload id) pop sequence.
struct Op {
  bool is_pop = false;
  double at = 0.0;
  EventBand band = EventBand::kInternal;
  std::uint32_t home = 0;
  int id = 0;
};

std::vector<std::pair<double, int>> Replay(const EventQueueOptions& opts,
                                           const std::vector<Op>& ops) {
  EventQueue q(opts);
  std::vector<std::pair<double, int>> popped;
  std::vector<int> fired;
  for (const Op& op : ops) {
    if (op.is_pop) {
      if (q.empty()) continue;
      auto [at, fn] = q.pop();
      fn();
      popped.emplace_back(at, fired.back());
    } else {
      q.push(op.at, op.band, NodeId{op.home},
             [&fired, id = op.id] { fired.push_back(id); });
    }
  }
  while (!q.empty()) {
    auto [at, fn] = q.pop();
    fn();
    popped.emplace_back(at, fired.back());
  }
  return popped;
}

/// Random workload mixing clustered exact ties, a wide time spread, and
/// occasional far-future outliers (the calendar's overflow population).
std::vector<Op> RandomWorkload(std::uint64_t seed, int n_ops,
                               std::uint32_t num_nodes) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<Op> ops;
  double watermark = 0.0;  // pops only ever raise the popped time
  int next_id = 0;
  int live = 0;
  for (int i = 0; i < n_ops; ++i) {
    const double r = uni(rng);
    if (live > 0 && r < 0.35) {
      ops.push_back(Op{true});
      --live;
      continue;
    }
    Op op;
    const double kind = uni(rng);
    if (kind < 0.4) {
      // Clustered: exact ties on a coarse grid, the band/seq stress case.
      op.at = watermark + static_cast<double>(rng() % 8);
    } else if (kind < 0.8) {
      op.at = watermark + uni(rng) * 100.0;
    } else if (kind < 0.95) {
      op.at = watermark + uni(rng) * 5.0e7;  // far future: overflow territory
    } else {
      op.at = watermark;  // exactly "now"
    }
    op.band = static_cast<EventBand>(rng() % 3);
    op.home = static_cast<std::uint32_t>(rng() % (2 * num_nodes));  // some out of range
    op.id = next_id++;
    ops.push_back(op);
    ++live;
  }
  return ops;
}

TEST(EventQueueMatrix, AllConfigsPopIdenticalSequences) {
  constexpr std::uint32_t kNodes = 40;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::vector<Op> ops = RandomWorkload(seed, 600, kNodes);
    const auto reference = Replay(EventQueueOptions{}, ops);
    for (const EventQueueOptions& cfg : AllConfigs(kNodes)) {
      const auto got = Replay(cfg, ops);
      ASSERT_EQ(got, reference)
          << "seed " << seed << " diverged under " << ConfigName(cfg);
    }
  }
}

TEST(EventQueueMatrix, BandsAndFifoHoldUnderEveryConfig) {
  for (const EventQueueOptions& cfg : AllConfigs(16)) {
    EventQueue q(cfg);
    std::vector<int> order;
    for (int i = 0; i < 64; ++i) {
      q.push(5.0, static_cast<EventBand>(2 - i % 3), NodeId{static_cast<std::uint32_t>(i) % 16},
             [&order, i] { order.push_back(i); });
    }
    std::vector<int> expect;
    for (int band = 0; band < 3; ++band) {
      for (int i = 0; i < 64; ++i) {
        if (2 - i % 3 == band) expect.push_back(i);
      }
    }
    while (!q.empty()) q.pop().second();
    EXPECT_EQ(order, expect) << ConfigName(cfg);
  }
}

// --- Calendar-specific edge cases -------------------------------------------

EventQueueOptions Calendar() {
  return EventQueueOptions{EventQueueBackend::kCalendar, 1, 0};
}

TEST(CalendarQueue, BucketGrowAndShrinkPreserveOrder) {
  // Push enough to force several doublings past the 16-bucket floor, then
  // drain (forcing shrink rebuilds) while asserting global order.
  EventQueue q(Calendar());
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> uni(0.0, 1000.0);
  for (int i = 0; i < 5000; ++i) q.push(uni(rng), [] {});
  double prev = -1.0;
  while (!q.empty()) {
    auto [at, fn] = q.pop();
    EXPECT_GE(at, prev);
    prev = at;
  }
}

TEST(CalendarQueue, EarlierPushAfterCursorAdvanceIsNotLost) {
  // Regression guard for the classic calendar-queue bug: peeking walks the
  // scan cursor forward; a subsequent push *behind* the cursor must still be
  // the next pop (cursor regression rule + cached-min invalidation).
  EventQueue q(Calendar());
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    q.push(1000.0 + i, [&order, i] { order.push_back(100 + i); });
  }
  EXPECT_DOUBLE_EQ(q.next_time(), 1000.0);  // locates min, parks cursor
  q.push(3.0, [&] { order.push_back(1) ; });
  EXPECT_DOUBLE_EQ(q.next_time(), 3.0);
  q.pop().second();
  ASSERT_EQ(order, (std::vector<int>{1}));
  q.pop().second();
  EXPECT_EQ(order.back(), 100);
}

TEST(CalendarQueue, FarFutureEventsRouteThroughOverflow) {
  // A dense near population plus outliers millions of seconds out: the
  // outliers sit in overflow until the buckets drain, then a rebuild around
  // the remaining population must surface them in order.
  EventQueue q(Calendar());
  std::vector<double> popped;
  for (int i = 0; i < 200; ++i) q.push(static_cast<double>(i) * 0.25, [] {});
  q.push(9.0e12, [] {});
  q.push(3.0e12, [] {});
  q.push(3.0e12, [] {});  // tie in the far population
  ASSERT_EQ(q.size(), 203u);
  double prev = -1.0;
  while (!q.empty()) {
    auto [at, fn] = q.pop();
    EXPECT_GE(at, prev);
    prev = at;
    popped.push_back(at);
  }
  ASSERT_EQ(popped.size(), 203u);
  EXPECT_DOUBLE_EQ(popped[200], 3.0e12);
  EXPECT_DOUBLE_EQ(popped[201], 3.0e12);
  EXPECT_DOUBLE_EQ(popped[202], 9.0e12);
}

TEST(CalendarQueue, InfiniteTimeEventsPopLast) {
  // kTimeInfinity sentinels (e.g. "never" timers) must never enter bucket
  // index arithmetic, and pop after every finite event.
  EventQueue q(Calendar());
  std::vector<int> order;
  q.push(kTimeInfinity, [&] { order.push_back(99); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(kTimeInfinity, [&] { order.push_back(100); });
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 99, 100}));
}

TEST(CalendarQueue, SingleFarFutureEventAfterDrainIsReachable) {
  // Drain-to-overflow-only: the rebuild triggered by an empty bucket array
  // must re-home the far event rather than spinning or losing it.
  EventQueue q(Calendar());
  for (int i = 0; i < 50; ++i) q.push(static_cast<double>(i), [] {});
  q.push(8.0e15, [] {});
  for (int i = 0; i < 50; ++i) q.pop();
  ASSERT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 8.0e15);
  auto [at, fn] = q.pop();
  EXPECT_DOUBLE_EQ(at, 8.0e15);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueMatrix, DestructionWithPendingEventsIsClean) {
  // Worker threads must shut down even when events (and their captured
  // state) are still queued — exercised under TSan via the ctest label.
  for (const EventQueueOptions& cfg : AllConfigs(8)) {
    auto q = std::make_unique<EventQueue>(cfg);
    auto payload = std::make_unique<int>(5);
    for (int i = 0; i < 100; ++i) {
      q->push(static_cast<double>(i), EventBand::kInternal,
              NodeId{static_cast<std::uint32_t>(i) % 8}, [] {});
    }
    q->push(1.0, [p = std::move(payload)] {});
    q.reset();
  }
}

}  // namespace
}  // namespace ssr
