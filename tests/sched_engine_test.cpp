// Tests for the scheduling engine: barriers, work conservation, locality /
// delay scheduling, priority and fair policies — the baseline (no SSR)
// behavior the paper's Sec. II characterizes.
#include <gtest/gtest.h>

#include <vector>

#include "ssr/common/check.h"
#include "ssr/metrics/collectors.h"
#include "ssr/sched/engine.h"

namespace ssr {
namespace {

SchedConfig quick_sched() {
  SchedConfig c;
  c.locality_wait = 3.0;
  c.locality_slowdown = 5.0;
  return c;
}

/// Observer asserting barrier semantics: no task of a stage starts before
/// every parent stage has finished.
class BarrierChecker : public EngineObserver {
 public:
  void on_stage_finished(const Engine& engine, StageId stage) override {
    finish_time_[stage] = engine.sim().now();
  }
  void on_task_started(const Engine& engine, TaskId task, SlotId) override {
    const JobGraph& g = engine.graph(task.stage.job);
    for (std::uint32_t p : g.stage(task.stage.index).parents) {
      const StageId pid = g.stage_id(p);
      auto it = finish_time_.find(pid);
      ASSERT_TRUE(it != finish_time_.end())
          << "task started before parent stage finished";
      ASSERT_LE(it->second, engine.sim().now());
    }
  }

 private:
  std::map<StageId, SimTime> finish_time_;
};

TEST(Engine, SingleStageJobCompletesWithExactJct) {
  Engine engine(quick_sched(), 2, 2, 1);
  const JobId id = engine.submit(JobBuilder("one")
                                     .stage(4, fixed_duration(10.0))
                                     .build());
  engine.run();
  EXPECT_TRUE(engine.job_finished(id));
  EXPECT_DOUBLE_EQ(engine.jct(id), 10.0);
}

TEST(Engine, ChainRunsBackToBackWithLocality) {
  // Downstream tasks land on the parents' slots (free at the barrier), so no
  // locality penalty applies: JCT = 10 + 10.
  Engine engine(quick_sched(), 2, 2, 1);
  const JobId id = engine.submit(JobBuilder("chain")
                                     .stage(4, fixed_duration(10.0))
                                     .stage(4, fixed_duration(10.0))
                                     .build());
  engine.run();
  EXPECT_DOUBLE_EQ(engine.jct(id), 20.0);
}

TEST(Engine, BarrierWaitsForSlowestTask) {
  Engine engine(quick_sched(), 1, 2, 1);
  BarrierChecker checker;
  engine.add_observer(&checker);
  const JobId id = engine.submit(JobBuilder("skewed")
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 12.0})
                                     .stage(2, fixed_duration(3.0))
                                     .build());
  engine.run();
  // Phase 2 starts at 12 (barrier), both tasks local, done at 15.
  EXPECT_DOUBLE_EQ(engine.jct(id), 15.0);
}

TEST(Engine, MultiParentBarrier) {
  Engine engine(quick_sched(), 2, 2, 1);
  BarrierChecker checker;
  engine.add_observer(&checker);
  JobSpec spec = JobBuilder("join")
                     .stage_with_parents(2, fixed_duration(1.0), {})
                     .stage_with_parents(2, fixed_duration(1.0), {})
                     .stage_with_parents(4, fixed_duration(2.0), {0, 1})
                     .build();
  spec.stages[0].explicit_durations = std::vector<double>{4.0, 4.0};
  spec.stages[1].explicit_durations = std::vector<double>{9.0, 9.0};
  const JobId id = engine.submit(std::move(spec));
  engine.run();
  // Join waits for the slower scan (9), runs 2: JCT 11.
  EXPECT_DOUBLE_EQ(engine.jct(id), 11.0);
}

TEST(Engine, WorkConservingBaselineGivesSlotsAway) {
  // The Sec. II pathology: a high-priority 2-phase job loses its slots to a
  // low-priority long-task job at the barrier and must wait for them.
  Engine engine(quick_sched(), 1, 2, 1);
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .priority(10)
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .stage(2, fixed_duration(5.0))
                                     .build());
  const JobId bg = engine.submit(JobBuilder("bg")
                                     .priority(0)
                                     .submit_at(1.0)
                                     .stage(2, fixed_duration(100.0))
                                     .build());
  engine.run();
  // t=5: fg task 0 done, its slot is offered to bg (the barrier blocks fg's
  // phase 2) -> bg occupies it until t=105.  t=10: phase 1 done, but phase 2
  // only has one of its two slots left: it runs its tasks serially (10-15,
  // 15-20) instead of in parallel (10-15).  Alone, fg would finish at 15.
  EXPECT_DOUBLE_EQ(engine.jct(fg), 20.0);
  // bg's second task waits for fg to finish: starts at 20, ends 120.
  EXPECT_DOUBLE_EQ(engine.jct(bg), 119.0);
}

TEST(Engine, FreedPreferredSlotsKeepDownstreamLocal) {
  // The slots phase 1 ran on are free again at the barrier, so phase 2 runs
  // fully local even though background work grabbed the other slots.
  Engine engine(quick_sched(), 1, 4, 1);
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 6.0})
                                     .stage(2, fixed_duration(10.0))
                                     .build());
  // Background occupies slot 0 (freed at t=5) and slot 2 from t=4.5 for a
  // long time; slot 3 stays idle but is not preferred.
  engine.submit(JobBuilder("bg")
                    .submit_at(4.5)
                    .stage(2, fixed_duration(1000.0))
                    .build());
  engine.run();
  // fg phase 1 runs [5, 6] on slots 0,1; bg takes the idle slots 2,3 at
  // t=4.5 for 1000 s.  The barrier clears at 6; phase 2 prefers {0, 1},
  // both idle again -> both tasks local: JCT = 6 + 10 = 16.
  EXPECT_DOUBLE_EQ(engine.jct(fg), 16.0);
}

TEST(Engine, DelaySchedulingTimesOutOntoRemoteSlot) {
  Engine engine(quick_sched(), 1, 4, 1);
  // Phase 1 parallelism 2, phase 2 parallelism 3: the third phase-2 task has
  // no preferred slot available (slots 2,3: one taken by bg, one idle but
  // non-preferred).
  const JobId fg = engine.submit(JobBuilder("fg")
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 6.0})
                                     .stage(3, fixed_duration(10.0))
                                     .build());
  engine.submit(JobBuilder("bg")
                    .submit_at(4.5)
                    .stage(1, fixed_duration(1000.0))
                    .build());
  engine.run();
  // bg takes slot 2 at 4.5.  Barrier clears at 6: tasks 0,1 land local on
  // slots 0,1 (ends 16).  Task 2 declines idle slot 3 until 6+3=9, then runs
  // remote: 9 + 50 = 59.
  EXPECT_DOUBLE_EQ(engine.jct(fg), 59.0);
}

TEST(Engine, PriorityPolicyPrefersHighPriorityPendingTasks) {
  Engine engine(quick_sched(), 1, 1, 1);
  // One slot; both jobs have two tasks.  lo grabs the slot first (it arrives
  // first), but every subsequent offer goes to hi until hi drains.
  const JobId lo = engine.submit(
      JobBuilder("lo").priority(0).stage(2, fixed_duration(10.0)).build());
  const JobId hi = engine.submit(
      JobBuilder("hi").priority(5).stage(2, fixed_duration(10.0)).build());
  engine.run();
  EXPECT_DOUBLE_EQ(engine.jct(hi), 30.0);
  EXPECT_DOUBLE_EQ(engine.jct(lo), 40.0);
}

TEST(Engine, FairPolicySplitsSlotsEvenly) {
  SchedConfig cfg = quick_sched();
  cfg.policy = SchedulingPolicy::Fair;
  Engine engine(cfg, 1, 4, 1);
  // Two map-only jobs with 8 tasks each on 4 slots.  Total work is 160
  // task-seconds: work conservation pins the makespan at exactly 40, and
  // fair sharing keeps both jobs within one task-length of each other once
  // both are active (job a gets a head start on the initially empty
  // cluster, which Spark's fair scheduler also allows).
  const JobId a = engine.submit(
      JobBuilder("a").stage(8, fixed_duration(10.0)).build());
  const JobId b = engine.submit(
      JobBuilder("b").stage(8, fixed_duration(10.0)).build());
  engine.run();
  const double makespan = std::max(engine.jct(a), engine.jct(b));
  EXPECT_DOUBLE_EQ(makespan, 40.0);
  EXPECT_GE(std::min(engine.jct(a), engine.jct(b)), 30.0);
}

TEST(Engine, FairWeightsSkewTheSplit) {
  SchedConfig cfg = quick_sched();
  cfg.policy = SchedulingPolicy::Fair;
  Engine engine(cfg, 1, 3, 1);
  // Weight 2 vs 1: job a holds 2 slots, job b holds 1.
  const JobId a = engine.submit(JobBuilder("a")
                                    .fair_weight(2.0)
                                    .stage(8, fixed_duration(10.0))
                                    .build());
  const JobId b = engine.submit(JobBuilder("b")
                                    .fair_weight(1.0)
                                    .stage(4, fixed_duration(10.0))
                                    .build());
  engine.run();
  EXPECT_DOUBLE_EQ(engine.jct(a), 40.0);
  EXPECT_DOUBLE_EQ(engine.jct(b), 40.0);
}

TEST(Engine, RunningTasksSeriesTracksRampUpAndDown) {
  Engine engine(quick_sched(), 1, 2, 1);
  RunningTasksSeries series;
  engine.add_observer(&series);
  const JobId id = engine.submit(JobBuilder("j")
                                     .stage(2, fixed_duration(1.0))
                                     .explicit_durations({5.0, 10.0})
                                     .build());
  engine.run();
  const auto& log = series.changes(id);
  ASSERT_EQ(log.size(), 4u);  // +1 +1 -1 -1
  EXPECT_EQ(log[0].second, 1);
  EXPECT_EQ(log[1].second, 2);
  EXPECT_EQ(log[2].second, 1);
  EXPECT_EQ(log[3].second, 0);
  const auto sampled = series.sampled(id, 1.0, 10.0);
  EXPECT_EQ(sampled[3].second, 2);   // t=3: both running
  EXPECT_EQ(sampled[7].second, 1);   // t=7: one left
  EXPECT_EQ(sampled[10].second, 0);  // t=10: done
}

TEST(Engine, JobsArriveAtTheirSubmitTime) {
  Engine engine(quick_sched(), 1, 1, 1);
  const JobId id = engine.submit(JobBuilder("late")
                                     .submit_at(42.0)
                                     .stage(1, fixed_duration(8.0))
                                     .build());
  engine.run();
  EXPECT_DOUBLE_EQ(engine.job_finish_time(id), 50.0);
  EXPECT_DOUBLE_EQ(engine.jct(id), 8.0);
}

TEST(Engine, ApiMisuseThrows) {
  Engine engine(quick_sched(), 1, 1, 1);
  engine.submit(JobBuilder("j").stage(1, fixed_duration(1.0)).build());
  engine.run();
  EXPECT_THROW(engine.run(), CheckError);  // run twice
  EXPECT_THROW(engine.submit(JobBuilder("k").stage(1, fixed_duration(1.0)).build()),
               CheckError);  // submit after run
  EXPECT_THROW(engine.set_reservation_hook(nullptr), CheckError);
}

TEST(Engine, TaskStatsCountLocality) {
  Engine engine(quick_sched(), 1, 2, 1);
  TaskStatsCollector stats;
  engine.add_observer(&stats);
  const JobId id = engine.submit(JobBuilder("j")
                                     .stage(2, fixed_duration(5.0))
                                     .stage(2, fixed_duration(5.0))
                                     .build());
  engine.run();
  const JobTaskStats& s = stats.stats(id);
  EXPECT_EQ(s.tasks_started, 4u);
  EXPECT_EQ(s.tasks_finished, 4u);
  EXPECT_EQ(s.tasks_killed, 0u);
  EXPECT_EQ(s.local_starts, 4u);  // root stage counts as local
}

}  // namespace
}  // namespace ssr
