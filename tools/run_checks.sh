#!/usr/bin/env bash
# Single entry point for the static-check toolchain: the CI `analyze` job
# runs exactly this script, so a green local run means a green CI lane.
#
#   tools/run_checks.sh            # lint + analyze + fixture self-tests
#   tools/run_checks.sh --tidy     # additionally clang-tidy (needs a
#                                  # compile_commands.json build dir and
#                                  # clang-tidy on PATH)
#
# Steps:
#   1. ssr_lint.py     — textual conventions (no-assert, pragma-once,
#                        stale-suppression) over src tests bench examples.
#   2. ssr_analyze.py  — AST-level determinism/concurrency rules, gated on
#                        zero unbaselined findings against the committed
#                        tools/ssr_analyze_baseline.json.
#   3. fixture suites  — the analyzer/linter/bench-gate self-tests
#                        (tests/analyze/), so a broken rule cannot pass
#                        silently.
#   4. clang frontend  — if python clang bindings are importable (CI pins
#                        `pip install libclang==14.0.6`), re-run the
#                        analyzer with --frontend=clang over
#                        compile_commands.json as a cross-check of the
#                        canonical python frontend.  Skipped otherwise.
#   5. clang-tidy      — only with --tidy; optional everywhere.
set -euo pipefail

cd "$(dirname "$0")/.."

PYTHON="${PYTHON:-python3}"
BUILD_DIR="${BUILD_DIR:-build}"
TIDY=0
[[ "${1:-}" == "--tidy" ]] && TIDY=1

echo "==> ssr_lint"
"$PYTHON" tools/ssr_lint.py

echo "==> ssr_analyze (python frontend, baseline gate)"
"$PYTHON" tools/ssr_analyze.py \
    --baseline tools/ssr_analyze_baseline.json \
    src tools bench examples tests

echo "==> toolchain fixture self-tests"
(cd tests && "$PYTHON" -m unittest \
    analyze.test_ssr_analyze analyze.test_ssr_lint \
    analyze.test_check_bench_regression)

if "$PYTHON" -c 'import clang.cindex' 2>/dev/null; then
  echo "==> ssr_analyze (clang frontend cross-check)"
  CC_JSON="$BUILD_DIR/compile_commands.json"
  if [[ -f "$CC_JSON" ]]; then
    "$PYTHON" tools/ssr_analyze.py --frontend=clang \
        --compile-commands "$CC_JSON" \
        --baseline tools/ssr_analyze_baseline.json \
        src tools bench examples
  else
    echo "    (no $CC_JSON; configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
  fi
else
  echo "==> clang frontend cross-check skipped (no python clang bindings)"
fi

if [[ "$TIDY" == 1 ]]; then
  echo "==> clang-tidy build"
  cmake -B "$BUILD_DIR-tidy" -S . -DSSR_CLANG_TIDY=ON \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build "$BUILD_DIR-tidy" -j
fi

echo "==> all checks passed"
