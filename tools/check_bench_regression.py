#!/usr/bin/env python3
"""Compare BENCH_sched.json perf reports against a committed baseline.

Usage:
    check_bench_regression.py --baseline bench/baselines/BENCH_sched.json \
        [--threshold 0.25] current1.json [current2.json ...]

Every record in the baseline must appear in the union of the current
reports (so bench coverage cannot silently shrink), and its measured
items_per_second must not drop more than ``threshold`` relative to the
baseline value.  New records only present in the current reports are
reported informationally and do not fail the check — commit a refreshed
baseline to start tracking them.

Exit status:
    0 = no regression
    1 = throughput regression beyond the threshold
    2 = schema problem (unreadable report, wrong schema version)
    3 = baseline key missing from the current reports (bench coverage
        shrank — a renamed/deleted bench, or a report that was never
        generated; distinct from a perf regression so CI logs show
        immediately *which* failure mode it is)
"""
import argparse
import json
import sys

SCHEMA = "ssr-bench-sched-v1"

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_SCHEMA = 2
EXIT_MISSING_KEY = 3


def load_records(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: unreadable bench report: {e}", file=sys.stderr)
        sys.exit(EXIT_SCHEMA)
    if doc.get("schema") != SCHEMA:
        print(f"{path}: expected schema '{SCHEMA}', got "
              f"{doc.get('schema')!r}", file=sys.stderr)
        sys.exit(EXIT_SCHEMA)
    return {rec["name"]: rec for rec in doc.get("records", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated fractional throughput drop (default 0.25)",
    )
    parser.add_argument("current", nargs="+")
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    current = {}
    for path in args.current:
        current.update(load_records(path))

    failures = []
    missing = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            missing.append(name)
            continue
        base_ips = float(base.get("items_per_second", 0.0))
        cur_ips = float(cur.get("items_per_second", 0.0))
        if base_ips <= 0.0:
            print(f"  ? {name}: baseline has no throughput; skipping")
            continue
        ratio = cur_ips / base_ips
        status = "ok"
        if ratio < 1.0 - args.threshold:
            status = "REGRESSION"
            failures.append(
                f"{name}: {cur_ips:.0f} items/s vs baseline {base_ips:.0f} "
                f"({(1.0 - ratio) * 100.0:.1f}% drop > "
                f"{args.threshold * 100.0:.0f}% allowed)"
            )
        print(f"  {status:>10}  {name}: {ratio * 100.0:6.1f}% of baseline")

    for name in sorted(set(current) - set(baseline)):
        print(f"        new  {name}: not in baseline (not checked)")

    if missing:
        print("\nbaseline records missing from the current reports:",
              file=sys.stderr)
        for name in missing:
            print(f"  - {name}: present in {args.baseline} but not measured "
                  "— bench coverage shrank; run the bench or refresh the "
                  "baseline deliberately", file=sys.stderr)
        return EXIT_MISSING_KEY

    if failures:
        print("\nperf regressions detected:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return EXIT_REGRESSION
    print("\nno perf regression beyond threshold")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
