#!/usr/bin/env python3
"""AST-grounded determinism & concurrency static analyzer for the SSR tree.

Every correctness guarantee this reproduction makes rests on bit-identical
determinism: golden-replay digests, the 200-scenario differential suite, the
open-vs-closed equivalence suite and the trace round-trips all compare byte
streams.  The runtime suites *sample* nondeterminism; this pass proves the
structural sources of it absent before code lands.  Unlike tools/ssr_lint.py
(line regexes for textual conventions), every rule here runs over a parsed
representation of the code: class/field/method structure, local variable
types, range-for iteration targets resolved through member and call chains,
lock_guard scopes, and a cross-TU call graph.

Rules (see DESIGN.md §12 for the hazard-class -> runtime-suite mapping):

  nondet-iteration    iterating a std::unordered_map/std::unordered_set in a
                      function that (transitively) reaches EngineObserver
                      dispatch, event scheduling, or digest/trace emission —
                      or that sits below a StageSelector override
                      (stage_score/rank_slots), whose return values order
                      placement decisions directly (sched/types.h contract).
                      Hash iteration order is stdlib- and history-dependent;
                      feeding it into the observer stream breaks replay.
  pointer-keyed-order std::map/std::set (or multi-variants) keyed by a raw
                      pointer: traversal order is allocation order, which no
                      two runs share.
  lock-discipline     a field of a mutex-holding class accessed both under a
                      lock_guard/unique_lock/scoped_lock of that mutex and
                      outside any lock region (constructors/destructors are
                      exempt: single-threaded by contract).  Race candidates
                      for the sharded engine.
  observer-schema     AST-accurate replacement for the retired regex
                      trace-schema lint: every virtual on_* of EngineObserver
                      must be overridden+serialized by TraceRecorder (with a
                      distinct TraceEventKind) and mirrored by the
                      SlotLedger-reachable audit paths (InvariantAuditor
                      override; ReplayAuditor handling of the kind).
  sim-time-arith      float where simulated time flows (SimTime is double;
                      float truncates event timestamps), integer variables
                      assigned from time-typed expressions without an
                      explicit cast, and SimTime computed by integer/integer
                      division (silent truncation).
  nondet-api          AST-level versions of the retired regex lints:
                      rand/srand/time(nullptr) calls, std::random_device,
                      default-constructed <random> engines (including
                      never-seeded engine fields), and naked `new`.

Usage:
  tools/ssr_analyze.py [paths...]        # default: src tools bench examples
  tools/ssr_analyze.py --json out.json --baseline tools/ssr_analyze_baseline.json
  tools/ssr_analyze.py --list-rules
  tools/ssr_analyze.py --update-baseline

Suppress a finding with `// ssr-analyze: allow(<rule>)` on the finding line
or on a comment line directly above it.  An allow that suppresses nothing is
itself a finding (stale-suppression), so annotations cannot rot.

Findings already recorded in the committed baseline file do not fail the run;
anything new does.  Exit status: 0 clean, 1 new findings, 2 usage error.

Frontends: the built-in pure-python structural frontend is canonical — it is
hermetic, deterministic, and what CI gates on.  With python clang bindings
installed (CI pins `pip install libclang==14.0.6`), `--frontend=clang` lowers
libclang cursors over compile_commands.json into the same IR as a cross-check
that the structural parse agrees with a real compiler frontend.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

CXX_SUFFIXES = {".h", ".hpp", ".cpp", ".cc", ".cxx"}

# Directories whose contents are deliberately-broken analyzer fixtures; never
# part of a repo sweep (tests/analyze/test_ssr_analyze.py points the analyzer
# at them explicitly).
SKIP_DIR_PARTS = ("tests/analyze/fixtures", "tests/analyze/lint_fixtures")

ALLOW_RE = re.compile(r"//\s*ssr-analyze:\s*allow\(([a-z0-9-]+)\)")

RULES = {
    "nondet-iteration":
        "no unordered-container iteration on paths that feed observers, "
        "events, or digests",
    "pointer-keyed-order":
        "no std::map/std::set keyed by raw pointers (address order is not "
        "reproducible)",
    "lock-discipline":
        "fields guarded by a mutex must be guarded at every access "
        "(ctors/dtors exempt)",
    "observer-schema":
        "every EngineObserver callback must be serialized by TraceRecorder "
        "and mirrored by the SlotLedger audit paths",
    "sim-time-arith":
        "no float / implicit narrowing / int-division where simulated time "
        "flows",
    "nondet-api":
        "no wall-clock, unseeded <random> engines, std::random_device, or "
        "naked new",
    "stale-suppression":
        "an ssr-analyze: allow(...) annotation must suppress a finding",
}


# --------------------------------------------------------------------------
# Lexer
# --------------------------------------------------------------------------

@dataclass
class Token:
    kind: str  # 'id', 'num', 'str', 'chr', 'punct'
    value: str
    line: int


_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
# Longest-match punctuation that matters for parsing decisions.
_PUNCT3 = {"->*", "<<=", ">>=", "...", "<=>"}
_PUNCT2 = {"::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
           "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--"}


def lex(text: str) -> list[Token]:
    """Tokenize C++ source: comments dropped, strings/chars collapsed to one
    token each, preprocessor lines dropped (includes recorded elsewhere)."""
    tokens: list[Token] = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r":
            i += 1
        elif c == "/" and text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif c == "/" and text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            line += text.count("\n", i, j)
            i = j
        elif c == "#":
            # Preprocessor directive: skip to end of (possibly continued) line.
            j = i
            while j < n:
                k = text.find("\n", j)
                if k == -1:
                    j = n
                    break
                if text[k - 1] == "\\":
                    j = k + 1
                else:
                    j = k
                    break
            line += text.count("\n", i, j)
            i = j
        elif c == "R" and text.startswith('R"', i):
            # Raw string literal R"delim(...)delim"
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                end = text.find(")" + m.group(1) + '"', i + m.end())
                end = n if end == -1 else end + len(m.group(1)) + 2
                line += text.count("\n", i, end)
                tokens.append(Token("str", '""', line))
                i = end
            else:
                tokens.append(Token("id", "R", line))
                i += 1
        elif c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            tokens.append(Token("str" if c == '"' else "chr", text[i:j], line))
            line += text.count("\n", i, j)
            i = j
        elif c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
        elif c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] == "." or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
        else:
            for size, table in ((3, _PUNCT3), (2, _PUNCT2)):
                if text[i:i + size] in table:
                    tokens.append(Token("punct", text[i:i + size], line))
                    i += size
                    break
            else:
                tokens.append(Token("punct", c, line))
                i += 1
    return tokens


# --------------------------------------------------------------------------
# IR
# --------------------------------------------------------------------------

@dataclass
class VarDecl:
    name: str
    type_str: str
    line: int
    init: str = ""  # flattened initializer tokens ('' = none)


@dataclass
class RangeFor:
    expr: list[Token]  # the iterated expression
    line: int


@dataclass
class IterLoop:
    base: list[Token]  # x in `x.begin()` classic-for iteration
    line: int


@dataclass
class Call:
    name: str            # unqualified callee
    recv: list[Token]    # receiver expr tokens ('' for free calls)
    line: int


@dataclass
class FieldAccess:
    name: str
    line: int
    guarded_by: frozenset  # mutex field names whose lock regions cover it


@dataclass
class QualAccess:
    """`base.member` / `base->member` where `base` is a plain local/param —
    the shard-lane pattern (`std::scoped_lock lk(lane.mu); lane.heap...`)
    where the mutex lives on a struct reached through a variable rather
    than on the enclosing class.  guarded_by holds *all* identifiers named
    in covering lock-guard constructor args, so `base in guarded_by` means
    some live guard was built from this variable's own mutex."""

    base: str
    name: str
    line: int
    guarded_by: frozenset  # identifiers named in covering lock regions


@dataclass
class Assign:
    target: str          # simple identifier target
    rhs: list[Token]
    line: int


@dataclass
class Method:
    name: str
    cls: str                  # '' for free functions
    line: int
    return_type: str = ""
    is_virtual: bool = False
    is_ctor: bool = False
    is_dtor: bool = False
    has_body: bool = False
    params: list = field(default_factory=list)       # [VarDecl]
    locals: list = field(default_factory=list)       # [VarDecl]
    range_fors: list = field(default_factory=list)   # [RangeFor]
    iter_loops: list = field(default_factory=list)   # [IterLoop]
    calls: list = field(default_factory=list)        # [Call]
    field_accesses: list = field(default_factory=list)
    qual_accesses: list = field(default_factory=list)  # [QualAccess]
    assigns: list = field(default_factory=list)      # [Assign]
    new_lines: list = field(default_factory=list)    # [int]
    ctor_inits: list = field(default_factory=list)   # [str] field names
    path: str = ""

    def key(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name

    def var_type(self, name: str) -> str:
        for v in self.locals + self.params:
            if v.name == name:
                return v.type_str
        return ""


@dataclass
class ClassInfo:
    name: str
    line: int
    path: str = ""
    bases: list = field(default_factory=list)
    fields: list = field(default_factory=list)   # [VarDecl]
    methods: list = field(default_factory=list)  # [Method]
    enums: dict = field(default_factory=dict)    # name -> [enumerators]

    def field_type(self, name: str) -> str:
        for f in self.fields:
            if f.name == name:
                return f.type_str
        return ""


@dataclass
class FileIR:
    path: Path
    rel: str
    lines: list
    allows: dict            # line -> set of rule names
    classes: list = field(default_factory=list)
    functions: list = field(default_factory=list)  # free + member defs
    enums: dict = field(default_factory=dict)
    aliases: dict = field(default_factory=dict)    # using X = Y;


@dataclass
class Finding:
    rel: str
    line: int
    rule: str
    message: str

    def text(self) -> str:
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Structural parser (the canonical pure-python frontend)
# --------------------------------------------------------------------------

_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default", "return",
    "break", "continue", "goto", "sizeof", "alignof", "new", "delete", "throw",
    "try", "catch", "operator", "template", "typename", "using", "namespace",
    "public", "private", "protected", "friend", "static_assert", "co_return",
    "co_await", "co_yield", "this", "nullptr", "true", "false",
}

_TYPE_QUALIFIERS = {"const", "constexpr", "inline", "static", "mutable",
                    "volatile", "virtual", "explicit", "friend", "typename",
                    "thread_local", "extern", "register", "unsigned", "signed"}

_LOCK_TYPES = ("lock_guard", "unique_lock", "scoped_lock", "shared_lock")


def _match_angle(tokens, i):
    """tokens[i] == '<'; return index just past the matching '>'."""
    depth = 0
    n = len(tokens)
    while i < n:
        v = tokens[i].value
        if v == "<":
            depth += 1
        elif v == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif v == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
        elif v in (";", "{"):
            return i  # not a template argument list after all
        i += 1
    return i


def _match_paren(tokens, i, open_="(", close=")"):
    depth = 0
    n = len(tokens)
    while i < n:
        v = tokens[i].value
        if v == open_:
            depth += 1
        elif v == close:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _flatten(tokens) -> str:
    out = []
    for t in tokens:
        if out and out[-1] and out[-1][-1] in _ID_CONT and t.value and \
                t.value[0] in _ID_CONT:
            out.append(" ")
        out.append(t.value)
    return "".join(out)


def _parse_type(tokens, i):
    """Try to parse a type starting at i.  Returns (type_str, next_index) or
    (None, i).  Accepts `const ns::Name<...>::Nested*&` shapes."""
    start = i
    n = len(tokens)
    while i < n and tokens[i].kind == "id" and \
            tokens[i].value in _TYPE_QUALIFIERS:
        i += 1
    if i < n and tokens[i].value == "::":
        i += 1
    if i >= n or tokens[i].kind != "id" or tokens[i].value in _KEYWORDS:
        # `unsigned x` / `unsigned long x` style
        if i > start and tokens[i - 1].value in ("unsigned", "signed"):
            return "int", i
        return None, start
    i += 1
    while i < n:
        v = tokens[i].value
        if v == "<":
            i = _match_angle(tokens, i)
        elif v == "::" and i + 1 < n and tokens[i + 1].kind == "id":
            i += 2
        elif v in ("*", "&", "&&"):
            i += 1
        elif v == "const":
            i += 1
        else:
            break
    return _flatten(tokens[start:i]), i


_INT_TYPES = {
    "int", "long", "short", "unsigned", "signed", "size_t", "std::size_t",
    "ssize_t", "ptrdiff_t", "std::ptrdiff_t", "int8_t", "int16_t", "int32_t",
    "int64_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "std::int8_t", "std::int16_t", "std::int32_t", "std::int64_t",
    "std::uint8_t", "std::uint16_t", "std::uint32_t", "std::uint64_t",
    "std::uintmax_t", "std::intmax_t", "char", "bool",
}

_RNG_ENGINES = {
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "ranlux24_base",
    "ranlux48_base", "knuth_b",
}


class FileParser:
    """One pass over a token stream building FileIR.

    The walker tracks namespace/class/function nesting through braces.  It is
    a structural parser, not a full C++ grammar: it recognizes exactly the
    declaration shapes the rules need (classes, methods, fields, locals,
    range-fors, lock guards, calls, assignments) and skips what it cannot
    classify, erring on the side of *not* inventing structure.
    """

    def __init__(self, path: Path, rel: str, text: str):
        self.ir = FileIR(path=path, rel=rel, lines=text.splitlines(),
                         allows={}, enums={})
        for lineno, raw in enumerate(self.ir.lines, start=1):
            m = ALLOW_RE.search(raw)
            if m:
                self.ir.allows.setdefault(lineno, set()).add(m.group(1))
        self.toks = lex(text)
        # Bodies are parsed only after the whole structural pass, so a method
        # defined above the class's field list (the project style) still sees
        # every field.
        self._pending_bodies = []  # (start, end, Method, ClassInfo|None)

    # -- top level ----------------------------------------------------------

    def parse(self) -> FileIR:
        """Structural pass only; call finish() once every file in the
        analysis set has been parsed, so out-of-line method bodies can see
        the fields of classes declared in other files (headers)."""
        self._scope(0, len(self.toks), cls=None)
        return self.ir

    def finish(self, class_index: dict):
        for start, end, m, cls in self._pending_bodies:
            if cls is None and m.cls:
                cls = class_index.get(m.cls)
            self._parse_body(start, end, m, cls)

    def _scope(self, i, end, cls):
        """Parse declarations in [i, end): namespace / class / enum /
        function / field."""
        toks = self.toks
        while i < end:
            t = toks[i]
            v = t.value
            if v in ("namespace",):
                j = i + 1
                while j < end and toks[j].value != "{" and toks[j].value != ";":
                    j += 1
                if j < end and toks[j].value == "{":
                    close = _match_paren(toks, j, "{", "}")
                    self._scope(j + 1, close - 1, cls)
                    i = close
                else:
                    i = j + 1
            elif v in ("class", "struct") and cls is None or \
                    v in ("class", "struct") and cls is not None:
                ni = self._try_class(i, end)
                if ni is None:
                    i += 1
                else:
                    i = ni
            elif v == "enum":
                i = self._parse_enum(i, end, cls)
            elif v == "using":
                i = self._parse_using(i, end)
            elif v == "template":
                # skip `template <...>`, continue at the declaration
                j = i + 1
                if j < end and toks[j].value == "<":
                    j = _match_angle(toks, j)
                i = j
            elif v == "{":
                i = _match_paren(toks, i, "{", "}")
            elif v in ("public", "private", "protected") and \
                    i + 1 < end and toks[i + 1].value == ":":
                i += 2
            else:
                ni = self._try_function_or_var(i, end, cls)
                i = ni if ni is not None and ni > i else i + 1

    def _try_class(self, i, end):
        toks = self.toks
        j = i + 1
        if j >= end or toks[j].kind != "id":
            return None
        name = toks[j].value
        line = toks[j].line
        j += 1
        if j < end and toks[j].value == "<":  # template specialization
            j = _match_angle(toks, j)
        if j < end and toks[j].value == "final":
            j += 1
        bases = []
        if j < end and toks[j].value == ":":
            k = j + 1
            while k < end and toks[k].value != "{" and toks[k].value != ";":
                if toks[k].kind == "id" and toks[k].value not in (
                        "public", "private", "protected", "virtual", "std"):
                    bases.append(toks[k].value)
                if toks[k].value == "<":
                    k = _match_angle(toks, k) - 1
                k += 1
            j = k
        if j >= end or toks[j].value != "{":
            return None  # forward declaration or variable of class type
        close = _match_paren(toks, j, "{", "}")
        info = ClassInfo(name=name, line=line, path=self.ir.rel, bases=bases)
        self.ir.classes.append(info)
        self._scope(j + 1, close - 1, cls=info)
        return close

    def _parse_enum(self, i, end, cls):
        toks = self.toks
        j = i + 1
        if j < end and toks[j].value in ("class", "struct"):
            j += 1
        if j >= end or toks[j].kind != "id":
            return i + 1
        name = toks[j].value
        j += 1
        if j < end and toks[j].value == ":":  # underlying type
            while j < end and toks[j].value not in ("{", ";"):
                j += 1
        if j >= end or toks[j].value != "{":
            return j + 1
        close = _match_paren(toks, j, "{", "}")
        enumerators = []
        k = j + 1
        depth = 0
        expect = True
        while k < close - 1:
            v = toks[k].value
            if v in ("{", "(", "<"):
                depth += 1
            elif v in ("}", ")", ">"):
                depth -= 1
            elif depth == 0:
                if expect and toks[k].kind == "id":
                    enumerators.append(toks[k].value)
                    expect = False
                elif v == ",":
                    expect = True
            k += 1
        target = cls.enums if cls is not None else self.ir.enums
        target[name] = enumerators
        return close

    def _parse_using(self, i, end):
        toks = self.toks
        j = i + 1
        if j + 1 < end and toks[j].kind == "id" and toks[j + 1].value == "=":
            k = j + 2
            while k < end and toks[k].value != ";":
                if toks[k].value == "<":
                    k = _match_angle(toks, k) - 1
                k += 1
            self.ir.aliases[toks[j].value] = _flatten(toks[j + 2:k])
            return k + 1
        while j < end and toks[j].value != ";":
            j += 1
        return j + 1

    # -- functions and fields ------------------------------------------------

    def _try_function_or_var(self, i, end, cls):
        """At a declaration start inside a class or at file scope.  Decide
        between method/function (…name(params)… `{`/`;`) and field/variable
        (Type name …;)."""
        toks = self.toks
        j = i
        is_virtual = False
        while j < end and toks[j].kind == "id" and \
                toks[j].value in _TYPE_QUALIFIERS:
            if toks[j].value == "virtual":
                is_virtual = True
            j += 1
        if j >= end:
            return None
        # Destructor
        if toks[j].value == "~" and cls is not None:
            k = j + 1
            if k < end and toks[k].kind == "id":
                m = Method(name="~" + toks[k].value, cls=cls.name,
                           line=toks[k].line, is_virtual=is_virtual,
                           is_dtor=True, path=self.ir.rel)
                return self._finish_callable(k + 1, end, m, cls)
            return None
        type_str, k = _parse_type(toks, j)
        if type_str is None:
            return None
        # `auto name(...) -> ret`
        # Constructor: type_str == class name and next token is '('
        if cls is not None and k < end and toks[k].value == "(" and \
                type_str.rstrip("&*") == cls.name:
            m = Method(name=cls.name, cls=cls.name, line=toks[j].line,
                       is_ctor=True, path=self.ir.rel)
            return self._finish_callable(k, end, m, cls)
        # Out-of-line ctor/dtor/method: Type is `Cls::name` handled by
        # _parse_type absorbing `::name`; re-split on the last '::'.
        if k < end and toks[k].kind == "id":
            name_tok = toks[k]
            owner = cls.name if cls is not None else ""
            k2 = k + 1
            # Out-of-line member: `Ret Cls::method(...)` — walk the
            # qualified chain; the last id is the name, the one before it
            # the owning class.
            while k2 + 1 < end and toks[k2].value == "::" and \
                    toks[k2 + 1].kind == "id":
                owner = name_tok.value
                name_tok = toks[k2 + 1]
                k2 += 2
            if k2 < end and toks[k2].value == "<":
                k2 = _match_angle(toks, k2)
            if k2 < end and toks[k2].value == "(":
                is_dtor = k2 >= 1 and toks[k2 - 2].value == "~" if \
                    name_tok is not toks[k] else False
                m = Method(name=name_tok.value, cls=owner,
                           line=name_tok.line, return_type=type_str,
                           is_virtual=is_virtual, is_dtor=is_dtor,
                           path=self.ir.rel)
                if m.name == owner:
                    m.is_ctor = True
                return self._finish_callable(k2, end, m, cls)
            # Field / variable declaration
            if cls is not None and k2 < end and \
                    toks[k2].value in (";", "=", "{"):
                init_end = k2
                init = ""
                if toks[k2].value != ";":
                    e = k2
                    while e < end and toks[e].value != ";":
                        if toks[e].value == "{":
                            e = _match_paren(toks, e, "{", "}") - 1
                        elif toks[e].value == "(":
                            e = _match_paren(toks, e) - 1
                        e += 1
                    init = _flatten(toks[k2:e]).lstrip("=")
                    init_end = e
                cls.fields.append(VarDecl(name=name_tok.value,
                                          type_str=type_str,
                                          line=name_tok.line, init=init))
                e = init_end
                while e < end and toks[e].value != ";":
                    e += 1
                return e + 1
        # Out-of-line constructor: `Cls::Cls(...)` — _parse_type absorbed the
        # whole qualified name as the "type".
        if k < end and toks[k].value == "(" and "::" in type_str:
            parts = [p for p in re.split(r"\s*::\s*", type_str) if p]
            if len(parts) >= 2 and parts[-1] == parts[-2]:
                m = Method(name=parts[-1], cls=parts[-1], line=toks[j].line,
                           is_ctor=True, path=self.ir.rel)
                return self._finish_callable(k, end, m, cls)
        # `operator` overloads, conversion operators: skip to ; or matching {}
        if k < end and toks[k].value == "operator":
            e = k
            while e < end and toks[e].value not in ("{", ";"):
                e += 1
            if e < end and toks[e].value == "{":
                return _match_paren(toks, e, "{", "}")
            return e + 1
        return None

    def _finish_callable(self, i, end, m: Method, cls):
        """i points at '(' of the parameter list."""
        toks = self.toks
        close_params = _match_paren(toks, i)
        m.params = self._parse_params(i + 1, close_params - 1)
        j = close_params
        while j < end and toks[j].kind == "id" and toks[j].value in (
                "const", "noexcept", "override", "final", "mutable"):
            j += 1
        if j < end and toks[j].value == "->":  # trailing return type
            ts, j2 = _parse_type(toks, j + 1)
            if ts:
                m.return_type = ts
                j = j2
        if j < end and toks[j].value == "=":
            # = default / = delete / = 0 (pure virtual)
            while j < end and toks[j].value != ";":
                j += 1
            self._register(m, cls)
            return j + 1
        if j < end and toks[j].value == ":" and (m.is_ctor or m.cls):
            # ctor init list: record initialized field names
            m.is_ctor = True
            k = j + 1
            while k < end and toks[k].value != "{":
                if toks[k].kind == "id" and k + 1 < end and \
                        toks[k + 1].value in ("(", "{"):
                    m.ctor_inits.append(toks[k].value)
                    k = _match_paren(toks, k + 1, toks[k + 1].value,
                                     ")" if toks[k + 1].value == "(" else "}")
                else:
                    k += 1
            j = k
        if j < end and toks[j].value == "{":
            body_close = _match_paren(toks, j, "{", "}")
            m.has_body = True
            self._pending_bodies.append((j + 1, body_close - 1, m, cls))
            self._register(m, cls)
            return body_close
        if j < end and toks[j].value == ";":
            self._register(m, cls)
            return j + 1
        return None

    def _register(self, m: Method, cls):
        if cls is not None and m.cls == cls.name:
            cls.methods.append(m)
        self.ir.functions.append(m)

    def _parse_params(self, i, end):
        params = []
        toks = self.toks
        depth = 0
        start = i
        slices = []
        while i < end:
            v = toks[i].value
            if v in ("(", "{", "["):
                depth += 1
            elif v in (")", "}", "]"):
                depth -= 1
            elif v == "<":
                i = _match_angle(toks, i) - 1
            elif v == "," and depth == 0:
                slices.append((start, i))
                start = i + 1
            i += 1
        if start < end:
            slices.append((start, end))
        for s, e in slices:
            ts, k = _parse_type(toks, s)
            if ts is None:
                continue
            if k < e and toks[k].kind == "id":
                params.append(VarDecl(name=toks[k].value, type_str=ts,
                                      line=toks[k].line))
            else:
                params.append(VarDecl(name="", type_str=ts,
                                      line=toks[s].line))
        return params

    # -- function bodies -----------------------------------------------------

    def _parse_body(self, i, end, m: Method, cls):
        toks = self.toks
        field_names = {f.name for f in cls.fields} if cls is not None else set()
        # Lock regions: list of (mutex_names frozenset, start_idx, end_idx).
        regions = []

        def guards_at(idx):
            names = set()
            for mus, s, e in regions:
                if s <= idx < e:
                    names |= mus
            return frozenset(names)

        # Pre-scan for lock-guard declarations to build regions.
        j = i
        block_stack = []  # indexes of '{'
        pending = []      # (mutex_names, start_idx, depth)
        while j < end:
            v = toks[j].value
            if v == "{":
                block_stack.append(j)
            elif v == "}":
                depth = len(block_stack)
                block_stack and block_stack.pop()
                still = []
                for mus, s, d in pending:
                    if d >= depth:
                        regions.append((mus, s, j))
                    else:
                        still.append((mus, s, d))
                pending = still
            elif v == "std" and j + 2 < end and toks[j + 1].value == "::" and \
                    toks[j + 2].value in _LOCK_TYPES:
                k = j + 3
                if k < end and toks[k].value == "<":
                    k = _match_angle(toks, k)
                if k < end and toks[k].kind == "id":
                    k += 1  # variable name
                    if k < end and toks[k].value in ("(", "{"):
                        close = _match_paren(
                            toks, k, toks[k].value,
                            ")" if toks[k].value == "(" else "}")
                        mus = frozenset(
                            t.value for t in toks[k + 1:close - 1]
                            if t.kind == "id" and t.value in field_names)
                        if not mus:
                            mus = frozenset(
                                t.value for t in toks[k + 1:close - 1]
                                if t.kind == "id")
                        pending.append((mus, close, len(block_stack)))
                        j = close
                        continue
            j += 1
        depth = 0
        for mus, s, d in pending:  # regions open to end of body
            regions.append((mus, s, end))

        # Main statement scan.
        j = i
        while j < end:
            t = toks[j]
            v = t.value
            if v == "for" and j + 1 < end and toks[j + 1].value == "(":
                close = _match_paren(toks, j + 1)
                inner = toks[j + 2:close - 1]
                colon = None
                depth2 = 0
                for k2, tk in enumerate(inner):
                    if tk.value in ("(", "{", "["):
                        depth2 += 1
                    elif tk.value in (")", "}", "]"):
                        depth2 -= 1
                    elif tk.value == "<":
                        pass
                    elif tk.value == ":" and depth2 == 0 and \
                            (k2 == 0 or inner[k2 - 1].value != ":") and \
                            (k2 + 1 >= len(inner) or
                             inner[k2 + 1].value != ":"):
                        colon = k2
                        break
                if colon is not None:
                    expr = inner[colon + 1:]
                    m.range_fors.append(RangeFor(expr=expr, line=t.line))
                else:
                    # classic for: look for `<id chain>.begin()`
                    for k2 in range(len(inner) - 2):
                        if inner[k2].value in (".", "->") and \
                                inner[k2 + 1].value in ("begin", "cbegin") and \
                                k2 + 2 < len(inner) and \
                                inner[k2 + 2].value == "(":
                            s2 = k2
                            while s2 > 0 and (inner[s2 - 1].kind == "id" or
                                              inner[s2 - 1].value in
                                              (".", "->", "::")):
                                s2 -= 1
                            m.iter_loops.append(IterLoop(
                                base=inner[s2:k2], line=t.line))
                            break
                j = close
                continue
            if v == "new" and t.kind == "id":
                if j + 1 < end and toks[j + 1].value != "(":
                    m.new_lines.append(t.line)
                j += 1
                continue
            if t.kind == "id" and v not in _KEYWORDS:
                # local declaration?
                consumed = self._try_local(j, end, m)
                if consumed is not None:
                    j = consumed
                    continue
                # call?  id (
                nxt = toks[j + 1].value if j + 1 < end else ""
                if nxt == "(" and v not in ("assert",):
                    recv = []
                    s2 = j
                    if j >= 1 and toks[j - 1].value in (".", "->"):
                        s2 = j - 1
                        while s2 > 0 and (toks[s2 - 1].kind in ("id",) or
                                          toks[s2 - 1].value in
                                          (".", "->", "::", ")", "]")):
                            if toks[s2 - 1].value in (")", "]"):
                                break
                            s2 -= 1
                        recv = toks[s2:j - 1]
                    m.calls.append(Call(name=v, recv=recv, line=t.line))
                if v == "new":
                    pass
                # field access?
                if cls is not None and v in field_names:
                    prev = toks[j - 1].value if j > i else ""
                    prev2 = toks[j - 2].value if j - 1 > i else ""
                    bare = prev not in (".", "->") or \
                        (prev == "->" and prev2 == "this")
                    if bare:
                        m.field_accesses.append(FieldAccess(
                            name=v, line=t.line, guarded_by=guards_at(j)))
                # qualified access `var.member` / `var->member` at the head
                # of a chain — the rule layer resolves `var`'s type and
                # checks struct-member mutex discipline (shard-lane state).
                prev_q = toks[j - 1].value if j > i else ""
                if v != "this" and prev_q not in (".", "->", "::") and \
                        j + 2 < end and toks[j + 1].value in (".", "->") and \
                        toks[j + 2].kind == "id":
                    m.qual_accesses.append(QualAccess(
                        base=v, name=toks[j + 2].value, line=t.line,
                        guarded_by=guards_at(j)))
                # assignment `id = rhs ;` (plain identifier targets only;
                # `x.member = ...` is the member's business, not x's)
                prev_tok = toks[j - 1].value if j > i else ""
                if nxt == "=" and prev_tok not in (".", "->") and \
                        (j + 2 >= end or toks[j + 2].value != "="):
                    e2 = j + 2
                    while e2 < end and toks[e2].value not in (";", "{"):
                        if toks[e2].value == "(":
                            e2 = _match_paren(toks, e2) - 1
                        e2 += 1
                    m.assigns.append(Assign(target=v,
                                            rhs=toks[j + 2:e2], line=t.line))
                j += 1
                continue
            j += 1

    def _try_local(self, j, end, m: Method):
        toks = self.toks
        if toks[j].value in _KEYWORDS or toks[j].value in ("SSR_CHECK_MSG",):
            return None
        prev = toks[j - 1].value if j > 0 else ""
        if prev in (".", "->", "::", "(", ",", "=", "<", "return", "+",
                    "-", "*", "/", "!", "&", "|", "<<", ">>"):
            # only consider statement starts (heuristic: after ; { } or ))
            if prev not in (";", "{", "}", ")"):
                return None
        ts, k = _parse_type(toks, j)
        if ts is None or k >= end:
            return None
        if toks[k].kind != "id" or toks[k].value in _KEYWORDS:
            return None
        name_tok = toks[k]
        k2 = k + 1
        if k2 >= end:
            return None
        nxt = toks[k2].value
        if nxt not in (";", "=", "{", "("):
            return None
        if nxt == "(":
            # function call vs ctor-style init: `Type name(args);` only if
            # type is not a single lower-case id (avoids `foo bar(...)` that
            # is really a call); accept qualified/known type spellings.
            close = _match_paren(toks, k2)
            if close >= end or toks[close].value != ";":
                return None
        init = ""
        e = k2
        if nxt != ";":
            depth = 0
            while e < end:
                v = toks[e].value
                if v in ("(", "{", "["):
                    depth += 1
                elif v in (")", "}", "]"):
                    depth -= 1
                elif v == ";" and depth == 0:
                    break
                e += 1
            init = _flatten(toks[k2:e]).lstrip("=")
        m.locals.append(VarDecl(name=name_tok.value, type_str=ts,
                                line=name_tok.line, init=init))
        # Resume the scan *inside* the initializer so calls and `new`
        # expressions there (`int r = rand();`, `T* p = new T();`) are still
        # seen by the main statement walk.
        return k + 1


# --------------------------------------------------------------------------
# Program: cross-file indexes, type resolution, call graph
# --------------------------------------------------------------------------

class Program:
    def __init__(self, files: list[FileIR]):
        self.files = files
        self.classes: dict[str, ClassInfo] = {}
        self.enums: dict[str, list] = {}
        self.aliases: dict[str, str] = {}
        self.methods_by_name: dict[str, list[Method]] = {}
        self.methods_by_key: dict[str, list[Method]] = {}
        for f in files:
            for c in f.classes:
                self.classes.setdefault(c.name, c)
                for en, vals in c.enums.items():
                    self.enums.setdefault(en, vals)
            self.enums.update(f.enums)
            self.aliases.update(f.aliases)
            for fn in f.functions:
                self.methods_by_name.setdefault(fn.name, []).append(fn)
                self.methods_by_key.setdefault(fn.key(), []).append(fn)

    # -- type utilities -----------------------------------------------------

    def canon_type(self, ts: str) -> str:
        ts = ts.strip()
        for q in ("const ", "constexpr ", "static ", "mutable "):
            while ts.startswith(q):
                ts = ts[len(q):]
        ts = ts.rstrip("&* ").replace("const", "").strip()
        seen = set()
        while ts in self.aliases and ts not in seen:
            seen.add(ts)
            ts = self.aliases[ts].rstrip("&* ").strip()
        return ts

    def class_of_type(self, ts: str):
        base = self.canon_type(ts)
        base = base.split("<")[0]
        base = base.split("::")[-1] if base.startswith("std") is False else base
        return self.classes.get(base)

    def merged_fields(self, cls: ClassInfo):
        """Fields of cls and (one level of) its bases."""
        out = list(cls.fields)
        for b in cls.bases:
            bc = self.classes.get(b)
            if bc:
                out.extend(bc.fields)
        return out

    def resolve_expr_type(self, expr_tokens, scope: Method,
                          cls: ClassInfo | None) -> str:
        """Resolve the static type of a member/call chain expression like
        `foo_`, `e.time`, `engine.sim().now()`, `vcm.tenant_names()`.
        Returns '' when unknown."""
        toks = [t for t in expr_tokens if t.value not in ("const", "&")]
        if not toks:
            return ""
        i = 0
        cur = ""
        # Base
        t0 = toks[i]
        if t0.value == "this":
            cur = cls.name if cls else ""
            i += 1
        elif t0.kind == "id":
            name = t0.value
            # qualified std:: type-expression (e.g. a cast) — bail
            nxt_call = i + 1 < len(toks) and toks[i + 1].value == "("
            if nxt_call:
                cur = self._return_type_of(name, cls)
                i = _match_paren(toks, i + 1)
            else:
                cur = scope.var_type(name)
                if not cur and cls is not None:
                    cur = self._field_type(cls, name)
                if not cur:
                    return ""
                i += 1
        else:
            return ""
        # Chain
        while i < len(toks) and cur:
            if toks[i].value in (".", "->"):
                i += 1
                if i >= len(toks) or toks[i].kind != "id":
                    break
                member = toks[i].value
                is_call = i + 1 < len(toks) and toks[i + 1].value == "("
                owner = self.class_of_type(cur)
                nxt = ""
                if is_call:
                    if owner is not None:
                        for mtd in owner.methods:
                            if mtd.name == member and mtd.return_type:
                                nxt = mtd.return_type
                                break
                    if not nxt:
                        nxt = self._return_type_of(member, owner)
                    i = _match_paren(toks, i + 1)
                else:
                    if owner is not None:
                        nxt = self._field_type(owner, member)
                    i += 1
                cur = nxt
            else:
                break
        return cur

    def _field_type(self, cls: ClassInfo, name: str) -> str:
        for f in self.merged_fields(cls):
            if f.name == name:
                return f.type_str
        return ""

    def _return_type_of(self, name: str, owner) -> str:
        cands = []
        if owner is not None:
            cands = [m for m in owner.methods if m.name == name]
        if not cands:
            cands = self.methods_by_name.get(name, [])
        rets = {m.return_type for m in cands if m.return_type}
        return rets.pop() if len(rets) == 1 else ""

    # -- call graph ---------------------------------------------------------

    def build_reachability(self, sink_pred):
        """Return the set of Method objects from which a sink call is
        reachable.  `sink_pred(call, method)` decides direct sinks."""
        direct = set()
        for fns in self.methods_by_key.values():
            for m in fns:
                for call in m.calls:
                    if sink_pred(call, m):
                        direct.add(id(m))
                        break
        # reverse call graph by callee name
        callers_of: dict[str, list[Method]] = {}
        for fns in self.methods_by_key.values():
            for m in fns:
                for call in m.calls:
                    callers_of.setdefault(call.name, []).append(m)
        reach = set(direct)
        work = []
        for fns in self.methods_by_key.values():
            for m in fns:
                if id(m) in reach:
                    work.append(m)
        while work:
            m = work.pop()
            for caller in callers_of.get(m.name, []):
                if id(caller) not in reach:
                    reach.add(id(caller))
                    work.append(caller)
        return reach


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

_UNORDERED = ("unordered_map<", "unordered_set<", "unordered_multimap<",
              "unordered_multiset<")

# Files whose functions count as digest/trace emission sinks.
_EMIT_FILE_HINTS = ("run_digest", "trace_capture", "trace_export",
                    "bench_report")


def _observer_callbacks(program: Program):
    obs = program.classes.get("EngineObserver")
    if obs is None:
        return []
    return [m for m in obs.methods if m.name.startswith("on_") and
            m.is_virtual]


def rule_nondet_iteration(program: Program):
    findings = []
    callback_names = {m.name for m in _observer_callbacks(program)}
    # Also treat ReservationHook callbacks as sinks (same dispatch hazard).
    hook = program.classes.get("ReservationHook")
    if hook is not None:
        callback_names |= {m.name for m in hook.methods
                           if m.name.startswith("on_")}

    def is_sink(call: Call, m: Method) -> bool:
        if call.name in callback_names and callback_names:
            return True
        if call.name in ("schedule_at", "schedule_after"):
            return True
        if call.name == "push" and call.recv:
            rt = program.resolve_expr_type(call.recv, m, _owner(program, m))
            if "EventQueue" in rt:
                return True
        if call.name in ("serialize", "serialize_trace", "write_file",
                         "digest_run", "run_digest", "format_digest"):
            return True
        return False

    def emits(m: Method) -> bool:
        stem = Path(m.path).stem
        return any(h in stem for h in _EMIT_FILE_HINTS)

    reach = program.build_reachability(is_sink)

    # StageSelector overrides ARE the dispatch path: the engine consults
    # stage_score / rank_slots while ordering stages and slots, so hash-order
    # iteration inside an override — or inside any helper it calls — leaks
    # straight into placement decisions (sched/types.h documents this
    # contract).  The sink pass above walks callee -> caller; selector
    # methods need the opposite closure, caller -> callee, because the
    # hazard sits *below* the entry point rather than above a sink call.
    selector = program.classes.get("StageSelector")
    entry_names = ({m.name for m in selector.methods if m.is_virtual and
                    not m.is_dtor} if selector is not None else set())
    dispatch_hot: set[int] = set()
    if entry_names:
        work = [m for fns in program.methods_by_key.values() for m in fns
                if m.name in entry_names and m.has_body]
        dispatch_hot = {id(m) for m in work}
        while work:
            m = work.pop()
            for call in m.calls:
                for callee in program.methods_by_name.get(call.name, []):
                    if callee.has_body and id(callee) not in dispatch_hot:
                        dispatch_hot.add(id(callee))
                        work.append(callee)

    for f in program.files:
        for m in f.functions:
            if not m.has_body:
                continue
            owner = _owner(program, m)
            hot = id(m) in reach or id(m) in dispatch_hot or emits(m)
            if not hot:
                continue
            sites = [(rf.expr, rf.line) for rf in m.range_fors]
            sites += [(il.base, il.line) for il in m.iter_loops]
            for expr, line in sites:
                ts = program.resolve_expr_type(expr, m, owner)
                if not ts and len(expr) == 1 and "unordered_" in expr[0].value:
                    # clang-frontend lowering stores the resolved type
                    # spelling directly in the token.
                    ts = expr[0].value
                canon = program.canon_type(ts) if ts else ""
                if any(u in canon for u in _UNORDERED):
                    why = ("sits on the StageSelector dispatch path"
                           if id(m) in dispatch_hot and id(m) not in reach
                           else "reaches observer dispatch / event "
                                "scheduling / digest emission")
                    findings.append(Finding(
                        f.rel, line, "nondet-iteration",
                        f"iterates `{canon}` in `{m.key()}`, which {why}; "
                        "hash order is not reproducible — use an ordered "
                        "container or sort a snapshot first"))
    return findings


def _owner(program: Program, m: Method):
    return program.classes.get(m.cls) if m.cls else None


_PTR_KEYED = re.compile(
    r"std\s*::\s*(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?"
    r"[A-Za-z_][\w:]*(?:\s*<[^<>]*>)?\s*(?:const\s*)?\*")


def rule_pointer_keyed_order(program: Program):
    findings = []
    for f in program.files:
        decls = []
        for c in f.classes:
            decls += [(v, f"field of {c.name}") for v in c.fields]
        for m in f.functions:
            if m.path != f.rel:
                continue
            decls += [(v, f"local in {m.key()}") for v in m.locals]
            decls += [(v, f"parameter of {m.key()}") for v in m.params]
        for v, where in decls:
            if _PTR_KEYED.search(v.type_str):
                findings.append(Finding(
                    f.rel, v.line, "pointer-keyed-order",
                    f"`{v.type_str} {v.name}` ({where}) is ordered by a raw "
                    "pointer key; traversal follows allocation addresses, "
                    "which differ run to run — key by a stable id instead"))
    return findings


_MUTEX_TYPES = ("std::mutex", "std::shared_mutex", "std::recursive_mutex",
                "std::timed_mutex")
_LOCK_EXEMPT_FIELD_TYPES = ("mutex", "condition_variable", "atomic")


def rule_lock_discipline(program: Program):
    findings = []
    for cname, cls in sorted(program.classes.items()):
        mutexes = {v.name for v in cls.fields
                   if any(mt in v.type_str for mt in _MUTEX_TYPES)}
        if not mutexes:
            continue
        guarded: dict[str, list] = {}
        unguarded: dict[str, list] = {}
        for m in program.methods_by_key.get(f"{cname}::", []):
            pass
        methods = [m for fns in program.methods_by_key.values() for m in fns
                   if m.cls == cname and m.has_body]
        for m in methods:
            if m.is_ctor or m.is_dtor:
                continue
            for fa in m.field_accesses:
                if fa.name in mutexes:
                    continue
                ftype = cls.field_type(fa.name)
                if any(x in ftype for x in _LOCK_EXEMPT_FIELD_TYPES):
                    continue
                if fa.guarded_by & mutexes:
                    guarded.setdefault(fa.name, []).append((m, fa))
                else:
                    unguarded.setdefault(fa.name, []).append((m, fa))
        for fname in sorted(set(guarded) & set(unguarded)):
            for m, fa in unguarded[fname]:
                findings.append(Finding(
                    m.path, fa.line, "lock-discipline",
                    f"`{cname}::{fname}` is accessed under "
                    f"{'/'.join(sorted(guarded[fname][0][1].guarded_by))} "
                    f"elsewhere but without a lock in `{m.key()}` — race "
                    "candidate; take the lock or document why it is safe"))
    findings.extend(_struct_member_lock_pass(program))
    return findings


def _struct_member_lock_pass(program: Program):
    """Shard-lane discipline: a struct that carries its own mutex (the
    sharded engine's per-lane state) is reached through locals/params, so
    the enclosing-class pass above never sees it.  `lane.field` counts as
    guarded when a covering lock region was constructed from `lane` itself
    (`std::scoped_lock lk(lane.mu)` names both `lane` and `mu`); a field
    that is locked on one path and naked on another is the race candidate
    the sharded workers must never reintroduce."""
    findings = []
    # struct name -> (mutex field names, non-exempt data field names)
    locked_structs = {}
    for cname, cls in program.classes.items():
        mus = {v.name for v in cls.fields
               if any(mt in v.type_str for mt in _MUTEX_TYPES)}
        if not mus:
            continue
        data = {v.name for v in cls.fields
                if v.name not in mus and
                not any(x in v.type_str for x in _LOCK_EXEMPT_FIELD_TYPES)}
        locked_structs[cname] = (mus, data)
    if not locked_structs:
        return findings

    guarded: dict[tuple, list] = {}
    unguarded: dict[tuple, list] = {}
    for fns in program.methods_by_key.values():
        for m in fns:
            if not m.has_body or m.is_ctor or m.is_dtor:
                continue
            for qa in m.qual_accesses:
                # Locals only: a parameter of locked-struct type is the
                # lane-helper pattern, where the *caller* holds the lock —
                # a local is the scope that must take it itself.
                base_type = next((v.type_str for v in m.locals
                                  if v.name == qa.base), "")
                cls = program.class_of_type(base_type)
                if cls is None or cls.name not in locked_structs:
                    continue
                mus, data = locked_structs[cls.name]
                if qa.name not in data:
                    continue
                key = (cls.name, qa.name)
                if qa.base in qa.guarded_by:
                    guarded.setdefault(key, []).append((m, qa))
                else:
                    unguarded.setdefault(key, []).append((m, qa))
    for key in sorted(set(guarded) & set(unguarded)):
        cname, fname = key
        for m, qa in unguarded[key]:
            findings.append(Finding(
                m.path, qa.line, "lock-discipline",
                f"`{cname}::{fname}` (via `{qa.base}`) is accessed under a "
                f"lock built from `{guarded[key][0][1].base}` elsewhere but "
                f"without one in `{m.key()}` — race candidate; lock the "
                "struct's own mutex or document why it is safe"))
    return findings


def rule_observer_schema(program: Program):
    findings = []
    callbacks = _observer_callbacks(program)
    if not callbacks:
        return findings
    obs = program.classes["EngineObserver"]

    recorder = program.classes.get("TraceRecorder")
    auditor = program.classes.get("InvariantAuditor")
    replay_auditor = program.classes.get("ReplayAuditor")
    kinds = program.enums.get("TraceEventKind", [])

    if recorder is None:
        findings.append(Finding(
            obs.path, obs.line, "observer-schema",
            "EngineObserver is analyzed but no TraceRecorder class is in "
            "the analysis set; the capture schema cannot be checked"))
        return findings

    recorder_methods = {m.name: m for fns in program.methods_by_key.values()
                        for m in fns if m.cls == "TraceRecorder"}
    auditor_overrides = {m.name for fns in program.methods_by_key.values()
                         for m in fns if m.cls == "InvariantAuditor"}

    # TraceEventKind enumerators referenced by ReplayAuditor bodies.
    replay_kinds = set()
    if replay_auditor is not None:
        for fns in program.methods_by_key.values():
            for m in fns:
                if m.cls != "ReplayAuditor" or not m.has_body:
                    continue
                for f in program.files:
                    if f.rel != m.path:
                        continue
                    text = "\n".join(f.lines)
                    for k in kinds:
                        if re.search(r"TraceEventKind\s*::\s*" + k, text):
                            replay_kinds.add(k)

    # Which TraceEventKind each TraceRecorder override serializes: scan the
    # defining file's lines between method start and next method.
    def kinds_used_by(mname: str):
        used = set()
        for fns in program.methods_by_key.values():
            for m in fns:
                if m.cls == "TraceRecorder" and m.name == mname and m.has_body:
                    for f in program.files:
                        if f.rel != m.path:
                            continue
                        span = _method_line_span(f, m)
                        body = "\n".join(f.lines[span[0] - 1:span[1]])
                        for k in kinds:
                            if re.search(r"TraceEventKind\s*::\s*" + k, body):
                                used.add(k)
        return used

    for cb in callbacks:
        if cb.name not in recorder_methods:
            findings.append(Finding(
                obs.path, cb.line, "observer-schema",
                f"EngineObserver::{cb.name} has no TraceRecorder override; "
                "the capture schema silently drops the event kind — extend "
                "TraceEventKind/TraceRecorder and bump kTraceVersion"))
            continue
        if kinds and not kinds_used_by(cb.name):
            rm = recorder_methods[cb.name]
            findings.append(Finding(
                rm.path, rm.line, "observer-schema",
                f"TraceRecorder::{cb.name} never records a TraceEventKind; "
                "the override exists but serializes nothing"))
        if auditor is not None and cb.name not in auditor_overrides:
            findings.append(Finding(
                obs.path, cb.line, "observer-schema",
                f"EngineObserver::{cb.name} is not mirrored by "
                "InvariantAuditor (the live SlotLedger audit path)"))
    if replay_auditor is not None and kinds:
        for k in kinds:
            if k not in replay_kinds:
                findings.append(Finding(
                    replay_auditor.path, replay_auditor.line,
                    "observer-schema",
                    f"TraceEventKind::{k} is never handled by ReplayAuditor; "
                    "replayed captures skip its ledger transition"))
    return findings


def _method_line_span(f: FileIR, m: Method):
    """(first, last) line of a method definition within its file: from its
    own line to the line before the next function in the same file."""
    starts = sorted(fn.line for fn in f.functions if fn.path == f.rel)
    last = len(f.lines)
    for s in starts:
        if s > m.line:
            last = s - 1
            break
    return (m.line, last)


_TIME_TYPES = {"SimTime", "SimDuration"}
_TIME_RETURNING = {"now", "next_event_time", "peek_time", "next_time",
                   "job_finish_time", "jct"}


def _is_time_type(program: Program, ts: str) -> bool:
    raw = ts.replace("const", "").strip().rstrip("&* ")
    return raw.split("::")[-1] in _TIME_TYPES


def _is_int_type(ts: str) -> bool:
    raw = ts.replace("const", "").replace("unsigned", "").strip()
    raw = raw.rstrip("&* ").strip()
    return raw in _INT_TYPES or raw.replace("std::", "") in {
        t.replace("std::", "") for t in _INT_TYPES}


def rule_sim_time_arith(program: Program):
    findings = []
    for f in program.files:
        # (a) float declarations anywhere: simulated time is double end to
        # end; a float in the tree is either a timestamp truncation or an
        # invitation for one.
        decls = []
        for c in f.classes:
            decls += [(v, None, c) for v in c.fields]
        for m in f.functions:
            if m.path != f.rel:
                continue
            owner = _owner(program, m)
            decls += [(v, m, owner) for v in m.locals]
            decls += [(v, m, owner) for v in m.params]
        for v, m, owner in decls:
            base = v.type_str.replace("const", "").strip().rstrip("&* ")
            if base == "float":
                findings.append(Finding(
                    f.rel, v.line, "sim-time-arith",
                    f"`float {v.name}` — simulated time and all derived "
                    "quantities are double (SimTime); float silently drops "
                    "precision"))
        # (b) int var initialized from a time-typed expression without a cast
        # and (d) SimTime var initialized from int/int division.
        for m in f.functions:
            if m.path != f.rel or not m.has_body:
                continue
            owner = _owner(program, m)
            env = {v.name: v.type_str for v in m.params + m.locals}
            if owner is not None:
                for fv in program.merged_fields(owner):
                    env.setdefault(fv.name, fv.type_str)

            def narrowing_target(ts: str) -> bool:
                # bool-from-comparison is ordinary control flow, not a
                # timestamp truncation.
                return _is_int_type(ts) and "bool" not in ts

            def comparisonish(expr: str) -> bool:
                return bool(re.search(r"[<>!=]=|&&|\|\||[<>](?![<>])", expr))

            def expr_has_time(tokens_str: str) -> bool:
                for name in re.findall(r"[A-Za-z_]\w*", tokens_str):
                    if name in ("static_cast", "int64_t", "uint64_t"):
                        continue
                    ts = env.get(name, "")
                    if ts and _is_time_type(program, ts):
                        return True
                    if name in _TIME_RETURNING and "(" in tokens_str:
                        return True
                return False

            for v in m.locals:
                if not v.init:
                    continue
                if narrowing_target(v.type_str) and \
                        "static_cast" not in v.init and \
                        not comparisonish(v.init) and \
                        expr_has_time(v.init):
                    findings.append(Finding(
                        f.rel, v.line, "sim-time-arith",
                        f"`{v.type_str} {v.name}` initialized from a "
                        "time-typed expression without an explicit cast; "
                        "narrowing truncates the timestamp"))
                if _is_time_type(program, v.type_str) and \
                        "static_cast" not in v.init and \
                        _int_division(v.init, env):
                    findings.append(Finding(
                        f.rel, v.line, "sim-time-arith",
                        f"`{v.type_str} {v.name}` computed by integer "
                        "division; the quotient truncates before the "
                        "conversion to simulated time"))
            for a in m.assigns:
                tt = env.get(a.target, "")
                rhs = _flatten(a.rhs)
                if tt and narrowing_target(tt) and \
                        "static_cast" not in rhs and \
                        not comparisonish(rhs) and expr_has_time(rhs):
                    findings.append(Finding(
                        f.rel, a.line, "sim-time-arith",
                        f"assignment to `{a.target}` ({tt}) from a "
                        "time-typed expression without an explicit cast"))
                if tt and _is_time_type(program, tt) and \
                        "static_cast" not in rhs and _int_division(rhs, env):
                    findings.append(Finding(
                        f.rel, a.line, "sim-time-arith",
                        f"assignment to `{a.target}` ({tt}) from integer "
                        "division; the quotient truncates first"))
    return findings


def _int_division(expr: str, env: dict) -> bool:
    m = re.search(r"([A-Za-z_]\w*|\d[\w.]*)\s*/\s*([A-Za-z_]\w*|\d[\w.]*)",
                  expr)
    if not m:
        return False

    def is_int_term(term: str) -> bool:
        if re.fullmatch(r"\d+", term):
            return True
        if re.fullmatch(r"\d[\w.]*", term):
            return False  # 30.0, 1e-9 …
        ts = env.get(term, "")
        return bool(ts) and _is_int_type(ts)

    return is_int_term(m.group(1)) and is_int_term(m.group(2))


def rule_nondet_api(program: Program):
    findings = []
    for f in program.files:
        for m in f.functions:
            if m.path != f.rel or not m.has_body:
                continue
            for call in m.calls:
                if call.name in ("rand", "srand") and not call.recv:
                    findings.append(Finding(
                        f.rel, call.line, "nondet-api",
                        f"{call.name}() is unseeded global state; draw from "
                        "the scenario's ssr::Rng"))
            for v in m.locals:
                self_t = v.type_str.replace(" ", "")
                if "random_device" in self_t:
                    findings.append(Finding(
                        f.rel, v.line, "nondet-api",
                        "std::random_device is non-deterministic; derive "
                        "seeds from ssr::Rng::fork() instead"))
                base = program.canon_type(v.type_str).replace("std::", "")
                if base in _RNG_ENGINES and _is_default_init(v.init):
                    findings.append(Finding(
                        f.rel, v.line, "nondet-api",
                        f"`{v.type_str} {v.name}` is default-constructed; a "
                        "hidden fixed seed makes every run identical but "
                        "unlabeled — pass an explicit seed"))
            for line in m.new_lines:
                findings.append(Finding(
                    f.rel, line, "nondet-api",
                    "naked `new` leaks on exceptions; use std::make_unique "
                    "or a container"))
            # time(nullptr) style wall-clock reads
            for call in m.calls:
                if call.name == "time" and not call.recv:
                    findings.append(Finding(
                        f.rel, call.line, "nondet-api",
                        "wall-clock time() breaks replay determinism; plumb "
                        "a seed or simulated clock through"))
        # never-seeded engine fields: no default member init and no ctor
        # init-list entry in any constructor.
        for c in f.classes:
            ctors = [m for fns in program.methods_by_key.values()
                     for m in fns if m.cls == c.name and m.is_ctor]
            inited = set()
            for ct in ctors:
                inited |= set(ct.ctor_inits)
            for v in c.fields:
                base = program.canon_type(v.type_str).replace("std::", "")
                if base in _RNG_ENGINES and not v.init and \
                        v.name not in inited:
                    findings.append(Finding(
                        f.rel, v.line, "nondet-api",
                        f"engine field `{v.name}` is never seeded (no "
                        "default member initializer, no constructor "
                        "init-list entry); it falls back to the "
                        "implementation's fixed seed"))
    return findings


def _is_default_init(init: str) -> bool:
    stripped = init.replace(" ", "")
    return stripped in ("", "{}", "()")


RULE_FUNCS = {
    "nondet-iteration": rule_nondet_iteration,
    "pointer-keyed-order": rule_pointer_keyed_order,
    "lock-discipline": rule_lock_discipline,
    "observer-schema": rule_observer_schema,
    "sim-time-arith": rule_sim_time_arith,
    "nondet-api": rule_nondet_api,
}


# --------------------------------------------------------------------------
# Optional libclang frontend (CI cross-check; pinned pip install there)
# --------------------------------------------------------------------------

def try_import_clang():
    try:
        from clang import cindex  # type: ignore
        return cindex
    except Exception:
        return None


def parse_with_clang(cindex, path: Path, rel: str, text: str,
                     compile_args: list[str]) -> FileIR:
    """Lower a libclang translation unit into the same FileIR the structural
    parser produces, so the rule set runs unchanged."""
    index = cindex.Index.create()
    tu = index.parse(str(path), args=compile_args)
    ir = FileIR(path=path, rel=rel, lines=text.splitlines(), allows={},
                enums={})
    for lineno, raw in enumerate(ir.lines, start=1):
        m = ALLOW_RE.search(raw)
        if m:
            ir.allows.setdefault(lineno, set()).add(m.group(1))
    K = cindex.CursorKind

    def in_file(cur):
        return cur.location.file and \
            Path(str(cur.location.file)) == path

    def visit(cur, cls_info):
        for ch in cur.get_children():
            kind = ch.kind
            if kind in (K.NAMESPACE,):
                visit(ch, cls_info)
            elif kind in (K.CLASS_DECL, K.STRUCT_DECL) and ch.is_definition():
                if not in_file(ch):
                    continue
                ci = ClassInfo(name=ch.spelling, line=ch.location.line,
                               path=rel)
                for base in ch.get_children():
                    if base.kind == K.CXX_BASE_SPECIFIER:
                        ci.bases.append(base.type.spelling.split("::")[-1])
                ir.classes.append(ci)
                visit(ch, ci)
            elif kind == K.FIELD_DECL and cls_info is not None:
                cls_info.fields.append(VarDecl(
                    name=ch.spelling, type_str=ch.type.spelling,
                    line=ch.location.line))
            elif kind == K.ENUM_DECL and ch.is_definition():
                vals = [e.spelling for e in ch.get_children()
                        if e.kind == K.ENUM_CONSTANT_DECL]
                target = cls_info.enums if cls_info is not None else ir.enums
                target[ch.spelling] = vals
            elif kind in (K.CXX_METHOD, K.FUNCTION_DECL, K.CONSTRUCTOR,
                          K.DESTRUCTOR):
                if not in_file(ch):
                    continue
                m = Method(
                    name=ch.spelling,
                    cls=(ch.semantic_parent.spelling
                         if ch.semantic_parent is not None and
                         ch.semantic_parent.kind in (K.CLASS_DECL,
                                                     K.STRUCT_DECL) else ""),
                    line=ch.location.line,
                    return_type=ch.result_type.spelling,
                    is_virtual=ch.is_virtual_method()
                    if kind == K.CXX_METHOD else False,
                    is_ctor=kind == K.CONSTRUCTOR,
                    is_dtor=kind == K.DESTRUCTOR,
                    path=rel)
                for arg in ch.get_arguments():
                    m.params.append(VarDecl(name=arg.spelling,
                                            type_str=arg.type.spelling,
                                            line=arg.location.line))
                body = [c for c in ch.get_children()
                        if c.kind == K.COMPOUND_STMT]
                if body:
                    m.has_body = True
                    lower_body(body[0], m)
                if cls_info is not None and m.cls == cls_info.name:
                    cls_info.methods.append(m)
                ir.functions.append(m)

    def lower_body(node, m: Method):
        for ch in node.walk_preorder():
            kind = ch.kind
            if kind == K.VAR_DECL:
                m.locals.append(VarDecl(name=ch.spelling,
                                        type_str=ch.type.spelling,
                                        line=ch.location.line))
            elif kind == K.CXX_FOR_RANGE_STMT:
                kids = list(ch.get_children())
                if len(kids) >= 2:
                    rng = kids[-2]
                    m.range_fors.append(RangeFor(
                        expr=[Token("id", rng.type.spelling,
                                    ch.location.line)],
                        line=ch.location.line))
            elif kind == K.CALL_EXPR:
                m.calls.append(Call(name=ch.spelling or "",
                                    recv=[], line=ch.location.line))
            elif kind == K.CXX_NEW_EXPR:
                m.new_lines.append(ch.location.line)
            elif kind == K.MEMBER_REF_EXPR:
                m.field_accesses.append(FieldAccess(
                    name=ch.spelling, line=ch.location.line,
                    guarded_by=frozenset()))

    visit(tu.cursor, None)
    return ir


# --------------------------------------------------------------------------
# Driver: collection, suppression, baseline, reporting
# --------------------------------------------------------------------------

def collect_files(paths, root: Path):
    files = []
    for arg in paths:
        p = Path(arg)
        if not p.is_absolute():
            p = root / p
        if p.is_file():
            files.append(p)
        elif p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix in CXX_SUFFIXES and f.is_file():
                    rel = f.as_posix()
                    if any(part in rel for part in SKIP_DIR_PARTS):
                        continue
                    files.append(f)
        else:
            print(f"ssr_analyze: no such path: {arg}", file=sys.stderr)
            sys.exit(2)
    return files


def load_compile_commands(path: Path):
    """File list (and per-file args for the clang frontend) from
    compile_commands.json."""
    entries = json.loads(path.read_text(encoding="utf-8"))
    args_by_file = {}
    for e in entries:
        src = Path(e["directory"]) / e["file"] if not Path(
            e["file"]).is_absolute() else Path(e["file"])
        src = src.resolve()
        if "arguments" in e:
            args = e["arguments"]
        else:
            args = e.get("command", "").split()
        keep = []
        it = iter(range(len(args)))
        skip_next = False
        for k, a in enumerate(args):
            if skip_next:
                skip_next = False
                continue
            if a.startswith(("-I", "-D", "-std", "-isystem")):
                keep.append(a)
                if a in ("-isystem",):
                    skip_next = True
            elif a == "-include":
                keep.append(a)
                skip_next = True
        args_by_file[src] = keep
    return args_by_file


def finding_key(f: Finding, file_lines: dict) -> str:
    """Line-number-independent identity for baselining: rule + file +
    whitespace-collapsed source line text + occurrence counter (appended by
    the caller)."""
    lines = file_lines.get(f.rel, [])
    text = lines[f.line - 1].strip() if 0 < f.line <= len(lines) else ""
    collapsed = re.sub(r"\s+", " ", text)
    return f"{f.rule}|{f.rel}|{collapsed}"


def apply_suppressions(findings, files_by_rel):
    """Partition findings into (kept, suppressed) honoring allow
    annotations; returns also the set of used (rel, line, rule) allows."""
    kept, used = [], set()
    for f in findings:
        ir = files_by_rel.get(f.rel)
        allowed = False
        if ir is not None:
            for ln in (f.line, f.line - 1):
                rules = ir.allows.get(ln, set())
                if f.rule in rules:
                    # line-above allows must be standalone comments
                    if ln == f.line or _comment_only(ir, ln):
                        allowed = True
                        used.add((f.rel, ln, f.rule))
                        break
        if not allowed:
            kept.append(f)
    return kept, used


def _comment_only(ir: FileIR, ln: int) -> bool:
    if not (0 < ln <= len(ir.lines)):
        return False
    return ir.lines[ln - 1].strip().startswith("//")


def stale_suppressions(files_by_rel, used):
    out = []
    for rel, ir in sorted(files_by_rel.items()):
        for ln, rules in sorted(ir.allows.items()):
            for rule in sorted(rules):
                if rule not in RULES:
                    out.append(Finding(
                        rel, ln, "stale-suppression",
                        f"allow({rule}) names a rule ssr-analyze does not "
                        "have; remove or fix the annotation"))
                elif (rel, ln, rule) not in used:
                    out.append(Finding(
                        rel, ln, "stale-suppression",
                        f"allow({rule}) suppresses nothing on this line; "
                        "the finding it silenced is gone — remove the "
                        "annotation"))
    return out


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        default=["src", "tools", "bench", "examples"])
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--json", metavar="PATH",
                        help="write structured findings to PATH ('-' stdout)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline file; only findings not recorded "
                        "there fail the run")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current findings")
    parser.add_argument("--frontend", choices=["python", "clang", "auto"],
                        default="python",
                        help="python (canonical, hermetic; default), clang "
                        "(libclang over compile_commands.json), auto")
    parser.add_argument("--compile-commands", metavar="PATH",
                        help="compile_commands.json (required for --frontend "
                        "clang; also narrows the file set)")
    parser.add_argument("--root", metavar="DIR", default=".",
                        help="project root for relative paths (default .)")
    parser.add_argument("--rules", metavar="R1,R2",
                        help="run only these rules (comma-separated)")
    args = parser.parse_args()

    if args.list_rules:
        for rule, blurb in RULES.items():
            print(f"{rule:20} {blurb}")
        return 0

    root = Path(args.root).resolve()
    files = collect_files(args.paths, root)
    if not files:
        print("ssr_analyze: no input files", file=sys.stderr)
        return 2

    cc_args = {}
    if args.compile_commands:
        cc_path = Path(args.compile_commands)
        if not cc_path.is_file():
            print(f"ssr_analyze: no such compile_commands: {cc_path}",
                  file=sys.stderr)
            return 2
        cc_args = load_compile_commands(cc_path)

    frontend = args.frontend
    cindex = None
    if frontend in ("clang", "auto"):
        cindex = try_import_clang()
        if cindex is None:
            if frontend == "clang":
                print("ssr_analyze: --frontend=clang requested but python "
                      "clang bindings/libclang are unavailable (CI pins "
                      "`pip install libclang==14.0.6`); falling back is "
                      "disabled for an explicit request", file=sys.stderr)
                return 2
            frontend = "python"
        else:
            frontend = "clang"

    irs = []
    parsers = []
    for f in files:
        try:
            rel = f.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = f.as_posix()
        text = f.read_text(encoding="utf-8", errors="replace")
        if frontend == "clang" and f.suffix not in (".h", ".hpp"):
            irs.append(parse_with_clang(
                cindex, f.resolve(), rel, text,
                cc_args.get(f.resolve(), ["-std=c++20"])))
        else:
            p = FileParser(f, rel, text)
            irs.append(p.parse())
            parsers.append(p)
    # Second phase: parse bodies now that every class in the analysis set is
    # known (out-of-line .cpp methods need their header's field list).
    class_index = {}
    for ir in irs:
        for c in ir.classes:
            class_index.setdefault(c.name, c)
    for p in parsers:
        p.finish(class_index)

    program = Program(irs)
    files_by_rel = {ir.rel: ir for ir in irs}

    selected = list(RULE_FUNCS)
    if args.rules:
        selected = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in selected if r not in RULE_FUNCS]
        if unknown:
            print(f"ssr_analyze: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    findings = []
    for rule in selected:
        findings.extend(RULE_FUNCS[rule](program))
    findings.sort(key=lambda f: (f.rel, f.line, f.rule))

    findings, used = apply_suppressions(findings, files_by_rel)
    findings.extend(stale_suppressions(files_by_rel, used))
    findings.sort(key=lambda f: (f.rel, f.line, f.rule))

    # Baseline handling: keyed by rule|file|source-line-text plus an
    # occurrence counter so duplicates on identical lines stay distinct.
    file_lines = {ir.rel: ir.lines for ir in irs}
    counted = {}
    keyed = []
    for f in findings:
        base = finding_key(f, file_lines)
        counted[base] = counted.get(base, 0) + 1
        keyed.append((f"{base}#{counted[base]}", f))

    baseline_path = Path(args.baseline) if args.baseline else None
    if args.update_baseline:
        if baseline_path is None:
            print("ssr_analyze: --update-baseline requires --baseline",
                  file=sys.stderr)
            return 2
        doc = {"schema": "ssr-analyze-baseline-v1",
               "findings": sorted(k for k, _ in keyed)}
        baseline_path.write_text(json.dumps(doc, indent=2) + "\n",
                                 encoding="utf-8")
        print(f"ssr_analyze: baseline updated with {len(keyed)} finding(s)")
        return 0

    baselined = set()
    if baseline_path is not None and baseline_path.is_file():
        doc = json.loads(baseline_path.read_text(encoding="utf-8"))
        if doc.get("schema") != "ssr-analyze-baseline-v1":
            print(f"ssr_analyze: {baseline_path}: unknown baseline schema",
                  file=sys.stderr)
            return 2
        baselined = set(doc.get("findings", []))

    new_findings = [f for k, f in keyed if k not in baselined]
    old_findings = [f for k, f in keyed if k in baselined]

    for f in new_findings:
        print(f.text())
    if old_findings:
        print(f"ssr_analyze: {len(old_findings)} baselined finding(s) "
              "suppressed", file=sys.stderr)

    if args.json:
        doc = {
            "schema": "ssr-analyze-v1",
            "frontend": frontend,
            "files": len(files),
            "findings": [
                {"file": f.rel, "line": f.line, "rule": f.rule,
                 "message": f.message, "baselined": k in baselined}
                for k, f in keyed
            ],
        }
        payload = json.dumps(doc, indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            Path(args.json).write_text(payload, encoding="utf-8")

    print(f"ssr_analyze: {len(files)} files ({frontend} frontend), "
          f"{len(new_findings)} new finding(s), "
          f"{len(old_findings)} baselined", file=sys.stderr)
    return 1 if new_findings else 0


if __name__ == "__main__":
    sys.exit(main())
