#!/usr/bin/env python3
"""Project-convention linter for the SSR simulator.

Enforces textual conventions that need no type information (the AST-level
determinism and concurrency rules — wall-clock use, unseeded RNG engines,
naked new, the observer/capture schema — live in tools/ssr_analyze.py,
which replaced the regex versions that used to be here):

  no-assert          assert()/abort() terminate without context; use the
                     SSR_CHECK* macros, which throw ssr::CheckError with
                     file:line and a message (tests rely on catching it).
  pragma-once        headers use #pragma once, not #ifndef guards.
  stale-suppression  an `ssr-lint: allow(<rule>)` annotation must suppress a
                     finding on its line; once the finding is gone (or the
                     rule retired) the annotation is rot and must go.

Usage:
  tools/ssr_lint.py [paths...]       # default: src tests bench examples
  tools/ssr_lint.py --list-rules

Suppress a finding on one line with a trailing `// ssr-lint: allow(<rule>)`.
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".h", ".hpp", ".cpp", ".cc", ".cxx"}
HEADER_SUFFIXES = {".h", ".hpp"}

# Deliberately-broken analyzer/lint fixture corpora; never part of a sweep
# (tests/analyze/*.py point the tools at them explicitly).
SKIP_DIR_PARTS = ("tests/analyze/fixtures", "tests/analyze/lint_fixtures")

ALLOW_RE = re.compile(r"//\s*ssr-lint:\s*allow\(([a-z0-9-]+)\)")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure.

    A linter over raw text would flag `// use assert here? no` or "time()".
    Replacement keeps offsets stable so reported columns stay meaningful.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


RULES = {
    "no-assert": "assert()/abort() forbidden; use SSR_CHECK*/SSR_CHECK_MSG",
    "pragma-once": "headers must use #pragma once, not #ifndef guards",
    "stale-suppression": "allow() annotations must suppress an actual finding",
}

# (rule, regex, message) applied per stripped line.
LINE_PATTERNS = [
    ("no-assert", re.compile(r"(?<![\w.])assert\s*\("),
     "assert() aborts without context; use SSR_CHECK or SSR_CHECK_MSG"),
    ("no-assert", re.compile(r"(?<![\w.])(?:std::)?abort\s*\("),
     "abort() is uncatchable; throw via SSR_CHECK_MSG(false, ...) instead"),
]

GUARD_RE = re.compile(r"^\s*#\s*ifndef\s+\w+_H[_\w]*\s*$", re.MULTILINE)
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\s*$", re.MULTILINE)


def lint_file(path: Path) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    stripped = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    findings: list[Finding] = []
    used_allows: set[tuple[int, str]] = set()

    def allowed(lineno: int, rule: str) -> bool:
        if lineno - 1 >= len(raw_lines):
            return False
        m = ALLOW_RE.search(raw_lines[lineno - 1])
        if bool(m) and m.group(1) == rule:
            used_allows.add((lineno, rule))
            return True
        return False

    for lineno, line in enumerate(stripped.splitlines(), start=1):
        for rule, pattern, message in LINE_PATTERNS:
            if pattern.search(line) and not allowed(lineno, rule):
                findings.append(Finding(path, lineno, rule, message))

    if path.suffix in HEADER_SUFFIXES:
        if not PRAGMA_ONCE_RE.search(stripped):
            guard = GUARD_RE.search(stripped)
            lineno = (stripped[: guard.start()].count("\n") + 1) if guard else 1
            if not allowed(lineno, "pragma-once"):
                findings.append(Finding(
                    path, lineno, "pragma-once",
                    "header lacks #pragma once" +
                    (" (uses an #ifndef guard)" if guard else "")))

    # Stale-suppression audit: every allow() must have earned its keep above.
    for lineno, rawline in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(rawline)
        if not m:
            continue
        rule = m.group(1)
        if rule not in RULES:
            findings.append(Finding(
                path, lineno, "stale-suppression",
                f"allow({rule}) names a rule ssr_lint no longer has "
                "(AST-level rules moved to tools/ssr_analyze.py); remove or "
                "retarget the annotation"))
        elif (lineno, rule) not in used_allows:
            findings.append(Finding(
                path, lineno, "stale-suppression",
                f"allow({rule}) suppresses nothing on this line; the finding "
                "it silenced is gone — remove the annotation"))
    return findings


def collect(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for arg in paths:
        p = Path(arg)
        if p.is_file():
            files.append(p)
        elif p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix not in CXX_SUFFIXES or not f.is_file():
                    continue
                if any(part in f.as_posix() for part in SKIP_DIR_PARTS):
                    continue
                files.append(f)
        else:
            print(f"ssr_lint: no such path: {arg}", file=sys.stderr)
            sys.exit(2)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        default=["src", "tests", "bench", "examples"])
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule, blurb in RULES.items():
            print(f"{rule:18} {blurb}")
        return 0

    findings: list[Finding] = []
    files = collect(args.paths)
    for f in files:
        findings.extend(lint_file(f))

    for finding in findings:
        print(finding)
    print(f"ssr_lint: {len(files)} files, {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
