#!/usr/bin/env python3
"""Project-convention linter for the SSR simulator.

Enforces rules clang-tidy cannot express (or that we want even when
clang-tidy is unavailable, as in minimal CI containers):

  no-assert        assert()/abort() terminate without context; use the
                   SSR_CHECK* macros, which throw ssr::CheckError with
                   file:line and a message (tests rely on catching it).
  no-wall-clock    std::rand, rand(), srand(), time(nullptr)/time(NULL) and
                   std::random_device make runs irreproducible; draw from the
                   seeded ssr::Rng instead.
  unseeded-rng     a default-constructed <random> engine hides a fixed
                   implementation seed; always pass an explicit seed.
  pragma-once      headers use #pragma once, not #ifndef guards.
  no-naked-new     raw `new` leaks on exceptions; use std::make_unique /
                   containers.
  trace-schema     every EngineObserver callback (sched/types.h) must be
                   serialized by the capture schema (metrics/trace_capture.h);
                   otherwise record/replay silently drops the new event kind
                   and replayed consumers diverge from live ones.

Usage:
  tools/ssr_lint.py [paths...]       # default: src tests bench examples
  tools/ssr_lint.py --list-rules

Suppress a finding on one line with a trailing `// ssr-lint: allow(<rule>)`.
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".h", ".hpp", ".cpp", ".cc", ".cxx"}
HEADER_SUFFIXES = {".h", ".hpp"}

ALLOW_RE = re.compile(r"//\s*ssr-lint:\s*allow\(([a-z0-9-]+)\)")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure.

    A linter over raw text would flag `// use assert here? no` or "time()".
    Replacement keeps offsets stable so reported columns stay meaningful.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


RULES = {
    "no-assert": "assert()/abort() forbidden; use SSR_CHECK*/SSR_CHECK_MSG",
    "no-wall-clock": "non-deterministic sources forbidden; use seeded ssr::Rng",
    "unseeded-rng": "<random> engines must be constructed with an explicit seed",
    "pragma-once": "headers must use #pragma once, not #ifndef guards",
    "no-naked-new": "raw `new` forbidden; use std::make_unique or containers",
    "trace-schema": "EngineObserver callbacks must be captured by trace_capture",
}

# (rule, regex, message) applied per stripped line.
LINE_PATTERNS = [
    ("no-assert", re.compile(r"(?<![\w.])assert\s*\("),
     "assert() aborts without context; use SSR_CHECK or SSR_CHECK_MSG"),
    ("no-assert", re.compile(r"(?<![\w.])(?:std::)?abort\s*\("),
     "abort() is uncatchable; throw via SSR_CHECK_MSG(false, ...) instead"),
    ("no-wall-clock", re.compile(r"(?<![\w.])(?:std::)?s?rand\s*\("),
     "std::rand/srand are unseeded global state; use ssr::Rng"),
    ("no-wall-clock", re.compile(r"(?<![\w.])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "wall-clock seeding breaks replay determinism; plumb a seed through"),
    ("no-wall-clock", re.compile(r"std::random_device"),
     "std::random_device is non-deterministic; derive seeds from ssr::Rng"),
    ("unseeded-rng", re.compile(
        r"std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
        r"ranlux\d+(?:_base)?)\s+\w+\s*(?:;|\{\s*\})"),
     "default-constructed RNG uses a hidden fixed seed; pass one explicitly"),
    ("no-naked-new", re.compile(r"(?<![\w.])new\s+[A-Za-z_:][\w:<>,\s*&]*[({]"),
     "raw new; prefer std::make_unique (or a container)"),
]

GUARD_RE = re.compile(r"^\s*#\s*ifndef\s+\w+_H[_\w]*\s*$", re.MULTILINE)
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\s*$", re.MULTILINE)


def lint_file(path: Path) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    stripped = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    findings: list[Finding] = []

    def allowed(lineno: int, rule: str) -> bool:
        if lineno - 1 >= len(raw_lines):
            return False
        m = ALLOW_RE.search(raw_lines[lineno - 1])
        return bool(m) and m.group(1) == rule

    for lineno, line in enumerate(stripped.splitlines(), start=1):
        for rule, pattern, message in LINE_PATTERNS:
            if pattern.search(line) and not allowed(lineno, rule):
                findings.append(Finding(path, lineno, rule, message))

    if path.suffix in HEADER_SUFFIXES:
        if not PRAGMA_ONCE_RE.search(stripped):
            guard = GUARD_RE.search(stripped)
            lineno = (stripped[: guard.start()].count("\n") + 1) if guard else 1
            if not allowed(lineno, "pragma-once"):
                findings.append(Finding(
                    path, lineno, "pragma-once",
                    "header lacks #pragma once" +
                    (" (uses an #ifndef guard)" if guard else "")))
    return findings


OBSERVER_HEADER = Path("src/ssr/sched/types.h")
CAPTURE_HEADER = Path("src/ssr/metrics/trace_capture.h")
CALLBACK_RE = re.compile(r"virtual\s+void\s+(on_\w+)\s*\(")


def check_trace_schema(root: Path) -> list[Finding]:
    """Whole-project rule: the capture schema must cover the observer seam.

    The record/replay backbone (trace_capture_test, replay_verify, the chaos
    determinism legs) only proves what the TraceRecorder serializes.  A new
    EngineObserver callback that the capture never records would replay as if
    the event never happened — live and replayed consumer state silently
    diverge.  Flag every `virtual void on_*` declared in EngineObserver whose
    name never appears in trace_capture.h, forcing the schema (and its
    version bump) to be part of the same change.
    """
    observer_path = root / OBSERVER_HEADER
    capture_path = root / CAPTURE_HEADER
    findings: list[Finding] = []
    if not observer_path.is_file() or not capture_path.is_file():
        findings.append(Finding(
            observer_path if not observer_path.is_file() else capture_path,
            1, "trace-schema", "expected header is missing; was it moved "
            "without updating tools/ssr_lint.py?"))
        return findings

    text = observer_path.read_text(encoding="utf-8", errors="replace")
    begin = text.find("class EngineObserver")
    if begin == -1:
        findings.append(Finding(
            observer_path, 1, "trace-schema",
            "EngineObserver not found; update tools/ssr_lint.py"))
        return findings
    end = text.find("\n};", begin)
    block = text[begin:end if end != -1 else len(text)]

    capture = capture_path.read_text(encoding="utf-8", errors="replace")
    captured = set(CALLBACK_RE.findall(capture))
    captured.update(re.findall(r"\b(on_\w+)\s*\(", capture))

    for m in CALLBACK_RE.finditer(block):
        name = m.group(1)
        if name in captured:
            continue
        lineno = text[: begin + m.start()].count("\n") + 1
        findings.append(Finding(
            observer_path, lineno, "trace-schema",
            f"EngineObserver::{name} is not serialized by "
            f"{CAPTURE_HEADER}; extend TraceEventKind/TraceRecorder (and "
            "bump kTraceVersion) or replay will silently drop it"))
    return findings


def collect(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for arg in paths:
        p = Path(arg)
        if p.is_file():
            files.append(p)
        elif p.is_dir():
            files.extend(f for f in sorted(p.rglob("*"))
                         if f.suffix in CXX_SUFFIXES and f.is_file())
        else:
            print(f"ssr_lint: no such path: {arg}", file=sys.stderr)
            sys.exit(2)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        default=["src", "tests", "bench", "examples"])
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule, blurb in RULES.items():
            print(f"{rule:14} {blurb}")
        return 0

    findings: list[Finding] = []
    files = collect(args.paths)
    for f in files:
        findings.extend(lint_file(f))
    findings.extend(check_trace_schema(Path(__file__).resolve().parent.parent))

    for finding in findings:
        print(finding)
    print(f"ssr_lint: {len(files)} files, {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
