// Re-certifies a committed trace capture without re-simulating it.
//
// Replays the capture through the same consumer chain the record/replay
// test suite uses — ReplayResultBuilder (bit-identical RunResult
// reconstruction) plus ReplayAuditor (SlotLedger invariant audit) — then
// formats the rebuilt result through exp/run_digest.h and byte-compares it
// against the committed golden digest.  A pass proves three things at once:
// the fixture still parses under the current schema, the captured run still
// satisfies every scheduling invariant, and replay arithmetic still matches
// the digest the live engine produced when the fixture was recorded.
//
// Usage:
//   replay_verify <capture.trace> <digest-title> <expected.golden>
//
// e.g. the audited CI leg runs:
//   replay_verify tests/golden/failure_recovery.trace
//       failure/ssr+mitigation tests/golden/failure_recovery.golden
//
// Exit status: 0 verified, 1 mismatch/violation, 2 usage or unreadable
// input.  Regenerate the fixture pair with
//   SSR_UPDATE_GOLDEN=1 ./build/tests/trace_capture_test and
//   SSR_UPDATE_GOLDEN=1 ./build/tests/golden_replay_test
// when an intentional behaviour change retires the committed bytes.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "ssr/audit/trace_replay_auditor.h"
#include "ssr/common/check.h"
#include "ssr/exp/run_digest.h"
#include "ssr/exp/trace_replay.h"
#include "ssr/metrics/trace_capture.h"

namespace {

bool slurp(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  *out = os.str();
  return true;
}

// Point at the first differing line so a digest drift reads like a test
// failure, not a wall of hexfloat.
void report_diff(const std::string& expected, const std::string& actual) {
  std::istringstream want(expected);
  std::istringstream got(actual);
  std::string want_line;
  std::string got_line;
  int lineno = 0;
  while (true) {
    const bool more_want = static_cast<bool>(std::getline(want, want_line));
    const bool more_got = static_cast<bool>(std::getline(got, got_line));
    ++lineno;
    if (!more_want && !more_got) return;
    if (want_line != got_line || more_want != more_got) {
      std::cerr << "replay_verify: first difference at digest line " << lineno
                << "\n  expected: "
                << (more_want ? want_line : std::string("<end of file>"))
                << "\n  replayed: "
                << (more_got ? got_line : std::string("<end of file>"))
                << "\n";
      return;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::cerr << "usage: replay_verify <capture.trace> <digest-title> "
                 "<expected.golden>\n";
    return 2;
  }
  const std::string trace_path = argv[1];
  const std::string title = argv[2];
  const std::string golden_path = argv[3];

  std::string expected;
  if (!slurp(golden_path, &expected)) {
    std::cerr << "replay_verify: cannot read golden digest: " << golden_path
              << "\n";
    return 2;
  }

  try {
    const ssr::TraceReplayer replayer =
        ssr::TraceReplayer::from_file(trace_path);
    ssr::ReplayResultBuilder builder;
    ssr::audit::ReplayAuditor auditor;
    replayer.replay({&builder, &auditor});

    if (!builder.complete()) {
      std::cerr << "replay_verify: capture has no run-complete event: "
                << trace_path << "\n";
      return 1;
    }
    if (!auditor.clean()) {
      std::cerr << "replay_verify: invariant audit failed on replay of "
                << trace_path << "\n";
      return 1;
    }

    std::ostringstream digest;
    ssr::append_run_digest(digest, title, builder.result());
    if (digest.str() != expected) {
      std::cerr << "replay_verify: digest mismatch for " << trace_path
                << " (title '" << title << "') vs " << golden_path << "\n";
      report_diff(expected, digest.str());
      return 1;
    }
  } catch (const ssr::CheckError& e) {
    std::cerr << "replay_verify: " << e.what() << "\n";
    return 1;
  }

  std::cout << "replay_verify: " << trace_path << " replays clean and "
            << "matches " << golden_path << " ("
            << "events, audit, digest all verified)\n";
  return 0;
}
