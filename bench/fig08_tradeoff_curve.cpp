// Fig. 8 [Numerical]: the utilization-isolation trade-off of Eq. (4).
//
// For each degree of parallelism N in {20, 200} and each Pareto shape alpha,
// prints the lower bound on expected utilization E[U] as the isolation
// guarantee P sweeps 0 -> 1.  The paper's observation: the trade-off grows
// sharper as the tail gets heavier (smaller alpha).
#include <iostream>

#include "ssr/analysis/pareto.h"
#include "ssr/common/table.h"

int main() {
  using namespace ssr;
  std::cout << "Fig. 8: trade-off between utilization and isolation "
               "(Eq. 4 lower bound on E[U])\n\n";

  const double alphas[] = {1.1, 1.3, 1.6, 2.0, 3.0};
  for (const std::size_t n : {20u, 200u}) {
    std::cout << "Degree of parallelism N = " << n << "\n";
    std::vector<std::string> headers = {"P"};
    for (double a : alphas) headers.push_back("alpha=" + TablePrinter::num(a, 1));
    TablePrinter table(std::move(headers));
    for (double p = 0.0; p <= 1.0 + 1e-9; p += 0.1) {
      std::vector<std::string> row = {TablePrinter::num(p, 1)};
      for (double a : alphas) {
        row.push_back(TablePrinter::num(utilization_for_isolation(a, p, n), 3));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Shape check: E[U] decreases in P; smaller alpha (heavier\n"
               "tail) gives a sharper drop — matching the paper's Fig. 8.\n";
  return 0;
}
