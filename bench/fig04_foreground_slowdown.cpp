// Fig. 4 [Cluster]: foreground jobs, despite higher priority, are severely
// slowed by background jobs — and the slowdown grows with background task
// duration.
//
// Setup per the paper: 50 worker nodes x 2 executors (100 slots); foreground
// KMeans / SVM / PageRank (SparkBench); background = 100 jobs synthesized
// from the Google traces over a one-hour window, task runtimes scaled down
// 10x.  Three contention levels: alone, standard background, and prolonged
// (2x task runtime) background.  Naive work-conserving scheduler (no SSR).
//
// All (app x contention) trials run in parallel on the sweep pool
// (--jobs N); results are deterministic for any worker count.
#include <iostream>

#include "ssr/common/table.h"
#include "ssr/exp/sweep.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);

  const ClusterSpec cluster{.nodes = 50, .slots_per_node = 2};
  RunOptions options;
  options.seed = args.seed;

  TraceGenConfig bg;
  bg.num_jobs = args.scaled(100);
  bg.window = 3600.0 / args.scale;
  bg.seed = args.seed + 1000;

  const SimTime fg_submit = bg.window * 0.25;  // arrive into a warm cluster
  struct App {
    const char* name;
    JobSpec (*make)(std::uint32_t, int, SimTime);
  };
  const App apps[] = {{"kmeans", make_kmeans},
                      {"svm", make_svm},
                      {"pagerank", make_pagerank}};

  std::cout << "Fig. 4: foreground slowdown under background contention "
               "(50 nodes / 100 slots, no SSR)\n"
            << "background: " << bg.num_jobs << " Google-trace-like jobs over "
            << bg.window << " s\n\n";

  // Grid layout: per app, [alone, bg 1x, bg 2x].
  std::vector<Trial> grid;
  for (const App& app : apps) {
    grid.push_back({cluster,
                    {app.make(20, 10, 0.0)},
                    options,
                    std::string(app.name) + "/alone",
                    {{"app", app.name}, {"background", "none"}}});
    for (int setting = 0; setting < 2; ++setting) {
      TraceGenConfig cfg = bg;
      cfg.runtime_multiplier = setting == 0 ? 1.0 : 2.0;
      std::vector<JobSpec> jobs = make_background_jobs(cfg);
      jobs.push_back(app.make(20, 10, fg_submit));
      grid.push_back({cluster,
                      std::move(jobs),
                      options,
                      std::string(app.name) + (setting == 0 ? "/bg1x" : "/bg2x"),
                      {{"app", app.name},
                       {"background", setting == 0 ? "1x" : "2x"}}});
    }
  }

  const SweepRunner runner(sweep_options(args));
  const std::vector<TrialResult> results = runner.run(grid);

  TablePrinter table({"job", "alone JCT (s)", "slowdown (bg 1x)",
                      "slowdown (bg 2x)"});
  for (std::size_t a = 0; a < std::size(apps); ++a) {
    const double alone = results[3 * a].run.jobs.front().jct;
    table.add_row(
        {apps[a].name, TablePrinter::num(alone, 1),
         TablePrinter::num(
             slowdown(results[3 * a + 1].run.jct_of(apps[a].name), alone), 2),
         TablePrinter::num(
             slowdown(results[3 * a + 2].run.jct_of(apps[a].name), alone),
             2)});
  }
  table.print(std::cout);
  emit_sweep_outputs(args, results);
  std::cout << "\nShape check: every foreground job is slowed well beyond\n"
               "1x despite top priority, and doubling background task\n"
               "duration increases the slowdown (paper's Fig. 4).\n";
  return 0;
}
