// Perf smoke: wall-clock cost of trace capture and of capture replay.
//
// Two records through the shared BENCH_sched.json reporter:
//
//   trace_capture/record — the Fig. 12-shaped faulted contention run with a
//     TraceRecorder attached and the capture serialized to disk, reported as
//     simulated tasks per wall second.  Diffed against failure_smoke/faulted
//     in the baseline, this bounds the observer + serialization overhead the
//     capture seam adds to a live run.
//   trace_capture/replay — the written capture re-parsed and replayed
//     through the full consumer chain (ReplayResultBuilder + ReplayAuditor,
//     the replay-verify configuration) repeatedly, reported as captured
//     events per wall second.  This guards the parse/dispatch hot path that
//     record/replay tests and the replay-verify CI step lean on.
//
// Default --scale is 4; the replay leg repeats inversely with scale so its
// wall time stays measurable at CI scale.
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "ssr/audit/trace_replay_auditor.h"
#include "ssr/exp/bench_report.h"
#include "ssr/exp/scenario.h"
#include "ssr/exp/trace_replay.h"
#include "ssr/metrics/trace_capture.h"
#include "ssr/sim/failure_injector.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

int main(int argc, char** argv) {
  using namespace ssr;
  BenchArgs args = BenchArgs::parse(argc, argv);
  if (!args.scale_set) args.scale = 4.0;

  const ClusterSpec cluster{.nodes = args.scaled(400), .slots_per_node = 2};
  const std::uint32_t bg_jobs = args.scaled(2400);
  const SimDuration window = 1800.0;
  const std::string capture_path = "BENCH_capture.trace";
  std::cout << "Trace-capture perf smoke — " << cluster.nodes << " nodes / "
            << cluster.total_slots() << " slots, " << bg_jobs
            << " background jobs (scale 1/" << args.scale << ")\n";

  BenchReporter report;

  // Record leg: the failure_recovery_smoke faulted pass, plus capture.
  RunOptions o;
  o.seed = args.seed;
  o.ssr = SsrConfig{};
  o.ssr->min_reserving_priority = 1;
  o.capture_path = capture_path;
  RandomFailureConfig fc;
  fc.num_nodes = cluster.nodes;
  fc.horizon = window * 1.25;
  fc.failures = std::max<std::uint32_t>(4, cluster.nodes / 8);
  fc.min_downtime = 30.0;
  fc.max_downtime = 300.0;
  fc.permanent_fraction = 0.2;
  fc.seed = args.seed + 7;
  o.failures = make_random_node_failures(fc);

  TraceGenConfig bg;
  bg.num_jobs = bg_jobs;
  bg.window = window;
  bg.seed = args.seed + 42;
  std::vector<JobSpec> jobs = make_background_jobs(bg);
  jobs.push_back(make_kmeans(60, /*priority=*/10, window * 0.25));

  {
    const WallTimer timer;
    const RunResult run = run_scenario(cluster, std::move(jobs), o);
    const double wall = timer.elapsed_seconds();
    BenchRecord rec;
    rec.name = "trace_capture/record";
    rec.wall_seconds = wall;
    if (wall > 0.0) {
      rec.items_per_second =
          static_cast<double>(run.task_totals.tasks_started) / wall;
    }
    std::cout << "  " << rec.name << ": " << wall << " s wall, "
              << run.task_totals.tasks_started << " tasks ("
              << rec.items_per_second << " tasks/s), makespan "
              << run.makespan << " sim-s\n";
    report.add(std::move(rec));
  }

  // Replay leg: parse + full consumer chain, repeated to amortize noise.
  {
    const std::uint32_t repeats = args.scaled(40);
    std::uint64_t events_replayed = 0;
    bool clean = true;
    const WallTimer timer;
    for (std::uint32_t i = 0; i < repeats; ++i) {
      const TraceReplayer replayer = TraceReplayer::from_file(capture_path);
      ReplayResultBuilder builder;
      audit::ReplayAuditor auditor;
      replayer.replay({&builder, &auditor});
      events_replayed += replayer.events().size();
      clean = clean && builder.complete() && auditor.clean();
    }
    const double wall = timer.elapsed_seconds();
    BenchRecord rec;
    rec.name = "trace_capture/replay";
    rec.wall_seconds = wall;
    if (wall > 0.0) {
      rec.items_per_second = static_cast<double>(events_replayed) / wall;
    }
    std::cout << "  " << rec.name << ": " << wall << " s wall, " << repeats
              << " replays, " << events_replayed << " events ("
              << rec.items_per_second << " events/s), audit "
              << (clean ? "clean" : "VIOLATED") << "\n";
    report.add(std::move(rec));
    if (!clean) {
      std::cerr << "trace_capture_smoke: replay was not clean\n";
      return 1;
    }
  }

  std::remove(capture_path.c_str());
  std::cout << "  peak RSS: " << peak_rss_mb() << " MiB\n";
  if (!args.bench_json.empty()) report.write_file(args.bench_json);
  return 0;
}
