// Fig. 10 [Numerical]: speed-up of in-phase computation from the paper's
// straggler-mitigation strategy (Sec. IV-C).
//
// Task durations are drawn i.i.d. Pareto(alpha, 1); each data point averages
// the relative reduction of the phase completion time over 1000 runs, for
// N in {20, 200} — reproducing the paper's plot.  The paper highlights
// > 50% reduction at the production-typical alpha = 1.6.
#include <iostream>

#include "ssr/analysis/straggler_model.h"
#include "ssr/common/rng.h"
#include "ssr/common/table.h"
#include "ssr/exp/scenario.h"

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t runs = 1000;

  std::cout << "Fig. 10: phase completion-time reduction from straggler "
               "mitigation\n("
            << runs << " Monte-Carlo runs per point, seed " << args.seed
            << ")\n\n";

  TablePrinter table({"alpha", "reduction N=20 (%)", "reduction N=200 (%)"});
  Rng rng(args.seed);
  for (double alpha = 1.1; alpha <= 4.0 + 1e-9; alpha += 0.29) {
    const ParetoModel model{alpha, 1.0};
    const double r20 = mean_completion_reduction(model, 20, runs, rng);
    const double r200 = mean_completion_reduction(model, 200, runs, rng);
    table.add_row({TablePrinter::num(alpha, 2),
                   TablePrinter::num(100.0 * r20, 1),
                   TablePrinter::num(100.0 * r200, 1)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: heavier tails (small alpha) and higher\n"
               "parallelism benefit more; paper reports > 50% at alpha=1.6.\n";
  return 0;
}
