// Fig. 16 [Simulation]: slowdown of the SQL jobs vs the pre-reservation
// threshold R.
//
// SQL queries change their degree of parallelism between phases; when the
// downstream phase is wider than the reserved slots, pre-reservation
// (Algorithm 1, Case-2.3) grabs the extra slots once the current phase's
// finished fraction exceeds R.  The earlier pre-reservation starts (smaller
// R), the smaller the slowdown.
#include <iostream>
#include <vector>

#include "ssr/common/stats.h"
#include "ssr/common/table.h"
#include "ssr/exp/scenario.h"
#include "ssr/workload/sqlbench.h"
#include "ssr/workload/tracegen.h"

int main(int argc, char** argv) {
  using namespace ssr;
  BenchArgs args = BenchArgs::parse(argc, argv);
  // 4 policies x 3 seeds x 20 queries = 240 simulations; default to 1/4
  // scale for a CI-friendly runtime (pass --scale 1 for the full setup).
  if (!args.scale_set) args.scale = 4.0;

  const ClusterSpec cluster{.nodes = args.scaled(250), .slots_per_node = 4};
  const SimDuration window = 3600.0 / args.scale;

  auto make_query = [&](std::uint32_t q, SimTime submit) {
    SqlJobParams p;
    p.query_index = q;
    p.base_parallelism = 20;
    p.priority = 10;
    p.submit_time = submit;
    // Tasks must be long relative to the 3 s locality wait, as in the
    // paper's traces; otherwise downstream tasks simply serialize onto the
    // phase's warm slots and pre-reservation has nothing to win.
    p.mean_task_seconds = 15.0;
    return make_sql_query(p);
  };

  std::cout << "Fig. 16: SQL slowdown vs pre-reservation threshold R ("
            << cluster.nodes << " nodes / " << cluster.nodes * 4
            << " slots)\n\n";

  // Alone baselines (per query).
  RunOptions base;
  base.seed = args.seed;
  std::vector<double> alone;
  for (std::uint32_t q = 0; q < 20; ++q) {
    alone.push_back(alone_jct(cluster, make_query(q, 0.0), base));
  }

  // Queries whose DAG contains an expanding transition (m < n) are the ones
  // pre-reservation can help; report them separately from the full suite.
  std::vector<bool> expands(20, false);
  for (std::uint32_t q = 0; q < 20; ++q) {
    JobGraph g(JobId{q}, make_query(q, 0.0));
    for (std::uint32_t s = 0; s < g.num_stages(); ++s) {
      const auto n = g.downstream_parallelism(s);
      if (n && *n > g.stage(s).num_tasks) expands[q] = true;
    }
  }

  TablePrinter table({"R", "avg slowdown (all queries)",
                      "avg slowdown (expanding queries)"});
  struct Case {
    const char* label;
    bool prereserve;
    double r;
  };
  const Case cases[] = {{"0.2", true, 0.2},
                        {"0.5", true, 0.5},
                        {"0.8", true, 0.8},
                        {"off (no pre-reservation)", false, 0.5}};
  for (const Case& c : cases) {
    RunOptions o = base;
    o.ssr = SsrConfig{};
    o.ssr->min_reserving_priority = 1;  // reserve for the foreground class only
    o.ssr->enable_prereservation = c.prereserve;
    o.ssr->prereserve_threshold = c.r;

    // One query at a time against the background mix (the paper measures
    // per-query slowdown; concurrent equal-priority queries would block one
    // another via their reservations and confound the R effect).  Averaged
    // over background seeds to tame trace noise.
    OnlineStats slow, slow_expanding;
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      for (std::uint32_t q = 0; q < 20; ++q) {
        TraceGenConfig bg;
        bg.num_jobs = args.scaled(2000);
        bg.window = window;
        bg.seed = args.seed + 42 + rep;
        std::vector<JobSpec> jobs = make_background_jobs(bg);
        const std::size_t bg_count = jobs.size();
        jobs.push_back(make_query(q, window * 0.2));
        RunOptions run_o = o;
        run_o.seed = args.seed + rep;
        const RunResult r = run_scenario(cluster, std::move(jobs), run_o);
        const double s = slowdown(r.jobs[bg_count].jct, alone[q]);
        slow.add(s);
        if (expands[q]) slow_expanding.add(s);
      }
    }
    table.add_row({c.label, TablePrinter::num(slow.mean(), 3),
                   TablePrinter::num(slow_expanding.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: earlier pre-reservation (smaller R) gives\n"
               "less slowdown; disabling it is worst (paper's Fig. 16).\n";
  return 0;
}
