// Fig. 17 [Simulation]: average JCT reduction of the foreground jobs from
// the straggler-mitigation strategy, as a function of the latency-tail shape.
//
// Per the paper's methodology, each foreground job's task runtimes are
// re-drawn from a Pareto distribution with the given shape alpha and the
// *same mean* as the original workload.  We run each job with and without
// straggler mitigation (both with SSR reservations enabled) and report the
// mean JCT reduction.  The paper reports ~73% at the production-typical
// alpha = 1.6.
#include <iostream>
#include <vector>

#include "ssr/common/stats.h"
#include "ssr/common/table.h"
#include "ssr/exp/scenario.h"
#include "ssr/workload/adjust.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/sqlbench.h"

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const ClusterSpec cluster{.nodes = 60, .slots_per_node = 4};

  std::cout << "Fig. 17: average foreground JCT reduction from straggler "
               "mitigation vs Pareto shape alpha\n\n";

  auto make_suite = [] {
    std::vector<JobSpec> jobs;
    jobs.push_back(make_kmeans(40, 10, 0.0));
    jobs.push_back(make_svm(40, 10, 0.0));
    jobs.push_back(make_pagerank(40, 10, 0.0));
    for (std::uint32_t q = 0; q < 6; ++q) {
      SqlJobParams p;
      p.query_index = q;
      p.base_parallelism = 40;
      p.priority = 10;
      jobs.push_back(make_sql_query(p));
    }
    return jobs;
  };

  TablePrinter table({"alpha", "avg JCT reduction (%)"});
  for (const double alpha : {1.1, 1.3, 1.6, 2.0, 2.5, 3.0}) {
    OnlineStats reduction;
    for (int rep = 0; rep < 3; ++rep) {
      Rng rng(args.seed + 31 * static_cast<std::uint64_t>(rep));
      for (JobSpec& job : make_suite()) {
        JobSpec adjusted = pareto_adjust(std::move(job), alpha, rng);

        RunOptions off;
        off.seed = args.seed + static_cast<std::uint64_t>(rep);
        off.ssr = SsrConfig{};
        RunOptions on = off;
        on.ssr->enable_straggler_mitigation = true;

        const double jct_off = alone_jct(cluster, adjusted, off);
        const double jct_on = alone_jct(cluster, adjusted, on);
        reduction.add(100.0 * (jct_off - jct_on) / jct_off);
      }
    }
    table.add_row({TablePrinter::num(alpha, 1),
                   TablePrinter::num(reduction.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: heavier tails (small alpha) benefit more;\n"
               "the paper reports ~73% average reduction at alpha = 1.6.\n";
  return 0;
}
