// Fig. 17 [Simulation]: average JCT reduction of the foreground jobs from
// the straggler-mitigation strategy, as a function of the latency-tail shape.
//
// Per the paper's methodology, each foreground job's task runtimes are
// re-drawn from a Pareto distribution with the given shape alpha and the
// *same mean* as the original workload.  We run each job with and without
// straggler mitigation (both with SSR reservations enabled) and report the
// mean JCT reduction.  The paper reports ~73% at the production-typical
// alpha = 1.6.
//
// The (alpha x rep x job x {off,on}) grid — 324 single-job trials — runs in
// parallel on the sweep pool.
#include <iostream>
#include <vector>

#include "ssr/common/stats.h"
#include "ssr/common/table.h"
#include "ssr/exp/sweep.h"
#include "ssr/workload/adjust.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/sqlbench.h"

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const ClusterSpec cluster{.nodes = 60, .slots_per_node = 4};

  std::cout << "Fig. 17: average foreground JCT reduction from straggler "
               "mitigation vs Pareto shape alpha\n\n";

  auto make_suite = [] {
    std::vector<JobSpec> jobs;
    jobs.push_back(make_kmeans(40, 10, 0.0));
    jobs.push_back(make_svm(40, 10, 0.0));
    jobs.push_back(make_pagerank(40, 10, 0.0));
    for (std::uint32_t q = 0; q < 6; ++q) {
      SqlJobParams p;
      p.query_index = q;
      p.base_parallelism = 40;
      p.priority = 10;
      jobs.push_back(make_sql_query(p));
    }
    return jobs;
  };

  const double alphas[] = {1.1, 1.3, 1.6, 2.0, 2.5, 3.0};
  const int kReps = 3;

  // Grid layout: per alpha, per rep, per suite job: [mitigation off, on];
  // both trials run the *identical* adjusted spec (explicit durations).
  std::vector<Trial> grid;
  for (const double alpha : alphas) {
    for (int rep = 0; rep < kReps; ++rep) {
      Rng rng(args.seed + 31 * static_cast<std::uint64_t>(rep));
      for (JobSpec& job : make_suite()) {
        JobSpec adjusted = pareto_adjust(std::move(job), alpha, rng);

        RunOptions off;
        off.seed = args.seed + static_cast<std::uint64_t>(rep);
        off.ssr = SsrConfig{};
        RunOptions on = off;
        on.ssr->enable_straggler_mitigation = true;

        const std::string label =
            "alpha=" + TablePrinter::num(alpha, 1) + "/" + adjusted.name;
        std::map<std::string, std::string> tags = {
            {"alpha", TablePrinter::num(alpha, 1)},
            {"rep", std::to_string(rep)},
            {"app", adjusted.name}};
        tags["mitigation"] = "off";
        grid.push_back({cluster, {adjusted}, off, label + "/off", tags});
        tags["mitigation"] = "on";
        grid.push_back(
            {cluster, {std::move(adjusted)}, on, label + "/on", tags});
      }
    }
  }

  const SweepRunner runner(sweep_options(args));
  const std::vector<TrialResult> results = runner.run(grid);

  TablePrinter table({"alpha", "avg JCT reduction (%)"});
  const std::size_t per_alpha = results.size() / std::size(alphas);
  for (std::size_t ai = 0; ai < std::size(alphas); ++ai) {
    OnlineStats reduction;
    for (std::size_t k = 0; k < per_alpha; k += 2) {
      const double jct_off =
          results[ai * per_alpha + k].run.jobs.front().jct;
      const double jct_on =
          results[ai * per_alpha + k + 1].run.jobs.front().jct;
      reduction.add(100.0 * (jct_off - jct_on) / jct_off);
    }
    table.add_row({TablePrinter::num(alphas[ai], 1),
                   TablePrinter::num(reduction.mean(), 1)});
  }
  table.print(std::cout);
  emit_sweep_outputs(args, results);
  std::cout << "\nShape check: heavier tails (small alpha) benefit more;\n"
               "the paper reports ~73% average reduction at alpha = 1.6.\n";
  return 0;
}
