// Cross-policy isolation-vs-utilization shoot-out (DESIGN.md §14).
//
// Runs the fig12-shaped contention scenario — a demand-varied Google-trace
// background mix plus one high-priority KMeans foreground job — under every
// policy in the zoo (baseline, SSR, DAGPS, packing, table-driven), over
// several background seeds, and reports per policy:
//   * isolation probability: fraction of trials where the foreground job's
//     slowdown vs. its same-policy alone run stays under 1.25 (a scaled-down
//     version of the paper's "< 10% slowdown" Fig. 12 bar — at --scale 8 the
//     foreground is large relative to the window, so its unavoidable
//     first-stage wait alone costs ~10%);
//   * mean foreground slowdown and mean cluster utilization — the two axes
//     of the trade-off the zoo exists to map;
//   * reserved-idle fraction: utilization paid to reservations.
//
// Isolation probability and utilization are deterministic functions of the
// seeds, so they are recorded in BENCH_sched.json (items_per_second carries
// the value) and gated by tools/check_bench_regression.py like any
// throughput number: a policy change that silently costs isolation or
// utilization trips the same CI gate a hot-path regression would.  One
// wall-clock record (policy_zoo/sweep) guards the simulator cost itself.
//
// Default --scale is 8 to keep CI wall time in seconds; docs/EXPERIMENTS.md
// has the full-scale reproduction command.
#include <cstddef>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "ssr/common/table.h"
#include "ssr/exp/bench_report.h"
#include "ssr/exp/policy_zoo.h"
#include "ssr/exp/sweep.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

int main(int argc, char** argv) {
  using namespace ssr;
  BenchArgs args = BenchArgs::parse(argc, argv);
  if (!args.scale_set) args.scale = 8.0;

  const ClusterSpec cluster{.nodes = 50, .slots_per_node = 2, .node_slots = {}};
  const std::uint32_t kTrials = 5;
  const double kIsolationBar = 1.25;

  TraceGenConfig bg;
  bg.num_jobs = args.scaled(100);
  bg.window = 3600.0 / args.scale;
  // Per-stage demand vectors give the packing policy real decisions; the
  // draws ride a separate RNG stream so the mix is otherwise fig12's.
  bg.vary_demand = true;
  const SimTime fg_submit = bg.window * 0.25;

  // Policies selected on the command line run alone; default is the whole
  // zoo (the cross-policy shoot-out CI records).
  std::vector<ZooPolicy> policies;
  if (!args.policy.empty()) {
    policies.push_back(*parse_zoo_policy(args.policy));
  } else {
    policies = all_zoo_policies();
  }

  // Grid: per policy one alone baseline (the slowdown denominator under
  // that same policy), then kTrials contended runs over distinct bg seeds.
  std::vector<Trial> grid;
  for (ZooPolicy policy : policies) {
    RunOptions options;
    args.apply_to(options.sched);
    options.seed = args.seed;
    apply_zoo_policy(policy, cluster, options);
    const std::string name = zoo_policy_name(policy);

    grid.push_back({cluster,
                    {make_kmeans(20, 10, 0.0)},
                    options,
                    name + "/alone",
                    {{"policy", name}}});
    for (std::uint32_t t = 0; t < kTrials; ++t) {
      TraceGenConfig cfg = bg;
      cfg.seed = args.seed + 1000 + t;
      std::vector<JobSpec> jobs = make_background_jobs(cfg);
      jobs.push_back(make_kmeans(20, 10, fg_submit));
      RunOptions trial_options = options;
      trial_options.seed = args.seed + t;
      grid.push_back({cluster, std::move(jobs), trial_options,
                      name + "/contended",
                      {{"policy", name}, {"trial", std::to_string(t)}}});
    }
  }

  const WallTimer timer;
  const SweepRunner runner(sweep_options(args));
  const std::vector<TrialResult> results = runner.run(grid);
  const double wall = timer.elapsed_seconds();

  std::cout << "Policy zoo shoot-out — " << cluster.nodes << " nodes / "
            << cluster.total_slots() << " slots, " << bg.num_jobs
            << " background jobs x " << kTrials << " seeds (scale 1/"
            << args.scale << ")\n\n";

  BenchReporter report;
  TablePrinter table({"policy", "isolation P", "mean slowdown",
                      "mean util", "reserved-idle frac"});
  std::uint64_t total_tasks = 0;
  const std::size_t per_policy = 1 + kTrials;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const std::string name = zoo_policy_name(policies[p]);
    const double alone = results[p * per_policy].run.jobs.front().jct;
    std::uint32_t isolated = 0;
    double slowdown_sum = 0.0;
    double util_sum = 0.0;
    double reserved_frac_sum = 0.0;
    for (std::uint32_t t = 0; t < kTrials; ++t) {
      const RunResult& run = results[p * per_policy + 1 + t].run;
      const double s = slowdown(run.jct_of("kmeans"), alone);
      if (s <= kIsolationBar) ++isolated;
      slowdown_sum += s;
      util_sum += run.utilization;
      const double denom = run.busy_time + run.reserved_idle_time;
      reserved_frac_sum += denom > 0.0 ? run.reserved_idle_time / denom : 0.0;
      total_tasks += run.task_totals.tasks_started;
    }
    const double isolation_p =
        static_cast<double>(isolated) / static_cast<double>(kTrials);
    const double mean_util = util_sum / static_cast<double>(kTrials);
    table.add_row({name, TablePrinter::num(isolation_p, 2),
                   TablePrinter::num(slowdown_sum / kTrials, 2),
                   TablePrinter::num(mean_util, 3),
                   TablePrinter::num(reserved_frac_sum / kTrials, 4)});
    // Deterministic quality records: the value rides items_per_second so
    // the regression checker gates it with its standard ratio test.
    report.add({"policy_zoo/" + name + "/isolation_probability", isolation_p,
                0.0});
    report.add({"policy_zoo/" + name + "/utilization", mean_util, 0.0});
  }
  table.print(std::cout);

  BenchRecord sweep_rec;
  sweep_rec.name = "policy_zoo/sweep";
  sweep_rec.wall_seconds = wall;
  if (wall > 0.0) {
    sweep_rec.items_per_second = static_cast<double>(total_tasks) / wall;
  }
  report.add(std::move(sweep_rec));

  std::cout << "\n  sweep: " << wall << " s wall, " << total_tasks
            << " contended tasks, peak RSS " << peak_rss_mb() << " MiB\n";
  std::cout
      << "\nShape check: only SSR holds isolation P at 1.0.  Table-driven\n"
         "pays by far the largest reserved-idle fraction yet isolates\n"
         "little: its carve-out reserves arbitrary slots, which fight\n"
         "delay scheduling (a stage drip-fed preferred slots never\n"
         "relaxes to the reserved remote ones) and can even capture the\n"
         "foreground's own parent-output slots.  DAGPS/packing raise\n"
         "background throughput without protecting the foreground.  That\n"
         "gap -- reservations must land on the dependent stage's\n"
         "preferred slots -- is the paper's motivation for SSR.\n";
  emit_sweep_outputs(args, results);
  if (!args.bench_json.empty()) report.write_file(args.bench_json);
  return 0;
}
