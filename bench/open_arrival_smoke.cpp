// Perf smoke: wall-clock cost of the open-system path.
//
// The closed-harness smokes (fig15_sched_smoke) measure run_scenario();
// this binary measures the stepping path the service mode uses — thousands
// of advance_to/submit_job cycles through multi-tenant admission control,
// then a drain — once without and once with SSR.  Reported via the shared
// BENCH_sched.json reporter so the perf-smoke CI job can diff it against
// the committed baseline: a regression here means the open-system layers
// (bounded advance, admission bookkeeping, queue pump) got slower, which
// the closed smokes cannot see.
//
// Default --scale is 4 to keep CI wall time in seconds.
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "ssr/exp/bench_report.h"
#include "ssr/exp/open_scenario.h"

int main(int argc, char** argv) {
  using namespace ssr;
  BenchArgs args = BenchArgs::parse(argc, argv);
  if (!args.scale_set) args.scale = 4.0;

  const ClusterSpec cluster{.nodes = args.scaled(200), .slots_per_node = 4};
  OpenScenarioSpec tenants;
  tenants.tenants.push_back({.name = "interactive",
                             .min_slots = cluster.total_slots() / 4,
                             .max_slots = cluster.total_slots() / 2,
                             .queue_when_full = true});
  tenants.tenants.push_back({.name = "batch",
                             .min_slots = cluster.total_slots() / 2,
                             .max_slots = cluster.total_slots(),
                             .queue_when_full = true});

  std::vector<OpenTenantProfile> profiles;
  profiles.push_back({.tenant = "interactive",
                      .mean_interarrival = 4.0,
                      .num_jobs = args.scaled(2000),
                      .min_parallelism = 4,
                      .max_parallelism = 16,
                      .priority = 10});
  profiles.push_back({.tenant = "batch",
                      .mean_interarrival = 10.0,
                      .num_jobs = args.scaled(800),
                      .min_parallelism = 8,
                      .max_parallelism = 64,
                      .priority = 0});

  std::cout << "Open-arrival perf smoke — " << cluster.nodes << " nodes / "
            << cluster.total_slots() << " slots, "
            << profiles[0].num_jobs + profiles[1].num_jobs
            << " arrivals over two tenants (scale 1/" << args.scale << ")\n";

  BenchReporter report;
  for (int pass = 0; pass < 2; ++pass) {
    RunOptions o;
    o.seed = args.seed;
    if (pass == 1) {
      o.ssr = SsrConfig{};
      o.ssr->min_reserving_priority = 1;
    }
    std::vector<OpenArrival> arrivals =
        make_open_arrivals(profiles, args.seed + 7);

    const WallTimer timer;
    const RunResult run =
        run_open_scenario(cluster, tenants, std::move(arrivals), o);
    const double wall = timer.elapsed_seconds();

    BenchRecord rec;
    rec.name =
        std::string("open_arrival_smoke/") + (pass == 0 ? "nossr" : "ssr");
    rec.wall_seconds = wall;
    if (wall > 0.0) {
      rec.items_per_second =
          static_cast<double>(run.task_totals.tasks_started) / wall;
    }
    std::cout << "  " << rec.name << ": " << wall << " s wall, "
              << run.task_totals.tasks_started << " tasks ("
              << rec.items_per_second << " tasks/s), makespan "
              << run.makespan << " sim-s\n";
    for (const TenantResult& t : run.tenants) {
      std::cout << "    " << t.name << ": " << t.admitted << " admitted, "
                << t.queued << " queued (mean wait " << t.mean_queue_delay
                << " s), peak demand " << t.peak_demand << "/" << t.max_slots
                << " slots\n";
    }
    report.add(std::move(rec));
  }

  std::cout << "  peak RSS: " << peak_rss_mb() << " MiB\n";
  if (!args.bench_json.empty()) report.write_file(args.bench_json);
  return 0;
}
