// Fig. 5 [Cluster]: detailed view of KMeans execution over time (degree of
// parallelism = 20), without and with low-priority background jobs.
//
// The paper's micro-benchmark shows KMeans holding its 20 slots when alone,
// but repeatedly collapsing to few running tasks before each barrier and
// ramping up slowly under contention.  We plot the number of running KMeans
// tasks sampled over time in both environments.
#include <iostream>

#include "ssr/common/table.h"
#include "ssr/exp/scenario.h"
#include "ssr/metrics/collectors.h"
#include "ssr/sched/engine.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

namespace {

using namespace ssr;

void run_and_plot(bool with_background, std::uint64_t seed) {
  Engine engine(SchedConfig{}, 50, 2, seed);
  RunningTasksSeries series;
  engine.add_observer(&series);

  TraceGenConfig bg;
  bg.num_jobs = 100;
  bg.window = 1200.0;
  bg.seed = seed + 1000;

  const SimTime fg_submit = with_background ? 300.0 : 0.0;
  JobId kmeans_id{};
  if (with_background) {
    for (JobSpec& spec : make_background_jobs(bg)) {
      engine.submit(std::move(spec));
    }
  }
  kmeans_id = engine.submit(make_kmeans(20, /*priority=*/10, fg_submit));
  engine.run();

  const SimTime finish = engine.job_finish_time(kmeans_id);
  std::cout << (with_background ? "WITH background contention"
                                : "WITHOUT background (running alone)")
            << " — KMeans JCT = " << engine.jct(kmeans_id) << " s\n";
  AsciiSeries plot("time since submit (s)", "# running KMeans tasks", 40);
  const SimDuration dt = (finish - fg_submit) / 40.0;
  for (const auto& [t, v] : series.sampled(kmeans_id, dt, finish)) {
    if (t >= fg_submit) plot.add_point(t - fg_submit, v);
  }
  plot.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  std::cout << "Fig. 5: KMeans running-task count over time "
               "(parallelism 20, 50 nodes, no SSR)\n\n";
  run_and_plot(/*with_background=*/false, args.seed);
  run_and_plot(/*with_background=*/true, args.seed);
  std::cout << "Shape check: alone, the job holds ~20 slots with brief dips\n"
               "at barriers; under contention it loses slots before each\n"
               "barrier and ramps up slowly afterwards (paper's Fig. 5).\n";
  return 0;
}
