// Perf smoke: wall-clock cost of a Fig. 12-shaped contended run under fault
// injection.
//
// Runs the isolation scenario (background trace + high-priority KMeans under
// strict SSR) twice — once failure-free, once with a seeded random node-
// failure schedule — and reports simulator wall time and simulated tasks per
// wall second through the shared BENCH_sched.json reporter.  The perf-smoke
// CI job diffs both records against the committed baseline, so a regression
// in the failure/recovery paths (kill, re-queue, output invalidation,
// deferred placement) shows up even though the default test suite only
// checks behaviour, not cost.
//
// Default --scale is 4; docs/EXPERIMENTS.md uses --scale 1 for the
// paper-scale acceptance run.
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "ssr/exp/bench_report.h"
#include "ssr/exp/scenario.h"
#include "ssr/sim/failure_injector.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

int main(int argc, char** argv) {
  using namespace ssr;
  BenchArgs args = BenchArgs::parse(argc, argv);
  if (!args.scale_set) args.scale = 4.0;

  const ClusterSpec cluster{.nodes = args.scaled(400), .slots_per_node = 2};
  const std::uint32_t bg_jobs = args.scaled(2400);
  const SimDuration window = 1800.0;
  std::cout << "Failure-recovery perf smoke — " << cluster.nodes
            << " nodes / " << cluster.total_slots() << " slots, " << bg_jobs
            << " background jobs (scale 1/" << args.scale << ")\n";

  BenchReporter report;
  for (int pass = 0; pass < 2; ++pass) {
    RunOptions o;
    o.seed = args.seed;
    o.ssr = SsrConfig{};
    o.ssr->min_reserving_priority = 1;
    if (pass == 1) {
      // ~1 failure per 8 nodes spread over the run, transient and permanent
      // mixed, so every recovery path stays on the measured profile.
      RandomFailureConfig fc;
      fc.num_nodes = cluster.nodes;
      fc.horizon = window * 1.25;
      fc.failures = std::max<std::uint32_t>(4, cluster.nodes / 8);
      fc.min_downtime = 30.0;
      fc.max_downtime = 300.0;
      fc.permanent_fraction = 0.2;
      fc.seed = args.seed + 7;
      o.failures = make_random_node_failures(fc);
    }

    TraceGenConfig bg;
    bg.num_jobs = bg_jobs;
    bg.window = window;
    bg.seed = args.seed + 42;
    std::vector<JobSpec> jobs = make_background_jobs(bg);
    jobs.push_back(make_kmeans(60, /*priority=*/10, window * 0.25));

    const WallTimer timer;
    const RunResult run = run_scenario(cluster, std::move(jobs), o);
    const double wall = timer.elapsed_seconds();

    BenchRecord rec;
    rec.name =
        std::string("failure_smoke/") + (pass == 0 ? "clean" : "faulted");
    rec.wall_seconds = wall;
    if (wall > 0.0) {
      rec.items_per_second =
          static_cast<double>(run.task_totals.tasks_started) / wall;
    }
    std::cout << "  " << rec.name << ": " << wall << " s wall, "
              << run.task_totals.tasks_started << " tasks ("
              << rec.items_per_second << " tasks/s), makespan "
              << run.makespan << " sim-s\n";
    if (pass == 1) {
      std::cout << "    slots_failed " << run.recovery.slots_failed
                << ", tasks_failed " << run.recovery.tasks_failed
                << ", requeued " << run.recovery.tasks_requeued
                << ", masked " << run.recovery.failures_masked
                << ", stages_invalidated " << run.recovery.stages_invalidated
                << ", reservations_broken "
                << run.recovery.reservations_broken << ", dead "
                << run.dead_time << " slot-s\n";
    }
    report.add(std::move(rec));
  }

  std::cout << "  peak RSS: " << peak_rss_mb() << " MiB\n";
  if (!args.bench_json.empty()) report.write_file(args.bench_json);
  return 0;
}
