// Perf smoke at 10x the Fig. 15 cluster: 10k nodes / 40k slots / ~1M tasks.
//
// Fig. 15 stops at 1000 nodes; this bench is the scale target the sharded
// engine core exists for (DESIGN.md §13).  One trace-shaped contended cell
// runs three times: without SSR, with SSR, and with SSR on the sharded
// calendar-queue engine (calendar backend, 4 shard lanes) — the last pass
// pins the parallel hot path so a regression there cannot hide behind the
// sequential heap numbers.  All passes honor --queue/--shards except the
// final one, whose engine configuration is the point of the record.
//
// Output is bit-identical across backends and shard counts (the ssr and
// ssr_cal4 passes assert this on task totals), so the records differ only
// in wall time.  Default --scale is 1: the whole binary is a few seconds
// of wall time on CI-class hardware, which is exactly what the perf-smoke
// job diffs against bench/baselines/BENCH_sched.json.
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "ssr/exp/bench_report.h"
#include "ssr/exp/scenario.h"
#include "ssr/workload/sqlbench.h"
#include "ssr/workload/tracegen.h"

namespace {

struct Pass {
  const char* name;
  bool ssr;
  bool force_sharded;  ///< calendar backend + 4 shard lanes, ignoring args
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ssr;
  BenchArgs args = BenchArgs::parse(argc, argv);

  const ClusterSpec cluster{.nodes = args.scaled(10000), .slots_per_node = 4};
  const std::uint32_t bg_jobs = args.scaled(12000);
  const SimDuration window = 3600.0;
  std::cout << "10k-node sched smoke — " << cluster.nodes << " nodes / "
            << cluster.total_slots() << " slots, " << bg_jobs
            << " background jobs (scale 1/" << args.scale << ")\n";

  constexpr Pass kPasses[] = {
      {"sched_10k/nossr", false, false},
      {"sched_10k/ssr", true, false},
      {"sched_10k/ssr_cal4", true, true},
  };

  BenchReporter report;
  std::uint64_t ssr_tasks = 0;
  for (const Pass& pass : kPasses) {
    RunOptions o;
    o.sched.locality_wait = 3.0;
    o.sched.locality_slowdown = 5.0;
    args.apply_to(o.sched);
    if (pass.force_sharded) {
      o.sched.event_queue_backend = EventQueueBackend::kCalendar;
      o.sched.event_shards = 4;
    }
    o.seed = args.seed;
    if (pass.ssr) {
      o.ssr = SsrConfig{};
      o.ssr->min_reserving_priority = 1;
    }

    TraceGenConfig bg;
    bg.num_jobs = bg_jobs;
    bg.window = window;
    bg.seed = args.seed + 42;
    std::vector<JobSpec> jobs = make_background_jobs(bg);
    for (std::uint32_t q = 0; q < 40; ++q) {
      SqlJobParams p;
      p.query_index = q % 20;
      p.base_parallelism = 20;
      p.priority = 10;
      p.submit_time = window * 0.2 + 15.0 * q;
      jobs.push_back(make_sql_query(p));
    }

    const WallTimer timer;
    const RunResult run = run_scenario(cluster, std::move(jobs), o);
    const double wall = timer.elapsed_seconds();

    // The sharded pass must simulate the exact same work as the sequential
    // ssr pass — shard count is a pure performance knob.
    if (pass.ssr && !pass.force_sharded) {
      ssr_tasks = run.task_totals.tasks_started;
    } else if (pass.force_sharded &&
               run.task_totals.tasks_started != ssr_tasks) {
      std::cerr << "FATAL: sharded pass diverged from sequential ssr pass ("
                << run.task_totals.tasks_started << " vs " << ssr_tasks
                << " tasks)\n";
      return 1;
    }

    BenchRecord rec;
    rec.name = pass.name;
    rec.wall_seconds = wall;
    if (wall > 0.0) {
      rec.items_per_second =
          static_cast<double>(run.task_totals.tasks_started) / wall;
    }
    std::cout << "  " << rec.name << ": " << wall << " s wall, "
              << run.task_totals.tasks_started << " tasks ("
              << rec.items_per_second << " tasks/s), makespan " << run.makespan
              << " sim-s\n";
    report.add(std::move(rec));
  }

  std::cout << "  peak RSS: " << peak_rss_mb() << " MiB\n";
  if (!args.bench_json.empty()) report.write_file(args.bench_json);
  return 0;
}
