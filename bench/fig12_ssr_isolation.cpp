// Fig. 12 [Cluster]: slowdown of each foreground job with and without
// speculative slot reservation, under (a) the standard background and
// (b) background with doubled task durations.
//
// Paper setup: 50-node EC2 cluster, foreground = SparkBench KMeans / SVM /
// PageRank at high priority, background = 100 Google-trace jobs at low
// priority.  Claim: with SSR every foreground job sees < 10% slowdown.
#include <iostream>

#include "ssr/common/table.h"
#include "ssr/exp/scenario.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);

  const ClusterSpec cluster{.nodes = 50, .slots_per_node = 2};
  TraceGenConfig bg;
  bg.num_jobs = args.scaled(100);
  bg.window = 3600.0 / args.scale;
  bg.seed = args.seed + 1000;
  const SimTime fg_submit = bg.window * 0.25;

  struct App {
    const char* name;
    JobSpec (*make)(std::uint32_t, int, SimTime);
  };
  const App apps[] = {{"kmeans", make_kmeans},
                      {"svm", make_svm},
                      {"pagerank", make_pagerank}};

  std::cout << "Fig. 12: foreground slowdown with / without speculative "
               "slot reservation (50 nodes / 100 slots)\n\n";
  TablePrinter table({"background", "job", "slowdown w/o SSR",
                      "slowdown w/ SSR"});
  for (const double bg_mult : {1.0, 2.0}) {
    for (const App& app : apps) {
      RunOptions base;
      base.seed = args.seed;
      RunOptions with_ssr = base;
      with_ssr.ssr = SsrConfig{};  // P = 1: strict isolation
      with_ssr.ssr->min_reserving_priority = 1;  // foreground class only

      const double alone = alone_jct(cluster, app.make(20, 10, 0.0), base);
      double slow[2];
      for (int i = 0; i < 2; ++i) {
        TraceGenConfig cfg = bg;
        cfg.runtime_multiplier = bg_mult;
        std::vector<JobSpec> jobs = make_background_jobs(cfg);
        jobs.push_back(app.make(20, 10, fg_submit));
        const RunOptions& o = i == 0 ? base : with_ssr;
        const RunResult r = run_scenario(cluster, std::move(jobs), o);
        slow[i] = slowdown(r.jct_of(app.name), alone);
      }
      table.add_row({bg_mult == 1.0 ? "standard" : "2x tasks", app.name,
                     TablePrinter::num(slow[0], 2),
                     TablePrinter::num(slow[1], 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: SSR pins every foreground job near 1.0x\n"
               "(the paper reports < 10% slowdown) in both settings, while\n"
               "the baseline suffers multi-x slowdowns that grow with\n"
               "background task duration.\n";
  return 0;
}
