// Fig. 12 [Cluster]: slowdown of each foreground job with and without
// speculative slot reservation, under (a) the standard background and
// (b) background with doubled task durations.
//
// Paper setup: 50-node EC2 cluster, foreground = SparkBench KMeans / SVM /
// PageRank at high priority, background = 100 Google-trace jobs at low
// priority.  Claim: with SSR every foreground job sees < 10% slowdown.
//
// The (background x app x policy) grid runs in parallel on the sweep pool.
#include <iostream>
#include <string>

#include "ssr/common/table.h"
#include "ssr/exp/policy_zoo.h"
#include "ssr/exp/sweep.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);

  const ClusterSpec cluster{
      .nodes = 50, .slots_per_node = 2, .node_slots = {}};
  TraceGenConfig bg;
  bg.num_jobs = args.scaled(100);
  bg.window = 3600.0 / args.scale;
  bg.seed = args.seed + 1000;
  const SimTime fg_submit = bg.window * 0.25;

  struct App {
    const char* name;
    JobSpec (*make)(std::uint32_t, int, SimTime);
  };
  const App apps[] = {{"kmeans", make_kmeans},
                      {"svm", make_svm},
                      {"pagerank", make_pagerank}};

  RunOptions base;
  base.seed = args.seed;
  // The second pass is SSR by default; `--policy NAME` swaps in any zoo
  // policy (exp/policy_zoo.h) so the fig12 harness doubles as a per-policy
  // isolation probe.  Without the flag the grid is byte-identical to the
  // pre-zoo bench.
  RunOptions with_ssr = base;
  std::string policy_label = "ssr";
  if (args.policy.empty()) {
    with_ssr.ssr = SsrConfig{};  // P = 1: strict isolation
    with_ssr.ssr->min_reserving_priority = 1;  // foreground class only
  } else {
    policy_label = args.policy;
    apply_zoo_policy(*parse_zoo_policy(args.policy), cluster, with_ssr);
  }

  // Grid layout: per app, one alone baseline (independent of the background
  // multiplier), then per bg_mult the [no-SSR, SSR] contended pair.
  std::vector<Trial> grid;
  for (const App& app : apps) {
    grid.push_back({cluster,
                    {app.make(20, 10, 0.0)},
                    base,
                    std::string(app.name) + "/alone",
                    {{"app", app.name}}});
  }
  const double bg_mults[] = {1.0, 2.0};
  for (const double bg_mult : bg_mults) {
    for (const App& app : apps) {
      TraceGenConfig cfg = bg;
      cfg.runtime_multiplier = bg_mult;
      std::vector<JobSpec> jobs = make_background_jobs(cfg);
      jobs.push_back(app.make(20, 10, fg_submit));
      for (int pass = 0; pass < 2; ++pass) {
        grid.push_back({cluster,
                        jobs,
                        pass == 0 ? base : with_ssr,
                        std::string(app.name) +
                            (bg_mult == 1.0 ? "/bg1x" : "/bg2x") +
                            (pass == 0 ? "/nossr" : "/ssr"),
                        {{"app", app.name},
                         {"background", bg_mult == 1.0 ? "1x" : "2x"},
                         {"policy", pass == 0 ? "none" : policy_label}}});
      }
    }
  }

  const SweepRunner runner(sweep_options(args));
  const std::vector<TrialResult> results = runner.run(grid);

  std::cout << "Fig. 12: foreground slowdown with / without speculative "
               "slot reservation (50 nodes / 100 slots)\n\n";
  const std::string column = args.policy.empty() ? "SSR" : policy_label;
  TablePrinter table({"background", "job", "slowdown w/o " + column,
                      "slowdown w/ " + column});
  const std::size_t num_apps = std::size(apps);
  for (std::size_t m = 0; m < std::size(bg_mults); ++m) {
    for (std::size_t a = 0; a < num_apps; ++a) {
      const double alone = results[a].run.jobs.front().jct;
      const std::size_t pair = num_apps + 2 * (m * num_apps + a);
      table.add_row(
          {bg_mults[m] == 1.0 ? "standard" : "2x tasks", apps[a].name,
           TablePrinter::num(
               slowdown(results[pair].run.jct_of(apps[a].name), alone), 2),
           TablePrinter::num(
               slowdown(results[pair + 1].run.jct_of(apps[a].name), alone),
               2)});
    }
  }
  table.print(std::cout);
  emit_sweep_outputs(args, results);
  if (args.policy.empty()) {
    std::cout << "\nShape check: SSR pins every foreground job near 1.0x\n"
                 "(the paper reports < 10% slowdown) in both settings, while\n"
                 "the baseline suffers multi-x slowdowns that grow with\n"
                 "background task duration.\n";
  }
  return 0;
}
