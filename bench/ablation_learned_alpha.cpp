// Ablation: operator-configured vs learned tail index for the reservation
// deadline (Sec. III-B recurring jobs + Sec. IV-B deadline model).
//
// A recurring foreground job with a true Pareto tail alpha = 1.6 runs many
// times against background contention at isolation target P = 0.6.  The
// deadline D = t_m (1 - P^{1/N})^{-1/alpha} depends on alpha:
//   * overestimating alpha (lighter tail than reality) shortens D ->
//     reservations expire before stragglers finish -> isolation broken;
//   * underestimating alpha lengthens D -> more reserved-idle waste;
//   * learning alpha from previous recurrences (Hill estimator) converges
//     to the sweet spot automatically.
//
// The four alpha-source cases and the twelve per-recurrence alone baselines
// run as one parallel sweep; recurrences are paired with their baselines by
// submission order (the background jobs precede them in the job list).
#include <iostream>
#include <memory>

#include "ssr/common/stats.h"
#include "ssr/common/table.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/exp/sweep.h"
#include "ssr/workload/adjust.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

namespace {

using namespace ssr;

constexpr double kTrueAlpha = 1.6;
constexpr int kRecurrences = 12;

}  // namespace

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const ClusterSpec cluster{.nodes = 25, .slots_per_node = 2};  // 50 slots

  std::cout << "Ablation: configured vs learned tail index (true alpha = "
            << kTrueAlpha << ", P = 0.6, " << kRecurrences
            << " recurrences)\n\n";

  struct Case {
    const char* label;
    double configured;
    bool learn;
  };
  const Case cases[] = {
      {"configured 3.5 (too light)", 3.5, false},
      {"configured 1.6 (oracle)", 1.6, false},
      {"configured 1.2 (too heavy)", 1.2, false},
      {"learned (Hill, starts at 3.5)", 3.5, true},
  };

  // The recurring job: KMeans shape with a true Pareto-1.6 latency tail.
  // Durations are materialized by pareto_adjust, so the same specs serve
  // both the contended runs and the alone baselines.
  Rng adjust_rng(args.seed + 77);
  std::vector<JobSpec> recurrences;
  for (int r = 0; r < kRecurrences; ++r) {
    JobSpec job = pareto_adjust(make_kmeans(16, 10, 0.0), kTrueAlpha,
                                adjust_rng);
    job.submit_time = 250.0 * (r + 1);
    recurrences.push_back(std::move(job));
  }

  TraceGenConfig bg;
  bg.num_jobs = 120;
  bg.window = 3600.0;
  bg.seed = args.seed + 5;
  std::vector<JobSpec> contended = make_background_jobs(bg);
  const std::size_t bg_count = contended.size();
  for (const JobSpec& job : recurrences) contended.push_back(job);

  // Grid layout: [12 alone baselines, one contended trial per case].
  RunOptions base;
  base.seed = args.seed;
  std::vector<Trial> grid;
  for (int r = 0; r < kRecurrences; ++r) {
    JobSpec alone_copy = recurrences[r];
    alone_copy.submit_time = 0.0;
    grid.push_back({cluster,
                    {std::move(alone_copy)},
                    base,
                    "alone",
                    {{"recurrence", std::to_string(r)}}});
  }
  for (const Case& c : cases) {
    SsrConfig cfg;
    cfg.min_reserving_priority = 1;
    cfg.isolation_p = 0.6;
    cfg.pareto_alpha = c.configured;
    cfg.learn_tail_index = c.learn;
    cfg.tail_min_samples = 100;
    RunOptions o = base;
    o.hook_factory = [cfg] { return std::make_unique<ReservationManager>(cfg); };
    grid.push_back({cluster, contended, o, c.label, {{"case", c.label}}});
  }

  const SweepRunner runner(sweep_options(args));
  const std::vector<TrialResult> results = runner.run(grid);

  TablePrinter table({"alpha source", "mean fg slowdown",
                      "reserved-idle (slot-s)", "expired reservations"});
  for (std::size_t ci = 0; ci < std::size(cases); ++ci) {
    const RunResult& run = results[kRecurrences + ci].run;
    OnlineStats slow;
    for (int r = 0; r < kRecurrences; ++r) {
      const double alone = results[r].run.jobs.front().jct;
      slow.add(run.jobs[bg_count + r].jct / alone);
    }
    table.add_row({cases[ci].label, TablePrinter::num(slow.mean(), 3),
                   TablePrinter::num(run.reserved_idle_time, 0),
                   std::to_string(run.reservations_expired)});
  }
  table.print(std::cout);
  emit_sweep_outputs(args, results);
  std::cout << "\nReading: a too-light configured tail expires reservations\n"
               "early (worse isolation); a too-heavy one over-holds slots;\n"
               "the learned estimate converges toward the oracle's balance\n"
               "after the first recurrences.\n";
  return 0;
}
