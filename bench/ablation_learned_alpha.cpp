// Ablation: operator-configured vs learned tail index for the reservation
// deadline (Sec. III-B recurring jobs + Sec. IV-B deadline model).
//
// A recurring foreground job with a true Pareto tail alpha = 1.6 runs many
// times against background contention at isolation target P = 0.6.  The
// deadline D = t_m (1 - P^{1/N})^{-1/alpha} depends on alpha:
//   * overestimating alpha (lighter tail than reality) shortens D ->
//     reservations expire before stragglers finish -> isolation broken;
//   * underestimating alpha lengthens D -> more reserved-idle waste;
//   * learning alpha from previous recurrences (Hill estimator) converges
//     to the sweet spot automatically.
#include <iostream>
#include <memory>

#include "ssr/common/stats.h"
#include "ssr/common/table.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/exp/scenario.h"
#include "ssr/metrics/collectors.h"
#include "ssr/sched/engine.h"
#include "ssr/workload/adjust.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

namespace {

using namespace ssr;

constexpr double kTrueAlpha = 1.6;
constexpr int kRecurrences = 12;

struct Outcome {
  double mean_slowdown = 0.0;
  double reserved_idle = 0.0;
  std::uint64_t expired = 0;
};

Outcome run(SsrConfig cfg, std::uint64_t seed) {
  Engine engine(SchedConfig{}, 25, 2, seed);  // 50 slots
  auto manager = std::make_unique<ReservationManager>(cfg);
  ReservationManager* mgr = manager.get();
  engine.set_reservation_hook(std::move(manager));
  JctCollector jcts;
  engine.add_observer(&jcts);

  TraceGenConfig bg;
  bg.num_jobs = 120;
  bg.window = 3600.0;
  bg.seed = seed + 5;
  for (JobSpec& spec : make_background_jobs(bg)) engine.submit(std::move(spec));

  // The recurring job: KMeans shape with a true Pareto-1.6 latency tail.
  Rng adjust_rng(seed + 77);
  std::vector<double> alone;
  for (int r = 0; r < kRecurrences; ++r) {
    JobSpec job = pareto_adjust(make_kmeans(16, 10, 0.0), kTrueAlpha,
                                adjust_rng);
    job.submit_time = 250.0 * (r + 1);
    // Alone baseline with identical explicit durations.
    JobSpec alone_copy = job;
    alone_copy.submit_time = 0.0;
    RunOptions o;
    o.seed = seed;
    alone.push_back(alone_jct(ClusterSpec{25, 2}, std::move(alone_copy), o));
    engine.submit(std::move(job));
  }
  engine.run();
  engine.cluster().settle(engine.sim().now());

  Outcome out;
  OnlineStats slow;
  std::size_t i = 0;
  for (const auto& rec : jcts.completions()) {
    if (rec.name == "kmeans") {
      // completions are in finish order == submit order for a recurring
      // chain spaced far apart; pair with the matching alone baseline.
      slow.add(rec.jct() / alone[std::min(i, alone.size() - 1)]);
      ++i;
    }
  }
  out.mean_slowdown = slow.mean();
  out.reserved_idle = engine.cluster().total_reserved_idle_time();
  out.expired = mgr->reservations_expired();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);

  std::cout << "Ablation: configured vs learned tail index (true alpha = "
            << kTrueAlpha << ", P = 0.6, " << kRecurrences
            << " recurrences)\n\n";
  TablePrinter table({"alpha source", "mean fg slowdown",
                      "reserved-idle (slot-s)", "expired reservations"});

  struct Case {
    const char* label;
    double configured;
    bool learn;
  };
  const Case cases[] = {
      {"configured 3.5 (too light)", 3.5, false},
      {"configured 1.6 (oracle)", 1.6, false},
      {"configured 1.2 (too heavy)", 1.2, false},
      {"learned (Hill, starts at 3.5)", 3.5, true},
  };
  for (const Case& c : cases) {
    SsrConfig cfg;
    cfg.min_reserving_priority = 1;
    cfg.isolation_p = 0.6;
    cfg.pareto_alpha = c.configured;
    cfg.learn_tail_index = c.learn;
    cfg.tail_min_samples = 100;
    const Outcome o = run(cfg, args.seed);
    table.add_row({c.label, TablePrinter::num(o.mean_slowdown, 3),
                   TablePrinter::num(o.reserved_idle, 0),
                   std::to_string(o.expired)});
  }
  table.print(std::cout);
  std::cout << "\nReading: a too-light configured tail expires reservations\n"
               "early (worse isolation); a too-heavy one over-holds slots;\n"
               "the learned estimate converges toward the oracle's balance\n"
               "after the first recurrences.\n";
  return 0;
}
