// Fig. 13 [Cluster]: two synthetic jobs under the Spark Fair Scheduler,
// without and with speculative slot reservation.
//
// Job-1 is a workflow of 3 pipelined phases; job-2 is map-only (no
// dependencies).  Ideally each holds 50% of the cluster.  Without SSR job-1
// loses all its slots to job-2 at every barrier; with SSR it retains its
// fair share throughout.
#include <iostream>

#include "ssr/common/table.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/exp/scenario.h"
#include "ssr/metrics/collectors.h"
#include "ssr/sched/engine.h"

namespace {

using namespace ssr;

void run_case(bool with_ssr, std::uint64_t seed) {
  SchedConfig sched;
  sched.policy = SchedulingPolicy::Fair;
  Engine engine(sched, 8, 2, seed);  // 16 slots
  if (with_ssr) {
    engine.set_reservation_hook(
        std::make_unique<ReservationManager>(SsrConfig{}));
  }
  RunningTasksSeries series;
  engine.add_observer(&series);

  // Job-1: 3 pipelined phases of 8 tasks (half the cluster), skewed in-phase
  // durations so barriers expose slots.  Job-2: a long stream of independent
  // map tasks.
  const JobId wf = engine.submit(JobBuilder("workflow")
                                     .stage(8, uniform_duration(8.0, 24.0))
                                     .stage(8, uniform_duration(8.0, 24.0))
                                     .stage(8, uniform_duration(8.0, 24.0))
                                     .build());
  const JobId mo = engine.submit(
      JobBuilder("maponly").stage(160, uniform_duration(8.0, 24.0)).build());
  engine.run();

  std::cout << (with_ssr ? "(b) WITH speculative slot reservation"
                         : "(a) WITHOUT speculative slot reservation")
            << "\n    workflow JCT = " << engine.jct(wf)
            << " s, map-only JCT = " << engine.jct(mo) << " s\n";
  const SimTime horizon = engine.job_finish_time(wf);
  AsciiSeries plot("time (s)", "# running workflow tasks (fair share = 8)",
                   32);
  for (const auto& [t, v] : series.sampled(wf, horizon / 30.0, horizon)) {
    plot.add_point(t, v);
  }
  plot.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  std::cout << "Fig. 13: fair scheduler, 3-phase workflow vs map-only job "
               "(16 slots)\n\n";
  run_case(false, args.seed);
  run_case(true, args.seed);
  std::cout << "Shape check: without SSR the workflow's allocation collapses\n"
               "to ~0 between phases and ramps back slowly; with SSR it\n"
               "holds its ~8-slot fair share through every barrier, and its\n"
               "JCT shrinks accordingly (paper's Fig. 13).\n";
  return 0;
}
