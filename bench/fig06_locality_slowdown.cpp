// Fig. 6 [Cluster]: task slowdown without data locality.
//
// The paper samples phases of the three SparkBench apps and compares task
// durations at locality level ANY against PROCESS_LOCAL, finding slowdowns
// of up to two orders of magnitude (remote fetch + cold JVM).  Here the
// slowdown factor is a simulator parameter (5x default, 10x stress — the
// same values the paper's own simulation uses), so this bench validates it
// end to end: it runs each app under heavy contention (where some downstream
// tasks are forced onto remote slots after the locality wait), splits the
// executed task attempts by locality, and reports the measured per-stage
// duration ratio.
#include <iostream>
#include <string>

#include "ssr/common/stats.h"
#include "ssr/common/table.h"
#include "ssr/exp/scenario.h"
#include "ssr/sched/engine.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

namespace {

using namespace ssr;

struct LocalityMeasurement {
  double mean_ratio = 0.0;   ///< mean over stages of remote/local duration
  double max_ratio = 0.0;    ///< worst stage
  double remote_fraction = 0.0;
};

LocalityMeasurement measure(const std::string& app, double factor,
                            std::uint64_t seed) {
  SchedConfig sched;
  sched.locality_slowdown = factor;
  Engine engine(sched, 20, 2, seed);

  TraceGenConfig bg;
  bg.num_jobs = 120;
  bg.window = 900.0;
  bg.seed = seed + 7;
  for (JobSpec& spec : make_background_jobs(bg)) engine.submit(std::move(spec));

  JobSpec fg = app == "kmeans" ? make_kmeans(20, 10, 200.0)
               : app == "svm"  ? make_svm(20, 10, 200.0)
                               : make_pagerank(20, 10, 200.0);
  const std::uint32_t stages = static_cast<std::uint32_t>(fg.stages.size());
  const JobId fg_id = engine.submit(std::move(fg));
  engine.run();

  LocalityMeasurement out;
  std::size_t rated_stages = 0, local_n = 0, remote_n = 0;
  for (std::uint32_t s = 0; s < stages; ++s) {
    const StageRuntime* st = engine.stage_runtime(StageId{fg_id, s});
    OnlineStats local, remote;
    for (std::uint32_t i = 0; i < st->parallelism(); ++i) {
      const TaskAttempt& a = st->original(i);
      if (a.state != AttemptState::Finished) continue;
      (a.local ? local : remote).add(a.finish_time - a.start_time);
    }
    local_n += local.count();
    remote_n += remote.count();
    if (local.count() > 0 && remote.count() > 0) {
      const double ratio = remote.mean() / local.mean();
      out.mean_ratio += ratio;
      out.max_ratio = std::max(out.max_ratio, ratio);
      ++rated_stages;
    }
  }
  if (rated_stages > 0) out.mean_ratio /= static_cast<double>(rated_stages);
  if (local_n + remote_n > 0) {
    out.remote_fraction = static_cast<double>(remote_n) /
                          static_cast<double>(local_n + remote_n);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  std::cout << "Fig. 6: measured duration ratio of remote vs local task "
               "attempts (contended run, no SSR)\n\n";
  TablePrinter table({"app", "factor", "remote task share",
                      "mean remote/local ratio", "max stage ratio"});
  for (const char* app : {"kmeans", "svm", "pagerank"}) {
    for (const double factor : {5.0, 10.0}) {
      const LocalityMeasurement m = measure(app, factor, args.seed);
      table.add_row({app, TablePrinter::num(factor, 0),
                     TablePrinter::num(m.remote_fraction, 2),
                     TablePrinter::num(m.mean_ratio, 2),
                     TablePrinter::num(m.max_ratio, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: tasks that lose locality run ~factor-x\n"
               "slower end to end (the paper measured up to two orders of\n"
               "magnitude on EC2 and simulated 5x / 10x, as modeled here).\n";
  return 0;
}
