// Fig. 14 [Cluster]: measured trade-off between service isolation and
// utilization.
//
// Each foreground MLlib job runs against the background workload at varying
// isolation requirements P (the Eq. 2 knob).  P = 1 is the baseline with
// maximal utilization loss from reservations.  For each P we report:
//   * the foreground job's slowdown (isolation quality), and
//   * the utilization improvement — the percentage reduction of
//     reserved-idle slot time relative to the P = 1 baseline.
// Each data point averages several seeds (the paper averages 10 runs).
#include <iostream>
#include <map>
#include <vector>

#include "ssr/common/stats.h"
#include "ssr/common/table.h"
#include "ssr/exp/scenario.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const int kRuns = 5;

  const ClusterSpec cluster{.nodes = 50, .slots_per_node = 2};
  struct App {
    const char* name;
    JobSpec (*make)(std::uint32_t, int, SimTime);
  };
  const App apps[] = {{"kmeans", make_kmeans},
                      {"svm", make_svm},
                      {"pagerank", make_pagerank}};
  const std::vector<double> ps = {0.05, 0.2, 0.4, 0.6, 0.8, 1.0};

  std::cout << "Fig. 14: measured isolation-utilization trade-off "
               "(mean over " << kRuns << " seeded runs)\n\n";
  TablePrinter table({"job", "P", "slowdown",
                      "utilization improvement vs P=1 (%)"});

  for (const App& app : apps) {
    // measurements[p][seed] = {slowdown, reserved idle}
    std::map<double, std::vector<std::pair<double, double>>> measurements;
    for (int r = 0; r < kRuns; ++r) {
      RunOptions alone_opts;
      alone_opts.seed = args.seed + static_cast<std::uint64_t>(r);
      const double alone =
          alone_jct(cluster, app.make(20, 10, 0.0), alone_opts);
      for (const double p : ps) {
        RunOptions o = alone_opts;
        o.ssr = SsrConfig{};
        o.ssr->min_reserving_priority = 1;  // reserve for the foreground class only
        o.ssr->isolation_p = p;
        TraceGenConfig bg;
        bg.num_jobs = args.scaled(100);
        bg.window = 3600.0 / args.scale;
        bg.seed = o.seed + 1000;
        std::vector<JobSpec> jobs = make_background_jobs(bg);
        jobs.push_back(app.make(20, 10, bg.window * 0.25));
        const RunResult res = run_scenario(cluster, std::move(jobs), o);
        measurements[p].emplace_back(slowdown(res.jct_of(app.name), alone),
                                     res.reserved_idle_time);
      }
    }
    for (const double p : ps) {
      OnlineStats slow, improvement;
      for (int r = 0; r < kRuns; ++r) {
        slow.add(measurements[p][r].first);
        const double idle_p1 = measurements[1.0][r].second;
        if (idle_p1 > 0.0) {
          improvement.add(100.0 * (idle_p1 - measurements[p][r].second) /
                          idle_p1);
        }
      }
      table.add_row({app.name, TablePrinter::num(p, 2),
                     TablePrinter::num(slow.mean(), 3),
                     p == 1.0 ? "0.0 (baseline)"
                              : TablePrinter::num(improvement.mean(), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: higher P -> lower slowdown but smaller\n"
               "utilization improvement; the paper finds a smooth trade-off\n"
               "with a sweet spot around P = 0.4.\n";
  return 0;
}
