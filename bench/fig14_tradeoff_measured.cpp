// Fig. 14 [Cluster]: measured trade-off between service isolation and
// utilization.
//
// Each foreground MLlib job runs against the background workload at varying
// isolation requirements P (the Eq. 2 knob).  P = 1 is the baseline with
// maximal utilization loss from reservations.  For each P we report:
//   * the foreground job's slowdown (isolation quality), and
//   * the utilization improvement — the percentage reduction of
//     reserved-idle slot time relative to the P = 1 baseline.
// Each data point averages several seeds (the paper averages 10 runs).
//
// The (app x seed x P) grid — 105 trials — runs in parallel on the sweep
// pool; the summary pairs each P against the same-seed P = 1 baseline.
#include <iostream>
#include <vector>

#include "ssr/common/stats.h"
#include "ssr/common/table.h"
#include "ssr/exp/sweep.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const int kRuns = 5;

  const ClusterSpec cluster{.nodes = 50, .slots_per_node = 2};
  struct App {
    const char* name;
    JobSpec (*make)(std::uint32_t, int, SimTime);
  };
  const App apps[] = {{"kmeans", make_kmeans},
                      {"svm", make_svm},
                      {"pagerank", make_pagerank}};
  const std::vector<double> ps = {0.05, 0.2, 0.4, 0.6, 0.8, 1.0};

  // Grid layout: per app, per seeded rep: [alone, P = ps[0..5]].
  const std::size_t rep_stride = 1 + ps.size();
  std::vector<Trial> grid;
  for (const App& app : apps) {
    for (int r = 0; r < kRuns; ++r) {
      RunOptions alone_opts;
      alone_opts.seed = args.seed + static_cast<std::uint64_t>(r);
      grid.push_back({cluster,
                      {app.make(20, 10, 0.0)},
                      alone_opts,
                      std::string(app.name) + "/alone",
                      {{"app", app.name}, {"rep", std::to_string(r)}}});
      for (const double p : ps) {
        RunOptions o = alone_opts;
        o.ssr = SsrConfig{};
        o.ssr->min_reserving_priority = 1;  // foreground class only
        o.ssr->isolation_p = p;
        TraceGenConfig bg;
        bg.num_jobs = args.scaled(100);
        bg.window = 3600.0 / args.scale;
        bg.seed = o.seed + 1000;
        std::vector<JobSpec> jobs = make_background_jobs(bg);
        jobs.push_back(app.make(20, 10, bg.window * 0.25));
        grid.push_back({cluster,
                        std::move(jobs),
                        o,
                        std::string(app.name) + "/P=" + TablePrinter::num(p, 2),
                        {{"app", app.name},
                         {"rep", std::to_string(r)},
                         {"P", TablePrinter::num(p, 2)}}});
      }
    }
  }

  const SweepRunner runner(sweep_options(args));
  const std::vector<TrialResult> results = runner.run(grid);

  std::cout << "Fig. 14: measured isolation-utilization trade-off "
               "(mean over " << kRuns << " seeded runs)\n\n";
  TablePrinter table({"job", "P", "slowdown",
                      "utilization improvement vs P=1 (%)"});

  for (std::size_t a = 0; a < std::size(apps); ++a) {
    const std::size_t app_base = a * kRuns * rep_stride;
    for (std::size_t pi = 0; pi < ps.size(); ++pi) {
      OnlineStats slow, improvement;
      for (int r = 0; r < kRuns; ++r) {
        const std::size_t rep_base =
            app_base + static_cast<std::size_t>(r) * rep_stride;
        const double alone = results[rep_base].run.jobs.front().jct;
        const RunResult& run = results[rep_base + 1 + pi].run;
        slow.add(slowdown(run.jct_of(apps[a].name), alone));
        // ps.back() == 1.0 is the same-seed baseline for the improvement.
        const double idle_p1 =
            results[rep_base + rep_stride - 1].run.reserved_idle_time;
        if (idle_p1 > 0.0) {
          improvement.add(100.0 * (idle_p1 - run.reserved_idle_time) /
                          idle_p1);
        }
      }
      table.add_row({apps[a].name, TablePrinter::num(ps[pi], 2),
                     TablePrinter::num(slow.mean(), 3),
                     ps[pi] == 1.0 ? "0.0 (baseline)"
                                   : TablePrinter::num(improvement.mean(), 1)});
    }
  }
  table.print(std::cout);
  emit_sweep_outputs(args, results);
  std::cout << "\nShape check: higher P -> lower slowdown but smaller\n"
               "utilization improvement; the paper finds a smooth trade-off\n"
               "with a sweet spot around P = 0.4.\n";
  return 0;
}
