// Perf smoke: wall-clock cost of one Fig. 15-shaped contended run.
//
// Unlike fig15_large_scale_slowdown (which sweeps the full 18-cell grid to
// reproduce the figure), this binary runs a single setting/suite cell —
// background trace + SQL foreground — once without and once with SSR, and
// reports how long the *simulator itself* took: wall seconds, simulated
// tasks per wall second, and peak RSS, via the shared BENCH_sched.json
// reporter.  The perf-smoke CI job diffs the result against the committed
// baseline to catch scheduling hot-path regressions.
//
// Default --scale is 8 to keep CI wall time in seconds; the acceptance runs
// in docs/EXPERIMENTS.md use --scale 1 (1000 nodes / 8000 background jobs).
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "ssr/exp/bench_report.h"
#include "ssr/exp/scenario.h"
#include "ssr/workload/sqlbench.h"
#include "ssr/workload/tracegen.h"

int main(int argc, char** argv) {
  using namespace ssr;
  BenchArgs args = BenchArgs::parse(argc, argv);
  if (!args.scale_set) args.scale = 8.0;

  const ClusterSpec cluster{.nodes = args.scaled(1000), .slots_per_node = 4};
  const std::uint32_t bg_jobs = args.scaled(8000);
  const SimDuration window = 3600.0;
  std::cout << "Fig. 15 perf smoke — " << cluster.nodes << " nodes / "
            << cluster.total_slots() << " slots, " << bg_jobs
            << " background jobs (scale 1/" << args.scale << ")\n";

  BenchReporter report;
  for (int pass = 0; pass < 2; ++pass) {
    RunOptions o;
    o.sched.locality_wait = 3.0;
    o.sched.locality_slowdown = 5.0;
    args.apply_to(o.sched);
    o.seed = args.seed;
    if (pass == 1) {
      o.ssr = SsrConfig{};
      o.ssr->min_reserving_priority = 1;
    }

    TraceGenConfig bg;
    bg.num_jobs = bg_jobs;
    bg.window = window;
    bg.seed = args.seed + 42;
    std::vector<JobSpec> jobs = make_background_jobs(bg);
    for (std::uint32_t q = 0; q < 20; ++q) {
      SqlJobParams p;
      p.query_index = q;
      p.base_parallelism = 20;
      p.priority = 10;
      p.submit_time = window * 0.2 + 30.0 * q;
      jobs.push_back(make_sql_query(p));
    }

    const WallTimer timer;
    const RunResult run = run_scenario(cluster, std::move(jobs), o);
    const double wall = timer.elapsed_seconds();

    BenchRecord rec;
    rec.name = std::string("fig15_smoke/") + (pass == 0 ? "nossr" : "ssr");
    rec.wall_seconds = wall;
    if (wall > 0.0) {
      rec.items_per_second =
          static_cast<double>(run.task_totals.tasks_started) / wall;
    }
    std::cout << "  " << rec.name << ": " << wall << " s wall, "
              << run.task_totals.tasks_started << " tasks ("
              << rec.items_per_second << " tasks/s), makespan "
              << run.makespan << " sim-s\n";
    report.add(std::move(rec));
  }

  std::cout << "  peak RSS: " << peak_rss_mb() << " MiB\n";
  if (!args.bench_json.empty()) report.write_file(args.bench_json);
  return 0;
}
