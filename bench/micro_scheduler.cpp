// Scheduler hot-path micro-benchmarks (google-benchmark).
//
// These quantify the costs that bound large-scale simulations: event queue
// churn, cluster slot transitions, reservation bookkeeping, and end-to-end
// simulated task throughput of the engine with and without SSR.
//
// Unlike the other micro_* conventions, this binary carries its own main():
// it accepts `--bench-json FILE` (stripped before google-benchmark sees the
// argv) and mirrors every measurement into the shared BENCH_sched.json
// report that the perf-smoke CI job diffs against its committed baseline.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ssr/core/reservation_manager.h"
#include "ssr/exp/bench_report.h"
#include "ssr/sched/engine.h"
#include "ssr/sim/event_queue.h"

namespace {

using namespace ssr;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.push(static_cast<double>((i * 7919) % n), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_ClusterTaskTransitions(benchmark::State& state) {
  Cluster cluster(100, 4);
  double now = 0.0;
  std::uint32_t round = 0;
  for (auto _ : state) {
    // A full job generation per round: every slot runs a distinct task of
    // the round's job, finishes it (recording the resident output), and the
    // job is torn down — the same start/finish/forget cycle the engine
    // drives, so the resident-output bookkeeping stays on the measured path
    // without growing without bound.
    const JobId job{round++};
    for (std::uint32_t s = 0; s < cluster.num_slots(); ++s) {
      cluster.start_task(SlotId{s}, TaskId{StageId{job, 0}, s, 0}, now);
    }
    now += 1.0;
    for (std::uint32_t s = 0; s < cluster.num_slots(); ++s) {
      cluster.finish_task(SlotId{s}, now);
    }
    now += 1.0;
    cluster.forget_job_outputs(job);
  }
  state.SetItemsProcessed(state.iterations() * cluster.num_slots() * 2);
}
BENCHMARK(BM_ClusterTaskTransitions);

void BM_ReservationCycle(benchmark::State& state) {
  Cluster cluster(100, 4);
  double now = 0.0;
  for (auto _ : state) {
    for (std::uint32_t s = 0; s < cluster.num_slots(); ++s) {
      Reservation r;
      r.job = JobId{1};
      r.priority = 5;
      cluster.reserve(SlotId{s}, r, now);
    }
    now += 1.0;
    for (std::uint32_t s = 0; s < cluster.num_slots(); ++s) {
      cluster.release_reservation(SlotId{s}, now);
    }
    now += 1.0;
  }
  state.SetItemsProcessed(state.iterations() * cluster.num_slots() * 2);
}
BENCHMARK(BM_ReservationCycle);

/// End-to-end engine throughput: many small chain jobs contending on a
/// medium cluster; reports simulated tasks per wall-clock second.
void BM_EngineThroughput(benchmark::State& state) {
  const bool with_ssr = state.range(0) != 0;
  std::uint64_t tasks = 0;
  for (auto _ : state) {
    Engine engine(SchedConfig{}, 50, 4, 1);
    if (with_ssr) {
      engine.set_reservation_hook(
          std::make_unique<ReservationManager>(SsrConfig{}));
    }
    for (int j = 0; j < 200; ++j) {
      engine.submit(JobBuilder("job" + std::to_string(j))
                        .priority(j % 3)
                        .submit_at(j * 0.5)
                        .stage(8, uniform_duration(1.0, 3.0))
                        .stage(8, uniform_duration(1.0, 3.0))
                        .stage(4, uniform_duration(1.0, 3.0))
                        .build());
    }
    engine.run();
    tasks += 200 * 20;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tasks));
  state.SetLabel(with_ssr ? "with-ssr" : "baseline");
}
BENCHMARK(BM_EngineThroughput)->Arg(0)->Arg(1);

/// Console reporter that additionally mirrors per-benchmark measurements
/// into the shared BENCH_sched.json report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(BenchReporter& out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      BenchRecord rec;
      rec.name = run.benchmark_name();
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) rec.items_per_second = it->second;
      rec.wall_seconds = run.real_accumulated_time;
      out_.add(std::move(rec));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

 private:
  BenchReporter& out_;
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off --bench-json before google-benchmark parses the argv (it
  // rejects flags it does not know).
  std::string bench_json;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      bench_json = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  BenchReporter report;
  CapturingReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!bench_json.empty()) report.write_file(bench_json);
  benchmark::Shutdown();
  return 0;
}
