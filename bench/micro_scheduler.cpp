// Scheduler hot-path micro-benchmarks (google-benchmark).
//
// These quantify the costs that bound large-scale simulations: event queue
// churn, cluster slot transitions, reservation bookkeeping, and end-to-end
// simulated task throughput of the engine with and without SSR.
#include <benchmark/benchmark.h>

#include <memory>

#include "ssr/core/reservation_manager.h"
#include "ssr/sched/engine.h"
#include "ssr/sim/event_queue.h"

namespace {

using namespace ssr;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.push(static_cast<double>((i * 7919) % n), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_ClusterTaskTransitions(benchmark::State& state) {
  Cluster cluster(100, 4);
  double now = 0.0;
  const TaskId task{StageId{JobId{0}, 0}, 0, 0};
  for (auto _ : state) {
    for (std::uint32_t s = 0; s < cluster.num_slots(); ++s) {
      cluster.start_task(SlotId{s}, task, now);
    }
    now += 1.0;
    for (std::uint32_t s = 0; s < cluster.num_slots(); ++s) {
      cluster.finish_task(SlotId{s}, now);
    }
    now += 1.0;
  }
  state.SetItemsProcessed(state.iterations() * cluster.num_slots() * 2);
}
BENCHMARK(BM_ClusterTaskTransitions);

void BM_ReservationCycle(benchmark::State& state) {
  Cluster cluster(100, 4);
  double now = 0.0;
  for (auto _ : state) {
    for (std::uint32_t s = 0; s < cluster.num_slots(); ++s) {
      Reservation r;
      r.job = JobId{1};
      r.priority = 5;
      cluster.reserve(SlotId{s}, r, now);
    }
    now += 1.0;
    for (std::uint32_t s = 0; s < cluster.num_slots(); ++s) {
      cluster.release_reservation(SlotId{s}, now);
    }
    now += 1.0;
  }
  state.SetItemsProcessed(state.iterations() * cluster.num_slots() * 2);
}
BENCHMARK(BM_ReservationCycle);

/// End-to-end engine throughput: many small chain jobs contending on a
/// medium cluster; reports simulated tasks per wall-clock second.
void BM_EngineThroughput(benchmark::State& state) {
  const bool with_ssr = state.range(0) != 0;
  std::uint64_t tasks = 0;
  for (auto _ : state) {
    Engine engine(SchedConfig{}, 50, 4, 1);
    if (with_ssr) {
      engine.set_reservation_hook(
          std::make_unique<ReservationManager>(SsrConfig{}));
    }
    for (int j = 0; j < 200; ++j) {
      engine.submit(JobBuilder("job" + std::to_string(j))
                        .priority(j % 3)
                        .submit_at(j * 0.5)
                        .stage(8, uniform_duration(1.0, 3.0))
                        .stage(8, uniform_duration(1.0, 3.0))
                        .stage(4, uniform_duration(1.0, 3.0))
                        .build());
    }
    engine.run();
    tasks += 200 * 20;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tasks));
  state.SetLabel(with_ssr ? "with-ssr" : "baseline");
}
BENCHMARK(BM_EngineThroughput)->Arg(0)->Arg(1);

}  // namespace
