// Ablation (Sec. III-A): speculative slot reservation vs the two naive
// strategies production systems offer — static carve-outs (Mesos/Borg) and
// timeout-based holds (Spark dynamic allocation) — and the no-reservation
// baseline.
//
// One foreground KMeans job contends with the Google-trace background on a
// 50-node cluster.  For each policy we report the foreground slowdown
// (isolation), the reserved-idle slot time (utilization cost), and the mean
// background JCT (collateral damage).  The paper's argument: static
// reservation either under-isolates or over-wastes depending on the guess;
// timeout holds waste blindly; SSR gets isolation at the lowest cost.
#include <iostream>
#include <memory>

#include "ssr/common/table.h"
#include "ssr/core/naive_policies.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/exp/scenario.h"
#include "ssr/metrics/collectors.h"
#include "ssr/sched/engine.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

namespace {

using namespace ssr;

struct PolicyResult {
  double fg_slowdown = 0.0;
  double reserved_idle = 0.0;
  double bg_mean_jct = 0.0;
};

template <typename HookFactory>
PolicyResult run_policy(HookFactory make_hook, double fg_alone,
                        std::uint64_t seed) {
  Engine engine(SchedConfig{}, 50, 2, seed);
  std::unique_ptr<ReservationHook> hook = make_hook();
  if (hook != nullptr) engine.set_reservation_hook(std::move(hook));
  JctCollector jcts;
  engine.add_observer(&jcts);

  TraceGenConfig bg;
  bg.num_jobs = 100;
  bg.window = 1800.0;
  bg.seed = seed + 1000;
  for (JobSpec& spec : make_background_jobs(bg)) engine.submit(std::move(spec));
  const JobId fg = engine.submit(make_kmeans(20, 10, bg.window * 0.25));
  engine.run();
  engine.cluster().settle(engine.sim().now());

  PolicyResult out;
  out.fg_slowdown = engine.jct(fg) / fg_alone;
  out.reserved_idle = engine.cluster().total_reserved_idle_time();
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& rec : jcts.completions()) {
    if (rec.priority < 10) {
      acc += rec.jct();
      ++n;
    }
  }
  out.bg_mean_jct = n > 0 ? acc / static_cast<double>(n) : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);

  const ClusterSpec cluster{.nodes = 50, .slots_per_node = 2};
  RunOptions alone_opts;
  alone_opts.seed = args.seed;
  const double fg_alone =
      alone_jct(cluster, make_kmeans(20, 10, 0.0), alone_opts);

  std::cout << "Ablation: reservation policies (KMeans vs 100 background "
               "jobs, 100 slots)\n\n";
  TablePrinter table({"policy", "fg slowdown", "reserved-idle (slot-s)",
                      "bg mean JCT (s)"});

  struct Row {
    const char* label;
    std::function<std::unique_ptr<ReservationHook>()> make;
  };
  auto ssr_strict = [] {
    SsrConfig cfg;
    cfg.min_reserving_priority = 1;
    return std::make_unique<ReservationManager>(cfg);
  };
  auto ssr_relaxed = [] {
    SsrConfig cfg;
    cfg.min_reserving_priority = 1;
    cfg.isolation_p = 0.5;
    return std::make_unique<ReservationManager>(cfg);
  };
  const Row rows[] = {
      {"none (work conserving)",
       [] { return std::unique_ptr<ReservationHook>{}; }},
      {"static, 10 slots",
       [] { return std::make_unique<StaticReservationHook>(10, 10); }},
      {"static, 20 slots",
       [] { return std::make_unique<StaticReservationHook>(20, 10); }},
      {"static, 40 slots",
       [] { return std::make_unique<StaticReservationHook>(40, 10); }},
      {"timeout, 3 s",
       [] { return std::make_unique<TimeoutReservationHook>(3.0); }},
      {"timeout, 15 s",
       [] { return std::make_unique<TimeoutReservationHook>(15.0); }},
      {"SSR (P = 1.0)", ssr_strict},
      {"SSR (P = 0.5)", ssr_relaxed},
  };
  for (const Row& row : rows) {
    const PolicyResult r = run_policy(row.make, fg_alone, args.seed);
    table.add_row({row.label, TablePrinter::num(r.fg_slowdown, 2),
                   TablePrinter::num(r.reserved_idle, 0),
                   TablePrinter::num(r.bg_mean_jct, 1)});
  }
  table.print(std::cout);
  std::cout << "\nReading: static carve-outs trade a fixed utilization loss\n"
               "for partial isolation (and guess-dependent!); timeout holds\n"
               "waste slot time on every task completion; SSR reaches the\n"
               "lowest slowdown with targeted, DAG-aware reservations.\n";
  return 0;
}
