// Ablation (Sec. III-A): speculative slot reservation vs the two naive
// strategies production systems offer — static carve-outs (Mesos/Borg) and
// timeout-based holds (Spark dynamic allocation) — and the no-reservation
// baseline.
//
// One foreground KMeans job contends with the Google-trace background on a
// 50-node cluster.  For each policy we report the foreground slowdown
// (isolation), the reserved-idle slot time (utilization cost), and the mean
// background JCT (collateral damage).  The paper's argument: static
// reservation either under-isolates or over-wastes depending on the guess;
// timeout holds waste blindly; SSR gets isolation at the lowest cost.
//
// Each policy is a RunOptions::hook_factory trial; the whole ablation runs
// as one parallel sweep.
#include <iostream>
#include <memory>

#include "ssr/common/table.h"
#include "ssr/core/naive_policies.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/exp/sweep.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);

  const ClusterSpec cluster{.nodes = 50, .slots_per_node = 2};
  RunOptions base;
  base.seed = args.seed;

  std::cout << "Ablation: reservation policies (KMeans vs 100 background "
               "jobs, 100 slots)\n\n";

  struct Row {
    const char* label;
    std::function<std::unique_ptr<ReservationHook>()> make;
  };
  auto ssr_strict = [] {
    SsrConfig cfg;
    cfg.min_reserving_priority = 1;
    return std::make_unique<ReservationManager>(cfg);
  };
  auto ssr_relaxed = [] {
    SsrConfig cfg;
    cfg.min_reserving_priority = 1;
    cfg.isolation_p = 0.5;
    return std::make_unique<ReservationManager>(cfg);
  };
  const Row rows[] = {
      {"none (work conserving)",
       [] { return std::unique_ptr<ReservationHook>{}; }},
      {"static, 10 slots",
       [] { return std::make_unique<StaticReservationHook>(10, 10); }},
      {"static, 20 slots",
       [] { return std::make_unique<StaticReservationHook>(20, 10); }},
      {"static, 40 slots",
       [] { return std::make_unique<StaticReservationHook>(40, 10); }},
      {"timeout, 3 s",
       [] { return std::make_unique<TimeoutReservationHook>(3.0); }},
      {"timeout, 15 s",
       [] { return std::make_unique<TimeoutReservationHook>(15.0); }},
      {"SSR (P = 1.0)", ssr_strict},
      {"SSR (P = 0.5)", ssr_relaxed},
  };

  TraceGenConfig bg;
  bg.num_jobs = 100;
  bg.window = 1800.0;
  bg.seed = args.seed + 1000;
  std::vector<JobSpec> contended = make_background_jobs(bg);
  contended.push_back(make_kmeans(20, 10, bg.window * 0.25));

  // Grid layout: [alone, one contended trial per policy row].
  std::vector<Trial> grid;
  grid.push_back({cluster,
                  {make_kmeans(20, 10, 0.0)},
                  base,
                  "alone",
                  {{"policy", "alone"}}});
  for (const Row& row : rows) {
    RunOptions o = base;
    o.hook_factory = row.make;
    grid.push_back({cluster, contended, o, row.label, {{"policy", row.label}}});
  }

  const SweepRunner runner(sweep_options(args));
  const std::vector<TrialResult> results = runner.run(grid);
  const double fg_alone = results[0].run.jobs.front().jct;

  TablePrinter table({"policy", "fg slowdown", "reserved-idle (slot-s)",
                      "bg mean JCT (s)"});
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const RunResult& r = results[i + 1].run;
    double acc = 0.0;
    std::size_t n = 0;
    for (const JobResult& j : r.jobs) {
      if (j.priority < 10) {
        acc += j.jct;
        ++n;
      }
    }
    table.add_row(
        {rows[i].label,
         TablePrinter::num(r.jct_of("kmeans") / fg_alone, 2),
         TablePrinter::num(r.reserved_idle_time, 0),
         TablePrinter::num(n > 0 ? acc / static_cast<double>(n) : 0.0, 1)});
  }
  table.print(std::cout);
  emit_sweep_outputs(args, results);
  std::cout << "\nReading: static carve-outs trade a fixed utilization loss\n"
               "for partial isolation (and guess-dependent!); timeout holds\n"
               "waste slot time on every task completion; SSR reaches the\n"
               "lowest slowdown with targeted, DAG-aware reservations.\n";
  return 0;
}
