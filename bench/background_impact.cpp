// Sec. VI-B (text claim): speculative slot reservation for foreground jobs
// has little impact on the background workload — the paper measures < 0.1%
// average slowdown for background jobs in the 4000-slot simulation.
//
// We run the same mixed workload with the baseline scheduler and with SSR
// (the two trials run concurrently on the sweep pool), and compare the
// background jobs' mean JCT and total throughput.
#include <iostream>
#include <vector>

#include "ssr/common/stats.h"
#include "ssr/common/table.h"
#include "ssr/exp/sweep.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/tracegen.h"

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const ClusterSpec cluster{.nodes = args.scaled(500), .slots_per_node = 4};
  const SimDuration window = 3600.0 / args.scale;

  auto make_jobs = [&] {
    TraceGenConfig bg;
    bg.num_jobs = args.scaled(4000);
    bg.window = window;
    bg.seed = args.seed + 42;
    std::vector<JobSpec> jobs = make_background_jobs(bg);
    int i = 0;
    for (auto make : {make_kmeans, make_svm, make_pagerank}) {
      for (int rep = 0; rep < 4; ++rep) {
        jobs.push_back(make(20, 10, window * 0.2 + 40.0 * (4 * i + rep)));
      }
      ++i;
    }
    return jobs;
  };

  RunOptions base;
  base.seed = args.seed;
  RunOptions with_ssr = base;
  with_ssr.ssr = SsrConfig{};
  with_ssr.ssr->min_reserving_priority = 1;  // foreground class only

  std::vector<Trial> grid;
  grid.push_back(
      {cluster, make_jobs(), base, "baseline", {{"policy", "none"}}});
  grid.push_back({cluster, make_jobs(), with_ssr, "ssr", {{"policy", "ssr"}}});

  const SweepRunner runner(sweep_options(args));
  const std::vector<TrialResult> results = runner.run(grid);
  const RunResult& r_base = results[0].run;
  const RunResult& r_ssr = results[1].run;

  const double bg_base = r_base.mean_jct_with_prefix("bg-");
  const double bg_ssr = r_ssr.mean_jct_with_prefix("bg-");
  const double fg_base = r_base.mean_jct_with_prefix("kmeans");
  const double fg_ssr = r_ssr.mean_jct_with_prefix("kmeans");

  std::cout << "Background impact of speculative slot reservation ("
            << cluster.nodes * 4 << " slots, "
            << r_base.jobs.size() - 12 << " background jobs)\n\n";
  TablePrinter table({"metric", "baseline", "with SSR", "delta (%)"});
  table.add_row({"background mean JCT (s)", TablePrinter::num(bg_base, 1),
                 TablePrinter::num(bg_ssr, 1),
                 TablePrinter::num(100.0 * (bg_ssr - bg_base) / bg_base, 2)});
  table.add_row({"kmeans mean JCT (s)", TablePrinter::num(fg_base, 1),
                 TablePrinter::num(fg_ssr, 1),
                 TablePrinter::num(100.0 * (fg_ssr - fg_base) / fg_base, 2)});
  table.add_row({"cluster busy slot-seconds", TablePrinter::num(r_base.busy_time, 0),
                 TablePrinter::num(r_ssr.busy_time, 0),
                 TablePrinter::num(
                     100.0 * (r_ssr.busy_time - r_base.busy_time) / r_base.busy_time,
                     2)});
  table.add_row({"reserved-idle slot-seconds", "0",
                 TablePrinter::num(r_ssr.reserved_idle_time, 0), "-"});
  table.print(std::cout);
  emit_sweep_outputs(args, results);
  std::cout << "\nShape check: the background mean JCT moves by a tiny\n"
               "fraction (the paper reports < 0.1% in its 4000-slot sim)\n"
               "while the foreground improves dramatically.\n";
  return 0;
}
