// Fig. 1 [Cluster]: priority scheduling provides no service isolation.
//
// The paper runs KMeans (high priority) and SVM (low priority) on 4 m4.large
// instances (8 slots) with degree of parallelism 8, and finds KMeans slowed
// 3.9x when contending, despite its priority.  We reproduce the setup on the
// simulated cluster with the naive work-conserving scheduler (no SSR).
#include <iostream>

#include "ssr/common/table.h"
#include "ssr/exp/scenario.h"
#include "ssr/workload/adjust.h"
#include "ssr/workload/mlbench.h"

int main(int argc, char** argv) {
  using namespace ssr;
  const BenchArgs args = BenchArgs::parse(argc, argv);

  const ClusterSpec cluster{.nodes = 4, .slots_per_node = 2};
  RunOptions options;
  options.seed = args.seed;

  // SVM at low priority with prolonged tasks plays the paper's background
  // role; both jobs use parallelism 8 (= cluster slots), so every barrier of
  // KMeans exposes slots to SVM.
  auto kmeans = [&] { return make_kmeans(8, /*priority=*/10, 0.0); };
  auto svm = [&] {
    JobSpec s = make_svm(8, /*priority=*/0, 0.0);
    return prolong(std::move(s), 4.0);  // long SVM epochs amplify reclaim cost
  };

  const double kmeans_alone = alone_jct(cluster, kmeans(), options);
  const double svm_alone = alone_jct(cluster, svm(), options);

  const RunResult both =
      run_scenario(cluster, [&] {
        std::vector<JobSpec> jobs;
        jobs.push_back(kmeans());
        jobs.push_back(svm());
        return jobs;
      }(), options);

  std::cout << "Fig. 1: two MLlib jobs on a 4-node / 8-slot cluster, "
               "priority scheduler, no SSR\n\n";
  TablePrinter table({"job", "priority", "alone JCT (s)",
                      "contended JCT (s)", "slowdown"});
  table.add_row({"kmeans (hi-prio)", "10", TablePrinter::num(kmeans_alone, 1),
                 TablePrinter::num(both.jct_of("kmeans"), 1),
                 TablePrinter::num(slowdown(both.jct_of("kmeans"), kmeans_alone), 2)});
  table.add_row({"svm (lo-prio)", "0", TablePrinter::num(svm_alone, 1),
                 TablePrinter::num(both.jct_of("svm"), 1),
                 TablePrinter::num(slowdown(both.jct_of("svm"), svm_alone), 2)});
  table.print(std::cout);
  std::cout << "\nShape check: the high-priority KMeans job suffers a large\n"
               "slowdown (the paper measured 3.9x) because each barrier\n"
               "hands its slots to SVM's long tasks.\n";
  return 0;
}
