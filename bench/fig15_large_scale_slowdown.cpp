// Fig. 15 [Simulation]: average slowdown of foreground job suites in a
// large cluster, with and without speculative slot reservation.
//
// Paper setup: 1000 nodes / 4000 slots; locality wait 3 s; 5x task runtime
// without data locality (10x in the stress setting).  Foreground suites:
//   * SQL    — 20 TPC-DS queries,
//   * MLlib  — KMeans + SVM + PageRank traces,
//   * MLlib2 — the same with 2x degree of parallelism.
// Background: 8000 jobs synthesized from the Google/SQL/MLlib mixes.
// Three settings: (a) standard, (b) background task runtime 2x,
// (c) locality slowdown factor 2x (10x instead of 5x).
//
// Run with --scale N to divide the cluster and workload sizes (default 1 =
// paper scale); EXPERIMENTS.md records the scale used.  The full grid —
// per-job alone baselines plus the 18 contended cluster runs — executes on
// the sweep pool; --jobs $(nproc) parallelizes the heavy contended runs,
// which dominate the serial wall-clock.
#include <cstdint>
#include <iostream>
#include <vector>

#include "ssr/common/stats.h"
#include "ssr/common/table.h"
#include "ssr/exp/bench_report.h"
#include "ssr/exp/sweep.h"
#include "ssr/workload/adjust.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/sqlbench.h"
#include "ssr/workload/tracegen.h"

namespace {

using namespace ssr;

struct Suite {
  const char* name;
  std::vector<JobSpec> jobs;  ///< submit times are offsets; set by caller
};

std::vector<Suite> make_foreground(std::uint32_t parallelism,
                                   SimTime first_submit, SimDuration spacing) {
  std::vector<Suite> suites;

  Suite sql{"sql", {}};
  for (std::uint32_t q = 0; q < 20; ++q) {
    SqlJobParams p;
    p.query_index = q;
    p.base_parallelism = parallelism;
    p.priority = 10;
    p.submit_time = first_submit + spacing * q;
    sql.jobs.push_back(make_sql_query(p));
  }
  suites.push_back(std::move(sql));

  Suite ml{"mllib", {}};
  Suite ml2{"mllib-2x", {}};
  int i = 0;
  for (auto make : {make_kmeans, make_svm, make_pagerank}) {
    for (int rep = 0; rep < 4; ++rep) {
      const SimTime t = first_submit + spacing * (20 + 4 * i + rep);
      ml.jobs.push_back(make(parallelism, 10, t));
      ml2.jobs.push_back(
          scale_parallelism(make(parallelism, 10, t), 2.0));
    }
    ++i;
  }
  suites.push_back(std::move(ml));
  suites.push_back(std::move(ml2));
  return suites;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssr;
  BenchArgs args = BenchArgs::parse(argc, argv);
  // Default to 1/4 scale so the whole bench suite stays CI-friendly; pass
  // --scale 1 for the paper-scale 1000-node / 8000-job run.
  if (!args.scale_set) args.scale = 4.0;

  const ClusterSpec cluster{.nodes = args.scaled(1000), .slots_per_node = 4};
  const std::uint32_t bg_jobs = args.scaled(8000);
  const SimDuration window = 3600.0;
  std::cout << "Fig. 15: large-scale trace-driven simulation — "
            << cluster.nodes << " nodes / " << cluster.nodes * 4
            << " slots, " << bg_jobs << " background jobs (scale 1/"
            << args.scale << " of the paper)\n\n";

  struct Setting {
    const char* name;
    double bg_runtime_mult;
    double locality_slowdown;
  };
  const Setting settings[] = {{"(a) standard", 1.0, 5.0},
                              {"(b) bg tasks 2x", 2.0, 5.0},
                              {"(c) locality 10x", 1.0, 10.0}};

  // Grid layout, recorded as it is built: per (setting, suite, pass):
  // one alone baseline per foreground job, then the contended cluster run.
  struct Cell {
    std::size_t suite_index;  ///< into the per-setting suites vector
    std::size_t alone_first;  ///< index of the first alone trial
    std::size_t alone_count;
    std::size_t run_index;    ///< index of the contended trial
  };
  std::vector<Trial> grid;
  std::vector<Cell> cells;  // ordered: setting-major, suite, pass
  std::vector<std::string> suite_names;

  for (const Setting& setting : settings) {
    SchedConfig sched;
    sched.locality_wait = 3.0;
    sched.locality_slowdown = setting.locality_slowdown;

    std::size_t suite_index = 0;
    for (Suite& suite : make_foreground(20, window * 0.2, 30.0)) {
      if (suite_names.size() < 3) suite_names.push_back(suite.name);
      for (int pass = 0; pass < 2; ++pass) {
        RunOptions o;
        o.sched = sched;
        args.apply_to(o.sched);
        o.seed = args.seed;
        if (pass == 1) {
          o.ssr = SsrConfig{};
          o.ssr->min_reserving_priority = 1;  // foreground class only
        }
        const std::string label = std::string(setting.name) + "/" +
                                  suite.name +
                                  (pass == 0 ? "/nossr" : "/ssr");

        Cell cell;
        cell.suite_index = suite_index;
        cell.alone_first = grid.size();
        cell.alone_count = suite.jobs.size();
        // Per-job alone baselines (same scheduler config, empty cluster).
        for (const JobSpec& j : suite.jobs) {
          JobSpec copy = j;
          copy.submit_time = 0.0;
          grid.push_back({cluster,
                          {std::move(copy)},
                          o,
                          label + "/alone",
                          {{"setting", setting.name},
                           {"suite", suite.name},
                           {"policy", pass == 0 ? "none" : "ssr"}}});
        }

        TraceGenConfig bg;
        bg.num_jobs = bg_jobs;
        bg.window = window;
        bg.runtime_multiplier = setting.bg_runtime_mult;
        bg.seed = args.seed + 42;
        std::vector<JobSpec> jobs = make_background_jobs(bg);
        for (const JobSpec& j : suite.jobs) jobs.push_back(j);
        cell.run_index = grid.size();
        grid.push_back({cluster,
                        std::move(jobs),
                        o,
                        label,
                        {{"setting", setting.name},
                         {"suite", suite.name},
                         {"policy", pass == 0 ? "none" : "ssr"}}});
        cells.push_back(cell);
      }
      ++suite_index;
    }
  }

  const SweepRunner runner(sweep_options(args));
  const WallTimer timer;
  const std::vector<TrialResult> results = runner.run(grid);
  const double wall = timer.elapsed_seconds();

  TablePrinter table({"setting", "suite", "avg slowdown w/o SSR",
                      "avg slowdown w/ SSR"});
  std::size_t cell_index = 0;
  for (const Setting& setting : settings) {
    for (const std::string& suite : suite_names) {
      double avg_slow[2] = {0.0, 0.0};
      for (int pass = 0; pass < 2; ++pass) {
        const Cell& cell = cells[cell_index++];
        const RunResult& run = results[cell.run_index].run;
        const std::size_t bg_count = run.jobs.size() - cell.alone_count;
        OnlineStats slow;
        for (std::size_t k = 0; k < cell.alone_count; ++k) {
          const double alone =
              results[cell.alone_first + k].run.jobs.front().jct;
          slow.add(slowdown(run.jobs[bg_count + k].jct, alone));
        }
        avg_slow[pass] = slow.mean();
      }
      table.add_row({setting.name, suite, TablePrinter::num(avg_slow[0], 2),
                     TablePrinter::num(avg_slow[1], 2)});
    }
  }
  table.print(std::cout);
  emit_sweep_outputs(args, results);
  if (!args.bench_json.empty()) {
    // Record the whole-grid wall clock (the hot-path acceptance metric);
    // items/s counts simulated task starts across every trial in the grid.
    std::uint64_t tasks = 0;
    for (const TrialResult& r : results) {
      tasks += r.run.task_totals.tasks_started;
    }
    BenchReporter report;
    BenchRecord rec;
    rec.name = "fig15_grid/scale" + TablePrinter::num(args.scale, 0);
    rec.wall_seconds = wall;
    if (wall > 0.0) {
      rec.items_per_second = static_cast<double>(tasks) / wall;
    }
    report.add(std::move(rec));
    report.write_file(args.bench_json);
  }
  std::cout << "\nShape check (paper): long background tasks barely matter\n"
               "in a large cluster (a ~ b), but data locality dominates\n"
               "(c >> a) — and SSR cuts MLlib suites to < 1.1x while SQL\n"
               "(changing parallelism) lands at a moderate 1.3-1.5x.\n";
  return 0;
}
