// Fig. 15 [Simulation]: average slowdown of foreground job suites in a
// large cluster, with and without speculative slot reservation.
//
// Paper setup: 1000 nodes / 4000 slots; locality wait 3 s; 5x task runtime
// without data locality (10x in the stress setting).  Foreground suites:
//   * SQL    — 20 TPC-DS queries,
//   * MLlib  — KMeans + SVM + PageRank traces,
//   * MLlib2 — the same with 2x degree of parallelism.
// Background: 8000 jobs synthesized from the Google/SQL/MLlib mixes.
// Three settings: (a) standard, (b) background task runtime 2x,
// (c) locality slowdown factor 2x (10x instead of 5x).
//
// Run with --scale N to divide the cluster and workload sizes (default 1 =
// paper scale); EXPERIMENTS.md records the scale used.
#include <iostream>
#include <vector>

#include "ssr/common/stats.h"
#include "ssr/common/table.h"
#include "ssr/exp/scenario.h"
#include "ssr/workload/adjust.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/sqlbench.h"
#include "ssr/workload/tracegen.h"

namespace {

using namespace ssr;

struct Suite {
  const char* name;
  std::vector<JobSpec> jobs;  ///< submit times are offsets; set by caller
};

std::vector<Suite> make_foreground(std::uint32_t parallelism,
                                   SimTime first_submit, SimDuration spacing) {
  std::vector<Suite> suites;

  Suite sql{"sql", {}};
  for (std::uint32_t q = 0; q < 20; ++q) {
    SqlJobParams p;
    p.query_index = q;
    p.base_parallelism = parallelism;
    p.priority = 10;
    p.submit_time = first_submit + spacing * q;
    sql.jobs.push_back(make_sql_query(p));
  }
  suites.push_back(std::move(sql));

  Suite ml{"mllib", {}};
  Suite ml2{"mllib-2x", {}};
  int i = 0;
  for (auto make : {make_kmeans, make_svm, make_pagerank}) {
    for (int rep = 0; rep < 4; ++rep) {
      const SimTime t = first_submit + spacing * (20 + 4 * i + rep);
      ml.jobs.push_back(make(parallelism, 10, t));
      ml2.jobs.push_back(
          scale_parallelism(make(parallelism, 10, t), 2.0));
    }
    ++i;
  }
  suites.push_back(std::move(ml));
  suites.push_back(std::move(ml2));
  return suites;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssr;
  BenchArgs args = BenchArgs::parse(argc, argv);
  // Default to 1/4 scale so the whole bench suite stays CI-friendly; pass
  // --scale 1 for the paper-scale 1000-node / 8000-job run (~15 min).
  if (!args.scale_set) args.scale = 4.0;

  const ClusterSpec cluster{.nodes = args.scaled(1000), .slots_per_node = 4};
  const std::uint32_t bg_jobs = args.scaled(8000);
  const SimDuration window = 3600.0;
  std::cout << "Fig. 15: large-scale trace-driven simulation — "
            << cluster.nodes << " nodes / " << cluster.nodes * 4
            << " slots, " << bg_jobs << " background jobs (scale 1/"
            << args.scale << " of the paper)\n\n";

  struct Setting {
    const char* name;
    double bg_runtime_mult;
    double locality_slowdown;
  };
  const Setting settings[] = {{"(a) standard", 1.0, 5.0},
                              {"(b) bg tasks 2x", 2.0, 5.0},
                              {"(c) locality 10x", 1.0, 10.0}};

  TablePrinter table({"setting", "suite", "avg slowdown w/o SSR",
                      "avg slowdown w/ SSR"});

  for (const Setting& setting : settings) {
    SchedConfig sched;
    sched.locality_wait = 3.0;
    sched.locality_slowdown = setting.locality_slowdown;

    for (Suite& suite : make_foreground(20, window * 0.2, 30.0)) {
      double avg_slow[2] = {0.0, 0.0};
      for (int pass = 0; pass < 2; ++pass) {
        RunOptions o;
        o.sched = sched;
        o.seed = args.seed;
        if (pass == 1) {
          o.ssr = SsrConfig{};
          o.ssr->min_reserving_priority = 1;  // foreground class only
        }

        // Per-job alone baselines (same scheduler config, empty cluster).
        std::vector<double> alone;
        alone.reserve(suite.jobs.size());
        for (const JobSpec& j : suite.jobs) {
          JobSpec copy = j;
          copy.submit_time = 0.0;
          alone.push_back(alone_jct(cluster, std::move(copy), o));
        }

        TraceGenConfig bg;
        bg.num_jobs = bg_jobs;
        bg.window = window;
        bg.runtime_multiplier = setting.bg_runtime_mult;
        bg.seed = args.seed + 42;
        std::vector<JobSpec> jobs = make_background_jobs(bg);
        const std::size_t bg_count = jobs.size();
        for (const JobSpec& j : suite.jobs) jobs.push_back(j);

        const RunResult r = run_scenario(cluster, std::move(jobs), o);
        OnlineStats slow;
        for (std::size_t k = 0; k < suite.jobs.size(); ++k) {
          slow.add(slowdown(r.jobs[bg_count + k].jct, alone[k]));
        }
        avg_slow[pass] = slow.mean();
      }
      table.add_row({setting.name, suite.name,
                     TablePrinter::num(avg_slow[0], 2),
                     TablePrinter::num(avg_slow[1], 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check (paper): long background tasks barely matter\n"
               "in a large cluster (a ~ b), but data locality dominates\n"
               "(c >> a) — and SSR cuts MLlib suites to < 1.1x while SQL\n"
               "(changing parallelism) lands at a moderate 1.3-1.5x.\n";
  return 0;
}
