// Metrics collectors: EngineObservers that record what the paper's
// evaluation plots — running-task counts over time (Figs. 5, 13), per-job
// task statistics (locality fractions, straggler copies), and job
// completion times.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "ssr/common/ids.h"
#include "ssr/common/time.h"
#include "ssr/sched/types.h"

namespace ssr {

/// Records, for every job, the number of running tasks as a step function of
/// time.  Attach only in small-scale timeline experiments; the change log is
/// proportional to the number of task events.
class RunningTasksSeries : public EngineObserver {
 public:
  void on_task_started(const Engine&, TaskId, SlotId) override;
  void on_task_finished(const Engine&, TaskId, SlotId) override;
  void on_task_killed(const Engine&, TaskId, SlotId) override;
  void on_task_failed(const Engine&, TaskId, SlotId) override;

  /// Step-change log for one job: (time, running count after the change).
  const std::vector<std::pair<SimTime, int>>& changes(JobId job) const;

  /// Piecewise-constant value sampled every `dt` over [0, horizon].
  std::vector<std::pair<SimTime, int>> sampled(JobId job, SimDuration dt,
                                               SimTime horizon) const;

 private:
  void record(const Engine& engine, JobId job, int delta);

  std::map<JobId, int> current_;
  std::map<JobId, std::vector<std::pair<SimTime, int>>> changes_;
};

/// Per-job aggregate task statistics.
struct JobTaskStats {
  std::uint64_t tasks_started = 0;
  std::uint64_t tasks_finished = 0;  ///< winning attempts only
  std::uint64_t tasks_killed = 0;    ///< losing straggler-race attempts
  std::uint64_t tasks_failed = 0;    ///< attempts that died with their slot
  std::uint64_t copies_started = 0;  ///< attempts with attempt id >= 1
  std::uint64_t copies_won = 0;      ///< copies that beat their original
  std::uint64_t local_starts = 0;    ///< attempts launched with data locality
  /// Busy slot-seconds the job's attempts occupied (finished and killed).
  double busy_seconds = 0.0;
};

class TaskStatsCollector : public EngineObserver {
 public:
  void on_task_started(const Engine&, TaskId, SlotId) override;
  void on_task_finished(const Engine&, TaskId, SlotId) override;
  void on_task_killed(const Engine&, TaskId, SlotId) override;
  void on_task_failed(const Engine&, TaskId, SlotId) override;

  const JobTaskStats& stats(JobId job) const;
  JobTaskStats totals() const;

 private:
  void record_busy(const Engine& engine, TaskId task);

  std::map<JobId, JobTaskStats> by_job_;
  /// Start times of in-flight attempts, to attribute busy slot-seconds.
  /// Hashed: this sees every attempt start/stop, and ordering is unused.
  std::unordered_map<TaskId, SimTime> started_at_;
};

/// Job completion records, in finish order.
struct JobCompletion {
  JobId job;
  std::string name;
  int priority = 0;
  SimTime submit = 0.0;
  SimTime finish = 0.0;
  SimDuration jct() const { return finish - submit; }
};

/// Fault-injection and recovery counters (DESIGN.md §9).
struct RecoveryStats {
  std::uint64_t slots_failed = 0;      ///< fail transitions applied to slots
  std::uint64_t slots_recovered = 0;   ///< Dead -> Idle transitions
  std::uint64_t tasks_failed = 0;      ///< attempts killed by slot death
  std::uint64_t tasks_requeued = 0;    ///< logical tasks re-queued to re-run
  std::uint64_t failures_masked = 0;   ///< failed attempts whose twin won
  std::uint64_t stages_invalidated = 0;  ///< finished stages re-opened
  std::uint64_t reservations_broken = 0;  ///< reservations ended by slot death
};

class RecoveryStatsCollector : public EngineObserver {
 public:
  void on_task_failed(const Engine&, TaskId, SlotId) override;
  void on_task_requeued(const Engine&, TaskId) override;
  void on_task_finished(const Engine&, TaskId, SlotId) override;
  void on_stage_invalidated(const Engine&, StageId) override;
  void on_slot_failed(const Engine&, SlotId) override;
  void on_slot_recovered(const Engine&, SlotId) override;
  void on_reservation_released(const Engine&, SlotId,
                               ReservationEndReason) override;

  const RecoveryStats& stats() const { return stats_; }

 private:
  RecoveryStats stats_;
  /// Logical tasks ((job, stage, index) via TaskId with attempt erased) with
  /// a failed attempt whose fate is still open: a requeue counts the failure
  /// as recovered-by-rerun, a finish counts it as masked by a live twin.
  std::set<std::tuple<JobId, std::uint32_t, std::uint32_t>> failed_pending_;
};

class JctCollector : public EngineObserver {
 public:
  void on_job_finished(const Engine& engine, JobId job) override;

  const std::vector<JobCompletion>& completions() const { return records_; }

  /// JCTs of every job whose name matches `name` exactly.
  std::vector<double> jcts_named(const std::string& name) const;

  /// Mean JCT over jobs whose priority is >= / < the given split point.
  double mean_jct_with_priority_at_least(int priority) const;
  double mean_jct_with_priority_below(int priority) const;

 private:
  std::vector<JobCompletion> records_;
};

}  // namespace ssr
