// Chrome-tracing (catapult) export of a simulated run.
//
// TraceExporter records every task attempt as a complete event ("ph":"X")
// on a track per slot, so a run can be loaded into chrome://tracing or
// https://ui.perfetto.dev and inspected visually: barriers show up as
// vertical cliffs, reservations as gaps on otherwise busy slot tracks,
// straggler copies as overlapping attempts of the same task id.  Times are
// exported in microseconds (1 simulated second = 1 ms of trace time keeps
// hour-long simulations navigable).
//
// Two feeding modes share one record_* core:
//   * live — the EngineObserver callbacks pull names (and, when a tenant
//     resolver is installed, tenants) from the engine;
//   * replay — metrics/trace_capture.h's TraceExportFeeder re-drives the
//     same record_* calls from a captured event stream, no Engine involved.
// Tenanted attempts land on a per-tenant process track ("pid"), so fig15-
// scale open-system runs separate cleanly by tenant in the trace viewer;
// untenanted runs keep everything on the default "cluster" process.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "ssr/common/ids.h"
#include "ssr/common/time.h"
#include "ssr/sched/types.h"

namespace ssr {

class TraceExporter : public EngineObserver {
 public:
  void on_task_started(const Engine& engine, TaskId task, SlotId slot) override;
  void on_task_finished(const Engine& engine, TaskId task, SlotId slot) override;
  void on_task_killed(const Engine& engine, TaskId task, SlotId slot) override;
  void on_job_submitted(const Engine& engine, JobId job) override;
  void on_job_finished(const Engine& engine, JobId job) override;

  /// Resolve a job to its tenant track in live (observer) mode; nullptr or
  /// unset = default "cluster" track.
  void set_tenant_resolver(std::function<const std::string*(JobId)> resolver) {
    tenant_of_ = std::move(resolver);
  }

  // --- Engine-free core (replay feeding) -----------------------------------

  /// `tenant` empty = default track.  The attempt stays open until a
  /// matching record_task_finished/killed.
  void record_task_started(SimTime now, TaskId task, SlotId slot,
                           std::string job_name, const std::string& tenant);
  void record_task_finished(SimTime now, TaskId task, SlotId slot);
  void record_task_killed(SimTime now, TaskId task, SlotId slot);
  /// Global instant marker (job submit/finish milestones).
  void record_instant(std::string name, SimTime at);

  /// Write the collected events as a Chrome trace JSON document.
  void write_json(std::ostream& os) const;

  std::size_t event_count() const { return events_.size(); }
  /// Process-track names, indexed by pid (track 0 is "cluster").
  const std::vector<std::string>& tracks() const { return tracks_; }

 private:
  struct Attempt {
    TaskId task;
    SlotId slot;
    SimTime start = 0.0;
    SimTime end = -1.0;  ///< -1 while running
    bool killed = false;
    std::string job_name;
    std::uint32_t track = 0;  ///< pid: index into tracks_
  };
  struct Instant {
    std::string name;
    SimTime at;
  };

  void close_attempt(TaskId task, SlotId slot, SimTime at, bool killed);
  std::uint32_t track_of(const std::string& tenant);

  std::function<const std::string*(JobId)> tenant_of_;
  std::map<TaskId, std::size_t> open_;  ///< running attempt -> index
  std::vector<Attempt> events_;
  std::vector<Instant> instants_;
  std::vector<std::string> tracks_{"cluster"};
  std::map<std::string, std::uint32_t> track_index_;
};

}  // namespace ssr
