// Chrome-tracing (catapult) export of a simulated run.
//
// TraceExporter is an EngineObserver that records every task attempt as a
// complete event ("ph":"X") on a track per slot, so a run can be loaded
// into chrome://tracing or https://ui.perfetto.dev and inspected visually:
// barriers show up as vertical cliffs, reservations as gaps on otherwise
// busy slot tracks, straggler copies as overlapping attempts of the same
// task id.  Times are exported in microseconds (1 simulated second = 1 ms
// of trace time keeps hour-long simulations navigable).
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "ssr/common/ids.h"
#include "ssr/common/time.h"
#include "ssr/sched/types.h"

namespace ssr {

class TraceExporter : public EngineObserver {
 public:
  void on_task_started(const Engine& engine, TaskId task, SlotId slot) override;
  void on_task_finished(const Engine& engine, TaskId task, SlotId slot) override;
  void on_task_killed(const Engine& engine, TaskId task, SlotId slot) override;
  void on_job_submitted(const Engine& engine, JobId job) override;
  void on_job_finished(const Engine& engine, JobId job) override;

  /// Write the collected events as a Chrome trace JSON document.
  void write_json(std::ostream& os) const;

  std::size_t event_count() const { return events_.size(); }

 private:
  struct Attempt {
    TaskId task;
    SlotId slot;
    SimTime start = 0.0;
    SimTime end = -1.0;  ///< -1 while running
    bool killed = false;
    std::string job_name;
  };
  struct Instant {
    std::string name;
    SimTime at;
  };

  void close_attempt(TaskId task, SlotId slot, SimTime at, bool killed);

  std::map<TaskId, std::size_t> open_;  ///< running attempt -> index
  std::vector<Attempt> events_;
  std::vector<Instant> instants_;
};

}  // namespace ssr
