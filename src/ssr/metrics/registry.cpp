#include "ssr/metrics/registry.h"

#include <fstream>
#include <sstream>

#include "ssr/common/check.h"
#include "ssr/metrics/json.h"

namespace ssr {

// --- Histogram ----------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    SSR_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                  "histogram bounds must be strictly increasing (bounds["
                      << i - 1 << "]=" << bounds_[i - 1] << " >= bounds[" << i
                      << "]=" << bounds_[i] << ")");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += value;
}

std::uint64_t Histogram::cumulative(std::size_t i) const {
  SSR_CHECK_LT(i, counts_.size());
  std::uint64_t total = 0;
  for (std::size_t k = 0; k <= i; ++k) total += counts_[k];
  return total;
}

// --- MetricGroup --------------------------------------------------------------

Counter& MetricGroup::counter(const std::string& name) {
  return *registry_
              ->resolve(name, labels_, MetricsRegistry::Kind::Counter, nullptr)
              .counter;
}

Gauge& MetricGroup::gauge(const std::string& name) {
  return *registry_
              ->resolve(name, labels_, MetricsRegistry::Kind::Gauge, nullptr)
              .gauge;
}

Histogram& MetricGroup::histogram(const std::string& name,
                                  std::vector<double> bounds) {
  return *registry_
              ->resolve(name, labels_, MetricsRegistry::Kind::Histogram,
                        &bounds)
              .histogram;
}

// --- MetricsRegistry ----------------------------------------------------------

MetricGroup MetricsRegistry::group(MetricLabels labels) {
  return MetricGroup(*this, std::move(labels));
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return group({}).counter(name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return group({}).gauge(name);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  return group({}).histogram(name, std::move(bounds));
}

std::string MetricsRegistry::key_of(const std::string& name,
                                    const MetricLabels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

MetricsRegistry::Entry& MetricsRegistry::resolve(
    const std::string& name, const MetricLabels& labels, Kind kind,
    const std::vector<double>* bounds) {
  const std::string key = key_of(name, labels);
  auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& entry = *entries_[it->second];
    SSR_CHECK_MSG(entry.kind == kind,
                  "metric '" << name
                             << "' re-requested with a different type");
    if (kind == Kind::Histogram) {
      SSR_CHECK_MSG(entry.histogram->bounds() == *bounds,
                    "histogram '" << name
                                  << "' re-requested with different buckets");
    }
    return entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->kind = kind;
  switch (kind) {
    case Kind::Counter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::Gauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::Histogram:
      entry->histogram = std::make_unique<Histogram>(*bounds);
      break;
  }
  entries_.push_back(std::move(entry));
  index_[key] = entries_.size() - 1;
  return *entries_.back();
}

namespace {

void write_labels(std::ostream& os, const MetricLabels& labels) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
  }
  os << "}";
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"ssr-metrics-v1\",\n  \"metrics\": [";
  bool first = true;
  for (const auto& entry : entries_) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\": \"" << json_escape(entry->name) << "\", ";
    os << "\"labels\": ";
    write_labels(os, entry->labels);
    os << ", ";
    switch (entry->kind) {
      case Kind::Counter:
        os << "\"type\": \"counter\", \"value\": " << entry->counter->value();
        break;
      case Kind::Gauge:
        os << "\"type\": \"gauge\", \"value\": " << entry->gauge->value();
        break;
      case Kind::Histogram: {
        const Histogram& h = *entry->histogram;
        os << "\"type\": \"histogram\", \"count\": " << h.count()
           << ", \"sum\": " << h.sum() << ", \"buckets\": [";
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          if (i > 0) os << ",";
          os << "{\"le\": " << h.bounds()[i]
             << ", \"count\": " << h.cumulative(i) << "}";
        }
        if (!h.bounds().empty()) os << ",";
        os << "{\"le\": \"inf\", \"count\": " << h.count() << "}]";
        break;
      }
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

void MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  SSR_CHECK_MSG(out.good(), "cannot open metrics JSON file " << path);
  write_json(out);
}

}  // namespace ssr
