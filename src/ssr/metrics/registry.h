// Structured metrics registry with labeled metric groups.
//
// The registry follows the group/registry split of production metric stacks
// (cf. ray's metrics group interfaces): a MetricsRegistry owns every metric
// instance; a MetricGroup is a cheap handle binding a fixed label set (e.g.
// {tenant=interactive} or {policy=ssr}), and resolving the same
// (name, labels) pair always yields the same instance, so collectors in
// different subsystems can contribute to one series without coordinating.
//
// Three metric types cover what the simulator reports:
//   Counter    monotonically increasing event counts (tasks started, jobs
//              admitted, reservations expired);
//   Gauge      last-written values (shares, peak demand, utilization);
//   Histogram  distribution over fixed upper-bound buckets (task durations,
//              JCTs), exported with cumulative Prometheus-style counts.
//
// Export is a single JSON document (schema "ssr-metrics-v1") written next to
// the BENCH_sched.json perf report by the bench smokes and by
// examples/open_server; metrics appear in creation order, so two runs of the
// same binary produce byte-identical documents.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace ssr {

/// One (key, value) label pair; a label set is an ordered vector of these.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram.  `bounds` are strictly increasing upper bounds; an
/// implicit +inf bucket catches the overflow.  observe(v) lands v in the
/// first bucket whose bound is >= v (Prometheus "le" semantics).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1, the
  /// last entry being the +inf overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  /// Cumulative count of observations <= bounds()[i].
  std::uint64_t cumulative(std::size_t i) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry;

/// A label-scoped view of the registry.  Copyable value handle; all storage
/// stays in the registry, so groups can be created on the fly per tenant or
/// per policy without lifetime concerns (beyond the registry's own).
class MetricGroup {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Resolving an existing histogram re-checks the bounds: asking for the
  /// same series with different buckets is a programming error (CheckError).
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  const MetricLabels& labels() const { return labels_; }

 private:
  friend class MetricsRegistry;
  MetricGroup(MetricsRegistry& registry, MetricLabels labels)
      : registry_(&registry), labels_(std::move(labels)) {}

  MetricsRegistry* registry_;
  MetricLabels labels_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Label-scoped group; group({}) is the unlabeled root group.
  MetricGroup group(MetricLabels labels);

  /// Unlabeled conveniences (equivalent to group({}).x(...)).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  std::size_t num_metrics() const { return entries_.size(); }

  /// Write every metric, in creation order, as one JSON document
  /// (schema "ssr-metrics-v1").
  void write_json(std::ostream& os) const;
  /// Write to `path`; throws CheckError if the file cannot be opened.
  void write_json_file(const std::string& path) const;

 private:
  friend class MetricGroup;

  enum class Kind { Counter, Gauge, Histogram };

  struct Entry {
    std::string name;
    MetricLabels labels;
    Kind kind;
    // Exactly one is non-null, matching `kind`.  unique_ptr keeps references
    // stable as entries_ grows.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& resolve(const std::string& name, const MetricLabels& labels,
                 Kind kind, const std::vector<double>* bounds);
  static std::string key_of(const std::string& name,
                            const MetricLabels& labels);

  std::vector<std::unique_ptr<Entry>> entries_;  ///< creation order
  std::map<std::string, std::size_t> index_;     ///< key -> entries_ index
};

}  // namespace ssr
