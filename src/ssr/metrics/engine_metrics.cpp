#include "ssr/metrics/engine_metrics.h"

#include <utility>

#include "ssr/sched/engine.h"
#include "ssr/sched/virtual_cluster.h"

namespace ssr {

std::vector<double> default_duration_bounds() {
  return {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0};
}

namespace {

/// Eagerly create the full per-group series set so exports from empty runs
/// carry every series at zero instead of omitting them.
void touch_series(MetricGroup& g) {
  g.counter("jobs_submitted");
  g.counter("jobs_finished");
  g.counter("tasks_started");
  g.counter("tasks_finished");
  g.counter("tasks_killed");
  g.counter("tasks_failed");
  g.counter("tasks_requeued");
  g.histogram("task_duration_seconds", default_duration_bounds());
  g.histogram("jct_seconds", default_duration_bounds());
}

}  // namespace

EngineMetrics::EngineMetrics(MetricsRegistry& registry, std::string policy)
    : registry_(registry),
      policy_(std::move(policy)),
      policy_group_(registry_.group({{"policy", policy_}})) {
  touch_series(policy_group_);
  policy_group_.counter("stages_submitted");
  policy_group_.counter("stages_finished");
  policy_group_.counter("stages_invalidated");
  policy_group_.counter("slots_failed");
  policy_group_.counter("slots_recovered");
  policy_group_.counter("reservations_made");
  policy_group_.counter("reservations_expired");
  policy_group_.counter("reservations_released");
  policy_group_.counter("reservations_broken");
  policy_group_.gauge("makespan_seconds");
  policy_group_.gauge("utilization");
}

MetricGroup* EngineMetrics::tenant_group(JobId job) {
  if (!tenant_of_) return nullptr;
  const std::string* tenant = tenant_of_(job);
  if (tenant == nullptr) return nullptr;
  auto it = tenant_groups_.find(*tenant);
  if (it == tenant_groups_.end()) {
    MetricGroup g =
        registry_.group({{"policy", policy_}, {"tenant", *tenant}});
    touch_series(g);
    it = tenant_groups_.emplace(*tenant, std::move(g)).first;
  }
  return &it->second;
}

void EngineMetrics::on_job_submitted(const Engine&, JobId job) {
  policy_group_.counter("jobs_submitted").inc();
  if (MetricGroup* g = tenant_group(job)) g->counter("jobs_submitted").inc();
}

void EngineMetrics::on_job_finished(const Engine& engine, JobId job) {
  policy_group_.counter("jobs_finished").inc();
  const double jct = engine.sim().now() - engine.graph(job).submit_time();
  policy_group_.histogram("jct_seconds", default_duration_bounds())
      .observe(jct);
  if (MetricGroup* g = tenant_group(job)) {
    g->counter("jobs_finished").inc();
    g->histogram("jct_seconds", default_duration_bounds()).observe(jct);
  }
}

void EngineMetrics::on_stage_submitted(const Engine&, StageId) {
  policy_group_.counter("stages_submitted").inc();
}

void EngineMetrics::on_stage_finished(const Engine&, StageId) {
  policy_group_.counter("stages_finished").inc();
}

void EngineMetrics::on_task_started(const Engine& engine, TaskId task,
                                    SlotId) {
  policy_group_.counter("tasks_started").inc();
  started_at_[task] = engine.sim().now();
  if (MetricGroup* g = tenant_group(task.stage.job)) {
    g->counter("tasks_started").inc();
  }
}

void EngineMetrics::on_task_finished(const Engine& engine, TaskId task,
                                     SlotId) {
  policy_group_.counter("tasks_finished").inc();
  auto it = started_at_.find(task);
  if (it != started_at_.end()) {
    const double duration = engine.sim().now() - it->second;
    policy_group_.histogram("task_duration_seconds", default_duration_bounds())
        .observe(duration);
    if (MetricGroup* g = tenant_group(task.stage.job)) {
      g->histogram("task_duration_seconds", default_duration_bounds())
          .observe(duration);
    }
    started_at_.erase(it);
  }
  if (MetricGroup* g = tenant_group(task.stage.job)) {
    g->counter("tasks_finished").inc();
  }
}

void EngineMetrics::on_task_killed(const Engine&, TaskId task, SlotId) {
  policy_group_.counter("tasks_killed").inc();
  started_at_.erase(task);
  if (MetricGroup* g = tenant_group(task.stage.job)) {
    g->counter("tasks_killed").inc();
  }
}

void EngineMetrics::on_task_failed(const Engine&, TaskId task, SlotId) {
  policy_group_.counter("tasks_failed").inc();
  started_at_.erase(task);
  if (MetricGroup* g = tenant_group(task.stage.job)) {
    g->counter("tasks_failed").inc();
  }
}

void EngineMetrics::on_task_requeued(const Engine&, TaskId task) {
  policy_group_.counter("tasks_requeued").inc();
  if (MetricGroup* g = tenant_group(task.stage.job)) {
    g->counter("tasks_requeued").inc();
  }
}

void EngineMetrics::on_stage_invalidated(const Engine&, StageId) {
  policy_group_.counter("stages_invalidated").inc();
}

void EngineMetrics::on_slot_failed(const Engine&, SlotId) {
  policy_group_.counter("slots_failed").inc();
}

void EngineMetrics::on_slot_recovered(const Engine&, SlotId) {
  policy_group_.counter("slots_recovered").inc();
}

void EngineMetrics::on_slot_reserved(const Engine&, SlotId,
                                     const Reservation&) {
  policy_group_.counter("reservations_made").inc();
}

void EngineMetrics::on_reservation_released(const Engine&, SlotId,
                                            ReservationEndReason reason) {
  switch (reason) {
    case ReservationEndReason::Expired:
      policy_group_.counter("reservations_expired").inc();
      break;
    case ReservationEndReason::Released:
      policy_group_.counter("reservations_released").inc();
      break;
    case ReservationEndReason::SlotFailed:
      policy_group_.counter("reservations_broken").inc();
      break;
  }
}

void EngineMetrics::on_run_complete(const Engine& engine) {
  policy_group_.gauge("makespan_seconds").set(engine.sim().now());
  policy_group_.gauge("utilization")
      .set(engine.cluster().utilization(engine.sim().now()));
}

void record_recovery(MetricsRegistry& registry, const RecoveryStats& stats,
                     const std::string& policy) {
  MetricGroup g = registry.group({{"policy", policy}});
  g.counter("recovery_slots_failed").inc(stats.slots_failed);
  g.counter("recovery_slots_recovered").inc(stats.slots_recovered);
  g.counter("recovery_tasks_failed").inc(stats.tasks_failed);
  g.counter("recovery_tasks_requeued").inc(stats.tasks_requeued);
  g.counter("recovery_failures_masked").inc(stats.failures_masked);
  g.counter("recovery_stages_invalidated").inc(stats.stages_invalidated);
  g.counter("recovery_reservations_broken").inc(stats.reservations_broken);
}

void record_tenant_stats(MetricsRegistry& registry,
                         const VirtualClusterManager& vcm) {
  for (const std::string& name : vcm.tenant_names()) {
    const VirtualClusterSpec& shares = vcm.spec(name);
    const TenantStats& stats = vcm.stats(name);
    MetricGroup g = registry.group({{"tenant", name}});
    g.gauge("min_slots").set(shares.min_slots);
    g.gauge("max_slots").set(shares.max_slots);
    g.counter("jobs_submitted_total").inc(stats.submitted);
    g.counter("jobs_admitted_total").inc(stats.admitted);
    g.counter("jobs_rejected_total").inc(stats.rejected);
    g.counter("jobs_completed_total").inc(stats.completed);
    g.counter("jobs_queued_total").inc(stats.queued_total);
    g.gauge("peak_demand_slots").set(stats.peak_demand_in_flight);
    g.gauge("mean_queue_delay_seconds").set(stats.mean_queue_delay());
    g.gauge("max_queue_delay_seconds").set(stats.max_queue_delay);
    g.gauge("mean_jct_seconds").set(stats.mean_jct());
  }
}

}  // namespace ssr
