#include "ssr/metrics/collectors.h"

#include <algorithm>

#include "ssr/common/check.h"
#include "ssr/sched/engine.h"

namespace ssr {

// --- RunningTasksSeries -------------------------------------------------------

void RunningTasksSeries::record(const Engine& engine, JobId job, int delta) {
  int& cur = current_[job];
  cur += delta;
  SSR_CHECK_MSG(cur >= 0, "running task count went negative");
  changes_[job].emplace_back(engine.sim().now(), cur);
}

void RunningTasksSeries::on_task_started(const Engine& engine, TaskId task,
                                         SlotId) {
  record(engine, task.stage.job, +1);
}

void RunningTasksSeries::on_task_finished(const Engine& engine, TaskId task,
                                          SlotId) {
  record(engine, task.stage.job, -1);
}

void RunningTasksSeries::on_task_killed(const Engine& engine, TaskId task,
                                        SlotId) {
  record(engine, task.stage.job, -1);
}

void RunningTasksSeries::on_task_failed(const Engine& engine, TaskId task,
                                        SlotId) {
  record(engine, task.stage.job, -1);
}

const std::vector<std::pair<SimTime, int>>& RunningTasksSeries::changes(
    JobId job) const {
  static const std::vector<std::pair<SimTime, int>> kEmpty;
  auto it = changes_.find(job);
  return it == changes_.end() ? kEmpty : it->second;
}

std::vector<std::pair<SimTime, int>> RunningTasksSeries::sampled(
    JobId job, SimDuration dt, SimTime horizon) const {
  SSR_CHECK_MSG(dt > 0.0, "sampling interval must be positive");
  const auto& log = changes(job);
  std::vector<std::pair<SimTime, int>> out;
  std::size_t i = 0;
  int value = 0;
  for (SimTime t = 0.0; t <= horizon + 1e-9; t += dt) {
    while (i < log.size() && log[i].first <= t) value = log[i++].second;
    out.emplace_back(t, value);
  }
  return out;
}

// --- TaskStatsCollector --------------------------------------------------------

void TaskStatsCollector::on_task_started(const Engine& engine, TaskId task,
                                         SlotId) {
  JobTaskStats& s = by_job_[task.stage.job];
  ++s.tasks_started;
  started_at_[task] = engine.sim().now();
  if (task.attempt >= 1) ++s.copies_started;
  const StageRuntime* st =
      static_cast<const Engine&>(engine).stage_runtime(task.stage);
  if (st != nullptr) {
    // find_attempt is non-const; use the documented locality flag via a
    // const-friendly lookup of the attempt that just started.
    const StageRuntime* rt = st;
    if (task.attempt == 0 && task.index < rt->parallelism() &&
        rt->original(task.index).local) {
      ++s.local_starts;
    }
  }
}

void TaskStatsCollector::on_task_finished(const Engine& engine, TaskId task,
                                          SlotId) {
  JobTaskStats& s = by_job_[task.stage.job];
  ++s.tasks_finished;
  if (task.attempt >= 1) ++s.copies_won;
  record_busy(engine, task);
}

void TaskStatsCollector::on_task_killed(const Engine& engine, TaskId task,
                                        SlotId) {
  ++by_job_[task.stage.job].tasks_killed;
  record_busy(engine, task);
}

void TaskStatsCollector::on_task_failed(const Engine& engine, TaskId task,
                                        SlotId) {
  ++by_job_[task.stage.job].tasks_failed;
  record_busy(engine, task);
}

void TaskStatsCollector::record_busy(const Engine& engine, TaskId task) {
  auto it = started_at_.find(task);
  SSR_CHECK_MSG(it != started_at_.end(), "attempt ended without a start");
  by_job_[task.stage.job].busy_seconds += engine.sim().now() - it->second;
  started_at_.erase(it);
}

const JobTaskStats& TaskStatsCollector::stats(JobId job) const {
  static const JobTaskStats kEmpty;
  auto it = by_job_.find(job);
  return it == by_job_.end() ? kEmpty : it->second;
}

JobTaskStats TaskStatsCollector::totals() const {
  JobTaskStats t;
  for (const auto& [job, s] : by_job_) {
    t.tasks_started += s.tasks_started;
    t.tasks_finished += s.tasks_finished;
    t.tasks_killed += s.tasks_killed;
    t.tasks_failed += s.tasks_failed;
    t.copies_started += s.copies_started;
    t.copies_won += s.copies_won;
    t.local_starts += s.local_starts;
    t.busy_seconds += s.busy_seconds;
  }
  return t;
}

// --- RecoveryStatsCollector -----------------------------------------------------

namespace {

std::tuple<JobId, std::uint32_t, std::uint32_t> logical_task(TaskId task) {
  return {task.stage.job, task.stage.index, task.index};
}

}  // namespace

void RecoveryStatsCollector::on_task_failed(const Engine&, TaskId task,
                                            SlotId) {
  ++stats_.tasks_failed;
  failed_pending_.insert(logical_task(task));
}

void RecoveryStatsCollector::on_task_requeued(const Engine&, TaskId task) {
  ++stats_.tasks_requeued;
  failed_pending_.erase(logical_task(task));
}

void RecoveryStatsCollector::on_task_finished(const Engine&, TaskId task,
                                              SlotId) {
  // A finish of a logical task with an open failed attempt: the surviving
  // twin completed the work, so the failure was masked without a re-run.
  if (failed_pending_.erase(logical_task(task)) > 0) {
    ++stats_.failures_masked;
  }
}

void RecoveryStatsCollector::on_stage_invalidated(const Engine&, StageId) {
  ++stats_.stages_invalidated;
}

void RecoveryStatsCollector::on_slot_failed(const Engine&, SlotId) {
  ++stats_.slots_failed;
}

void RecoveryStatsCollector::on_slot_recovered(const Engine&, SlotId) {
  ++stats_.slots_recovered;
}

void RecoveryStatsCollector::on_reservation_released(
    const Engine&, SlotId, ReservationEndReason reason) {
  if (reason == ReservationEndReason::SlotFailed) {
    ++stats_.reservations_broken;
  }
}

// --- JctCollector ---------------------------------------------------------------

void JctCollector::on_job_finished(const Engine& engine, JobId job) {
  JobCompletion rec;
  rec.job = job;
  rec.name = engine.job_name(job);
  rec.priority = engine.graph(job).priority();
  rec.submit = engine.graph(job).submit_time();
  rec.finish = engine.sim().now();
  records_.push_back(std::move(rec));
}

std::vector<double> JctCollector::jcts_named(const std::string& name) const {
  std::vector<double> out;
  for (const auto& r : records_) {
    if (r.name == name) out.push_back(r.jct());
  }
  return out;
}

double JctCollector::mean_jct_with_priority_at_least(int priority) const {
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.priority >= priority) {
      acc += r.jct();
      ++n;
    }
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

double JctCollector::mean_jct_with_priority_below(int priority) const {
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.priority < priority) {
      acc += r.jct();
      ++n;
    }
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

}  // namespace ssr
