// Replayable capture of the engine's observer event stream.
//
// TraceRecorder is an EngineObserver that snapshots every callback of the
// audit seam (sched/types.h) into a self-contained TraceEvent record: each
// event carries the derived context a consumer would otherwise pull from the
// live Engine — the submitting job's name/priority/tenant, the data-locality
// flag of a starting attempt, the full Reservation of a reserve, a stage's
// parent list.  The capture can therefore re-drive every consumer-side chain
// (metric collectors, the SlotLedger invariant auditor, the Chrome-trace
// exporter, the RunResult/digest pipeline) from file, with no Engine and no
// re-simulation — see exp/trace_replay.h for the bit-identical RunResult
// reconstruction this enables.
//
// The on-disk format (ssr-trace v1) is a compact little-endian binary:
//
//   magic "SSRTRACE" | body | fnv1a64(body)
//   body = u32 version | header | u64 event_count | events...
//   header = u32 num_nodes | u32 num_slots | u64 seed | u8 counts_expired
//          | u64 suspicions | u64 false_suspicions | str policy
//   event = u8 kind | f64 time | kind-specific payload (fixed-width ints,
//           IEEE doubles bit-cast to u64, u32-length-prefixed strings)
//
// Doubles round-trip bit-exactly, so a replayed digest can be compared
// byte-for-byte against the committed goldens.  TraceReplayer validates
// magic, version and checksum up front and bounds-checks every read;
// corrupt, truncated or version-skewed files are rejected with a CheckError
// naming the defect instead of yielding garbage events.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ssr/common/ids.h"
#include "ssr/common/time.h"
#include "ssr/metrics/trace_export.h"
#include "ssr/sched/types.h"

namespace ssr {

/// Current on-disk format version.  Bump on any layout change; the replayer
/// refuses other versions (no silent cross-version decoding).
inline constexpr std::uint32_t kTraceVersion = 1;

/// One EngineObserver callback, in capture order.  Discriminants match the
/// callback that produced the record; every on_* callback of EngineObserver
/// has exactly one kind here (the lint trace-schema rule enforces this).
enum class TraceEventKind : std::uint8_t {
  kJobSubmitted = 1,
  kJobFinished = 2,
  kStageSubmitted = 3,
  kStageFinished = 4,
  kTaskStarted = 5,
  kTaskFinished = 6,
  kTaskKilled = 7,
  kTaskFailed = 8,
  kTaskRequeued = 9,
  kStageInvalidated = 10,
  kSlotFailed = 11,
  kSlotRecovered = 12,
  kSlotReserved = 13,
  kReservationReleased = 14,
  kRunComplete = 15,
};

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kRunComplete;
  SimTime time = 0.0;

  TaskId task;    ///< task-scoped kinds (stage/job implied by the id)
  StageId stage;  ///< stage-scoped kinds
  SlotId slot;    ///< slot-scoped kinds and task placements
  JobId job;      ///< job-scoped kinds; reserving job for kSlotReserved

  // kJobSubmitted context (so replay needs no JobGraph):
  std::string job_name;
  std::string tenant;  ///< empty = untenanted (closed-system run)
  /// Job priority (kJobSubmitted) / reservation priority (kSlotReserved).
  int priority = 0;

  /// kTaskStarted: the attempt launched with data locality (original
  /// attempts only; mirrors TaskStatsCollector's local_starts rule).
  bool local = false;

  // kSlotReserved: the full Reservation.
  SimTime deadline = kTimeInfinity;
  StageId for_stage;
  std::uint64_t token = 0;

  // kReservationReleased:
  ReservationEndReason reason = ReservationEndReason::Released;

  /// kStageSubmitted: parent stage indexes within the job (barrier inputs).
  std::vector<std::uint32_t> parents;
};

/// Run-level context every consumer needs before the first event.
struct TraceHeader {
  std::uint32_t version = kTraceVersion;
  std::uint32_t num_nodes = 0;
  std::uint32_t num_slots = 0;
  std::uint64_t seed = 0;
  /// True iff the run's hook was a ReservationManager, whose expiry counter
  /// equals the number of Expired-reason releases; gates whether a replay
  /// may reconstruct RunResult::reservations_expired.
  bool counts_expired = false;
  /// Failure-detector outcome of the recorded run (not event-shaped; see
  /// sim/failure_detector.h).  Zero for detector-off runs.
  std::uint64_t suspicions = 0;
  std::uint64_t false_suspicions = 0;
  std::string policy;  ///< label only (e.g. "ssr", "nossr")
};

/// Consumer side of a replay: TraceReplayer::replay drives these in file
/// order, exactly as the live engine drove its observers.
class TraceConsumer {
 public:
  virtual ~TraceConsumer() = default;

  /// Fired once, before the first event.
  virtual void on_trace_begin(const TraceHeader& header) { (void)header; }
  virtual void on_trace_event(const TraceEvent& event) = 0;
};

/// Captures the observer stream of one run.  Attach alongside (not instead
/// of) the normal collectors; recording is passive and order-preserving.
class TraceRecorder : public EngineObserver {
 public:
  TraceRecorder(std::uint32_t num_nodes, std::uint32_t num_slots,
                std::uint64_t seed, std::string policy, bool counts_expired);

  /// Resolve an admitted job to its tenant at on_job_submitted time; nullptr
  /// or unset = untenanted (VirtualClusterManager::tenant_of is canonical).
  void set_tenant_resolver(std::function<const std::string*(JobId)> resolver) {
    tenant_of_ = std::move(resolver);
  }

  /// Record the detector outcome (harness calls this after the transform;
  /// suspicion counts are inputs to the run, not observer events).
  void set_detector_outcome(std::uint64_t suspicions,
                            std::uint64_t false_suspicions) {
    header_.suspicions = suspicions;
    header_.false_suspicions = false_suspicions;
  }

  void on_job_submitted(const Engine& engine, JobId job) override;
  void on_job_finished(const Engine& engine, JobId job) override;
  void on_stage_submitted(const Engine& engine, StageId stage) override;
  void on_stage_finished(const Engine& engine, StageId stage) override;
  void on_task_started(const Engine& engine, TaskId task, SlotId slot) override;
  void on_task_finished(const Engine& engine, TaskId task,
                        SlotId slot) override;
  void on_task_killed(const Engine& engine, TaskId task, SlotId slot) override;
  void on_task_failed(const Engine& engine, TaskId task, SlotId slot) override;
  void on_task_requeued(const Engine& engine, TaskId task) override;
  void on_stage_invalidated(const Engine& engine, StageId stage) override;
  void on_slot_failed(const Engine& engine, SlotId slot) override;
  void on_slot_recovered(const Engine& engine, SlotId slot) override;
  void on_slot_reserved(const Engine& engine, SlotId slot,
                        const Reservation& reservation) override;
  void on_reservation_released(const Engine& engine, SlotId slot,
                               ReservationEndReason reason) override;
  void on_run_complete(const Engine& engine) override;

  const TraceHeader& header() const { return header_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Full file image (magic + body + checksum).
  std::string serialize() const;
  void write_file(const std::string& path) const;

 private:
  TraceEvent& push(const Engine& engine, TraceEventKind kind);

  TraceHeader header_;
  std::function<const std::string*(JobId)> tenant_of_;
  std::vector<TraceEvent> events_;
};

/// Parses a capture eagerly (validating as it goes) and re-drives consumers.
class TraceReplayer {
 public:
  /// Both throw CheckError on unreadable, corrupt, truncated or
  /// version-mismatched input.
  static TraceReplayer from_file(const std::string& path);
  static TraceReplayer from_bytes(const std::string& bytes);

  const TraceHeader& header() const { return header_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Drive every consumer through the whole capture: one on_trace_begin,
  /// then every event in file order (all consumers see an event before any
  /// sees the next — the live engine's observer order).
  void replay(const std::vector<TraceConsumer*>& consumers) const;

 private:
  TraceReplayer() = default;

  TraceHeader header_;
  std::vector<TraceEvent> events_;
};

/// Serialize just the events (testing seam; serialize() wraps this).
std::string serialize_trace(const TraceHeader& header,
                            const std::vector<TraceEvent>& events);

/// Rebuilds a Chrome-trace export from a capture: attempts reconstructed
/// from start/finish/kill events, job submit/finish instants, per-tenant
/// tracks from the captured tenant labels.  The exporter must outlive the
/// replay.
class TraceExportFeeder : public TraceConsumer {
 public:
  explicit TraceExportFeeder(TraceExporter& exporter) : exporter_(exporter) {}

  void on_trace_event(const TraceEvent& event) override;

 private:
  TraceExporter& exporter_;
  /// Job context captured from kJobSubmitted (name, tenant), keyed by id.
  std::map<JobId, std::pair<std::string, std::string>> jobs_;
};

}  // namespace ssr
