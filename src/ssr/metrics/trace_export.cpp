#include "ssr/metrics/trace_export.h"

#include <iomanip>
#include <sstream>

#include "ssr/common/check.h"
#include "ssr/sched/engine.h"

namespace ssr {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c);
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// 1 simulated second -> 1000 trace microseconds (1 ms).
long long to_us(SimTime t) { return static_cast<long long>(t * 1000.0); }

}  // namespace

void TraceExporter::on_task_started(const Engine& engine, TaskId task,
                                    SlotId slot) {
  Attempt a;
  a.task = task;
  a.slot = slot;
  a.start = engine.sim().now();
  a.job_name = engine.job_name(task.stage.job);
  open_[task] = events_.size();
  events_.push_back(std::move(a));
}

void TraceExporter::close_attempt(TaskId task, SlotId slot, SimTime at,
                                  bool killed) {
  auto it = open_.find(task);
  SSR_CHECK_MSG(it != open_.end(), "finish/kill for unknown attempt");
  Attempt& a = events_[it->second];
  SSR_CHECK_EQ(a.slot, slot);  // attempt must finish on its start slot
  a.end = at;
  a.killed = killed;
  open_.erase(it);
}

void TraceExporter::on_task_finished(const Engine& engine, TaskId task,
                                     SlotId slot) {
  close_attempt(task, slot, engine.sim().now(), /*killed=*/false);
}

void TraceExporter::on_task_killed(const Engine& engine, TaskId task,
                                   SlotId slot) {
  close_attempt(task, slot, engine.sim().now(), /*killed=*/true);
}

void TraceExporter::on_job_submitted(const Engine& engine, JobId job) {
  instants_.push_back(
      {"submit " + engine.job_name(job), engine.sim().now()});
}

void TraceExporter::on_job_finished(const Engine& engine, JobId job) {
  instants_.push_back(
      {"finish " + engine.job_name(job), engine.sim().now()});
}

void TraceExporter::write_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (const Attempt& a : events_) {
    std::ostringstream name;
    name << a.job_name << " " << a.task;
    if (a.killed) name << " (killed)";
    const SimTime end = a.end >= 0.0 ? a.end : a.start;
    sep();
    os << "{\"name\":\"" << json_escape(name.str())
       << "\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":" << to_us(a.start)
       << ",\"dur\":" << to_us(end - a.start)
       << ",\"pid\":0,\"tid\":" << a.slot.v << ",\"args\":{\"attempt\":"
       << a.task.attempt << ",\"killed\":" << (a.killed ? "true" : "false")
       << "}}";
  }
  for (const Instant& i : instants_) {
    sep();
    os << "{\"name\":\"" << json_escape(i.name)
       << "\",\"cat\":\"job\",\"ph\":\"i\",\"s\":\"g\",\"ts\":" << to_us(i.at)
       << ",\"pid\":0,\"tid\":0}";
  }
  os << "]}";
}

}  // namespace ssr
