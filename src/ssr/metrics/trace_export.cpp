#include "ssr/metrics/trace_export.h"

#include <sstream>
#include <utility>

#include "ssr/common/check.h"
#include "ssr/metrics/json.h"
#include "ssr/sched/engine.h"

namespace ssr {
namespace {

/// 1 simulated second -> 1000 trace microseconds (1 ms).
long long to_us(SimTime t) { return static_cast<long long>(t * 1000.0); }

}  // namespace

std::uint32_t TraceExporter::track_of(const std::string& tenant) {
  if (tenant.empty()) return 0;
  auto it = track_index_.find(tenant);
  if (it == track_index_.end()) {
    tracks_.push_back(tenant);
    it = track_index_
             .emplace(tenant, static_cast<std::uint32_t>(tracks_.size() - 1))
             .first;
  }
  return it->second;
}

void TraceExporter::record_task_started(SimTime now, TaskId task, SlotId slot,
                                        std::string job_name,
                                        const std::string& tenant) {
  Attempt a;
  a.task = task;
  a.slot = slot;
  a.start = now;
  a.job_name = std::move(job_name);
  a.track = track_of(tenant);
  open_[task] = events_.size();
  events_.push_back(std::move(a));
}

void TraceExporter::close_attempt(TaskId task, SlotId slot, SimTime at,
                                  bool killed) {
  auto it = open_.find(task);
  SSR_CHECK_MSG(it != open_.end(), "finish/kill for unknown attempt");
  Attempt& a = events_[it->second];
  SSR_CHECK_EQ(a.slot, slot);  // attempt must finish on its start slot
  a.end = at;
  a.killed = killed;
  open_.erase(it);
}

void TraceExporter::record_task_finished(SimTime now, TaskId task,
                                         SlotId slot) {
  close_attempt(task, slot, now, /*killed=*/false);
}

void TraceExporter::record_task_killed(SimTime now, TaskId task, SlotId slot) {
  close_attempt(task, slot, now, /*killed=*/true);
}

void TraceExporter::record_instant(std::string name, SimTime at) {
  instants_.push_back({std::move(name), at});
}

void TraceExporter::on_task_started(const Engine& engine, TaskId task,
                                    SlotId slot) {
  const std::string* tenant =
      tenant_of_ ? tenant_of_(task.stage.job) : nullptr;
  record_task_started(engine.sim().now(), task, slot,
                      engine.job_name(task.stage.job),
                      tenant != nullptr ? *tenant : std::string());
}

void TraceExporter::on_task_finished(const Engine& engine, TaskId task,
                                     SlotId slot) {
  record_task_finished(engine.sim().now(), task, slot);
}

void TraceExporter::on_task_killed(const Engine& engine, TaskId task,
                                   SlotId slot) {
  record_task_killed(engine.sim().now(), task, slot);
}

void TraceExporter::on_job_submitted(const Engine& engine, JobId job) {
  record_instant("submit " + engine.job_name(job), engine.sim().now());
}

void TraceExporter::on_job_finished(const Engine& engine, JobId job) {
  record_instant("finish " + engine.job_name(job), engine.sim().now());
}

void TraceExporter::write_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  // Name the process tracks up front (metadata events); the viewer then
  // groups each tenant's slot timelines under its own named process.
  for (std::uint32_t pid = 0; pid < tracks_.size(); ++pid) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(tracks_[pid])
       << "\"}}";
  }
  for (const Attempt& a : events_) {
    std::ostringstream name;
    name << a.job_name << " " << a.task;
    if (a.killed) name << " (killed)";
    const SimTime end = a.end >= 0.0 ? a.end : a.start;
    sep();
    os << "{\"name\":\"" << json_escape(name.str())
       << "\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":" << to_us(a.start)
       << ",\"dur\":" << to_us(end - a.start) << ",\"pid\":" << a.track
       << ",\"tid\":" << a.slot.v << ",\"args\":{\"attempt\":"
       << a.task.attempt << ",\"killed\":" << (a.killed ? "true" : "false")
       << "}}";
  }
  for (const Instant& i : instants_) {
    sep();
    os << "{\"name\":\"" << json_escape(i.name)
       << "\",\"cat\":\"job\",\"ph\":\"i\",\"s\":\"g\",\"ts\":" << to_us(i.at)
       << ",\"pid\":0,\"tid\":0}";
  }
  os << "]}";
}

}  // namespace ssr
