// Minimal JSON string escaping shared by the metrics exporters (registry
// JSON, Chrome-trace export).  Only escaping lives here — the exporters
// hand-build their documents, which keeps the dependency surface at zero.
#pragma once

#include <iomanip>
#include <sstream>
#include <string>

namespace ssr {

/// Escape quotes, backslashes and control characters for embedding `s` in a
/// JSON string literal.  Non-ASCII bytes pass through untouched (valid UTF-8
/// stays valid).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c);
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace ssr
