// Registry wiring for the scheduling engine.
//
// EngineMetrics is the EngineObserver that feeds a MetricsRegistry from the
// live event stream.  Every series carries a {policy=<name>} label group, so
// reports from different scheduler configurations (nossr / ssr / carve-out)
// stay separable in one registry; when a tenant resolver is installed (the
// VirtualClusterManager's tenant_of), job- and task-level series are
// additionally recorded under {policy, tenant} label groups, which is what
// the per-tenant isolation dashboards aggregate.
//
// Two free functions close the loop on state that is not event-shaped:
// record_recovery() snapshots the RecoveryStats counters and
// record_tenant_stats() the VirtualClusterManager's admission ledger into
// gauge/counter series at end of run.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "ssr/common/ids.h"
#include "ssr/common/time.h"
#include "ssr/metrics/collectors.h"
#include "ssr/metrics/registry.h"
#include "ssr/sched/types.h"

namespace ssr {

class VirtualClusterManager;

/// Default duration-histogram bounds (seconds): exponential 0.5 .. 512.
std::vector<double> default_duration_bounds();

class EngineMetrics : public EngineObserver {
 public:
  /// Series are created eagerly (so an empty run still exports a complete,
  /// all-zero document) under the {policy=`policy`} label group.
  EngineMetrics(MetricsRegistry& registry, std::string policy);

  /// Resolve an admitted job to its tenant; nullptr = unmetered.  Install
  /// before the engine starts stepping (VirtualClusterManager::tenant_of is
  /// the canonical resolver).
  void set_tenant_resolver(
      std::function<const std::string*(JobId)> resolver) {
    tenant_of_ = std::move(resolver);
  }

  void on_job_submitted(const Engine& engine, JobId job) override;
  void on_job_finished(const Engine& engine, JobId job) override;
  void on_stage_submitted(const Engine& engine, StageId stage) override;
  void on_stage_finished(const Engine& engine, StageId stage) override;
  void on_task_started(const Engine& engine, TaskId task, SlotId slot) override;
  void on_task_finished(const Engine& engine, TaskId task,
                        SlotId slot) override;
  void on_task_killed(const Engine& engine, TaskId task, SlotId slot) override;
  void on_task_failed(const Engine& engine, TaskId task, SlotId slot) override;
  void on_task_requeued(const Engine& engine, TaskId task) override;
  void on_stage_invalidated(const Engine& engine, StageId stage) override;
  void on_slot_failed(const Engine& engine, SlotId slot) override;
  void on_slot_recovered(const Engine& engine, SlotId slot) override;
  void on_slot_reserved(const Engine& engine, SlotId slot,
                        const Reservation& reservation) override;
  void on_reservation_released(const Engine& engine, SlotId slot,
                               ReservationEndReason reason) override;
  void on_run_complete(const Engine& engine) override;

 private:
  /// {policy, tenant} group for `job`, or nullptr when unresolvable.
  MetricGroup* tenant_group(JobId job);

  MetricsRegistry& registry_;
  std::string policy_;
  MetricGroup policy_group_;
  std::function<const std::string*(JobId)> tenant_of_;
  /// Tenant label groups are materialized lazily, one per tenant name.
  std::unordered_map<std::string, MetricGroup> tenant_groups_;
  /// Start times of in-flight attempts (task-duration histogram).
  std::unordered_map<TaskId, SimTime> started_at_;
};

/// Snapshot the fault-injection outcome counters under {policy=`policy`}.
void record_recovery(MetricsRegistry& registry, const RecoveryStats& stats,
                     const std::string& policy);

/// Snapshot every tenant's admission/SLO ledger under {tenant=<name>} label
/// groups (shares, admission counts, queue delays, peak demand).
void record_tenant_stats(MetricsRegistry& registry,
                         const VirtualClusterManager& vcm);

}  // namespace ssr
