#include "ssr/metrics/trace_capture.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "ssr/common/check.h"
#include "ssr/sched/engine.h"

namespace ssr {
namespace {

constexpr char kMagic[8] = {'S', 'S', 'R', 'T', 'R', 'A', 'C', 'E'};
constexpr std::size_t kMagicSize = sizeof(kMagic);

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// --- Little-endian writers ---------------------------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void put_task(std::string& out, TaskId task) {
  put_u32(out, task.stage.job.v);
  put_u32(out, task.stage.index);
  put_u32(out, task.index);
  put_u32(out, task.attempt);
}

// --- Bounds-checked reader ---------------------------------------------------

struct Cursor {
  const std::string& buf;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    SSR_CHECK_MSG(pos + n <= buf.size(),
                  "truncated trace: need " << n << " bytes at offset " << pos
                                           << ", have " << buf.size() - pos);
  }
  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(buf[pos++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos++]))
           << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[pos++]))
           << (8 * i);
    }
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s = buf.substr(pos, n);
    pos += n;
    return s;
  }
  TaskId task() {
    TaskId t;
    t.stage.job.v = u32();
    t.stage.index = u32();
    t.index = u32();
    t.attempt = u32();
    return t;
  }
};

}  // namespace

// --- TraceRecorder -----------------------------------------------------------

TraceRecorder::TraceRecorder(std::uint32_t num_nodes, std::uint32_t num_slots,
                             std::uint64_t seed, std::string policy,
                             bool counts_expired) {
  header_.num_nodes = num_nodes;
  header_.num_slots = num_slots;
  header_.seed = seed;
  header_.policy = std::move(policy);
  header_.counts_expired = counts_expired;
}

TraceEvent& TraceRecorder::push(const Engine& engine, TraceEventKind kind) {
  events_.emplace_back();
  TraceEvent& e = events_.back();
  e.kind = kind;
  e.time = engine.sim().now();
  return e;
}

void TraceRecorder::on_job_submitted(const Engine& engine, JobId job) {
  TraceEvent& e = push(engine, TraceEventKind::kJobSubmitted);
  e.job = job;
  e.job_name = engine.job_name(job);
  e.priority = engine.graph(job).priority();
  if (tenant_of_) {
    const std::string* tenant = tenant_of_(job);
    if (tenant != nullptr) e.tenant = *tenant;
  }
}

void TraceRecorder::on_job_finished(const Engine& engine, JobId job) {
  push(engine, TraceEventKind::kJobFinished).job = job;
}

void TraceRecorder::on_stage_submitted(const Engine& engine, StageId stage) {
  TraceEvent& e = push(engine, TraceEventKind::kStageSubmitted);
  e.stage = stage;
  e.parents = engine.graph(stage.job).stage(stage.index).parents;
}

void TraceRecorder::on_stage_finished(const Engine& engine, StageId stage) {
  push(engine, TraceEventKind::kStageFinished).stage = stage;
}

void TraceRecorder::on_task_started(const Engine& engine, TaskId task,
                                    SlotId slot) {
  TraceEvent& e = push(engine, TraceEventKind::kTaskStarted);
  e.task = task;
  e.slot = slot;
  // Same locality rule as TaskStatsCollector::on_task_started, captured so
  // a replay reproduces local_starts without a StageRuntime.
  const StageRuntime* rt = engine.stage_runtime(task.stage);
  if (rt != nullptr && task.attempt == 0 && task.index < rt->parallelism() &&
      rt->original(task.index).local) {
    e.local = true;
  }
}

void TraceRecorder::on_task_finished(const Engine& engine, TaskId task,
                                     SlotId slot) {
  TraceEvent& e = push(engine, TraceEventKind::kTaskFinished);
  e.task = task;
  e.slot = slot;
}

void TraceRecorder::on_task_killed(const Engine& engine, TaskId task,
                                   SlotId slot) {
  TraceEvent& e = push(engine, TraceEventKind::kTaskKilled);
  e.task = task;
  e.slot = slot;
}

void TraceRecorder::on_task_failed(const Engine& engine, TaskId task,
                                   SlotId slot) {
  TraceEvent& e = push(engine, TraceEventKind::kTaskFailed);
  e.task = task;
  e.slot = slot;
}

void TraceRecorder::on_task_requeued(const Engine& engine, TaskId task) {
  push(engine, TraceEventKind::kTaskRequeued).task = task;
}

void TraceRecorder::on_stage_invalidated(const Engine& engine, StageId stage) {
  push(engine, TraceEventKind::kStageInvalidated).stage = stage;
}

void TraceRecorder::on_slot_failed(const Engine& engine, SlotId slot) {
  push(engine, TraceEventKind::kSlotFailed).slot = slot;
}

void TraceRecorder::on_slot_recovered(const Engine& engine, SlotId slot) {
  push(engine, TraceEventKind::kSlotRecovered).slot = slot;
}

void TraceRecorder::on_slot_reserved(const Engine& engine, SlotId slot,
                                     const Reservation& reservation) {
  TraceEvent& e = push(engine, TraceEventKind::kSlotReserved);
  e.slot = slot;
  e.job = reservation.job;
  e.priority = reservation.priority;
  e.deadline = reservation.deadline;
  e.for_stage = reservation.for_stage;
  e.token = reservation.token;
}

void TraceRecorder::on_reservation_released(const Engine& engine, SlotId slot,
                                            ReservationEndReason reason) {
  TraceEvent& e = push(engine, TraceEventKind::kReservationReleased);
  e.slot = slot;
  e.reason = reason;
}

void TraceRecorder::on_run_complete(const Engine& engine) {
  push(engine, TraceEventKind::kRunComplete);
}

// --- Serialization -----------------------------------------------------------

std::string serialize_trace(const TraceHeader& header,
                            const std::vector<TraceEvent>& events) {
  std::string body;
  body.reserve(64 + events.size() * 32);
  put_u32(body, header.version);
  put_u32(body, header.num_nodes);
  put_u32(body, header.num_slots);
  put_u64(body, header.seed);
  put_u8(body, header.counts_expired ? 1 : 0);
  put_u64(body, header.suspicions);
  put_u64(body, header.false_suspicions);
  put_str(body, header.policy);
  put_u64(body, events.size());
  for (const TraceEvent& e : events) {
    put_u8(body, static_cast<std::uint8_t>(e.kind));
    put_f64(body, e.time);
    switch (e.kind) {
      case TraceEventKind::kJobSubmitted:
        put_u32(body, e.job.v);
        put_i32(body, e.priority);
        put_str(body, e.job_name);
        put_str(body, e.tenant);
        break;
      case TraceEventKind::kJobFinished:
        put_u32(body, e.job.v);
        break;
      case TraceEventKind::kStageSubmitted:
        put_u32(body, e.stage.job.v);
        put_u32(body, e.stage.index);
        put_u32(body, static_cast<std::uint32_t>(e.parents.size()));
        for (std::uint32_t p : e.parents) put_u32(body, p);
        break;
      case TraceEventKind::kStageFinished:
      case TraceEventKind::kStageInvalidated:
        put_u32(body, e.stage.job.v);
        put_u32(body, e.stage.index);
        break;
      case TraceEventKind::kTaskStarted:
        put_task(body, e.task);
        put_u32(body, e.slot.v);
        put_u8(body, e.local ? 1 : 0);
        break;
      case TraceEventKind::kTaskFinished:
      case TraceEventKind::kTaskKilled:
      case TraceEventKind::kTaskFailed:
        put_task(body, e.task);
        put_u32(body, e.slot.v);
        break;
      case TraceEventKind::kTaskRequeued:
        put_task(body, e.task);
        break;
      case TraceEventKind::kSlotFailed:
      case TraceEventKind::kSlotRecovered:
        put_u32(body, e.slot.v);
        break;
      case TraceEventKind::kSlotReserved:
        put_u32(body, e.slot.v);
        put_u32(body, e.job.v);
        put_i32(body, e.priority);
        put_f64(body, e.deadline);
        put_u32(body, e.for_stage.job.v);
        put_u32(body, e.for_stage.index);
        put_u64(body, e.token);
        break;
      case TraceEventKind::kReservationReleased:
        put_u32(body, e.slot.v);
        put_u8(body, static_cast<std::uint8_t>(e.reason));
        break;
      case TraceEventKind::kRunComplete:
        break;
    }
  }
  std::string out;
  out.reserve(kMagicSize + body.size() + 8);
  out.append(kMagic, kMagicSize);
  out.append(body);
  put_u64(out, fnv1a(body));
  return out;
}

std::string TraceRecorder::serialize() const {
  return serialize_trace(header_, events_);
}

void TraceRecorder::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  SSR_CHECK_MSG(out.good(), "cannot open trace file " << path
                                                      << " for writing");
  const std::string bytes = serialize();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  SSR_CHECK_MSG(out.good(), "short write to trace file " << path);
}

// --- TraceReplayer -----------------------------------------------------------

TraceReplayer TraceReplayer::from_bytes(const std::string& bytes) {
  SSR_CHECK_MSG(bytes.size() >= kMagicSize + 4 + 8,
                "truncated trace: " << bytes.size()
                                    << " bytes is too short to be an SSR "
                                       "trace");
  SSR_CHECK_MSG(std::memcmp(bytes.data(), kMagic, kMagicSize) == 0,
                "not an SSR trace (bad magic)");
  const std::string body =
      bytes.substr(kMagicSize, bytes.size() - kMagicSize - 8);
  Cursor tail{bytes, bytes.size() - 8};
  const std::uint64_t stored = tail.u64();
  // Version is validated before the checksum so a reader that is simply too
  // old/new reports the skew, not "corrupt".
  Cursor cur{body, 0};
  const std::uint32_t version = cur.u32();
  SSR_CHECK_MSG(version == kTraceVersion,
                "trace version mismatch: file has v"
                    << version << ", this reader supports v" << kTraceVersion);
  SSR_CHECK_MSG(fnv1a(body) == stored,
                "trace checksum mismatch (corrupt or truncated file)");

  TraceReplayer replayer;
  replayer.header_.version = version;
  replayer.header_.num_nodes = cur.u32();
  replayer.header_.num_slots = cur.u32();
  replayer.header_.seed = cur.u64();
  replayer.header_.counts_expired = cur.u8() != 0;
  replayer.header_.suspicions = cur.u64();
  replayer.header_.false_suspicions = cur.u64();
  replayer.header_.policy = cur.str();
  const std::uint64_t count = cur.u64();
  replayer.events_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent e;
    const std::uint8_t kind = cur.u8();
    SSR_CHECK_MSG(
        kind >= static_cast<std::uint8_t>(TraceEventKind::kJobSubmitted) &&
            kind <= static_cast<std::uint8_t>(TraceEventKind::kRunComplete),
        "unknown trace event kind " << static_cast<int>(kind) << " at event "
                                    << i);
    e.kind = static_cast<TraceEventKind>(kind);
    e.time = cur.f64();
    switch (e.kind) {
      case TraceEventKind::kJobSubmitted:
        e.job.v = cur.u32();
        e.priority = cur.i32();
        e.job_name = cur.str();
        e.tenant = cur.str();
        break;
      case TraceEventKind::kJobFinished:
        e.job.v = cur.u32();
        break;
      case TraceEventKind::kStageSubmitted: {
        e.stage.job.v = cur.u32();
        e.stage.index = cur.u32();
        const std::uint32_t n = cur.u32();
        e.parents.reserve(n);
        for (std::uint32_t p = 0; p < n; ++p) e.parents.push_back(cur.u32());
        break;
      }
      case TraceEventKind::kStageFinished:
      case TraceEventKind::kStageInvalidated:
        e.stage.job.v = cur.u32();
        e.stage.index = cur.u32();
        break;
      case TraceEventKind::kTaskStarted:
        e.task = cur.task();
        e.slot.v = cur.u32();
        e.local = cur.u8() != 0;
        break;
      case TraceEventKind::kTaskFinished:
      case TraceEventKind::kTaskKilled:
      case TraceEventKind::kTaskFailed:
        e.task = cur.task();
        e.slot.v = cur.u32();
        break;
      case TraceEventKind::kTaskRequeued:
        e.task = cur.task();
        break;
      case TraceEventKind::kSlotFailed:
      case TraceEventKind::kSlotRecovered:
        e.slot.v = cur.u32();
        break;
      case TraceEventKind::kSlotReserved:
        e.slot.v = cur.u32();
        e.job.v = cur.u32();
        e.priority = cur.i32();
        e.deadline = cur.f64();
        e.for_stage.job.v = cur.u32();
        e.for_stage.index = cur.u32();
        e.token = cur.u64();
        break;
      case TraceEventKind::kReservationReleased: {
        e.slot.v = cur.u32();
        const std::uint8_t reason = cur.u8();
        SSR_CHECK_MSG(
            reason <= static_cast<std::uint8_t>(
                          ReservationEndReason::SlotFailed),
            "unknown reservation end reason " << static_cast<int>(reason));
        e.reason = static_cast<ReservationEndReason>(reason);
        break;
      }
      case TraceEventKind::kRunComplete:
        break;
    }
    replayer.events_.push_back(std::move(e));
  }
  SSR_CHECK_MSG(cur.pos == body.size(),
                "trace has " << body.size() - cur.pos
                             << " trailing bytes after the last event");
  return replayer;
}

TraceReplayer TraceReplayer::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SSR_CHECK_MSG(in.good(), "cannot open trace file " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_bytes(buf.str());
}

void TraceReplayer::replay(const std::vector<TraceConsumer*>& consumers) const {
  for (TraceConsumer* c : consumers) c->on_trace_begin(header_);
  for (const TraceEvent& e : events_) {
    for (TraceConsumer* c : consumers) c->on_trace_event(e);
  }
}

// --- TraceExportFeeder -------------------------------------------------------

void TraceExportFeeder::on_trace_event(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kJobSubmitted: {
      jobs_[event.job] = {event.job_name, event.tenant};
      exporter_.record_instant("submit " + event.job_name, event.time);
      break;
    }
    case TraceEventKind::kJobFinished: {
      auto it = jobs_.find(event.job);
      SSR_CHECK_MSG(it != jobs_.end(),
                    "trace finishes " << event.job << " before submitting it");
      exporter_.record_instant("finish " + it->second.first, event.time);
      break;
    }
    case TraceEventKind::kTaskStarted: {
      auto it = jobs_.find(event.task.stage.job);
      SSR_CHECK_MSG(it != jobs_.end(), "trace starts a task of "
                                           << event.task.stage.job
                                           << " before submitting the job");
      exporter_.record_task_started(event.time, event.task, event.slot,
                                    it->second.first, it->second.second);
      break;
    }
    case TraceEventKind::kTaskFinished:
      exporter_.record_task_finished(event.time, event.task, event.slot);
      break;
    case TraceEventKind::kTaskKilled:
    case TraceEventKind::kTaskFailed:
      exporter_.record_task_killed(event.time, event.task, event.slot);
      break;
    default:
      break;
  }
}

}  // namespace ssr
