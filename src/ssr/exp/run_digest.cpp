#include "ssr/exp/run_digest.h"

namespace ssr {

void append_run_digest(std::ostringstream& out, const std::string& title,
                       const RunResult& run) {
  out << std::hexfloat;
  out << "run " << title << " jobs=" << run.jobs.size() << '\n';
  for (const JobResult& j : run.jobs) {
    out << "  job " << j.id << ' ' << j.name << " priority=" << j.priority
        << " jct=" << j.jct << " busy=" << j.busy_seconds
        << " reserved_idle=" << j.reserved_idle_seconds << '\n';
  }
  out << "  makespan " << run.makespan << '\n';
  out << "  busy_time " << run.busy_time << '\n';
  out << "  reserved_idle_time " << run.reserved_idle_time << '\n';
  out << "  tasks started=" << run.task_totals.tasks_started
      << " finished=" << run.task_totals.tasks_finished
      << " killed=" << run.task_totals.tasks_killed
      << " copies=" << run.task_totals.copies_started
      << " local=" << run.task_totals.local_starts << '\n';
  out << "  reservations_expired " << run.reservations_expired << '\n';
  // Failure-free digests (fig12/fig14/fig15) stay byte-identical: the
  // recovery block only appears once a run actually saw an injected fault.
  if (run.recovery.slots_failed > 0 || run.dead_time > 0.0) {
    out << "  recovery slots_failed=" << run.recovery.slots_failed
        << " slots_recovered=" << run.recovery.slots_recovered
        << " tasks_failed=" << run.recovery.tasks_failed
        << " tasks_requeued=" << run.recovery.tasks_requeued
        << " failures_masked=" << run.recovery.failures_masked
        << " stages_invalidated=" << run.recovery.stages_invalidated
        << " reservations_broken=" << run.recovery.reservations_broken << '\n';
    out << "  dead_time " << run.dead_time << '\n';
  }
  // Detector-off runs (every pre-existing golden) emit no detector line, so
  // their committed digests stay byte-identical.
  if (run.suspicions > 0) {
    out << "  detector suspicions=" << run.suspicions
        << " false=" << run.false_suspicions << '\n';
  }
  // The run completed without a CheckError; in -DSSR_AUDIT=ON builds this
  // line also certifies the invariant auditor saw no violation.
  out << "  audit_clean 1\n";
}

}  // namespace ssr
