// Shared engine wiring for scenario runners and equivalence tests.
//
// ScenarioHarness bundles exactly what run_scenario() builds around an
// Engine — reservation hook, metrics collectors, failure injector, and
// (under -DSSR_AUDIT=ON) the invariant auditor — in one construction order,
// so the closed harness (scenario.cpp), the open-system runner
// (open_scenario.cpp), and the open-vs-closed equivalence suite all drive
// *identically configured* engines.  The bit-identical guarantee between
// run_scenario() and incremental submit/advance_to stepping rests on this
// shared wiring: any attach-order drift would shift observer callback order
// and break digest equality.
#pragma once

#include <memory>
#include <vector>

#include "ssr/exp/scenario.h"
#include "ssr/metrics/collectors.h"
#include "ssr/sched/engine.h"
#include "ssr/sim/failure_detector.h"
#include "ssr/sim/failure_injector.h"

namespace ssr::audit {
class InvariantAuditor;
}  // namespace ssr::audit

namespace ssr {

class EngineMetrics;
class ReservationManager;
class TraceRecorder;

class ScenarioHarness {
 public:
  /// Builds the engine and attaches, in order: reservation hook, task-stats
  /// collector, recovery-stats collector, trace recorder (only when
  /// options.capture_path is set), metrics observer (only when
  /// options.metrics is set), failure injector (only for non-empty detected
  /// schedules — a failure-free run stays bit-identical to one that never
  /// saw an injector), invariant auditor (only when the library was built
  /// with -DSSR_AUDIT=ON).  The injector is driven by the failure
  /// detector's *detected* schedule (sim/failure_detector.h), which equals
  /// the ground truth verbatim when the detector is off.
  ScenarioHarness(const ClusterSpec& cluster, const RunOptions& options);
  ~ScenarioHarness();

  ScenarioHarness(const ScenarioHarness&) = delete;
  ScenarioHarness& operator=(const ScenarioHarness&) = delete;

  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }

  /// Attached trace recorder, or nullptr (no capture requested).  Open
  /// runners install the tenant resolver through this.
  TraceRecorder* recorder() { return recorder_.get(); }

  /// Attached metrics observer, or nullptr (no registry provided).
  EngineMetrics* engine_metrics() { return metrics_.get(); }

  /// The detector's verdict on options.failures (pass-through when off).
  const DetectionOutcome& detection() const { return detection_; }

  /// Collect the RunResult for the given jobs (submission order) after the
  /// engine drained.  Settles cluster accounting first (idempotent).  Also
  /// writes the capture file when options.capture_path was set.
  RunResult collect(const std::vector<JobId>& ids);

 private:
  Engine engine_;
  TaskStatsCollector task_stats_;
  RecoveryStatsCollector recovery_stats_;
  DetectionOutcome detection_;
  FailureInjector injector_;
  const ReservationManager* manager_ = nullptr;
  std::unique_ptr<TraceRecorder> recorder_;
  std::unique_ptr<EngineMetrics> metrics_;
  /// Registry + policy label for the end-of-run snapshots collect() records
  /// (recovery counters); non-owning, mirrors options.metrics.
  MetricsRegistry* registry_ = nullptr;
  std::string metrics_policy_;
  std::string capture_path_;
  /// Present only when ssr_exp was compiled with SSR_AUDIT_ENABLED; kept as
  /// a pointer so this header stays macro-free (no ODR drift between the
  /// library and test translation units).
  std::unique_ptr<audit::InvariantAuditor> auditor_;
};

}  // namespace ssr
