#include "ssr/exp/open_scenario.h"

#include <utility>

#include "ssr/audit/tenant_audit.h"
#include "ssr/audit/violation.h"
#include "ssr/common/check.h"
#include "ssr/exp/harness.h"
#include "ssr/metrics/engine_metrics.h"
#include "ssr/metrics/trace_capture.h"

namespace ssr {

RunResult run_open_scenario(const ClusterSpec& cluster,
                            const OpenScenarioSpec& spec,
                            std::vector<OpenArrival> arrivals,
                            const RunOptions& options) {
  ScenarioHarness harness(cluster, options);
  Engine& engine = harness.engine();
  VirtualClusterManager vcm(engine);
  for (const VirtualClusterSpec& tenant : spec.tenants) {
    vcm.add_cluster(tenant);
  }
  // Tenancy is registered at admission, before the arrival event fires, so
  // tenant_of resolves by the time on_job_submitted reaches any observer.
  const auto tenant_resolver = [&vcm](JobId job) { return vcm.tenant_of(job); };
  if (TraceRecorder* recorder = harness.recorder()) {
    recorder->set_tenant_resolver(tenant_resolver);
  }
  if (EngineMetrics* metrics = harness.engine_metrics()) {
    metrics->set_tenant_resolver(tenant_resolver);
  }

  SimTime last = 0.0;
  for (OpenArrival& arrival : arrivals) {
    SSR_CHECK_MSG(arrival.at >= last,
                  "open arrivals must be sorted by time (job '"
                      << arrival.spec.name << "' at " << arrival.at
                      << " after " << last << ")");
    last = arrival.at;
    engine.advance_to(arrival.at);
    vcm.submit_job(arrival.tenant, std::move(arrival.spec));
  }
  engine.drain();

#if defined(SSR_AUDIT_ENABLED)
  {
    const std::vector<audit::Violation> violations =
        audit::audit_virtual_clusters(vcm, engine.cluster().num_slots());
    SSR_CHECK_MSG(violations.empty(), audit::format_report(violations));
  }
#endif

  // Admitted jobs got dense ids in admission order; rejected submissions
  // never entered the engine.
  std::vector<JobId> ids;
  ids.reserve(engine.num_jobs());
  for (std::uint32_t i = 0; i < engine.num_jobs(); ++i) {
    ids.push_back(JobId{i});
  }
  RunResult result = harness.collect(ids);

  result.tenants.reserve(spec.tenants.size());
  for (const std::string& name : vcm.tenant_names()) {
    const VirtualClusterSpec& shares = vcm.spec(name);
    const TenantStats& stats = vcm.stats(name);
    TenantResult tr;
    tr.name = name;
    tr.min_slots = shares.min_slots;
    tr.max_slots = shares.max_slots;
    tr.submitted = stats.submitted;
    tr.admitted = stats.admitted;
    tr.rejected = stats.rejected;
    tr.completed = stats.completed;
    tr.queued = stats.queued_total;
    tr.peak_demand = stats.peak_demand_in_flight;
    tr.mean_queue_delay = stats.mean_queue_delay();
    tr.max_queue_delay = stats.max_queue_delay;
    tr.mean_jct = stats.mean_jct();
    result.tenants.push_back(std::move(tr));
  }
  if (options.metrics != nullptr) {
    record_tenant_stats(*options.metrics, vcm);
  }
  return result;
}

}  // namespace ssr
