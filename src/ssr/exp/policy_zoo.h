// The policy zoo (DESIGN.md §14): one registry mapping policy names to
// RunOptions wiring, shared by the `--policy` CLI flag, the cross-policy
// shoot-out bench, and the per-policy differential / chaos / golden test
// legs — so every consumer agrees on what, say, "table" means.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ssr/exp/scenario.h"
#include "ssr/sched/policies/table_driven.h"

namespace ssr {

enum class ZooPolicy {
  kBaseline,     ///< work-conserving scheduler, no reservations (Sec. II)
  kSsr,          ///< speculative slot reservation (the paper's mechanism)
  kDagps,        ///< DAGPS/Graphene critical-path-first selector
  kPacking,      ///< multi-resource packing selector (big-first, best-fit)
  kTableDriven,  ///< table-driven time-partitioned reservations (litmus-rt)
};

/// Every policy, in the fixed order the shoot-out bench and the test legs
/// iterate (stable: bench record names and golden files key off it).
const std::vector<ZooPolicy>& all_zoo_policies();

/// Short stable name: "baseline", "ssr", "dagps", "packing", "table".
const char* zoo_policy_name(ZooPolicy policy);

/// Inverse of zoo_policy_name; nullopt for unknown names.
std::optional<ZooPolicy> parse_zoo_policy(const std::string& name);

/// The default timetable the zoo's table-driven baseline runs: a 120 s major
/// cycle whose first half is a reservation window holding 10% of the
/// cluster (at least one slot) for jobs with priority >= 1.
TableDrivenConfig default_table_config(const ClusterSpec& cluster);

/// Wire `options` to run under `policy`: clears any previous policy choice
/// (ssr / hook_factory / selector), then installs the policy's own.  The
/// cluster spec sizes the table-driven carve-out.
void apply_zoo_policy(ZooPolicy policy, const ClusterSpec& cluster,
                      RunOptions& options);

}  // namespace ssr
