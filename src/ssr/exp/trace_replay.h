// Bit-identical RunResult reconstruction from a trace capture.
//
// ReplayResultBuilder consumes a captured observer stream
// (metrics/trace_capture.h) and rebuilds the RunResult the live harness
// produced — without an Engine and without re-simulating.  Bit-identity
// (digest byte-equality, not approximate equality) holds because every
// accumulator mirrors its live counterpart's arithmetic and evaluation
// order exactly:
//
//   * slot time accounting replays Cluster::accrue verbatim — per-slot
//     elapsed = now - state_since accumulators, advanced at precisely the
//     cluster transitions the observer events mark, settled in ascending
//     slot-id order at run completion (Engine::drain's settle);
//   * per-job busy seconds and task counters replay TaskStatsCollector's
//     event-order accumulation (std::map<JobId, ...>, totals folded in
//     ascending job order);
//   * recovery counters replay RecoveryStatsCollector's failed-pending set
//     logic;
//   * reservations_expired counts Expired-reason releases, which equals
//     ReservationManager::reservations_expired() (the manager erases its
//     record before self-initiated releases, so only engine expiry releases
//     reach its on_slot_idle reconciliation) — reconstructed only when the
//     capture header says a manager was installed;
//   * job rows come out in ascending dense JobId order, which is submission
//     order for both the closed and the open harness.
//
// Not reconstructed: RunResult::tenants (the VirtualClusterManager's
// admission ledger sees rejected submissions that never reach the engine's
// observer seam; the capture records admitted work only).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "ssr/exp/scenario.h"
#include "ssr/metrics/trace_capture.h"

namespace ssr {

class ReplayResultBuilder : public TraceConsumer {
 public:
  void on_trace_begin(const TraceHeader& header) override;
  void on_trace_event(const TraceEvent& event) override;

  /// True once the capture's kRunComplete event was consumed.
  bool complete() const { return complete_; }

  /// The reconstructed result; valid only when complete().
  const RunResult& result() const;

 private:
  struct SlotMirror {
    // Mirrors Slot's accounting fields one-for-one (sim/cluster.h).
    int state = 0;  ///< 0 Idle, 1 Busy, 2 ReservedIdle, 3 Dead
    SimTime state_since = 0.0;
    double busy = 0.0;
    double reserved_idle = 0.0;
    double dead = 0.0;
    JobId reserved_job;  ///< valid while state == ReservedIdle
  };
  struct JobMirror {
    std::string name;
    int priority = 0;
    SimTime submit = 0.0;
    SimTime finish = 0.0;
  };

  void accrue(SlotMirror& s, SimTime now);
  SlotMirror& slot_mirror(SlotId slot);
  void record_busy(TaskId task, SimTime now);
  void finalize(SimTime now);

  TraceHeader header_;
  bool complete_ = false;
  RunResult result_;

  std::vector<SlotMirror> slots_;
  /// Mirrors Cluster::reserved_idle_by_job_ (accumulation order preserved:
  /// the same accrue calls happen at the same event points).
  std::unordered_map<JobId, double> reserved_idle_by_job_;
  std::map<JobId, JobMirror> jobs_;
  /// TaskStatsCollector mirror.
  std::map<JobId, JobTaskStats> task_stats_;
  std::unordered_map<TaskId, SimTime> started_at_;
  /// RecoveryStatsCollector mirror.
  RecoveryStats recovery_;
  std::set<std::tuple<JobId, std::uint32_t, std::uint32_t>> failed_pending_;
  std::uint64_t expired_releases_ = 0;
};

/// Convenience: replay a whole capture into a RunResult in one call.
RunResult replay_run_result(const TraceReplayer& replayer);

}  // namespace ssr
