// Parallel sweep runner with deterministic replay.
//
// Every figure in the paper is a sweep over (scenario x seed x knob).  The
// bench binaries used to run those trials serially; SweepRunner executes
// them on a fixed-size ThreadPool instead.  Determinism is preserved by
// construction:
//  * each trial owns a private Engine/Simulator/Rng — no mutable state is
//    shared between concurrently running trials;
//  * per-trial seeds are fixed before execution starts (either taken from
//    the trial's RunOptions or derived as splitmix64(base_seed, index)), so
//    scheduling order of the workers cannot leak into any simulation;
//  * results land in a pre-sized vector at the trial's grid index, so
//    output order equals grid order regardless of completion order.
// The guarantee — bit-identical RunResults for worker counts 1, N, and
// repeated N — is locked in by tests/sweep_determinism_test.cpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ssr/exp/scenario.h"

namespace ssr {

/// Deterministic per-trial seed: a splitmix64 mix of the base seed and the
/// trial's grid index.  Distinct indices give decorrelated streams; the
/// mapping is a pure function, so replaying a sweep (or a single trial of
/// it) never depends on worker count or completion order.
std::uint64_t derive_trial_seed(std::uint64_t base_seed,
                                std::uint64_t trial_index);

/// One cell of a sweep grid: a complete scenario description.
struct Trial {
  ClusterSpec cluster;
  std::vector<JobSpec> jobs;
  RunOptions options;
  /// Grouping key for summaries ("kmeans-alone", "sql/ssr", ...).
  std::string label;
  /// Free-form key/values copied into every emitted row (knob settings).
  std::map<std::string, std::string> tags;
};

struct TrialResult {
  std::size_t index = 0;  ///< position in the input grid
  std::string label;
  std::map<std::string, std::string> tags;
  std::uint64_t seed = 0;  ///< effective engine seed of this trial
  RunResult run;
};

struct SweepOptions {
  /// Worker threads; 0 picks one per hardware core.
  unsigned num_workers = 0;
  /// When set, overrides every trial's options.seed with
  /// derive_trial_seed(*base_seed, index).
  std::optional<std::uint64_t> base_seed;
};

/// Mean / standard error / order statistics of one metric over a group.
struct SummaryStats {
  std::size_t n = 0;
  double mean = 0.0;
  double sem = 0.0;  ///< standard error of the mean
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;

  static SummaryStats of(const std::vector<double>& values);
};

/// Per-label aggregate over a sweep's results.  Built-in metrics: "jct"
/// (one sample per job), "makespan" and "utilization" (one per trial).
/// Benches insert derived metrics (e.g. "slowdown") before emission.
struct GroupSummary {
  std::string label;
  std::size_t trials = 0;
  std::map<std::string, SummaryStats> metrics;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Execute every trial; results are returned in grid order and are
  /// bit-identical for any worker count.  The first trial exception (a
  /// malformed JobSpec, say) is rethrown after in-flight trials finish.
  std::vector<TrialResult> run(const std::vector<Trial>& grid) const;

  /// Effective pool size (hardware_concurrency already resolved).
  unsigned num_workers() const { return num_workers_; }

 private:
  SweepOptions options_;
  unsigned num_workers_ = 1;
};

/// Group results by label, in first-appearance order.
std::vector<GroupSummary> summarize(const std::vector<TrialResult>& results);

/// One row per (trial, job): trial index, label, seed, "tag:<key>" columns
/// (union of keys across the sweep, blank where absent), then per-job and
/// per-trial metrics.
void write_trials_csv(std::ostream& os,
                      const std::vector<TrialResult>& results);

/// One row per (label, metric) with the SummaryStats columns.
void write_summary_csv(std::ostream& os,
                       const std::vector<GroupSummary>& groups);

/// JSON array of group objects: {"label", "trials", "metrics": {name:
/// {n, mean, sem, p50, p95, p99, min, max}}}.
void write_summary_json(std::ostream& os,
                        const std::vector<GroupSummary>& groups);

/// Honour a bench's --csv / --json flags: write per-trial rows and the
/// label-level summary to the requested files (no-op for empty paths).
void emit_sweep_outputs(const BenchArgs& args,
                        const std::vector<TrialResult>& results);

/// Pool sizing from a bench's --jobs flag (0 = all hardware cores).
inline SweepOptions sweep_options(const BenchArgs& args) {
  SweepOptions options;
  options.num_workers = args.jobs;
  return options;
}

}  // namespace ssr
