// Shared perf-bench reporting: every scheduler benchmark (micro and
// wall-clock smoke) funnels its measurements through BenchReporter so CI
// compares one stable JSON shape — BENCH_sched.json — against the committed
// baseline (tools/check_bench_regression.py).
//
// Schema (documented in docs/EXPERIMENTS.md):
//   {
//     "schema": "ssr-bench-sched-v1",
//     "peak_rss_mb": <process peak RSS in MiB at write time>,
//     "records": [
//       {"name": "...", "items_per_second": <rate or 0>,
//        "wall_seconds": <elapsed wall time or 0>},
//       ...
//     ]
//   }
#pragma once

#include <chrono>
#include <iosfwd>
#include <string>
#include <vector>

namespace ssr {

/// One benchmark measurement.  Either field may be 0 when the bench has no
/// meaningful value for it (a throughput micro-bench reports a rate, a
/// wall-clock smoke reports seconds).
struct BenchRecord {
  std::string name;
  double items_per_second = 0.0;
  double wall_seconds = 0.0;
};

/// Wall-clock stopwatch.  Simulated time advances for free; this measures
/// the simulator's own execution cost, which is what the perf layer guards.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Peak resident set size of this process in MiB; 0 if unavailable.
double peak_rss_mb();

/// Accumulates records and writes BENCH_sched.json.
class BenchReporter {
 public:
  void add(BenchRecord record);
  const std::vector<BenchRecord>& records() const { return records_; }

  void write(std::ostream& os) const;
  /// Write to `path`; throws CheckError if the file cannot be opened.
  void write_file(const std::string& path) const;

 private:
  std::vector<BenchRecord> records_;
};

}  // namespace ssr
