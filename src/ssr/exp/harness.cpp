#include "ssr/exp/harness.h"

#include <algorithm>
#include <utility>

#include "ssr/audit/invariant_auditor.h"
#include "ssr/core/reservation_manager.h"
#include "ssr/metrics/engine_metrics.h"
#include "ssr/metrics/trace_capture.h"

namespace ssr {

ScenarioHarness::ScenarioHarness(const ClusterSpec& cluster,
                                 const RunOptions& options)
    : engine_(options.sched, cluster.nodes, cluster.slots_per_node,
              cluster.node_slots, options.seed),
      detection_(
          detect_failures(options.failures, options.detector, cluster.nodes)),
      injector_(detection_.detected),
      capture_path_(options.capture_path) {
  std::unique_ptr<ReservationHook> hook;
  if (options.hook_factory) {
    hook = options.hook_factory();
  } else if (options.ssr) {
    hook = std::make_unique<ReservationManager>(*options.ssr);
  }
  if (hook != nullptr) {
    // The engine owns the hook; keep a typed view for metrics extraction.
    manager_ = dynamic_cast<const ReservationManager*>(hook.get());
    engine_.set_reservation_hook(std::move(hook));
  }
  engine_.add_observer(&task_stats_);
  engine_.add_observer(&recovery_stats_);
  if (!capture_path_.empty()) {
    recorder_ = std::make_unique<TraceRecorder>(
        cluster.nodes, engine_.cluster().num_slots(), options.seed,
        options.metrics_policy, /*counts_expired=*/manager_ != nullptr);
    recorder_->set_detector_outcome(detection_.suspicions.size(),
                                    detection_.false_suspicions());
    engine_.add_observer(recorder_.get());
  }
  if (options.metrics != nullptr) {
    registry_ = options.metrics;
    metrics_policy_ = options.metrics_policy;
    metrics_ = std::make_unique<EngineMetrics>(*options.metrics,
                                               options.metrics_policy);
    engine_.add_observer(metrics_.get());
  }
  if (!detection_.detected.empty()) {
    injector_.attach(engine_.sim(), engine_);
  }
#if defined(SSR_AUDIT_ENABLED)
  // -DSSR_AUDIT=ON: every scenario run (each test case and bench/sweep
  // trial) is audited; the first invariant violation throws CheckError.
  auditor_ = std::make_unique<audit::InvariantAuditor>();
  auditor_->attach(engine_);
#endif
}

ScenarioHarness::~ScenarioHarness() = default;

RunResult ScenarioHarness::collect(const std::vector<JobId>& ids) {
  engine_.cluster().settle(engine_.sim().now());
  RunResult result;
  result.jobs.reserve(ids.size());
  for (JobId id : ids) {
    JobResult jr;
    jr.id = id;
    jr.name = engine_.job_name(id);
    jr.priority = engine_.graph(id).priority();
    jr.submit = engine_.graph(id).submit_time();
    jr.finish = engine_.job_finish_time(id);
    jr.jct = engine_.jct(id);
    jr.busy_seconds = task_stats_.stats(id).busy_seconds;
    jr.reserved_idle_seconds = engine_.cluster().reserved_idle_time_of(id);
    result.jobs.push_back(std::move(jr));
    result.makespan = std::max(result.makespan, engine_.job_finish_time(id));
  }
  result.busy_time = engine_.cluster().total_busy_time();
  result.reserved_idle_time = engine_.cluster().total_reserved_idle_time();
  result.utilization =
      result.makespan > 0.0
          ? result.busy_time /
                (result.makespan *
                 static_cast<double>(engine_.cluster().num_slots()))
          : 0.0;
  if (manager_ != nullptr) {
    result.reservations_expired = manager_->reservations_expired();
  }
  result.task_totals = task_stats_.totals();
  result.recovery = recovery_stats_.stats();
  result.dead_time = engine_.cluster().total_dead_time();
  result.suspicions = detection_.suspicions.size();
  result.false_suspicions = detection_.false_suspicions();
  if (registry_ != nullptr) {
    // End-of-run snapshot of the non-event-shaped state (the per-event
    // series were fed live by the EngineMetrics observer).
    record_recovery(*registry_, result.recovery, metrics_policy_);
  }
  if (recorder_ != nullptr && !capture_path_.empty()) {
    recorder_->write_file(capture_path_);
  }
  return result;
}

}  // namespace ssr
