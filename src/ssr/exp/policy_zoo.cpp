#include "ssr/exp/policy_zoo.h"

#include <algorithm>
#include <memory>

#include "ssr/sched/policies/dagps_selector.h"
#include "ssr/sched/policies/packing_selector.h"

namespace ssr {

const std::vector<ZooPolicy>& all_zoo_policies() {
  static const std::vector<ZooPolicy> kAll = {
      ZooPolicy::kBaseline, ZooPolicy::kSsr, ZooPolicy::kDagps,
      ZooPolicy::kPacking, ZooPolicy::kTableDriven};
  return kAll;
}

const char* zoo_policy_name(ZooPolicy policy) {
  switch (policy) {
    case ZooPolicy::kBaseline:
      return "baseline";
    case ZooPolicy::kSsr:
      return "ssr";
    case ZooPolicy::kDagps:
      return "dagps";
    case ZooPolicy::kPacking:
      return "packing";
    case ZooPolicy::kTableDriven:
      return "table";
  }
  return "unknown";
}

std::optional<ZooPolicy> parse_zoo_policy(const std::string& name) {
  for (ZooPolicy p : all_zoo_policies()) {
    if (name == zoo_policy_name(p)) return p;
  }
  return std::nullopt;
}

TableDrivenConfig default_table_config(const ClusterSpec& cluster) {
  TableDrivenConfig table;
  // A short cycle at 75% duty: the protected class never waits more than
  // 15 s for a window, and during windows a fifth of the cluster is walled
  // off whether or not the class has work — the hard-isolation posture,
  // priced in reserved-idle slot-seconds.
  table.major_cycle = 60.0;
  table.intervals = {{0.0, 45.0}};
  table.reserved_slots = std::max<std::uint32_t>(1, cluster.total_slots() / 5);
  table.class_min_priority = 1;
  return table;
}

void apply_zoo_policy(ZooPolicy policy, const ClusterSpec& cluster,
                      RunOptions& options) {
  options.ssr.reset();
  options.hook_factory = nullptr;
  options.sched.selector = nullptr;
  switch (policy) {
    case ZooPolicy::kBaseline:
      break;
    case ZooPolicy::kSsr:
      options.ssr = SsrConfig{};
      options.ssr->min_reserving_priority = 1;
      break;
    case ZooPolicy::kDagps:
      options.sched.selector = std::make_shared<DagpsSelector>();
      break;
    case ZooPolicy::kPacking:
      options.sched.selector = std::make_shared<PackingSelector>();
      break;
    case ZooPolicy::kTableDriven:
      options.hook_factory = [table = default_table_config(cluster)] {
        return std::make_unique<TableDrivenHook>(table);
      };
      break;
  }
}

}  // namespace ssr
