#include "ssr/exp/scenario.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>

#include "ssr/common/check.h"
#include "ssr/exp/harness.h"
#include "ssr/exp/policy_zoo.h"
#include "ssr/sched/engine.h"

namespace ssr {

double RunResult::jct_of(const std::string& name) const {
  for (const JobResult& j : jobs) {
    if (j.name == name) return j.jct;
  }
  SSR_CHECK_MSG(false, "no job named " << name);
  return 0.0;
}

double RunResult::mean_jct_with_prefix(const std::string& prefix) const {
  double acc = 0.0;
  std::size_t n = 0;
  for (const JobResult& j : jobs) {
    if (j.name.rfind(prefix, 0) == 0) {
      acc += j.jct;
      ++n;
    }
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

RunResult run_scenario(const ClusterSpec& cluster, std::vector<JobSpec> jobs,
                       const RunOptions& options) {
  ScenarioHarness harness(cluster, options);
  Engine& engine = harness.engine();
  std::vector<JobId> ids;
  ids.reserve(jobs.size());
  for (JobSpec& spec : jobs) {
    ids.push_back(engine.submit(std::move(spec)));
  }
  engine.run();
  return harness.collect(ids);
}

double alone_jct(const ClusterSpec& cluster, JobSpec job,
                 const RunOptions& options) {
  std::vector<JobSpec> jobs;
  jobs.push_back(std::move(job));
  const RunResult r = run_scenario(cluster, std::move(jobs), options);
  return r.jobs.front().jct;
}

namespace {

// Strict numeric parsing: the whole argument must be consumed, so inputs
// like "10x" or "" fail loudly instead of silently truncating.
double parse_double_arg(const char* flag, const std::string& text) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  SSR_CHECK_MSG(consumed == text.size() && !text.empty(),
                flag << " expects a number, got '" << text << "'");
  return value;
}

std::uint64_t parse_u64_arg(const char* flag, const std::string& text) {
  SSR_CHECK_MSG(!text.empty() && text.find_first_not_of("0123456789") ==
                                     std::string::npos,
                flag << " expects a non-negative integer, got '" << text
                     << "'");
  std::size_t consumed = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  SSR_CHECK_MSG(consumed == text.size(),
                flag << " value out of range: '" << text << "'");
  return value;
}

}  // namespace

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  auto value_of = [&](int& i) -> std::string {
    SSR_CHECK_MSG(i + 1 < argc, argv[i] << " requires a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      args.scale = parse_double_arg("--scale", value_of(i));
      args.scale_set = true;
      SSR_CHECK_MSG(args.scale >= 1.0, "--scale must be >= 1");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      args.seed = parse_u64_arg("--seed", value_of(i));
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      const std::uint64_t jobs = parse_u64_arg("--jobs", value_of(i));
      SSR_CHECK_MSG(jobs >= 1, "--jobs must be >= 1");
      SSR_CHECK_MSG(jobs <= 4096, "--jobs is implausibly large");
      args.jobs = static_cast<unsigned>(jobs);
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      args.csv = value_of(i);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      args.json = value_of(i);
    } else if (std::strcmp(argv[i], "--bench-json") == 0) {
      args.bench_json = value_of(i);
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      args.metrics_json = value_of(i);
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      const std::string v = value_of(i);
      if (v == "heap") {
        args.queue = EventQueueBackend::kBinaryHeap;
      } else if (v == "calendar") {
        args.queue = EventQueueBackend::kCalendar;
      } else {
        SSR_CHECK_MSG(false, "--queue must be 'heap' or 'calendar', got '"
                                 << v << "'");
      }
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const std::uint64_t shards = parse_u64_arg("--shards", value_of(i));
      SSR_CHECK_MSG(shards >= 1 && shards <= 256,
                    "--shards must be in [1, 256]");
      args.shards = static_cast<std::uint32_t>(shards);
    } else if (std::strcmp(argv[i], "--policy") == 0) {
      args.policy = value_of(i);
      SSR_CHECK_MSG(parse_zoo_policy(args.policy).has_value(),
                    "--policy must be one of baseline, ssr, dagps, packing, "
                    "table; got '"
                        << args.policy << "'");
    } else {
      SSR_CHECK_MSG(false, "unknown argument '"
                               << argv[i]
                               << "' (expected --scale, --seed, --jobs, "
                                  "--csv, --json, --bench-json, "
                                  "--metrics-json, --queue, --shards, or "
                                  "--policy)");
    }
  }
  return args;
}

std::uint32_t BenchArgs::scaled(std::uint32_t value) const {
  const auto scaled =
      static_cast<std::uint32_t>(static_cast<double>(value) / scale);
  return std::max<std::uint32_t>(1, scaled);
}

}  // namespace ssr
