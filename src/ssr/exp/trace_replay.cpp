#include "ssr/exp/trace_replay.h"

#include <algorithm>

#include "ssr/common/check.h"

namespace ssr {

namespace {
constexpr int kIdle = 0;
constexpr int kBusy = 1;
constexpr int kReservedIdle = 2;
constexpr int kDead = 3;

std::tuple<JobId, std::uint32_t, std::uint32_t> logical_task(TaskId task) {
  return {task.stage.job, task.stage.index, task.index};
}
}  // namespace

void ReplayResultBuilder::on_trace_begin(const TraceHeader& header) {
  header_ = header;
  slots_.assign(header.num_slots, SlotMirror{});
}

ReplayResultBuilder::SlotMirror& ReplayResultBuilder::slot_mirror(SlotId slot) {
  SSR_CHECK_MSG(slot.v < slots_.size(),
                "trace references " << slot << " but the header declares only "
                                    << slots_.size() << " slots");
  return slots_[slot.v];
}

void ReplayResultBuilder::accrue(SlotMirror& s, SimTime now) {
  // Cluster::accrue, verbatim: same expression, same accumulator layout.
  const double elapsed = now - s.state_since;
  switch (s.state) {
    case kBusy:
      s.busy += elapsed;
      break;
    case kReservedIdle:
      s.reserved_idle += elapsed;
      reserved_idle_by_job_[s.reserved_job] += elapsed;
      break;
    case kDead:
      s.dead += elapsed;
      break;
    default:
      break;
  }
  s.state_since = now;
}

void ReplayResultBuilder::record_busy(TaskId task, SimTime now) {
  auto it = started_at_.find(task);
  SSR_CHECK_MSG(it != started_at_.end(),
                "trace ends attempt " << task << " without a start");
  task_stats_[task.stage.job].busy_seconds += now - it->second;
  started_at_.erase(it);
}

void ReplayResultBuilder::on_trace_event(const TraceEvent& e) {
  switch (e.kind) {
    case TraceEventKind::kJobSubmitted: {
      JobMirror& j = jobs_[e.job];
      j.name = e.job_name;
      j.priority = e.priority;
      j.submit = e.time;
      break;
    }
    case TraceEventKind::kJobFinished:
      jobs_[e.job].finish = e.time;
      break;
    case TraceEventKind::kStageSubmitted:
    case TraceEventKind::kStageFinished:
      break;  // no RunResult contribution
    case TraceEventKind::kTaskStarted: {
      SlotMirror& s = slot_mirror(e.slot);
      accrue(s, e.time);
      s.state = kBusy;
      JobTaskStats& ts = task_stats_[e.task.stage.job];
      ++ts.tasks_started;
      started_at_[e.task] = e.time;
      if (e.task.attempt >= 1) ++ts.copies_started;
      if (e.local) ++ts.local_starts;
      break;
    }
    case TraceEventKind::kTaskFinished: {
      SlotMirror& s = slot_mirror(e.slot);
      accrue(s, e.time);
      s.state = kIdle;
      JobTaskStats& ts = task_stats_[e.task.stage.job];
      ++ts.tasks_finished;
      if (e.task.attempt >= 1) ++ts.copies_won;
      record_busy(e.task, e.time);
      if (failed_pending_.erase(logical_task(e.task)) > 0) {
        ++recovery_.failures_masked;
      }
      break;
    }
    case TraceEventKind::kTaskKilled: {
      SlotMirror& s = slot_mirror(e.slot);
      accrue(s, e.time);
      s.state = kIdle;
      ++task_stats_[e.task.stage.job].tasks_killed;
      record_busy(e.task, e.time);
      break;
    }
    case TraceEventKind::kTaskFailed: {
      // The attempt dies and the slot empties; the slot itself goes Dead in
      // the following kSlotFailed event (same split as the live engine).
      SlotMirror& s = slot_mirror(e.slot);
      accrue(s, e.time);
      s.state = kIdle;
      ++task_stats_[e.task.stage.job].tasks_failed;
      record_busy(e.task, e.time);
      ++recovery_.tasks_failed;
      failed_pending_.insert(logical_task(e.task));
      break;
    }
    case TraceEventKind::kTaskRequeued:
      ++recovery_.tasks_requeued;
      failed_pending_.erase(logical_task(e.task));
      break;
    case TraceEventKind::kStageInvalidated:
      ++recovery_.stages_invalidated;
      break;
    case TraceEventKind::kSlotFailed: {
      SlotMirror& s = slot_mirror(e.slot);
      accrue(s, e.time);
      s.state = kDead;
      ++recovery_.slots_failed;
      break;
    }
    case TraceEventKind::kSlotRecovered: {
      SlotMirror& s = slot_mirror(e.slot);
      accrue(s, e.time);
      s.state = kIdle;
      ++recovery_.slots_recovered;
      break;
    }
    case TraceEventKind::kSlotReserved: {
      SlotMirror& s = slot_mirror(e.slot);
      accrue(s, e.time);
      s.state = kReservedIdle;
      s.reserved_job = e.job;
      break;
    }
    case TraceEventKind::kReservationReleased: {
      SlotMirror& s = slot_mirror(e.slot);
      accrue(s, e.time);
      s.state = kIdle;
      if (e.reason == ReservationEndReason::Expired) ++expired_releases_;
      if (e.reason == ReservationEndReason::SlotFailed) {
        ++recovery_.reservations_broken;
      }
      break;
    }
    case TraceEventKind::kRunComplete:
      finalize(e.time);
      break;
  }
}

void ReplayResultBuilder::finalize(SimTime now) {
  // Cluster::settle: flush every slot in ascending id order.
  for (SlotMirror& s : slots_) accrue(s, now);

  result_ = RunResult{};
  result_.jobs.reserve(jobs_.size());
  for (const auto& [id, j] : jobs_) {
    JobResult jr;
    jr.id = id;
    jr.name = j.name;
    jr.priority = j.priority;
    jr.submit = j.submit;
    jr.finish = j.finish;
    jr.jct = j.finish - j.submit;
    auto ts = task_stats_.find(id);
    jr.busy_seconds = ts != task_stats_.end() ? ts->second.busy_seconds : 0.0;
    auto ri = reserved_idle_by_job_.find(id);
    jr.reserved_idle_seconds =
        ri != reserved_idle_by_job_.end() ? ri->second : 0.0;
    result_.jobs.push_back(std::move(jr));
    result_.makespan = std::max(result_.makespan, j.finish);
  }
  // Totals fold in ascending slot-id order, like the Cluster total_* scans.
  for (const SlotMirror& s : slots_) {
    result_.busy_time += s.busy;
    result_.reserved_idle_time += s.reserved_idle;
    result_.dead_time += s.dead;
  }
  result_.utilization =
      result_.makespan > 0.0
          ? result_.busy_time /
                (result_.makespan * static_cast<double>(slots_.size()))
          : 0.0;
  if (header_.counts_expired) {
    result_.reservations_expired = expired_releases_;
  }
  // TaskStatsCollector::totals(): ascending-job fold over the stats map.
  for (const auto& [job, s] : task_stats_) {
    result_.task_totals.tasks_started += s.tasks_started;
    result_.task_totals.tasks_finished += s.tasks_finished;
    result_.task_totals.tasks_killed += s.tasks_killed;
    result_.task_totals.tasks_failed += s.tasks_failed;
    result_.task_totals.copies_started += s.copies_started;
    result_.task_totals.copies_won += s.copies_won;
    result_.task_totals.local_starts += s.local_starts;
    result_.task_totals.busy_seconds += s.busy_seconds;
  }
  result_.recovery = recovery_;
  result_.suspicions = header_.suspicions;
  result_.false_suspicions = header_.false_suspicions;
  complete_ = true;
}

const RunResult& ReplayResultBuilder::result() const {
  SSR_CHECK_MSG(complete_,
                "replayed trace never reached run-complete; the capture is "
                "from an unfinished run");
  return result_;
}

RunResult replay_run_result(const TraceReplayer& replayer) {
  ReplayResultBuilder builder;
  replayer.replay({&builder});
  return builder.result();
}

}  // namespace ssr
