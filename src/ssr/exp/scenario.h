// Experiment harness: builds an Engine from a cluster spec + job mix +
// policy options, runs it, and returns the metrics the paper's figures plot.
// Every bench binary is a thin driver over these helpers.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ssr/core/ssr_config.h"
#include "ssr/dag/job.h"
#include "ssr/metrics/collectors.h"
#include "ssr/sched/types.h"

namespace ssr {

struct ClusterSpec {
  std::uint32_t nodes = 50;
  std::uint32_t slots_per_node = 2;  ///< the paper's m4.large: 2 executors
};

struct RunOptions {
  SchedConfig sched;
  /// Reservation policy; nullopt runs the naive work-conserving baseline.
  std::optional<SsrConfig> ssr;
  std::uint64_t seed = 1;
};

struct JobResult {
  JobId id;
  std::string name;
  int priority = 0;
  SimTime submit = 0.0;
  SimTime finish = 0.0;
  SimDuration jct = 0.0;
};

struct RunResult {
  std::vector<JobResult> jobs;  ///< submission order
  SimTime makespan = 0.0;       ///< last job finish time
  double busy_time = 0.0;       ///< total busy slot-seconds
  double reserved_idle_time = 0.0;  ///< slot-seconds lost to reservations
  double utilization = 0.0;     ///< busy fraction over [0, makespan]
  JobTaskStats task_totals;

  /// JCT of the first job whose name matches exactly; throws if absent.
  double jct_of(const std::string& name) const;

  /// Mean JCT over all jobs with the given name prefix (e.g. "bg-").
  double mean_jct_with_prefix(const std::string& prefix) const;
};

/// Run a full scenario to completion.
RunResult run_scenario(const ClusterSpec& cluster, std::vector<JobSpec> jobs,
                       const RunOptions& options);

/// Minimum JCT baseline: the job running alone in the same cluster with the
/// same options (the paper's slowdown denominator).
double alone_jct(const ClusterSpec& cluster, JobSpec job,
                 const RunOptions& options);

/// Measured JCT / alone JCT (Sec. VI "slowdown" metric).
inline double slowdown(double measured_jct, double alone) {
  return measured_jct / alone;
}

/// Parse "--scale N" and "--seed S" style overrides from a bench's argv.
/// scale divides workload sizes so CI machines can run the large-scale
/// simulations faster; 1 reproduces the paper-scale setup.
struct BenchArgs {
  double scale = 1.0;
  bool scale_set = false;  ///< whether --scale was passed explicitly
  std::uint64_t seed = 1;

  static BenchArgs parse(int argc, char** argv);
  /// value / scale, at least 1 (for counts).
  std::uint32_t scaled(std::uint32_t value) const;
};

}  // namespace ssr
