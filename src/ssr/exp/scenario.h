// Experiment harness: builds an Engine from a cluster spec + job mix +
// policy options, runs it, and returns the metrics the paper's figures plot.
// Every bench binary is a thin driver over these helpers.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ssr/core/ssr_config.h"
#include "ssr/dag/job.h"
#include "ssr/metrics/collectors.h"
#include "ssr/metrics/registry.h"
#include "ssr/sched/types.h"
#include "ssr/sim/failure_detector.h"
#include "ssr/sim/failure_injector.h"

namespace ssr {

struct ClusterSpec {
  std::uint32_t nodes = 50;
  std::uint32_t slots_per_node = 2;  ///< the paper's m4.large: 2 executors

  /// Heterogeneous capacities (Sec. III-C): when non-empty, node_slots[i]
  /// lists node i's slot capacity vectors, must have exactly `nodes`
  /// entries, and `slots_per_node` is ignored.  Empty (the default) keeps
  /// the homogeneous {1,1,1}-capacity cluster every golden was recorded on.
  std::vector<std::vector<Resources>> node_slots;

  std::uint32_t total_slots() const {
    if (node_slots.empty()) return nodes * slots_per_node;
    std::uint32_t total = 0;
    for (const auto& slots : node_slots) {
      total += static_cast<std::uint32_t>(slots.size());
    }
    return total;
  }
};

struct RunOptions {
  SchedConfig sched;
  /// Reservation policy; nullopt runs the naive work-conserving baseline.
  std::optional<SsrConfig> ssr;
  /// Escape hatch for non-SSR reservation policies (static carve-outs,
  /// timeout holds — see core/naive_policies.h).  When set it wins over
  /// `ssr`.  A factory rather than an instance so one RunOptions can be
  /// copied across many trials, each run owning a fresh hook.
  std::function<std::unique_ptr<ReservationHook>()> hook_factory;
  std::uint64_t seed = 1;
  /// Deterministic fault-injection schedule (sim/failure_injector.h); empty
  /// runs the scenario failure-free with bit-identical behaviour to a run
  /// that never attached an injector.  This is the ground truth; what the
  /// engine acts on is detect_failures(failures, detector, nodes).detected.
  FailureSchedule failures;
  /// Heartbeat failure detector (sim/failure_detector.h).  Default
  /// (heartbeat_period == 0) is instantaneous detection: the truth schedule
  /// passes through verbatim and event streams stay byte-identical to runs
  /// that never saw a detector.
  FailureDetectorConfig detector;
  /// When set, the full observer event stream is captured and written here
  /// as an ssr-trace file (metrics/trace_capture.h) at end of run.
  std::string capture_path;
  /// When set, an EngineMetrics observer feeds this registry during the run
  /// (per-policy and, for open-system runs, per-tenant label groups) under
  /// the `metrics_policy` label.  Non-owning; must outlive the run.
  MetricsRegistry* metrics = nullptr;
  std::string metrics_policy = "run";
};

struct JobResult {
  JobId id;
  std::string name;
  int priority = 0;
  SimTime submit = 0.0;
  SimTime finish = 0.0;
  SimDuration jct = 0.0;
  /// Busy slot-seconds the job's attempts occupied.
  double busy_seconds = 0.0;
  /// Slot-seconds spent ReservedIdle under this job's reservations.
  double reserved_idle_seconds = 0.0;
};

/// Per-tenant isolation/SLO accounting of an open-system run (see
/// sched/virtual_cluster.h for the admission semantics behind the counters).
struct TenantResult {
  std::string name;
  std::uint32_t min_slots = 0;  ///< final shares (after resizes/transfers)
  std::uint32_t max_slots = 0;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  /// Submissions that spent time queued before admission.
  std::uint64_t queued = 0;
  /// Peak aggregate in-flight slot demand (the admitted quantity the max
  /// share bounds; never exceeds max_slots held at admission time).
  std::uint32_t peak_demand = 0;
  double mean_queue_delay = 0.0;  ///< admission - request, over admissions
  double max_queue_delay = 0.0;
  double mean_jct = 0.0;  ///< engine JCT (excludes queue delay)
};

struct RunResult {
  std::vector<JobResult> jobs;  ///< submission order
  SimTime makespan = 0.0;       ///< last job finish time
  double busy_time = 0.0;       ///< total busy slot-seconds
  double reserved_idle_time = 0.0;  ///< slot-seconds lost to reservations
  double utilization = 0.0;     ///< busy fraction over [0, makespan]
  /// Reservations that expired at their deadline (0 unless the run used a
  /// ReservationManager).
  std::uint64_t reservations_expired = 0;
  JobTaskStats task_totals;
  /// Fault-injection outcome counters (all zero in failure-free runs).
  RecoveryStats recovery;
  /// Slot-seconds spent Dead (excluded from the utilization denominator a
  /// failure-aware caller should use).
  double dead_time = 0.0;
  /// Failure-detector outcome: suspicion windows the engine acted on, and
  /// how many of them were false (the target was alive the whole window).
  /// Both zero when the run used instantaneous detection.
  std::uint64_t suspicions = 0;
  std::uint64_t false_suspicions = 0;
  /// Tenant accounting, in tenant declaration order.  Empty for closed
  /// (run_scenario) runs — only run_open_scenario populates it.
  std::vector<TenantResult> tenants;

  /// JCT of the first job whose name matches exactly; throws if absent.
  double jct_of(const std::string& name) const;

  /// Mean JCT over all jobs with the given name prefix (e.g. "bg-").
  double mean_jct_with_prefix(const std::string& prefix) const;
};

/// Run a full scenario to completion.
RunResult run_scenario(const ClusterSpec& cluster, std::vector<JobSpec> jobs,
                       const RunOptions& options);

/// Minimum JCT baseline: the job running alone in the same cluster with the
/// same options (the paper's slowdown denominator).
double alone_jct(const ClusterSpec& cluster, JobSpec job,
                 const RunOptions& options);

/// Measured JCT / alone JCT (Sec. VI "slowdown" metric).
inline double slowdown(double measured_jct, double alone) {
  return measured_jct / alone;
}

/// Parse "--scale N", "--seed S", "--jobs N", "--csv F", "--json F",
/// "--bench-json F", "--metrics-json F", "--queue B", "--shards N",
/// "--policy P" overrides from a bench's argv.  scale divides workload sizes so CI
/// machines can run the large-scale simulations faster; 1 reproduces the
/// paper-scale setup.  jobs sets the sweep worker-pool size (0 = one worker
/// per hardware core).  Malformed or out-of-range values and unknown flags
/// throw CheckError with a message naming the offending argument.
struct BenchArgs {
  double scale = 1.0;
  bool scale_set = false;  ///< whether --scale was passed explicitly
  std::uint64_t seed = 1;
  unsigned jobs = 0;  ///< sweep workers; 0 = hardware_concurrency
  std::string csv;    ///< when set, ported benches write per-trial rows here
  std::string json;   ///< when set, ported benches write summary JSON here
  /// When set, perf benches write the BENCH_sched.json perf report here
  /// (see exp/bench_report.h for the schema).
  std::string bench_json;
  /// When set, benches that keep a MetricsRegistry export it here as
  /// ssr-metrics-v1 JSON (metrics/registry.h) next to their other outputs.
  std::string metrics_json;
  /// Event-queue backend ("--queue heap|calendar") and shard count
  /// ("--shards N") applied to every run's SchedConfig via apply_to().
  /// Output is bit-identical across all values — both are pure performance
  /// knobs (DESIGN.md §13).
  EventQueueBackend queue = EventQueueBackend::kBinaryHeap;
  std::uint32_t shards = 1;
  /// Scheduling-policy selection ("--policy NAME").  Empty = the bench's
  /// own default.  Benches that honour it resolve the name through
  /// exp/policy_zoo.h (parse_zoo_policy validates at parse time).
  std::string policy;

  static BenchArgs parse(int argc, char** argv);
  /// value / scale, at least 1 (for counts).
  std::uint32_t scaled(std::uint32_t value) const;
  /// Copy the queue/shard selection into a run's scheduler config.
  void apply_to(SchedConfig& sched) const {
    sched.event_queue_backend = queue;
    sched.event_shards = shards;
  }
};

}  // namespace ssr
