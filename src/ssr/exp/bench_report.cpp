#include "ssr/exp/bench_report.h"

#include <sys/resource.h>

#include <cstdio>
#include <fstream>
#include <ostream>
#include <utility>

#include "ssr/common/check.h"

namespace ssr {

namespace {

std::string num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

double peak_rss_mb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

void BenchReporter::add(BenchRecord record) {
  SSR_CHECK_MSG(!record.name.empty(), "bench record needs a name");
  records_.push_back(std::move(record));
}

void BenchReporter::write(std::ostream& os) const {
  os << "{\n";
  os << "  \"schema\": \"ssr-bench-sched-v1\",\n";
  os << "  \"peak_rss_mb\": " << num(peak_rss_mb()) << ",\n";
  os << "  \"records\": [\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    os << "    {\"name\": \"" << escape(r.name)
       << "\", \"items_per_second\": " << num(r.items_per_second)
       << ", \"wall_seconds\": " << num(r.wall_seconds) << '}'
       << (i + 1 < records_.size() ? "," : "") << '\n';
  }
  os << "  ]\n";
  os << "}\n";
}

void BenchReporter::write_file(const std::string& path) const {
  std::ofstream out(path);
  SSR_CHECK_MSG(out.good(), "cannot open bench report file " + path);
  write(out);
}

}  // namespace ssr
