// Bit-exact textual digest of a RunResult.
//
// A digest captures, in hexfloat (bit-exact) form, the per-job JCT vector,
// per-job busy and reserved-idle slot-seconds, and the run totals; a digest
// match therefore implies bit-identical metrics, not just close ones.  The
// golden-replay suite, the open-system equivalence suite, the record/replay
// suite and the replay-verify CI tool all format runs through this one
// function, so "same digest" means the same thing everywhere.
#pragma once

#include <sstream>
#include <string>

#include "ssr/exp/scenario.h"

namespace ssr {

/// Append one run's contribution to a digest under a stable title.
void append_run_digest(std::ostringstream& out, const std::string& title,
                       const RunResult& run);

}  // namespace ssr
