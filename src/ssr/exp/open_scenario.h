// Open-system experiment harness: multi-tenant virtual clusters fed by a
// continuous arrival stream.
//
// Where run_scenario() models the paper's closed-batch experiments (submit
// everything, run to completion), run_open_scenario() models the service
// deployment the paper motivates: a long-lived cluster whose tenants submit
// jobs while it executes.  The driver steps the engine to each arrival
// instant (advance_to), offers the job to the tenant's virtual cluster
// (admission may admit, queue, or reject it), and finally drains the engine
// to quiescence.  Per-tenant isolation/SLO accounting comes back in
// RunResult::tenants; under -DSSR_AUDIT=ON the run additionally replays the
// tenant audit (audit/tenant_audit.h) and throws CheckError on the first
// violated tenant invariant, mirroring the closed harness's auditor.
#pragma once

#include <string>
#include <vector>

#include "ssr/exp/scenario.h"
#include "ssr/sched/virtual_cluster.h"
#include "ssr/workload/open_arrival.h"

namespace ssr {

/// Tenant layout of an open run: virtual-cluster shares per tenant.  Every
/// arrival's tenant name must match one spec.
struct OpenScenarioSpec {
  std::vector<VirtualClusterSpec> tenants;
};

/// Drive `arrivals` (must be sorted by arrival time — make_open_arrivals
/// output is) through admission control and the stepping engine, then drain.
/// Jobs in RunResult::jobs are the *admitted* jobs in admission order;
/// rejected submissions only appear in the tenant counters.
RunResult run_open_scenario(const ClusterSpec& cluster,
                            const OpenScenarioSpec& spec,
                            std::vector<OpenArrival> arrivals,
                            const RunOptions& options);

}  // namespace ssr
