#include "ssr/exp/sweep.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <ostream>
#include <set>
#include <thread>
#include <utility>

#include "ssr/common/check.h"
#include "ssr/common/stats.h"
#include "ssr/common/thread_pool.h"

namespace ssr {

std::uint64_t derive_trial_seed(std::uint64_t base_seed,
                                std::uint64_t trial_index) {
  // splitmix64 applied to a combination of base and index.  The odd
  // multiplier spreads adjacent indices across the word before mixing, so
  // (base, 0), (base, 1), ... yield decorrelated engine seeds.
  std::uint64_t x = base_seed ^ (trial_index * 0x9E3779B97F4A7C15ull +
                                 0xBF58476D1CE4E5B9ull);
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

SummaryStats SummaryStats::of(const std::vector<double>& values) {
  SummaryStats s;
  if (values.empty()) return s;
  OnlineStats online;
  for (double v : values) online.add(v);
  s.n = online.count();
  s.mean = online.mean();
  s.sem = online.count() > 1
              ? online.stddev() / std::sqrt(static_cast<double>(online.count()))
              : 0.0;
  s.p50 = percentile(values, 0.50);
  s.p95 = percentile(values, 0.95);
  s.p99 = percentile(values, 0.99);
  s.min = online.min();
  s.max = online.max();
  return s;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {
  num_workers_ = options_.num_workers != 0
                     ? options_.num_workers
                     : std::max(1u, std::thread::hardware_concurrency());
}

std::vector<TrialResult> SweepRunner::run(
    const std::vector<Trial>& grid) const {
  std::vector<TrialResult> results(grid.size());
  auto run_one = [&](std::size_t i) {
    const Trial& trial = grid[i];
    TrialResult out;
    out.index = i;
    out.label = trial.label;
    out.tags = trial.tags;
    RunOptions options = trial.options;
    if (options_.base_seed) {
      options.seed = derive_trial_seed(*options_.base_seed, i);
    }
    out.seed = options.seed;
    // The trial keeps its spec; the engine consumes a private copy.
    out.run = run_scenario(trial.cluster, trial.jobs, options);
    results[i] = std::move(out);
  };

  if (num_workers_ <= 1 || grid.size() <= 1) {
    for (std::size_t i = 0; i < grid.size(); ++i) run_one(i);
    return results;
  }

  std::vector<std::future<void>> pending;
  pending.reserve(grid.size());
  {
    // Declared after `results` so unwinding joins the workers (draining
    // in-flight trials) before the results vector is destroyed.
    ThreadPool pool(num_workers_);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      pending.push_back(pool.submit([&run_one, i] { run_one(i); }));
    }
    for (std::future<void>& f : pending) f.get();
  }
  return results;
}

std::vector<GroupSummary> summarize(const std::vector<TrialResult>& results) {
  std::vector<GroupSummary> groups;
  std::map<std::string, std::size_t> index_of;
  std::map<std::string, std::map<std::string, std::vector<double>>> samples;
  for (const TrialResult& r : results) {
    if (index_of.find(r.label) == index_of.end()) {
      index_of[r.label] = groups.size();
      groups.push_back(GroupSummary{r.label, 0, {}});
    }
    groups[index_of[r.label]].trials += 1;
    auto& metric = samples[r.label];
    for (const JobResult& j : r.run.jobs) metric["jct"].push_back(j.jct);
    metric["makespan"].push_back(r.run.makespan);
    metric["utilization"].push_back(r.run.utilization);
  }
  for (GroupSummary& g : groups) {
    for (const auto& [name, values] : samples[g.label]) {
      g.metrics[name] = SummaryStats::of(values);
    }
  }
  return groups;
}

namespace {

/// Quote a CSV cell if it contains a delimiter, quote, or newline.
std::string csv_cell(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) return text;
  std::string quoted = "\"";
  for (char c : text) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

/// Shortest round-trip representation of a double (printf %.17g trimmed is
/// overkill for CSV meant for plotting; 12 significant digits round-trips
/// every value the simulator produces in practice while staying readable).
std::string csv_num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void write_trials_csv(std::ostream& os,
                      const std::vector<TrialResult>& results) {
  std::set<std::string> tag_keys;
  for (const TrialResult& r : results) {
    for (const auto& [k, v] : r.tags) tag_keys.insert(k);
  }
  os << "trial,label,seed";
  // "tag:" prefix keeps user tag names from colliding with the built-in
  // columns (a tag literally named "seed", say).
  for (const std::string& k : tag_keys) os << ',' << csv_cell("tag:" + k);
  os << ",job,name,priority,submit,finish,jct,makespan,utilization,"
        "busy_time,reserved_idle_time,reservations_expired\n";
  for (const TrialResult& r : results) {
    for (std::size_t j = 0; j < r.run.jobs.size(); ++j) {
      const JobResult& job = r.run.jobs[j];
      os << r.index << ',' << csv_cell(r.label) << ',' << r.seed;
      for (const std::string& k : tag_keys) {
        auto it = r.tags.find(k);
        os << ',' << (it == r.tags.end() ? "" : csv_cell(it->second));
      }
      os << ',' << j << ',' << csv_cell(job.name) << ',' << job.priority
         << ',' << csv_num(job.submit) << ',' << csv_num(job.finish) << ','
         << csv_num(job.jct) << ',' << csv_num(r.run.makespan) << ','
         << csv_num(r.run.utilization) << ',' << csv_num(r.run.busy_time)
         << ',' << csv_num(r.run.reserved_idle_time) << ','
         << r.run.reservations_expired << '\n';
    }
  }
}

void write_summary_csv(std::ostream& os,
                       const std::vector<GroupSummary>& groups) {
  os << "label,trials,metric,n,mean,sem,p50,p95,p99,min,max\n";
  for (const GroupSummary& g : groups) {
    for (const auto& [name, s] : g.metrics) {
      os << csv_cell(g.label) << ',' << g.trials << ',' << csv_cell(name)
         << ',' << s.n << ',' << csv_num(s.mean) << ',' << csv_num(s.sem)
         << ',' << csv_num(s.p50) << ',' << csv_num(s.p95) << ','
         << csv_num(s.p99) << ',' << csv_num(s.min) << ',' << csv_num(s.max)
         << '\n';
    }
  }
}

void write_summary_json(std::ostream& os,
                        const std::vector<GroupSummary>& groups) {
  os << "[\n";
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const GroupSummary& g = groups[gi];
    os << "  {\"label\": \"" << json_escape(g.label)
       << "\", \"trials\": " << g.trials << ", \"metrics\": {";
    std::size_t mi = 0;
    for (const auto& [name, s] : g.metrics) {
      if (mi++ > 0) os << ", ";
      os << '"' << json_escape(name) << "\": {\"n\": " << s.n
         << ", \"mean\": " << csv_num(s.mean) << ", \"sem\": " << csv_num(s.sem)
         << ", \"p50\": " << csv_num(s.p50) << ", \"p95\": " << csv_num(s.p95)
         << ", \"p99\": " << csv_num(s.p99) << ", \"min\": " << csv_num(s.min)
         << ", \"max\": " << csv_num(s.max) << '}';
    }
    os << "}}" << (gi + 1 < groups.size() ? "," : "") << '\n';
  }
  os << "]\n";
}

void emit_sweep_outputs(const BenchArgs& args,
                        const std::vector<TrialResult>& results) {
  if (!args.csv.empty()) {
    std::ofstream out(args.csv);
    SSR_CHECK_MSG(out.good(), "cannot open --csv file " + args.csv);
    write_trials_csv(out, results);
  }
  if (!args.json.empty()) {
    std::ofstream out(args.json);
    SSR_CHECK_MSG(out.good(), "cannot open --json file " + args.json);
    write_summary_json(out, summarize(results));
  }
}

}  // namespace ssr
