#include "ssr/common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "ssr/common/check.h"

namespace ssr {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SSR_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  SSR_CHECK_MSG(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };

  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

AsciiSeries::AsciiSeries(std::string x_label, std::string y_label,
                         int max_width)
    : x_label_(std::move(x_label)),
      y_label_(std::move(y_label)),
      max_width_(max_width) {
  SSR_CHECK_MSG(max_width_ > 0, "chart width must be positive");
}

void AsciiSeries::add_point(double x, double y) {
  points_.emplace_back(x, y);
}

void AsciiSeries::print(std::ostream& os) const {
  double y_max = 0.0;
  for (const auto& [x, y] : points_) y_max = std::max(y_max, y);
  os << x_label_ << " vs " << y_label_ << " (bar max = " << y_max << ")\n";
  for (const auto& [x, y] : points_) {
    const int bars =
        y_max > 0.0
            ? static_cast<int>(y / y_max * static_cast<double>(max_width_))
            : 0;
    os << std::setw(10) << std::fixed << std::setprecision(1) << x << " | "
       << std::string(static_cast<std::size_t>(bars), '#') << ' ' << y
       << '\n';
  }
}

}  // namespace ssr
