// Multi-dimensional slot resources (Sec. III-C of the paper).
//
// Spark slots are homogeneous, but frameworks like Tez let tasks demand
// different amounts of CPU / memory across phases.  The paper's discussion:
// speculative reservation still applies — if the slot used by the current
// phase is too small for the downstream task, release it immediately and
// pre-reserve one of the right size.  This header provides the small vector
// type; the default-constructed value keeps the homogeneous behavior.
#pragma once

#include <algorithm>

namespace ssr {

/// Resource vector of a slot (capacity) or a task (demand).
struct Resources {
  double cpu = 1.0;
  double memory = 1.0;
  double net = 1.0;

  /// Componentwise: can a demand of `*this` be served by `capacity`?
  bool fits_in(const Resources& capacity) const {
    return cpu <= capacity.cpu && memory <= capacity.memory &&
           net <= capacity.net;
  }

  /// Componentwise sum/difference — used by packing policies and the
  /// resource-conservation property tests.  Differences may go negative;
  /// callers that care about over-commit check `fits_in` first.
  Resources operator+(const Resources& o) const {
    return {cpu + o.cpu, memory + o.memory, net + o.net};
  }
  Resources operator-(const Resources& o) const {
    return {cpu - o.cpu, memory - o.memory, net - o.net};
  }

  /// Scalar magnitude used by packing scores (Tetris-style alignment
  /// denominators).  Deterministic: plain sums of the components.
  double total() const { return cpu + memory + net; }

  bool operator==(const Resources&) const = default;
};

/// Best-fit waste of placing `demand` on a slot of `capacity`: the summed
/// componentwise slack.  Smaller is a tighter fit.  Assumes
/// `demand.fits_in(capacity)`, so every component is non-negative.
inline double packing_waste(const Resources& demand,
                            const Resources& capacity) {
  return (capacity.cpu - demand.cpu) + (capacity.memory - demand.memory) +
         (capacity.net - demand.net);
}

}  // namespace ssr
