// Multi-dimensional slot resources (Sec. III-C of the paper).
//
// Spark slots are homogeneous, but frameworks like Tez let tasks demand
// different amounts of CPU / memory across phases.  The paper's discussion:
// speculative reservation still applies — if the slot used by the current
// phase is too small for the downstream task, release it immediately and
// pre-reserve one of the right size.  This header provides the small vector
// type; the default-constructed value keeps the homogeneous behavior.
#pragma once

#include <algorithm>

namespace ssr {

/// Resource vector of a slot (capacity) or a task (demand).
struct Resources {
  double cpu = 1.0;
  double memory = 1.0;

  /// Componentwise: can a demand of `*this` be served by `capacity`?
  bool fits_in(const Resources& capacity) const {
    return cpu <= capacity.cpu && memory <= capacity.memory;
  }

  bool operator==(const Resources&) const = default;
};

}  // namespace ssr
