// Deterministic random number generation.
//
// Every stochastic component (workload synthesis, task durations, straggler
// copies) draws from an ssr::Rng.  Experiments construct one root Rng from a
// seed and derive independent child streams with fork(); this keeps runs
// bit-for-bit reproducible while letting sub-systems consume randomness in
// any order without perturbing one another.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>

namespace ssr {

/// Seedable pseudo-random source.  Wraps std::mt19937_64 behind a small,
/// purpose-named API so call sites read as workload statements rather than
/// <random> boilerplate.
class Rng {
 public:
  explicit Rng(std::uint64_t seed)
      : engine_(splitmix64(seed)), base_seed_(splitmix64(seed ^ kForkSalt)) {}

  /// Derive an independent child stream.  The child's seed is a hash of this
  /// stream's seed and a fork counter, so fork order (not draw order)
  /// determines it.
  Rng fork() { return Rng(splitmix64(fork_counter_++ ^ base_seed_)); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Exponential with the given mean (used for Poisson arrival gaps).
  double exponential_mean(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Pareto(shape alpha, scale t_m) via inverse-CDF sampling.
  /// F(t) = 1 - (t_m / t)^alpha for t >= t_m.
  double pareto(double alpha, double scale) {
    const double u = uniform_eps();
    return scale * std::pow(u, -1.0 / alpha);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  static constexpr std::uint64_t kForkSalt = 0xA5A5A5A55A5A5A5Aull;

  // Uniform in (0, 1]; never returns 0 so pow(u, -1/alpha) stays finite.
  double uniform_eps() {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    return u > 0.0 ? u : std::numeric_limits<double>::min();
  }

  // SplitMix64: decorrelates adjacent integer seeds before they reach the
  // Mersenne Twister, whose state initialization is weak for small seeds.
  static std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::mt19937_64 engine_;  // seeded (via splitmix64) in every constructor
  std::uint64_t base_seed_ = 0;
  std::uint64_t fork_counter_ = 1;
};

}  // namespace ssr
