// ASCII table / series rendering for bench output.
//
// Every bench binary prints the rows or series of the paper figure it
// regenerates.  TablePrinter produces aligned, pipe-separated tables that are
// easy to diff, grep, and paste into EXPERIMENTS.md.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ssr {

/// Builds a fixed-column table and renders it with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a small textual chart: one line per x value with a bar whose
/// length is proportional to y.  Used by timeline benches (Figs. 5 and 13)
/// so the *shape* of the paper's time-series plots is visible in plain text.
class AsciiSeries {
 public:
  AsciiSeries(std::string x_label, std::string y_label, int max_width = 60);

  void add_point(double x, double y);
  void print(std::ostream& os) const;

 private:
  std::string x_label_;
  std::string y_label_;
  int max_width_;
  std::vector<std::pair<double, double>> points_;
};

}  // namespace ssr
