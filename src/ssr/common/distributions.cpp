#include "ssr/common/distributions.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "ssr/common/check.h"

namespace ssr {
namespace {

class FixedDist final : public DurationDist {
 public:
  explicit FixedDist(double value) : value_(value) {
    SSR_CHECK_MSG(value > 0.0, "durations must be positive");
  }
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }

 private:
  double value_;
};

class UniformDist final : public DurationDist {
 public:
  UniformDist(double lo, double hi) : lo_(lo), hi_(hi) {
    SSR_CHECK_MSG(lo > 0.0 && hi >= lo, "require 0 < lo <= hi");
  }
  double sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  double mean() const override { return 0.5 * (lo_ + hi_); }

 private:
  double lo_, hi_;
};

class ParetoDist final : public DurationDist {
 public:
  ParetoDist(double alpha, double scale) : alpha_(alpha), scale_(scale) {
    SSR_CHECK_MSG(alpha > 1.0, "Pareto shape must exceed 1 for a finite mean");
    SSR_CHECK_MSG(scale > 0.0, "Pareto scale must be positive");
  }
  double sample(Rng& rng) const override { return rng.pareto(alpha_, scale_); }
  double mean() const override { return alpha_ * scale_ / (alpha_ - 1.0); }

 private:
  double alpha_, scale_;
};

class LogNormalDist final : public DurationDist {
 public:
  LogNormalDist(double median, double sigma)
      : mu_(std::log(median)), sigma_(sigma) {
    SSR_CHECK_MSG(median > 0.0, "median must be positive");
    SSR_CHECK_MSG(sigma >= 0.0, "sigma must be non-negative");
  }
  double sample(Rng& rng) const override {
    return rng.lognormal(mu_, sigma_);
  }
  double mean() const override {
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
  }

 private:
  double mu_, sigma_;
};

class EmpiricalDist final : public DurationDist {
 public:
  explicit EmpiricalDist(std::vector<double> values)
      : values_(std::move(values)) {
    SSR_CHECK_MSG(!values_.empty(), "empirical distribution needs samples");
    for (double v : values_) SSR_CHECK_MSG(v > 0.0, "durations must be positive");
    mean_ = std::accumulate(values_.begin(), values_.end(), 0.0) /
            static_cast<double>(values_.size());
  }
  double sample(Rng& rng) const override {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(values_.size()) - 1));
    return values_[i];
  }
  double mean() const override { return mean_; }

 private:
  std::vector<double> values_;
  double mean_ = 0.0;
};

class ScaledDist final : public DurationDist {
 public:
  ScaledDist(DurationDistPtr base, double factor)
      : base_(std::move(base)), factor_(factor) {
    SSR_CHECK_MSG(base_ != nullptr, "base distribution required");
    SSR_CHECK_MSG(factor > 0.0, "scale factor must be positive");
  }
  double sample(Rng& rng) const override {
    return factor_ * base_->sample(rng);
  }
  double mean() const override { return factor_ * base_->mean(); }

 private:
  DurationDistPtr base_;
  double factor_;
};

}  // namespace

DurationDistPtr fixed_duration(double value) {
  return std::make_shared<FixedDist>(value);
}

DurationDistPtr uniform_duration(double lo, double hi) {
  return std::make_shared<UniformDist>(lo, hi);
}

DurationDistPtr pareto_duration(double alpha, double scale) {
  return std::make_shared<ParetoDist>(alpha, scale);
}

DurationDistPtr pareto_duration_with_mean(double alpha, double mean) {
  SSR_CHECK_MSG(alpha > 1.0, "Pareto shape must exceed 1 for a finite mean");
  SSR_CHECK_MSG(mean > 0.0, "mean must be positive");
  // mean = alpha * scale / (alpha - 1)  =>  scale = mean * (alpha - 1) / alpha
  const double scale = mean * (alpha - 1.0) / alpha;
  return std::make_shared<ParetoDist>(alpha, scale);
}

DurationDistPtr lognormal_duration(double median, double sigma) {
  return std::make_shared<LogNormalDist>(median, sigma);
}

DurationDistPtr empirical_duration(std::vector<double> values) {
  return std::make_shared<EmpiricalDist>(std::move(values));
}

DurationDistPtr scaled_duration(DurationDistPtr base, double factor) {
  return std::make_shared<ScaledDist>(std::move(base), factor);
}

}  // namespace ssr
