// Chunked object arena with stable addresses.
//
// The engine keeps long-lived per-job and per-stage runtime records whose
// addresses are cached all over the hot path (active-stage tables, attempt
// back-pointers, scheduled-event captures).  A plain vector invalidates
// addresses on growth, and vector<unique_ptr<T>> pays one allocator
// round-trip plus one pointer indirection per record — measurable at fig15
// scale where hundreds of thousands of stages are created.  The arena
// allocates fixed-size chunks and constructs records in place: addresses are
// stable for the arena's lifetime, allocation is amortized O(1) with one
// malloc per ChunkSize records, and index lookup is two derefs.
//
// Records are append-only and destroyed together (exactly the engine's job /
// stage lifetime model); there is no per-record free.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "ssr/common/check.h"

namespace ssr {

template <typename T, std::size_t ChunkSize = 64>
class Arena {
  static_assert(ChunkSize > 0, "arena chunks must hold at least one record");

 public:
  Arena() = default;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() = default;

  /// Construct a record in place; the returned reference (and its address)
  /// stays valid for the arena's lifetime.
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (chunks_.empty() || chunks_.back()->count == ChunkSize) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    Chunk& chunk = *chunks_.back();
    T* rec = ::new (chunk.raw(chunk.count)) T(std::forward<Args>(args)...);
    ++chunk.count;  // after construction: a throwing ctor leaves size_ intact
    ++size_;
    return *rec;
  }

  T& operator[](std::size_t i) {
    return *chunks_[i / ChunkSize]->slot(i % ChunkSize);
  }
  const T& operator[](std::size_t i) const {
    return *chunks_[i / ChunkSize]->slot(i % ChunkSize);
  }

  /// Bounds-checked access (mirrors vector::at, via SSR_CHECK).
  T& at(std::size_t i) {
    SSR_CHECK_MSG(i < size_, "arena index out of range");
    return (*this)[i];
  }
  const T& at(std::size_t i) const {
    SSR_CHECK_MSG(i < size_, "arena index out of range");
    return (*this)[i];
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Chunk {
    alignas(T) std::byte storage[sizeof(T) * ChunkSize];
    std::size_t count = 0;

    void* raw(std::size_t i) { return storage + i * sizeof(T); }
    T* slot(std::size_t i) {
      return std::launder(reinterpret_cast<T*>(storage + i * sizeof(T)));
    }
    const T* slot(std::size_t i) const {
      return std::launder(
          reinterpret_cast<const T*>(storage + i * sizeof(T)));
    }
    ~Chunk() {
      for (std::size_t i = count; i > 0; --i) slot(i - 1)->~T();
    }
  };

  /// unique_ptr chunks: the chunk vector may relocate, the records never do.
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_ = 0;
};

}  // namespace ssr
