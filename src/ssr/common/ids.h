// Strongly-typed identifiers shared across modules.
//
// Jobs, stages, tasks, nodes and slots are all dense small integers; wrapping
// them in distinct structs prevents the classic "passed a slot where a node
// was expected" class of bugs at zero runtime cost.  StageId and TaskId are
// hierarchical so a task id alone identifies its job, stage and attempt
// (attempt > 0 marks a straggler-mitigation copy).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace ssr {

struct JobId {
  std::uint32_t v = 0;
  auto operator<=>(const JobId&) const = default;
};

struct NodeId {
  std::uint32_t v = 0;
  auto operator<=>(const NodeId&) const = default;
};

struct SlotId {
  std::uint32_t v = 0;
  auto operator<=>(const SlotId&) const = default;
};

/// Identifies one phase (Spark: stage) of a job.  `index` follows the
/// topological submission order produced by the DAG scheduler.
struct StageId {
  JobId job;
  std::uint32_t index = 0;
  auto operator<=>(const StageId&) const = default;
};

/// Identifies one task attempt.  attempt 0 is the original; attempt >= 1 are
/// extra copies launched by the straggler mitigator on reserved slots.
struct TaskId {
  StageId stage;
  std::uint32_t index = 0;
  std::uint32_t attempt = 0;
  auto operator<=>(const TaskId&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, JobId id) {
  return os << "job" << id.v;
}
inline std::ostream& operator<<(std::ostream& os, NodeId id) {
  return os << "node" << id.v;
}
inline std::ostream& operator<<(std::ostream& os, SlotId id) {
  return os << "slot" << id.v;
}
inline std::ostream& operator<<(std::ostream& os, StageId id) {
  return os << id.job << "/s" << id.index;
}
inline std::ostream& operator<<(std::ostream& os, TaskId id) {
  os << id.stage << "/t" << id.index;
  if (id.attempt != 0) os << "#" << id.attempt;
  return os;
}

}  // namespace ssr

namespace std {

template <>
struct hash<ssr::JobId> {
  size_t operator()(ssr::JobId id) const noexcept {
    return hash<uint32_t>{}(id.v);
  }
};

template <>
struct hash<ssr::SlotId> {
  size_t operator()(ssr::SlotId id) const noexcept {
    return hash<uint32_t>{}(id.v);
  }
};

template <>
struct hash<ssr::NodeId> {
  size_t operator()(ssr::NodeId id) const noexcept {
    return hash<uint32_t>{}(id.v);
  }
};

template <>
struct hash<ssr::StageId> {
  size_t operator()(const ssr::StageId& id) const noexcept {
    return (static_cast<size_t>(id.job.v) << 20) ^ id.index;
  }
};

template <>
struct hash<ssr::TaskId> {
  size_t operator()(const ssr::TaskId& id) const noexcept {
    size_t h = hash<ssr::StageId>{}(id.stage);
    h = h * 1000003u + id.index;
    h = h * 1000003u + id.attempt;
    return h;
  }
};

}  // namespace std
