// Simulated time.
//
// The whole simulator measures time in seconds as `double`.  A double gives
// sub-microsecond resolution over the hour-scale windows the paper simulates,
// and keeps the Pareto / order-statistic math in src/ssr/analysis free of unit
// conversions.  Ties between events at the same instant are broken by a
// monotone sequence number inside the event queue, never by float comparison.
#pragma once

#include <limits>

namespace ssr {

/// Simulated time in seconds since the start of the run.
using SimTime = double;

/// A duration in simulated seconds.
using SimDuration = double;

inline constexpr SimTime kTimeZero = 0.0;
inline constexpr SimTime kTimeInfinity =
    std::numeric_limits<double>::infinity();

}  // namespace ssr
