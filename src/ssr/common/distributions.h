// Duration distributions for task runtimes.
//
// Workload generators attach a DurationDist to every stage; the scheduler
// resamples from the same distribution when it launches a straggler copy
// (Sec. IV-C of the paper: copy durations t'_(k) are i.i.d. with the
// originals).  The variant covers everything the paper's evaluation needs:
// Pareto for trace-like heavy tails, uniform / lognormal for mild skew,
// fixed for deterministic tests, empirical for trace playback.
#pragma once

#include <memory>
#include <vector>

#include "ssr/common/rng.h"

namespace ssr {

/// A sampleable distribution over task durations (seconds).  Immutable after
/// construction; sampling draws from the caller-supplied Rng so the
/// distribution object itself is shareable across stages and threads.
class DurationDist {
 public:
  virtual ~DurationDist() = default;

  /// Draw one duration.  Always strictly positive.
  virtual double sample(Rng& rng) const = 0;

  /// Analytical (or empirical) mean, used by workload synthesizers to match
  /// the paper's "same mean" runtime adjustment (Sec. VI-B, Fig. 17).
  virtual double mean() const = 0;
};

using DurationDistPtr = std::shared_ptr<const DurationDist>;

/// Every sample equals `value`.
DurationDistPtr fixed_duration(double value);

/// Uniform in [lo, hi).
DurationDistPtr uniform_duration(double lo, double hi);

/// Pareto with shape `alpha` (> 1 for a finite mean) and scale `t_m`.
DurationDistPtr pareto_duration(double alpha, double scale);

/// Pareto with shape `alpha`, with the scale chosen so the mean equals
/// `mean`.  This implements the paper's Fig. 17 methodology: reshape a
/// workload's latency tail while holding the mean fixed.
DurationDistPtr pareto_duration_with_mean(double alpha, double mean);

/// Log-normal parameterized by the median and the sigma of the underlying
/// normal (sigma ~ 0.2-0.5 gives the mild skew of healthy ML tasks).
DurationDistPtr lognormal_duration(double median, double sigma);

/// Samples uniformly from a fixed list of observed durations.
DurationDistPtr empirical_duration(std::vector<double> values);

/// Wraps `base`, multiplying every sample (and the mean) by `factor`.
/// Used for the paper's "prolonged background jobs (task runtime x2)".
DurationDistPtr scaled_duration(DurationDistPtr base, double factor);

}  // namespace ssr
