#include "ssr/common/thread_pool.h"

namespace ssr {

ThreadPool::ThreadPool(unsigned num_workers) {
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::uint64_t ThreadPool::tasks_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain before exiting: queued work submitted before destruction
      // still runs (the destructor's contract).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the caller's future
  }
}

}  // namespace ssr
