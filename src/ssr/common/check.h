// Lightweight precondition / invariant checking.
//
// Simulation correctness depends on a number of internal invariants (slot
// state machines, barrier ordering, reservation bookkeeping).  Violations are
// programming errors, so they throw ssr::CheckError which carries the failing
// expression and location; tests assert on these throws for failure-injection
// coverage.
//
// Three macro families:
//   SSR_CHECK(expr)                 — bare condition.
//   SSR_CHECK_MSG(expr, msg)        — msg is a stream expression: anything
//                                     chainable with <<, e.g.
//                                     SSR_CHECK_MSG(ok, "job " << id << " bad")
//   SSR_CHECK_OP(a, ==, b)          — comparison that prints both operand
//     (and _EQ/_NE/_LT/_LE/_GT/_GE)   values on failure; use instead of
//                                     hand-building "expected X got Y" text.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ssr {

/// Thrown when an SSR_CHECK* macro fails.  Deriving from std::logic_error
/// signals "bug in the caller", not an environmental condition.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

/// Comparison failure: formats both operand values ("lhs OP rhs, got 3 vs 5")
/// so call sites never hand-build the message.  Works for any streamable
/// operand types.
template <typename A, typename B>
[[noreturn]] void check_op_failed(const char* expr, const char* file, int line,
                                  const char* op, const A& lhs, const B& rhs) {
  std::ostringstream os;
  os << "operands were " << lhs << " " << op << " " << rhs;
  check_failed(expr, file, line, os.str());
}

}  // namespace detail
}  // namespace ssr

#define SSR_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::ssr::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

// `msg` may be a single value or a <<-chain; it is evaluated only on failure.
#define SSR_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream ssr_check_os_;                                \
      ssr_check_os_ << msg; /* NOLINT */                               \
      ::ssr::detail::check_failed(#expr, __FILE__, __LINE__,           \
                                  ssr_check_os_.str());                \
    }                                                                  \
  } while (false)

// Comparison check printing both operands on failure.  `op` is the literal
// operator token: SSR_CHECK_OP(count, <=, capacity).
#define SSR_CHECK_OP(lhs, op, rhs)                                          \
  do {                                                                      \
    const auto& ssr_check_lhs_ = (lhs);                                     \
    const auto& ssr_check_rhs_ = (rhs);                                     \
    if (!(ssr_check_lhs_ op ssr_check_rhs_)) {                              \
      ::ssr::detail::check_op_failed(#lhs " " #op " " #rhs, __FILE__,       \
                                     __LINE__, #op, ssr_check_lhs_,         \
                                     ssr_check_rhs_);                       \
    }                                                                       \
  } while (false)

#define SSR_CHECK_EQ(lhs, rhs) SSR_CHECK_OP(lhs, ==, rhs)
#define SSR_CHECK_NE(lhs, rhs) SSR_CHECK_OP(lhs, !=, rhs)
#define SSR_CHECK_LT(lhs, rhs) SSR_CHECK_OP(lhs, <, rhs)
#define SSR_CHECK_LE(lhs, rhs) SSR_CHECK_OP(lhs, <=, rhs)
#define SSR_CHECK_GT(lhs, rhs) SSR_CHECK_OP(lhs, >, rhs)
#define SSR_CHECK_GE(lhs, rhs) SSR_CHECK_OP(lhs, >=, rhs)
