// Lightweight precondition / invariant checking.
//
// Simulation correctness depends on a number of internal invariants (slot
// state machines, barrier ordering, reservation bookkeeping).  Violations are
// programming errors, so they throw ssr::CheckError which carries the failing
// expression and location; tests assert on these throws for failure-injection
// coverage.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ssr {

/// Thrown when an SSR_CHECK* macro fails.  Deriving from std::logic_error
/// signals "bug in the caller", not an environmental condition.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace ssr

#define SSR_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::ssr::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define SSR_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr))                                                     \
      ::ssr::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
