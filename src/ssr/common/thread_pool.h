// Fixed-size worker thread pool.
//
// The sweep subsystem (ssr/exp/sweep.h) runs independent simulation trials
// on this pool; each task owns its private Engine/Simulator, so the pool
// needs no knowledge of the work beyond "a callable".  Results travel back
// through std::future, which also carries exceptions out of workers.
//
// Semantics chosen for deterministic experiment execution:
//  * submit() after shutdown began is a CheckError (programming error);
//  * the destructor *drains* the queue — every task submitted before
//    destruction runs to completion, then workers join — so dropping the
//    pool never silently discards trials;
//  * num_workers == 0 degenerates to inline execution on the calling
//    thread (useful for debugging and the serial baseline).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "ssr/common/check.h"

namespace ssr {

class ThreadPool {
 public:
  /// Spawns `num_workers` threads; 0 means "run every task inline in
  /// submit()" (no threads are created).
  explicit ThreadPool(unsigned num_workers);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; returns a future for its result.  An exception
  /// thrown by the callable is captured and rethrown from future::get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    if (workers_.empty()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++submitted_;
      }
      (*task)();
      return result;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      SSR_CHECK_MSG(!stopping_, "submit() on a ThreadPool being destroyed");
      ++submitted_;
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Number of worker threads (0 for the inline pool).
  std::size_t num_workers() const { return workers_.size(); }

  /// Tasks accepted over the pool's lifetime (queued + finished).
  std::uint64_t tasks_submitted() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::uint64_t submitted_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace ssr
