#include "ssr/common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ssr/common/check.h"

namespace ssr {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  SSR_CHECK_MSG(!values.empty(), "percentile of empty sample");
  SSR_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must lie in [0, 1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

}  // namespace ssr
