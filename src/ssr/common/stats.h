// Summary statistics helpers used by metrics collectors and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace ssr {

/// Streaming mean / variance (Welford).  Numerically stable for long runs.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample using linear interpolation between order
/// statistics (the common "type 7" estimator).  `q` in [0, 1].
/// The input is copied; the caller's vector is untouched.
double percentile(std::vector<double> values, double q);

/// Arithmetic mean; 0 for an empty vector.
double mean_of(const std::vector<double>& values);

}  // namespace ssr
