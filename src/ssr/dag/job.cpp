#include "ssr/dag/job.h"

#include <utility>

#include "ssr/common/check.h"

namespace ssr {

JobGraph::JobGraph(JobId id, JobSpec spec) : id_(id), spec_(std::move(spec)) {
  SSR_CHECK_MSG(!spec_.stages.empty(), "job must have at least one stage");
  const auto n = static_cast<std::uint32_t>(spec_.stages.size());
  children_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const StageSpec& st = spec_.stages[i];
    SSR_CHECK_MSG(st.num_tasks > 0, "stage must have at least one task");
    SSR_CHECK_MSG(st.duration != nullptr, "stage needs a duration model");
    if (st.explicit_durations) {
      SSR_CHECK_EQ(st.explicit_durations->size(), st.num_tasks);
      for (double d : *st.explicit_durations) {
        SSR_CHECK_MSG(d > 0.0, "task durations must be positive");
      }
    }
    for (std::uint32_t p : st.parents) {
      SSR_CHECK_MSG(p < i,
                    "stages must be topologically ordered (parent index must "
                    "precede child)");
      children_[p].push_back(i);
    }
    if (st.parents.empty()) roots_.push_back(i);
    total_tasks_ += st.num_tasks;
  }
  SSR_CHECK_MSG(!roots_.empty(), "job DAG has no root stage");
}

std::optional<std::uint32_t> JobGraph::downstream_parallelism(
    std::uint32_t index) const {
  if (!spec_.parallelism_known) return std::nullopt;
  const auto& kids = children_.at(index);
  if (kids.empty()) return std::nullopt;
  std::uint32_t total = 0;
  for (std::uint32_t c : kids) total += spec_.stages[c].num_tasks;
  return total;
}

std::optional<std::uint32_t> JobGraph::first_child(std::uint32_t index) const {
  const auto& kids = children_.at(index);
  if (kids.empty()) return std::nullopt;
  return kids.front();
}

JobBuilder::JobBuilder(std::string name) { spec_.name = std::move(name); }

JobBuilder& JobBuilder::priority(int p) {
  spec_.priority = p;
  return *this;
}

JobBuilder& JobBuilder::submit_at(SimTime t) {
  spec_.submit_time = t;
  return *this;
}

JobBuilder& JobBuilder::parallelism_known(bool known) {
  spec_.parallelism_known = known;
  return *this;
}

JobBuilder& JobBuilder::fair_weight(double w) {
  SSR_CHECK_MSG(w > 0.0, "fair weight must be positive");
  spec_.fair_weight = w;
  return *this;
}

JobBuilder& JobBuilder::stage(std::uint32_t num_tasks,
                              DurationDistPtr duration) {
  std::vector<std::uint32_t> parents;
  if (!spec_.stages.empty()) {
    parents.push_back(static_cast<std::uint32_t>(spec_.stages.size()) - 1);
  }
  return stage_with_parents(num_tasks, std::move(duration),
                            std::move(parents));
}

JobBuilder& JobBuilder::stage_with_parents(std::uint32_t num_tasks,
                                           DurationDistPtr duration,
                                           std::vector<std::uint32_t> parents) {
  StageSpec st;
  st.num_tasks = num_tasks;
  st.duration = std::move(duration);
  st.parents = std::move(parents);
  spec_.stages.push_back(std::move(st));
  return *this;
}

JobBuilder& JobBuilder::explicit_durations(std::vector<double> durations) {
  SSR_CHECK_MSG(!spec_.stages.empty(), "add a stage first");
  spec_.stages.back().explicit_durations = std::move(durations);
  return *this;
}

JobBuilder& JobBuilder::demand(Resources demand) {
  SSR_CHECK_MSG(!spec_.stages.empty(), "add a stage first");
  SSR_CHECK_MSG(demand.cpu > 0.0 && demand.memory > 0.0,
                "resource demand must be positive");
  spec_.stages.back().demand = demand;
  return *this;
}

JobSpec JobBuilder::build() { return std::move(spec_); }

}  // namespace ssr
