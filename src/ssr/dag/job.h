// Workflow job descriptions.
//
// A job is a DAG of stages (Spark terminology; the paper says "phases").
// Each stage is a set of parallel tasks separated from its parents by a
// barrier: no task of a stage may start until every task of every parent
// stage has finished.  The specs here are pure data; the scheduler consumes
// them through JobGraph, which validates the DAG and precomputes the
// child/parent relations Algorithm 1 needs (the "downstream phase" and its
// degree of parallelism).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ssr/common/distributions.h"
#include "ssr/common/ids.h"
#include "ssr/common/resources.h"
#include "ssr/common/time.h"

namespace ssr {

/// One phase of a job.
struct StageSpec {
  /// Degree of parallelism: number of parallel tasks.
  std::uint32_t num_tasks = 0;

  /// Per-task base durations are drawn i.i.d. from this distribution.  The
  /// straggler mitigator resamples from the same distribution for copies.
  DurationDistPtr duration;

  /// Indices (into JobSpec::stages) of upstream stages.  Must all be smaller
  /// than this stage's own index, i.e. stages are listed topologically.
  std::vector<std::uint32_t> parents;

  /// Optional explicit per-task durations (size == num_tasks).  When set,
  /// these override draws from `duration` for the original attempts; copies
  /// still sample from `duration`.  Used by deterministic tests and by the
  /// Fig. 17 Pareto runtime adjustment.
  std::optional<std::vector<double>> explicit_durations;

  /// Per-task resource demand (Sec. III-C): a task may only run on a slot
  /// whose capacity covers it.  Defaults to {1, 1, 1}, matching homogeneous
  /// Spark slots.
  Resources demand;
};

/// A whole workflow job.
struct JobSpec {
  std::string name;

  /// Scheduling priority; larger wins.  Reservations inherit this value.
  int priority = 0;

  /// Arrival time of the job at the scheduler.
  SimTime submit_time = kTimeZero;

  /// Whether the scheduler may use downstream parallelism a priori
  /// (Case-2 of Algorithm 1).  False models frameworks that only determine
  /// parallelism at runtime (Case-1): the reservation logic then assumes the
  /// downstream phase mirrors the current one.
  bool parallelism_known = true;

  /// Weight for fair scheduling (Spark fair scheduler pools); 1.0 default.
  double fair_weight = 1.0;

  /// Stages in topological order.
  std::vector<StageSpec> stages;
};

/// Validated view over a JobSpec with derived structure.  Construction
/// throws CheckError on malformed specs (empty stages, forward/self edges,
/// zero parallelism, missing duration model).
class JobGraph {
 public:
  JobGraph(JobId id, JobSpec spec);

  JobId id() const { return id_; }
  const JobSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  int priority() const { return spec_.priority; }
  SimTime submit_time() const { return spec_.submit_time; }

  std::uint32_t num_stages() const {
    return static_cast<std::uint32_t>(spec_.stages.size());
  }
  const StageSpec& stage(std::uint32_t index) const {
    return spec_.stages.at(index);
  }
  StageId stage_id(std::uint32_t index) const { return StageId{id_, index}; }

  /// Immediate downstream stages of `index`.
  const std::vector<std::uint32_t>& children(std::uint32_t index) const {
    return children_.at(index);
  }

  /// Stages with no parents (ready at submission).
  const std::vector<std::uint32_t>& roots() const { return roots_; }

  bool is_final_stage(std::uint32_t index) const {
    return children_.at(index).empty();
  }

  /// Total degree of parallelism of the immediate downstream stages — the
  /// "n" of Algorithm 1.  Returns nullopt for final stages, or when the job
  /// hides parallelism (Case-1: !parallelism_known).
  std::optional<std::uint32_t> downstream_parallelism(
      std::uint32_t index) const;

  /// Representative downstream stage a reservation made at `index` serves
  /// (the first child); nullopt for final stages.
  std::optional<std::uint32_t> first_child(std::uint32_t index) const;

  /// Sum of num_tasks over all stages.
  std::uint64_t total_tasks() const { return total_tasks_; }

 private:
  JobId id_;
  JobSpec spec_;
  std::vector<std::vector<std::uint32_t>> children_;
  std::vector<std::uint32_t> roots_;
  std::uint64_t total_tasks_ = 0;
};

/// Fluent builder for job specs.  `stage(n, dist)` appends a stage depending
/// on the previous stage (chain); `stage_with_parents` expresses general
/// DAGs.  Most paper workloads are chains of barriers.
class JobBuilder {
 public:
  explicit JobBuilder(std::string name);

  JobBuilder& priority(int p);
  JobBuilder& submit_at(SimTime t);
  JobBuilder& parallelism_known(bool known);
  JobBuilder& fair_weight(double w);

  /// Append a stage whose parent is the previously appended stage (or none
  /// if this is the first stage).
  JobBuilder& stage(std::uint32_t num_tasks, DurationDistPtr duration);

  /// Append a stage with explicit parent indices.
  JobBuilder& stage_with_parents(std::uint32_t num_tasks,
                                 DurationDistPtr duration,
                                 std::vector<std::uint32_t> parents);

  /// Set explicit per-task durations for the most recently added stage.
  JobBuilder& explicit_durations(std::vector<double> durations);

  /// Set the per-task resource demand of the most recently added stage.
  JobBuilder& demand(Resources demand);

  /// Finalize the spec.  The builder is left empty; build once per builder.
  JobSpec build();

 private:
  JobSpec spec_;
};

}  // namespace ssr
