// Analytical workload model (Sec. IV-B of the paper).
//
// Task durations in production traces follow a Pareto distribution with
// shape alpha (tail heaviness; production alpha is around 1.6) and scale t_m
// (shortest task runtime).  These closed forms quantify the trade-off
// between the isolation guarantee P and the utilization E[U] as a function
// of the reservation deadline D, and invert Eq. (2) so an operator-specified
// P yields the deadline the scheduler should impose.
#pragma once

#include <cstddef>
#include <vector>

#include "ssr/common/time.h"

namespace ssr {

/// Pareto(alpha, t_m): F(t) = 1 - (t_m / t)^alpha for t >= t_m (Eq. 1).
struct ParetoModel {
  double alpha = 1.6;  ///< Shape; > 1 for a finite mean.  Smaller = heavier tail.
  double scale = 1.0;  ///< t_m: minimum (and most likely) task duration.

  double cdf(double t) const;
  double pdf(double t) const;
  /// Inverse CDF: the t with F(t) = u, for u in [0, 1).
  double quantile(double u) const;
  double mean() const;
};

/// Eq. (2): the isolation guarantee P — the probability that all N i.i.d.
/// Pareto tasks finish before deadline D, i.e. F(D)^N.
double isolation_probability(const ParetoModel& model, double deadline,
                             std::size_t num_tasks);

/// Eq. (3): lower bound on expected utilization E[U] when every slot is
/// reserved until deadline D.  1 at D = t_m (no reservation idle time is
/// even possible) and decreasing in D.
double utilization_lower_bound(const ParetoModel& model, double deadline);

/// Eq. (4): the trade-off curve — the Eq. (3) bound expressed as a function
/// of the isolation guarantee P in [0, 1].  Monotonically decreasing in P.
double utilization_for_isolation(double alpha, double isolation_p,
                                 std::size_t num_tasks);

/// Inverts Eq. (2): the deadline enforcing isolation guarantee `p`.
/// Returns kTimeInfinity for p >= 1 (strict isolation: never expire).
SimDuration deadline_for_isolation(const ParetoModel& model, double p,
                                   std::size_t num_tasks);

/// Hill estimator of the Pareto tail index from observed durations, using
/// the `k` largest order statistics.  Useful for recurring jobs, where the
/// operator can learn alpha from previous runs (Sec. III-B, Case-2).
double hill_tail_index(std::vector<double> samples, std::size_t k);

}  // namespace ssr
