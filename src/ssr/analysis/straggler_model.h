// Numerical model of the straggler-mitigation strategy (Sec. IV-C).
//
// A phase of N tasks on N slots finishes at T = t_(N) (slowest task).  With
// the paper's mitigation, copies are launched once half the tasks finished
// (the point where #reserved-idle slots first equals #ongoing tasks), so
//
//   T' = t_(ceil(N/2)) + max_{ceil(N/2) < k <= N} min{ t_(k) - t_(ceil(N/2)),
//                                                      t'_(k) },
//
// where t_(k) is the k-th order statistic of the original durations and
// t'_(k) an i.i.d. copy duration.  There is no closed form; these helpers
// run the Monte-Carlo study behind Fig. 10.
#pragma once

#include <cstddef>

#include "ssr/analysis/pareto.h"
#include "ssr/common/rng.h"

namespace ssr {

/// One Monte-Carlo draw of a phase's completion time with and without
/// straggler mitigation.
struct PhaseCompletionSample {
  double without_mitigation = 0.0;  ///< T  = t_(N)
  double with_mitigation = 0.0;     ///< T' as above
};

/// Draw task durations i.i.d. from `model` and evaluate both completion
/// times for a phase of `num_tasks` tasks.
PhaseCompletionSample sample_phase_completion(const ParetoModel& model,
                                              std::size_t num_tasks, Rng& rng);

/// Average relative reduction of the phase completion time,
/// mean over `runs` draws of (T - T') / T.  Fig. 10's y-axis.
double mean_completion_reduction(const ParetoModel& model,
                                 std::size_t num_tasks, std::size_t runs,
                                 Rng& rng);

}  // namespace ssr
