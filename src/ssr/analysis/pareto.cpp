#include "ssr/analysis/pareto.h"

#include <algorithm>
#include <cmath>

#include "ssr/common/check.h"

namespace ssr {

double ParetoModel::cdf(double t) const {
  if (t < scale) return 0.0;
  return 1.0 - std::pow(scale / t, alpha);
}

double ParetoModel::pdf(double t) const {
  if (t < scale) return 0.0;
  return alpha * std::pow(scale, alpha) / std::pow(t, alpha + 1.0);
}

double ParetoModel::quantile(double u) const {
  SSR_CHECK_MSG(u >= 0.0 && u < 1.0, "quantile argument must be in [0, 1)");
  return scale * std::pow(1.0 - u, -1.0 / alpha);
}

double ParetoModel::mean() const {
  SSR_CHECK_MSG(alpha > 1.0, "Pareto mean requires alpha > 1");
  return alpha * scale / (alpha - 1.0);
}

double isolation_probability(const ParetoModel& model, double deadline,
                             std::size_t num_tasks) {
  SSR_CHECK_MSG(num_tasks > 0, "need at least one task");
  return std::pow(model.cdf(deadline), static_cast<double>(num_tasks));
}

double utilization_lower_bound(const ParetoModel& model, double deadline) {
  SSR_CHECK_MSG(model.alpha > 1.0, "utilization bound requires alpha > 1");
  if (deadline <= model.scale) return 1.0;
  const double ratio = model.scale / deadline;
  return model.alpha / (model.alpha - 1.0) * ratio -
         1.0 / (model.alpha - 1.0) * std::pow(ratio, model.alpha);
}

double utilization_for_isolation(double alpha, double isolation_p,
                                 std::size_t num_tasks) {
  SSR_CHECK_MSG(alpha > 1.0, "requires alpha > 1");
  SSR_CHECK_MSG(isolation_p >= 0.0 && isolation_p <= 1.0,
                "P must lie in [0, 1]");
  SSR_CHECK_MSG(num_tasks > 0, "need at least one task");
  // Eq. (4): substitute (t_m / D) = (1 - P^{1/N})^{1/alpha} into Eq. (3).
  const double base =
      1.0 - std::pow(isolation_p, 1.0 / static_cast<double>(num_tasks));
  return alpha / (alpha - 1.0) * std::pow(base, 1.0 / alpha) -
         base / (alpha - 1.0);
}

SimDuration deadline_for_isolation(const ParetoModel& model, double p,
                                   std::size_t num_tasks) {
  SSR_CHECK_MSG(p >= 0.0 && p <= 1.0, "P must lie in [0, 1]");
  SSR_CHECK_MSG(num_tasks > 0, "need at least one task");
  if (p >= 1.0) return kTimeInfinity;
  const double base = 1.0 - std::pow(p, 1.0 / static_cast<double>(num_tasks));
  return model.scale * std::pow(base, -1.0 / model.alpha);
}

double hill_tail_index(std::vector<double> samples, std::size_t k) {
  SSR_CHECK_MSG(k >= 1, "Hill estimator needs k >= 1");
  SSR_CHECK_MSG(samples.size() > k,
                "Hill estimator needs more samples than tail order k");
  for (double s : samples) SSR_CHECK_MSG(s > 0.0, "samples must be positive");
  std::sort(samples.begin(), samples.end(), std::greater<>());
  const double threshold = samples[k];  // (k+1)-th largest
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    acc += std::log(samples[i] / threshold);
  }
  return static_cast<double>(k) / acc;
}

}  // namespace ssr
