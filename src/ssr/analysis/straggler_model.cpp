#include "ssr/analysis/straggler_model.h"

#include <algorithm>
#include <vector>

#include "ssr/common/check.h"

namespace ssr {

PhaseCompletionSample sample_phase_completion(const ParetoModel& model,
                                              std::size_t num_tasks,
                                              Rng& rng) {
  SSR_CHECK_MSG(num_tasks >= 1, "need at least one task");
  std::vector<double> durations(num_tasks);
  for (double& d : durations) d = rng.pareto(model.alpha, model.scale);
  std::sort(durations.begin(), durations.end());

  PhaseCompletionSample out;
  out.without_mitigation = durations.back();

  // Copies start once ceil(N/2) tasks have finished.
  const std::size_t half = (num_tasks + 1) / 2;
  const double copies_start = durations[half - 1];
  double tail = 0.0;
  for (std::size_t k = half; k < num_tasks; ++k) {
    const double remaining = durations[k] - copies_start;
    const double copy = rng.pareto(model.alpha, model.scale);
    tail = std::max(tail, std::min(remaining, copy));
  }
  out.with_mitigation = copies_start + tail;
  return out;
}

double mean_completion_reduction(const ParetoModel& model,
                                 std::size_t num_tasks, std::size_t runs,
                                 Rng& rng) {
  SSR_CHECK_MSG(runs >= 1, "need at least one run");
  double acc = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    const auto s = sample_phase_completion(model, num_tasks, rng);
    acc += (s.without_mitigation - s.with_mitigation) / s.without_mitigation;
  }
  return acc / static_cast<double>(runs);
}

}  // namespace ssr
