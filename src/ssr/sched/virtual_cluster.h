// Multi-tenant virtual clusters over the open-system engine.
//
// A virtual cluster is a named, elastic slice of the physical cluster: a
// tenant owns a guaranteed minimum share and an elastic maximum share of
// slots, expressed in slot counts.  The manager is pure *admission control*
// layered on the engine's stepping API — it decides, at submission time,
// whether a tenant's job enters the engine now, waits in the tenant's FIFO
// queue, or is rejected outright.  Inside the engine, admitted jobs compete
// under the ordinary scheduling policy; the share bounds are enforced at the
// admission boundary (peak slot demand of in-flight jobs per tenant), which
// is how long-running services carve isolation out of a shared cluster
// without static partitioning.
//
// Interplay with the stepping API: drivers advance the engine to a job's
// arrival instant, then call submit_job(tenant, spec) — admission is always
// evaluated at engine.now(), and an admitted job's submit_time becomes that
// instant.  Queued jobs are re-considered (strictly FIFO per tenant) every
// time the tenant's in-flight demand shrinks or its shares grow: job
// completion, resize, transfer.  Because a queued head always fits within
// the tenant's maximum share (enforced at submission and at every resize),
// a non-empty queue implies in-flight work, so every queued job is admitted
// by quiescence — drain() never strands admitted-but-queued work.
//
// The manager is an EngineObserver (the same passive seam metrics and audit
// use) and keeps an append-only admission/completion log; the tenant-aware
// invariants in audit/tenant_audit.h replay that log to prove share
// conservation and FIFO-monotone admission after a run.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ssr/common/ids.h"
#include "ssr/common/time.h"
#include "ssr/dag/job.h"
#include "ssr/sched/engine.h"
#include "ssr/sched/types.h"

namespace ssr {

/// Declarative share bounds for one tenant's virtual cluster.
struct VirtualClusterSpec {
  std::string name;

  /// Guaranteed share: slots this tenant can always fill regardless of the
  /// other tenants' declared minima (sum over tenants must fit the physical
  /// cluster).  Admission itself only bounds against max_slots; the minimum
  /// is the conserved quantity resize/transfer move between tenants.
  std::uint32_t min_slots = 0;

  /// Elastic ceiling on the tenant's aggregate in-flight slot demand.
  std::uint32_t max_slots = 0;

  /// Over-quota submissions wait in the tenant's FIFO queue (true) or are
  /// rejected outright (false).
  bool queue_when_full = true;
};

/// What admission control decided for one submission.
enum class AdmissionOutcome {
  Admitted,  ///< entered the engine at engine.now()
  Queued,    ///< waiting in the tenant's FIFO queue
  Rejected,  ///< dropped: over quota with queueing off, or can never fit
};

/// Per-tenant isolation/SLO accounting, maintained incrementally.
struct TenantStats {
  std::uint64_t submitted = 0;  ///< submit_job calls for this tenant
  std::uint64_t admitted = 0;   ///< entered the engine (direct or via queue)
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  /// Submissions that spent time in the queue before admission.
  std::uint64_t queued_total = 0;

  /// Jobs admitted and not yet finished.
  std::uint32_t jobs_in_flight = 0;
  /// Aggregate peak slot demand of in-flight jobs (the admitted quantity
  /// the max share bounds).
  std::uint32_t demand_in_flight = 0;
  std::uint32_t peak_demand_in_flight = 0;

  /// Queue-delay SLO signal: admission instant minus submission instant,
  /// summed/maxed over admitted-from-queue jobs (directly admitted jobs
  /// contribute zero).
  double total_queue_delay = 0.0;
  double max_queue_delay = 0.0;
  /// Sum of engine JCTs (finish - submit, excluding queue delay) over
  /// completed jobs.
  double total_jct = 0.0;

  double mean_queue_delay() const {
    return admitted == 0 ? 0.0 : total_queue_delay / admitted;
  }
  double mean_jct() const {
    return completed == 0 ? 0.0 : total_jct / completed;
  }
};

/// Append-only record of one admission, for the tenant audit.
struct AdmissionRecord {
  std::string tenant;
  JobId job;
  std::uint32_t demand = 0;       ///< peak slot demand charged to the share
  SimTime requested_at = 0.0;     ///< submit_job instant
  SimTime admitted_at = 0.0;      ///< engine submit instant
  bool from_queue = false;
  std::uint32_t in_flight_after = 0;  ///< tenant demand including this job
  std::uint32_t max_at_admit = 0;     ///< tenant max share at admission
};

/// Append-only record of one completion, for the tenant audit.
struct CompletionRecord {
  std::string tenant;
  JobId job;
  std::uint32_t demand = 0;
  SimTime finished_at = 0.0;
};

class VirtualClusterManager : public EngineObserver {
 public:
  /// Registers itself as an observer; the engine must outlive the manager's
  /// last callback (i.e. the manager must outlive the run).
  explicit VirtualClusterManager(Engine& engine);

  VirtualClusterManager(const VirtualClusterManager&) = delete;
  VirtualClusterManager& operator=(const VirtualClusterManager&) = delete;

  /// Create a tenant.  Shares are validated eagerly: max >= max(min, 1) and
  /// the guaranteed minima of all tenants must fit the physical cluster.
  void add_cluster(VirtualClusterSpec spec);

  /// Elastic resize of one tenant's shares.  Shrinking below the tenant's
  /// current in-flight demand is allowed (running jobs are never revoked;
  /// new admissions wait), but the new maximum must still cover every queued
  /// job's demand so the FIFO head can always eventually run.
  void resize(const std::string& tenant, std::uint32_t new_min,
              std::uint32_t new_max);

  /// Move `slots` of both guaranteed and elastic share from one tenant to
  /// another; total min/max over tenants is conserved exactly.
  void transfer(const std::string& from, const std::string& to,
                std::uint32_t slots);

  /// Admission control at engine.now(): admit (submit_time := now), queue,
  /// or reject `spec` against the tenant's elastic share.  A job whose peak
  /// demand exceeds the tenant's maximum share can never fit and is always
  /// rejected, even with queueing on.
  AdmissionOutcome submit_job(const std::string& tenant, JobSpec spec);

  /// Peak slot demand a job charges against its tenant's share: the widest
  /// stage, clamped to the physical cluster (a 500-task stage on 20 slots
  /// occupies at most 20 at once).
  std::uint32_t slot_demand(const JobSpec& spec) const;

  // --- Introspection --------------------------------------------------------

  std::vector<std::string> tenant_names() const;  ///< insertion order
  const VirtualClusterSpec& spec(const std::string& tenant) const;
  const TenantStats& stats(const std::string& tenant) const;
  std::uint32_t queued_jobs(const std::string& tenant) const;
  bool all_queues_empty() const;
  /// Owning tenant of an admitted job; nullptr for jobs submitted around the
  /// manager (mixed-mode runs are legal — such jobs are simply unmetered).
  const std::string* tenant_of(JobId job) const;

  const std::vector<AdmissionRecord>& admission_log() const {
    return admission_log_;
  }
  const std::vector<CompletionRecord>& completion_log() const {
    return completion_log_;
  }

  // --- EngineObserver -------------------------------------------------------

  /// Releases the finished job's demand and pumps its tenant's queue.
  void on_job_finished(const Engine&, JobId job) override;
  /// Closes the books: every queue must have drained (liveness; see the
  /// file comment) — throws CheckError otherwise.
  void on_run_complete(const Engine&) override;

 private:
  struct QueuedJob {
    JobSpec spec;
    SimTime requested_at = 0.0;
  };

  struct Tenant {
    VirtualClusterSpec spec;
    TenantStats stats;
    std::deque<QueuedJob> queue;
  };

  Tenant& tenant(const std::string& name);
  const Tenant& tenant(const std::string& name) const;

  /// Does `demand` fit the tenant's elastic share right now?
  static bool fits(const Tenant& t, std::uint32_t demand) {
    return t.stats.demand_in_flight + demand <= t.spec.max_slots;
  }

  /// Enter one job into the engine and charge its demand to the tenant.
  void admit(Tenant& t, JobSpec spec, SimTime requested_at, bool from_queue);

  /// Admit from the queue head while it fits (strict FIFO: never skips a
  /// blocked head, so admission order within a tenant is submission order).
  void pump(Tenant& t);

  /// Σ min_slots over tenants must fit the physical cluster.
  void check_share_conservation() const;

  Engine& engine_;
  std::vector<std::unique_ptr<Tenant>> tenants_;  ///< insertion order
  std::unordered_map<std::string, std::uint32_t> by_name_;
  std::unordered_map<std::uint32_t, std::uint32_t> job_tenant_;  ///< JobId.v
  std::vector<AdmissionRecord> admission_log_;
  std::vector<CompletionRecord> completion_log_;
};

}  // namespace ssr
