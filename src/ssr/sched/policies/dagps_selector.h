// DAGPS-style "do the hard stuff first" stage selector (Grandl et al.,
// "Graphene: Packing and Dependency-Aware Scheduling for Data-Parallel
// Clusters", OSDI 2016 — see PAPERS.md).  Graphene identifies the
// *troublesome* subset of a DAG — the tasks on the longest
// expected-duration dependency chains — and schedules it first, so the
// unavoidable critical path overlaps with everything else instead of
// serializing after it.
//
// This selector is the stage-granular analogue over our barrier DAGs: a
// stage's score is the critical-path length of the *remaining* DAG rooted at
// it (its own expected task duration plus the longest chain of expected
// durations through its descendants).  Stages on long chains therefore beat
// stages that merely arrived earlier or belong to higher-priority jobs —
// isolation is traded away for makespan, which is exactly the baseline the
// shoot-out bench contrasts with SSR (DESIGN.md §14).
#pragma once

#include "ssr/sched/types.h"

namespace ssr {

class DagpsSelector : public StageSelector {
 public:
  /// Critical-path length from `stage` to the end of its job's DAG, in
  /// expected (mean) seconds.  Deterministic: derived from spec-level
  /// distribution means (or the mean of explicit durations), never from
  /// sampled runtimes.
  double stage_score(const Engine& engine, StageId stage) const override;
};

}  // namespace ssr
