#include "ssr/sched/policies/dagps_selector.h"

#include <algorithm>
#include <vector>

#include "ssr/dag/job.h"
#include "ssr/sched/engine.h"

namespace ssr {

namespace {

/// Expected duration of one task of `spec`: the mean of the explicit
/// per-task durations when the spec pins them, the distribution's analytical
/// mean otherwise.  Both are pure spec-level quantities — no sampling.
double expected_task_duration(const StageSpec& spec) {
  if (spec.explicit_durations.has_value() &&
      !spec.explicit_durations->empty()) {
    double sum = 0.0;
    for (double d : *spec.explicit_durations) sum += d;
    return sum / static_cast<double>(spec.explicit_durations->size());
  }
  return spec.duration->mean();
}

}  // namespace

double DagpsSelector::stage_score(const Engine& engine, StageId stage) const {
  const JobGraph& graph = engine.graph(stage.job);
  const std::uint32_t n = graph.num_stages();
  // Stages are topological (parents have smaller indices), so one backward
  // pass from the last stage down to `stage.index` fills every descendant's
  // critical path before it is read.  Jobs are a handful of stages and the
  // score is computed once per activation (the engine caches it in the
  // active-stage table), so the O(stages + edges) pass is cheap.
  std::vector<double> critical_path(n, 0.0);
  for (std::uint32_t i = n; i-- > stage.index;) {
    double longest_child = 0.0;
    for (std::uint32_t child : graph.children(i)) {
      longest_child = std::max(longest_child, critical_path[child]);
    }
    critical_path[i] = expected_task_duration(graph.stage(i)) + longest_child;
  }
  return critical_path[stage.index];
}

}  // namespace ssr
