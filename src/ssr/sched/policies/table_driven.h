// Table-driven time-partitioned reservation policy, in the spirit of
// litmus-rt's `reservations/table-driven-ss` (SNIPPETS.md §1–3): the
// operator writes a static timetable — a major cycle and a set of slot
// windows inside it — and during every window a fixed number of slots is
// held for the latency-sensitive class, unconditionally, whether or not the
// class has work.
//
// This is the hard-isolation *upper* baseline of the policy zoo
// (DESIGN.md §14): inside its windows the class sees guaranteed capacity
// with zero queueing interference, like a table-driven CPU reservation sees
// its minor-cycle slices; outside them it competes like everyone else.  The
// price is paid in utilization — windowed slots sit ReservedIdle whenever
// the class is idle — which is exactly the trade-off the cross-policy
// shoot-out quantifies against SSR's demand-driven reservations.
//
// Mechanically the policy is a ReservationHook: window starts are simulator
// wakeups, and every reservation carries the absolute end of its window as
// the deadline, so the engine's ordinary expiry machinery tears the
// timetable down on time even if the hook never runs again.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "ssr/common/ids.h"
#include "ssr/common/time.h"
#include "ssr/sched/types.h"

namespace ssr {

/// One reservation window, half-open, in cycle-relative time:
/// [start, end) with 0 <= start < end <= major_cycle.
struct TableInterval {
  SimTime start = 0.0;
  SimTime end = 0.0;
};

struct TableDrivenConfig {
  /// Timetable period: the window pattern repeats every major_cycle
  /// simulated seconds, forever.
  SimDuration major_cycle = 60.0;

  /// Windows within one cycle, sorted by start, pairwise disjoint.
  std::vector<TableInterval> intervals;

  /// Slots held for the class during each window.
  std::uint32_t reserved_slots = 0;

  /// Jobs with priority >= this belong to the protected class and may claim
  /// the windowed slots (the reservations are tagged class_min_priority - 1,
  /// so the standard strictly-higher-priority override admits exactly the
  /// class).
  int class_min_priority = 1;
};

class TableDrivenHook : public ReservationHook {
 public:
  /// Validates the timetable (positive cycle; windows sorted, disjoint,
  /// inside the cycle); throws CheckError on a malformed table.
  explicit TableDrivenHook(TableDrivenConfig config);

  void on_task_finished(Engine& engine, const TaskFinishInfo& info) override;
  void on_task_killed(Engine& engine, const TaskFinishInfo& info) override;
  void on_slot_idle(Engine& engine, SlotId slot) override;
  void on_slot_failed(Engine& engine, SlotId slot) override;
  bool approve(const Engine& engine, SlotId slot, JobId job,
               int priority) const override;
  ReservedApprovalModel reserved_approval_model() const override {
    return ReservedApprovalModel::PriorityOverride;
  }
  void on_stage_submitted(Engine& engine, StageId stage) override;
  void on_stage_fully_placed(Engine&, StageId) override {}
  void on_task_started(Engine& engine, TaskId task, SlotId slot) override;
  void on_job_finished(Engine&, JobId) override {}

  // --- Pure timetable queries (exercised by the property tests) -------------

  /// Is absolute time `t` inside a reservation window?
  bool in_window(SimTime t) const;

  /// Absolute end of the window containing `t`.  Precondition: in_window(t).
  SimTime window_end(SimTime t) const;

  /// Absolute start of the first window strictly after `t` (wraps across the
  /// major-cycle boundary).  Precondition: the table has >= 1 window.
  SimTime next_window_start_after(SimTime t) const;

  /// Slots currently held ReservedIdle for the class.
  std::size_t held_slots() const { return held_.size(); }

  const TableDrivenConfig& table() const { return config_; }

  /// Sentinel owner of the windowed reservations (no real job; approval
  /// works through the reservation priority, as with
  /// StaticReservationHook::kClassJob).
  static constexpr JobId kTableJob{0xFFFFFFFEu};

 private:
  /// Cycle-relative phase of `t`: t mod major_cycle.
  SimTime phase_of(SimTime t) const;

  /// Top the held set up to reserved_slots if `t` is inside a window;
  /// no-op outside windows.
  void replenish(Engine& engine);

  /// Ensure a wakeup is pending for the next window start.  The chain
  /// re-arms itself while unfinished jobs exist and goes quiet otherwise,
  /// so drain() terminates; any later hook callback re-arms it.
  void arm_wakeup(Engine& engine);

  TableDrivenConfig config_;
  std::set<SlotId> held_;  ///< currently ReservedIdle for the class
  bool wakeup_armed_ = false;
};

}  // namespace ssr
