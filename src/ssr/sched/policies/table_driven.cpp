#include "ssr/sched/policies/table_driven.h"

#include <cmath>
#include <vector>

#include "ssr/common/check.h"
#include "ssr/sched/engine.h"

namespace ssr {

TableDrivenHook::TableDrivenHook(TableDrivenConfig config)
    : config_(std::move(config)) {
  SSR_CHECK_MSG(config_.major_cycle > 0.0, "major cycle must be positive");
  SimTime prev_end = 0.0;
  for (const TableInterval& w : config_.intervals) {
    SSR_CHECK_MSG(w.start >= prev_end,
                  "table windows must be sorted and disjoint");
    SSR_CHECK_MSG(w.start < w.end, "table window must be non-empty");
    SSR_CHECK_MSG(w.end <= config_.major_cycle,
                  "table window must lie inside the major cycle");
    prev_end = w.end;
  }
}

SimTime TableDrivenHook::phase_of(SimTime t) const {
  // fmod of non-negative simulated times; the result is in
  // [0, major_cycle).  Exact multiples of the cycle land on phase 0, the
  // start of a fresh cycle — which is what makes back-to-back windows
  // [x, cycle) + [0, y) behave as one contiguous window across the wrap.
  return std::fmod(t, config_.major_cycle);
}

bool TableDrivenHook::in_window(SimTime t) const {
  const SimTime phase = phase_of(t);
  for (const TableInterval& w : config_.intervals) {
    if (phase >= w.start && phase < w.end) return true;
    if (phase < w.start) break;  // sorted: no later window can contain it
  }
  return false;
}

SimTime TableDrivenHook::window_end(SimTime t) const {
  const SimTime phase = phase_of(t);
  for (const TableInterval& w : config_.intervals) {
    if (phase >= w.start && phase < w.end) return t + (w.end - phase);
  }
  SSR_CHECK_MSG(false, "window_end called outside every window");
  return t;
}

SimTime TableDrivenHook::next_window_start_after(SimTime t) const {
  SSR_CHECK_MSG(!config_.intervals.empty(), "timetable has no windows");
  const SimTime phase = phase_of(t);
  const SimTime cycle_base = t - phase;
  for (const TableInterval& w : config_.intervals) {
    if (cycle_base + w.start > t) return cycle_base + w.start;
  }
  // Every window start of this cycle is at or behind t: wrap to the first
  // window of the next cycle.
  return cycle_base + config_.major_cycle + config_.intervals.front().start;
}

void TableDrivenHook::replenish(Engine& engine) {
  // Go quiet once every submitted job finished: a 100%-duty table would
  // otherwise re-reserve at each expiry forever and drain() would never
  // terminate.  A job submitted later restarts us via on_stage_submitted.
  if (engine.all_jobs_finished()) return;
  const SimTime now = engine.sim().now();
  if (!in_window(now) || held_.size() >= config_.reserved_slots) return;
  const SimTime deadline = window_end(now);
  // Copy: reserving mutates the idle set.
  const std::vector<SlotId> idle(engine.cluster().idle_slots().begin(),
                                 engine.cluster().idle_slots().end());
  for (SlotId s : idle) {
    if (held_.size() >= config_.reserved_slots) break;
    if (engine.cluster().slot(s).state() != SlotState::Idle) continue;
    Reservation r;
    r.job = kTableJob;
    // Class jobs (priority >= class_min_priority) pass the strictly-higher
    // approval test against this value; everyone else is walled out.
    r.priority = config_.class_min_priority - 1;
    // The engine's expiry event releases the slot at the window edge even
    // if this hook is never called again before then.
    r.deadline = deadline;
    held_.insert(s);
    engine.reserve_slot(s, r);
  }
}

void TableDrivenHook::arm_wakeup(Engine& engine) {
  if (wakeup_armed_) return;
  wakeup_armed_ = true;
  const SimTime at = next_window_start_after(engine.sim().now());
  engine.sim().schedule_at(at, EventBand::kInternal, [this, &engine] {
    wakeup_armed_ = false;
    // Go quiet once every submitted job finished so drain() terminates; a
    // job submitted later re-arms the chain via on_stage_submitted.
    if (engine.all_jobs_finished()) return;
    replenish(engine);
    arm_wakeup(engine);
  });
}

void TableDrivenHook::on_task_finished(Engine& engine, const TaskFinishInfo&) {
  replenish(engine);
  arm_wakeup(engine);
}

void TableDrivenHook::on_task_killed(Engine& engine, const TaskFinishInfo&) {
  replenish(engine);
  arm_wakeup(engine);
}

void TableDrivenHook::on_slot_idle(Engine& engine, SlotId slot) {
  // Reached when a windowed reservation expires at its window edge (or a
  // policy released some other reservation): reconcile, then re-establish
  // the target if we are inside a (possibly adjacent) window.
  held_.erase(slot);
  replenish(engine);
}

void TableDrivenHook::on_slot_failed(Engine& engine, SlotId slot) {
  // A windowed slot died; the engine already broke the reservation.
  if (held_.erase(slot) > 0) replenish(engine);
}

bool TableDrivenHook::approve(const Engine& engine, SlotId slot, JobId job,
                              int priority) const {
  const Slot& s = engine.cluster().slot(slot);
  switch (s.state()) {
    case SlotState::Idle:
      return true;
    case SlotState::ReservedIdle: {
      const Reservation& r = *s.reservation();
      return r.job == job || priority > r.priority;
    }
    case SlotState::Busy:
    case SlotState::Dead:
      return false;
  }
  return false;
}

void TableDrivenHook::on_stage_submitted(Engine& engine, StageId) {
  // First chance to establish the timetable once work exists.
  replenish(engine);
  arm_wakeup(engine);
}

void TableDrivenHook::on_task_started(Engine& engine, TaskId, SlotId slot) {
  // A class job claimed a windowed slot; top the window back up.
  if (held_.erase(slot) > 0) replenish(engine);
}

}  // namespace ssr
