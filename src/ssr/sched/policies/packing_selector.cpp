#include "ssr/sched/policies/packing_selector.h"

#include <algorithm>

#include "ssr/common/resources.h"
#include "ssr/dag/job.h"
#include "ssr/sched/engine.h"
#include "ssr/sim/cluster.h"

namespace ssr {

double PackingSelector::stage_score(const Engine& engine,
                                    StageId stage) const {
  return engine.graph(stage.job).stage(stage.index).demand.total();
}

bool PackingSelector::rank_slots(const Engine& engine, StageId stage,
                                 std::vector<SlotId>& slots) const {
  const Resources& demand =
      engine.graph(stage.job).stage(stage.index).demand;
  const Cluster& cluster = engine.cluster();
  // Plain deterministic comparison: waste is exact double arithmetic over
  // static capacities, and the slot id breaks every tie, so the order is a
  // pure function of (demand, candidate set) — identical between the
  // reference and indexed enumerations after their shared-prefix sets are
  // sorted, which the differential suite relies on.  Slots too small for the
  // demand sort by their (possibly negative) slack like any other; the
  // placement loop's fits_in check rejects them regardless of position.
  std::sort(slots.begin(), slots.end(), [&](SlotId a, SlotId b) {
    const double wa = packing_waste(demand, cluster.slot(a).capacity());
    const double wb = packing_waste(demand, cluster.slot(b).capacity());
    if (wa != wb) return wa < wb;
    return a < b;
  });
  return true;
}

}  // namespace ssr
