// Multi-resource packing selector (Shafiee & Ghaderi — see PAPERS.md; in
// the lineage of Tetris, Grandl et al. SIGCOMM 2014, and ant-ray's
// cluster_resource_data scoring).  Two coupled decisions:
//
//  * stage order: resource-hungry stages first (descending demand
//    magnitude), so big vector demands are placed while the slot mix is
//    still rich instead of fragmenting the cluster with small tasks and
//    stranding the big ones;
//  * slot choice: best fit — among the slots a stage may take, pick the one
//    whose capacity vector leaves the least summed slack over the demand,
//    keeping large slots free for large demands.
//
// On a homogeneous cluster with uniform {1,1,1} demands both decisions
// collapse to the built-in order (all scores and wastes tie, and the
// id-order tie-break reproduces the engine's enumeration), which is what
// keeps the scalar-slot goldens byte-identical.  The policy only bites when
// the workload varies demand vectors (TraceGenConfig::vary_demand) or the
// cluster has heterogeneous slot capacities.
#pragma once

#include "ssr/sched/types.h"

namespace ssr {

class PackingSelector : public StageSelector {
 public:
  /// Demand magnitude of the stage's per-task resource vector: cpu + mem +
  /// net.  Bigger demands run first.
  double stage_score(const Engine& engine, StageId stage) const override;

  /// Best-fit order: ascending packing waste (summed componentwise slack of
  /// capacity over demand), slot id as the deterministic tie-break.
  bool rank_slots(const Engine& engine, StageId stage,
                  std::vector<SlotId>& slots) const override;
};

}  // namespace ssr
