// ReferenceSelector: differential-testing fixture that pins the engine to
// the reference (pre-index) candidate enumeration.
//
// It wraps any ReservationHook and forwards every callback unchanged, but
// reports ReservedApprovalModel::Custom, which makes Engine::place_stage_tasks
// take the full-scan enumeration path — the linear scans the incremental
// indexes replaced.  Running the same scenario with and without the wrapper
// and comparing the resulting task-start sequences therefore checks the
// optimized path against the original, decision for decision.
#pragma once

#include <memory>
#include <utility>

#include "ssr/common/check.h"
#include "ssr/sched/types.h"

namespace ssr {

class ReferenceSelector : public ReservationHook {
 public:
  explicit ReferenceSelector(std::unique_ptr<ReservationHook> inner)
      : inner_(std::move(inner)) {
    SSR_CHECK_MSG(inner_ != nullptr, "ReferenceSelector needs a hook to wrap");
  }

  void on_task_finished(Engine& engine, const TaskFinishInfo& info) override {
    inner_->on_task_finished(engine, info);
  }
  void on_task_killed(Engine& engine, const TaskFinishInfo& info) override {
    inner_->on_task_killed(engine, info);
  }
  void on_slot_idle(Engine& engine, SlotId slot) override {
    inner_->on_slot_idle(engine, slot);
  }
  void on_slot_failed(Engine& engine, SlotId slot) override {
    inner_->on_slot_failed(engine, slot);
  }
  bool approve(const Engine& engine, SlotId slot, JobId job,
               int priority) const override {
    return inner_->approve(engine, slot, job, priority);
  }
  ReservedApprovalModel reserved_approval_model() const override {
    return ReservedApprovalModel::Custom;
  }
  void on_stage_submitted(Engine& engine, StageId stage) override {
    inner_->on_stage_submitted(engine, stage);
  }
  void on_stage_fully_placed(Engine& engine, StageId stage) override {
    inner_->on_stage_fully_placed(engine, stage);
  }
  void on_task_started(Engine& engine, TaskId task, SlotId slot) override {
    inner_->on_task_started(engine, task, slot);
  }
  void on_job_finished(Engine& engine, JobId job) override {
    inner_->on_job_finished(engine, job);
  }

 private:
  std::unique_ptr<ReservationHook> inner_;
};

}  // namespace ssr
