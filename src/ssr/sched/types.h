// Shared scheduler types: configuration, the reservation hook interface the
// core SSR library implements, and the observer interface metrics collectors
// implement.
//
// The scheduler mirrors Spark's three-layer architecture (Sec. V of the
// paper): Engine plays DAGScheduler (barrier tracking, stage submission) and
// TaskSchedulerImpl (resourceOffers + ApprovalLogic); StageRuntime plays
// TaskSetManager (per-phase task lifecycle and delay scheduling).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ssr/common/ids.h"
#include "ssr/common/time.h"
#include "ssr/sim/event_queue_options.h"

namespace ssr {

class Engine;
struct Reservation;

/// Why a reservation stopped being active.  A reservation consumed by a task
/// start ("claimed") is not reported through on_reservation_released — the
/// on_task_started callback that fires for the claiming attempt is the
/// release notification in that case.
enum class ReservationEndReason {
  Expired,     ///< Deadline event fired with the reservation still current.
  Released,    ///< Policy released it (fully placed, job finished, override).
  SlotFailed,  ///< The reserved slot died (fault injection); the reservation
               ///< was broken, not consumed.
};

/// How the scheduler orders task sets when offering slots.
enum class SchedulingPolicy {
  /// Strict priority: higher job priority first; FIFO within a priority.
  Priority,
  /// Spark fair scheduler: fewest running tasks per fair-share weight first.
  Fair,
};

/// Pluggable stage-ordering / slot-ranking policy (the "policy zoo" seam,
/// DESIGN.md §14).  A selector refines — it does not replace — the built-in
/// SchedulingPolicy: when one is installed, active task sets are ordered by
/// descending stage_score() first, and only ties fall through to the
/// configured Priority/Fair comparison, so every selector inherits the
/// engine's deterministic total order.  rank_slots() optionally reorders the
/// candidate slots the engine already enumerated for a stage (e.g. best-fit
/// packing); it must only permute the vector, never add or drop entries —
/// the engine's approval logic stays the source of truth for which slots a
/// stage may take.
///
/// Both methods must be pure functions of engine state: no mutation, no
/// wall-clock/random input, no iteration-order dependence on unordered
/// containers (the nondet-iteration analyzer rule treats them as sinks).
/// Scores are doubles compared exactly, so derive them from deterministic
/// arithmetic over spec values (DurationDist::mean(), Resources components).
class StageSelector {
 public:
  virtual ~StageSelector() = default;

  /// Priority score for an active stage's task set; higher runs first.
  /// Called once when the stage's task set becomes active (scores are
  /// cached, not re-polled per offer).
  virtual double stage_score(const Engine& engine, StageId stage) const = 0;

  /// Optionally reorder `slots` (best candidate first) for `stage`.  Return
  /// false to keep the engine's id-order enumeration (the default).
  virtual bool rank_slots(const Engine& engine, StageId stage,
                          std::vector<SlotId>& slots) const {
    (void)engine;
    (void)stage;
    (void)slots;
    return false;
  }
};

struct SchedConfig {
  SchedulingPolicy policy = SchedulingPolicy::Priority;

  /// Optional stage-ordering/slot-ranking policy.  Null (the default) keeps
  /// the built-in Priority/Fair ordering byte-identical to before the
  /// selector seam existed.  Shared, not owned: the same selector instance
  /// may drive several engines (it is stateless by contract).
  std::shared_ptr<const StageSelector> selector;

  /// How long a task set insists on data-local slots before accepting any
  /// slot (spark.locality.wait; the paper and we use 3 s).
  SimDuration locality_wait = 3.0;

  /// Multiplier applied to a task's base duration when it runs on a slot
  /// without its parent stage's output (no data locality, cold executor).
  /// The paper measured up to two orders of magnitude in the cluster and
  /// conservatively simulates 5x (10x in the Fig. 15c stress setting).
  double locality_slowdown = 5.0;

  /// Per-task fixed scheduling overhead added to every attempt's runtime.
  /// Models driver latency; keeps zero-length phases from being free.
  SimDuration task_overhead = 0.0;

  /// Event-queue storage backend (heap / calendar).  Purely a performance
  /// knob: both implement the identical (time, band, seq) total order, so
  /// every digest and trace is bit-identical between them by construction
  /// (enforced by the shard-determinism suite).
  EventQueueBackend event_queue_backend = EventQueueBackend::kBinaryHeap;

  /// Event-queue shard count (per-node-group lanes with worker-thread
  /// maintenance).  1 = classic single-lane queue, no threads.  Output is
  /// bit-identical for every value — a tested contract, see DESIGN.md §13.
  std::uint32_t event_shards = 1;
};

/// Everything the reservation hook needs to know about a finished (or
/// killed) task attempt.
struct TaskFinishInfo {
  TaskId task;
  SlotId slot;
  /// Parallelism m of the task's own stage.
  std::uint32_t stage_parallelism = 0;
  /// Number of original tasks of the stage that have finished (including
  /// this one).
  std::uint32_t stage_finished = 0;
  /// This attempt's measured duration (start to finish).
  SimDuration duration = 0.0;
};

/// What a hook's approve() does with ReservedIdle slots.  The engine uses
/// this to pick an indexed candidate enumeration on the scheduling hot path
/// instead of probing approve() against every reserved slot.  Whatever the
/// model, approve() itself stays the source of truth: the engine only ever
/// uses the model to *restrict* which slots it asks about, and the indexed
/// enumerations are constructed to visit exactly the slots approve() would
/// accept, in the same id order the full scan would.
enum class ReservedApprovalModel {
  /// approve() is arbitrary; the engine must probe every reserved slot.
  /// The conservative default — unknown hooks get the full-scan path.
  Custom,
  /// approve() never accepts a ReservedIdle slot (NullReservationHook).
  NeverApprove,
  /// approve() accepts a ReservedIdle slot iff the reservation belongs to
  /// the requesting job or the requester's priority strictly exceeds the
  /// reservation's (Algorithm 1's ApprovalLogic; all SSR policy hooks).
  PriorityOverride,
};

/// Interface the speculative-slot-reservation core implements; a null
/// default (no reservations, plain work conservation) is used otherwise.
///
/// Call ordering contract, per event:
///   task completes -> Cluster::finish_task (slot now Idle)
///                  -> hook.on_task_finished (may reserve the slot)
///                  -> barrier bookkeeping (stage/job completion)
///                  -> the slot, if still idle, is offered to task sets.
class ReservationHook {
 public:
  virtual ~ReservationHook() = default;

  /// An original task attempt of a non-copy finished on `slot` (the slot is
  /// Idle at call time).  Algorithm 1's HandleTaskCompletion.
  virtual void on_task_finished(Engine& engine, const TaskFinishInfo& info) = 0;

  /// A running attempt was killed because its twin finished first.  The
  /// paper's mechanism treats the slot like a completed-task slot (it is warm
  /// and mid-phase), so implementations typically re-reserve it.
  virtual void on_task_killed(Engine& engine, const TaskFinishInfo& info) = 0;

  /// A slot became idle for a reason other than task completion (reservation
  /// expiry/override, job teardown, failure recovery).  Gives
  /// pre-reservation (Case-2.3) a chance to grab it.
  virtual void on_slot_idle(Engine& engine, SlotId slot) = 0;

  /// `slot` is transitioning to Dead (fault injection).  Any reservation it
  /// held has already been released by the engine; implementations must drop
  /// their own bookkeeping for the slot and must NOT reserve it (it is
  /// already Dead at call time).  Default: nothing to reconcile.
  virtual void on_slot_failed(Engine& engine, SlotId slot) {
    (void)engine;
    (void)slot;
  }

  /// ApprovalLogic (Algorithm 1, TryAllocateTask): may `job` with `priority`
  /// start a task on `slot`?  Must return true for unreserved idle slots.
  virtual bool approve(const Engine& engine, SlotId slot, JobId job,
                       int priority) const = 0;

  /// Declares approve()'s behaviour on ReservedIdle slots so the engine can
  /// enumerate candidates from incremental indexes.  Override ONLY if
  /// approve() exactly matches the declared model; Custom is always safe.
  virtual ReservedApprovalModel reserved_approval_model() const {
    return ReservedApprovalModel::Custom;
  }

  /// A stage's task set was submitted (its barrier cleared).
  virtual void on_stage_submitted(Engine& engine, StageId stage) = 0;

  /// Every task of `stage` has been handed a slot; reservations made on the
  /// stage's behalf that were not consumed can be released.
  virtual void on_stage_fully_placed(Engine& engine, StageId stage) = 0;

  /// A task attempt started on `slot` (drives straggler-mitigation state).
  virtual void on_task_started(Engine& engine, TaskId task, SlotId slot) = 0;

  /// The job finished; all its reservations must be dropped.
  virtual void on_job_finished(Engine& engine, JobId job) = 0;
};

/// Passive observer for metrics collection and auditing.  All callbacks fire
/// at the simulated instant the event occurs, after the cluster state
/// transition they describe has been applied (so observers see the
/// post-event state).  This is the audit seam: metrics/collectors and
/// audit/InvariantAuditor both attach here, parallel to ReservationHook.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  virtual void on_job_submitted(const Engine&, JobId) {}
  virtual void on_job_finished(const Engine&, JobId) {}
  virtual void on_stage_submitted(const Engine&, StageId) {}
  virtual void on_stage_finished(const Engine&, StageId) {}
  virtual void on_task_started(const Engine&, TaskId, SlotId) {}
  virtual void on_task_finished(const Engine&, TaskId, SlotId) {}
  virtual void on_task_killed(const Engine&, TaskId, SlotId) {}

  // --- Failure / recovery (fault injection) ---------------------------------

  /// A running attempt died with its slot.  Distinct from on_task_killed
  /// (losing a straggler race): the slot is about to go Dead, and the
  /// logical task may not be done.
  virtual void on_task_failed(const Engine&, TaskId, SlotId) {}
  /// A logical task went back to the pending queue: its failed attempt had
  /// no live twin, or its finished output was lost with a slot.  The TaskId
  /// is the attempt whose work was lost; the re-run is a fresh start of the
  /// original attempt.
  virtual void on_task_requeued(const Engine&, TaskId) {}
  /// A previously-finished stage lost outputs and re-opened; its barrier
  /// contribution was rolled back and on_stage_finished will fire again.
  virtual void on_stage_invalidated(const Engine&, StageId) {}
  /// A slot moved to Dead (already drained: no task, no reservation).
  virtual void on_slot_failed(const Engine&, SlotId) {}
  /// A slot moved Dead -> Idle.
  virtual void on_slot_recovered(const Engine&, SlotId) {}

  /// A slot moved Idle -> ReservedIdle.  `reservation.token` is already the
  /// cluster-assigned generation token.
  virtual void on_slot_reserved(const Engine&, SlotId, const Reservation&) {}
  /// A slot moved ReservedIdle -> Idle without being claimed by a task.
  virtual void on_reservation_released(const Engine&, SlotId,
                                       ReservationEndReason) {}
  /// run() finished: every job done, clock settled.  End-of-run accounting
  /// checks (slot-time conservation) hang off this callback.
  virtual void on_run_complete(const Engine&) {}
};

}  // namespace ssr
