#include "ssr/sched/stage_runtime.h"

#include <algorithm>

#include "ssr/common/check.h"

namespace ssr {

StageRuntime::StageRuntime(StageId id, const StageSpec& spec,
                           SimTime submitted_at, std::vector<double> durations)
    : id_(id),
      spec_(&spec),
      submitted_at_(submitted_at),
      last_local_launch_(submitted_at) {
  SSR_CHECK_MSG(durations.size() == spec.num_tasks,
                "one duration per task required");
  originals_.reserve(spec.num_tasks);
  for (std::uint32_t i = 0; i < spec.num_tasks; ++i) {
    TaskAttempt attempt;
    attempt.id = TaskId{id_, i, /*attempt=*/0};
    attempt.base_duration = durations[i];
    originals_.push_back(attempt);
    pending_.push_back(i);
  }
}

std::optional<std::uint32_t> StageRuntime::peek_pending() const {
  if (pending_.empty()) return std::nullopt;
  return pending_.front();
}

void StageRuntime::take_pending(std::uint32_t task_index) {
  auto it = std::find(pending_.begin(), pending_.end(), task_index);
  SSR_CHECK_MSG(it != pending_.end(), "task not pending");
  pending_.erase(it);
}

std::vector<std::uint32_t> StageRuntime::running_task_indices() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < originals_.size(); ++i) {
    if (originals_[i].state == AttemptState::Running && !task_done(i)) {
      out.push_back(i);
    }
  }
  return out;
}

TaskAttempt& StageRuntime::add_copy(std::uint32_t task_index,
                                    double base_duration) {
  SSR_CHECK_MSG(task_index < originals_.size(), "bad task index");
  std::uint32_t attempt_no = 1;
  for (const TaskAttempt& c : copies_) {
    if (c.id.index == task_index) {
      attempt_no = std::max(attempt_no, c.id.attempt + 1);
    }
  }
  TaskAttempt attempt;
  attempt.id = TaskId{id_, task_index, attempt_no};
  attempt.base_duration = base_duration;
  copies_.push_back(attempt);
  return copies_.back();
}

bool StageRuntime::has_live_copy(std::uint32_t task_index) const {
  return std::any_of(copies_.begin(), copies_.end(),
                     [task_index](const TaskAttempt& c) {
                       return c.id.index == task_index &&
                              (c.state == AttemptState::Pending ||
                               c.state == AttemptState::Running);
                     });
}

TaskAttempt* StageRuntime::running_copy(std::uint32_t task_index) {
  for (TaskAttempt& c : copies_) {
    if (c.id.index == task_index && c.state == AttemptState::Running) {
      return &c;
    }
  }
  return nullptr;
}

TaskAttempt* StageRuntime::find_attempt(TaskId id) {
  if (id.stage != id_) return nullptr;
  if (id.attempt == 0) {
    if (id.index >= originals_.size()) return nullptr;
    return &originals_[id.index];
  }
  for (TaskAttempt& c : copies_) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

const TaskAttempt* StageRuntime::finished_attempt(
    std::uint32_t task_index) const {
  if (!task_done(task_index)) return nullptr;
  const TaskAttempt& original = originals_.at(task_index);
  if (original.state == AttemptState::Finished) return &original;
  for (const TaskAttempt& c : copies_) {
    if (c.id.index == task_index && c.state == AttemptState::Finished) {
      return &c;
    }
  }
  return nullptr;
}

void StageRuntime::resurrect(std::uint32_t task_index) {
  TaskAttempt& original = originals_.at(task_index);
  SSR_CHECK_MSG(original.state == AttemptState::Finished ||
                    original.state == AttemptState::Killed,
                "resurrect needs a settled original attempt");
  original.state = AttemptState::Pending;
  original.start_time = -1.0;
  original.finish_time = -1.0;
  original.slot = SlotId{};
  original.local = false;
  ++original.epoch;
  if (done_.erase(task_index) > 0) {
    SSR_CHECK(finished_ > 0);
    --finished_;
  }
  pending_.push_back(task_index);
}

void StageRuntime::mark_running(TaskAttempt& attempt, SlotId slot, SimTime now,
                                bool local) {
  SSR_CHECK_MSG(attempt.state == AttemptState::Pending,
                "attempt already started");
  attempt.state = AttemptState::Running;
  attempt.slot = slot;
  attempt.start_time = now;
  attempt.local = local;
  if (attempt.id.attempt == 0) ++running_originals_;
  if (local) note_local_launch(now);
}

void StageRuntime::mark_finished(TaskAttempt& attempt, SimTime now) {
  SSR_CHECK_MSG(attempt.state == AttemptState::Running,
                "only running attempts can finish");
  attempt.state = AttemptState::Finished;
  attempt.finish_time = now;
  if (attempt.id.attempt == 0) --running_originals_;
  const bool first_completion_of_task = !done_.contains(attempt.id.index);
  if (first_completion_of_task) {
    done_.insert(attempt.id.index);
    ++finished_;
    if (!first_finish_duration_) {
      first_finish_duration_ = now - attempt.start_time;
    }
  }
}

void StageRuntime::mark_killed(TaskAttempt& attempt, SimTime now) {
  SSR_CHECK_MSG(attempt.state == AttemptState::Running,
                "only running attempts can be killed");
  attempt.state = AttemptState::Killed;
  attempt.finish_time = now;
  if (attempt.id.attempt == 0) --running_originals_;
}

void StageRuntime::set_preferred_slots(std::unordered_set<SlotId> preferred) {
  preferred_ = std::move(preferred);
  preferred_sorted_.assign(preferred_.begin(), preferred_.end());
  std::sort(preferred_sorted_.begin(), preferred_sorted_.end());
}

bool StageRuntime::accepts_any_slot(SimTime now,
                                    SimDuration locality_wait) const {
  if (preferred_.empty()) return true;  // no locality preference at all
  return now >= locality_relax_time(locality_wait);
}

SimTime StageRuntime::locality_relax_time(SimDuration locality_wait) const {
  return last_local_launch_ + locality_wait;
}

}  // namespace ssr
