#include "ssr/sched/engine.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "ssr/common/check.h"

namespace ssr {

bool NullReservationHook::approve(const Engine& engine, SlotId slot, JobId,
                                  int) const {
  return engine.cluster().slot(slot).state() == SlotState::Idle;
}

namespace {

void validate_sched_config(const SchedConfig& config) {
  SSR_CHECK_MSG(config.locality_wait >= 0.0, "locality wait must be >= 0");
  SSR_CHECK_MSG(config.locality_slowdown >= 1.0,
                "locality slowdown must be >= 1");
}

}  // namespace

Engine::Engine(SchedConfig config, std::uint32_t num_nodes,
               std::uint32_t slots_per_node, std::uint64_t seed)
    : config_(config),
      sim_(EventQueueOptions{config.event_queue_backend, config.event_shards,
                             num_nodes}),
      cluster_(num_nodes, slots_per_node),
      rng_(seed),
      hook_(std::make_unique<NullReservationHook>()) {
  validate_sched_config(config_);
}

Engine::Engine(SchedConfig config,
               const std::vector<std::vector<Resources>>& node_slots,
               std::uint64_t seed)
    : config_(config),
      sim_(EventQueueOptions{config.event_queue_backend, config.event_shards,
                             static_cast<std::uint32_t>(node_slots.size())}),
      cluster_(node_slots),
      rng_(seed),
      hook_(std::make_unique<NullReservationHook>()) {
  validate_sched_config(config_);
}

Engine::Engine(SchedConfig config, std::uint32_t num_nodes,
               std::uint32_t slots_per_node,
               const std::vector<std::vector<Resources>>& node_slots,
               std::uint64_t seed)
    : config_(config),
      sim_(EventQueueOptions{config.event_queue_backend, config.event_shards,
                             num_nodes}),
      cluster_(node_slots.empty() ? Cluster(num_nodes, slots_per_node)
                                  : Cluster(node_slots)),
      rng_(seed),
      hook_(std::make_unique<NullReservationHook>()) {
  SSR_CHECK_MSG(node_slots.empty() || node_slots.size() == num_nodes,
                "heterogeneous node_slots must cover every node");
  validate_sched_config(config_);
}

Engine::~Engine() = default;

JobId Engine::submit(JobSpec spec) {
  SSR_CHECK_MSG(!drained_, "submit() after drain(): the engine is closed");
  SSR_CHECK_MSG(spec.submit_time >= sim_.now(),
                "job submit time is in the simulated past");
  const JobId id{static_cast<std::uint32_t>(jobs_.size())};
  JobGraph graph(id, std::move(spec));
  const std::uint32_t n = graph.num_stages();
  // Reject jobs that could never run — before the arena records anything:
  // every stage needs at least one slot whose capacity covers its demand, or
  // the simulation would wedge.
  for (std::uint32_t i = 0; i < n; ++i) {
    SSR_CHECK_MSG(cluster_.fits_any_slot(graph.stage(i).demand),
                  "stage demand exceeds every slot capacity in the cluster");
  }
  JobState& job = jobs_.emplace_back(std::move(graph));
  job.unfinished_parents.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    job.unfinished_parents[i] =
        static_cast<std::uint32_t>(job.graph.stage(i).parents.size());
  }
  job.runtimes.resize(n, nullptr);
  job.output_slots.resize(n);

  const SimTime at = job.graph.submit_time();
  sim_.schedule_at(at, EventBand::kArrival, [this, id] { arrive(id); });
  return id;
}

JobId Engine::submit_job(JobSpec spec, SimTime at) {
  spec.submit_time = at;
  return submit(std::move(spec));
}

void Engine::set_reservation_hook(std::unique_ptr<ReservationHook> hook) {
  SSR_CHECK_MSG(!started_, "hook must be installed before the first step");
  SSR_CHECK_MSG(hook != nullptr, "hook must not be null");
  hook_ = std::move(hook);
}

void Engine::add_observer(EngineObserver* observer) {
  SSR_CHECK_MSG(observer != nullptr, "observer must not be null");
  observers_.push_back(observer);
}

void Engine::advance_to(SimTime t) {
  SSR_CHECK_MSG(!drained_, "advance_to() after drain(): the engine is closed");
  started_ = true;
  sim_.run_until(t);  // rejects a horizon in the past
}

bool Engine::all_jobs_finished() const {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (!jobs_[i].done()) return false;
  }
  return true;
}

void Engine::drain() {
  SSR_CHECK_MSG(!drained_, "drain()/run() may be called only once");
  started_ = true;
  // The engine closes only after quiescence: while the queue drains,
  // observers may still feed jobs back through submit() — the virtual-cluster
  // admission pump releases queued work from on_job_finished, and the run
  // loop naturally absorbs the new arrival events.
  sim_.run();
  drained_ = true;
  cluster_.settle(sim_.now());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const JobState& job = jobs_[i];
    SSR_CHECK_MSG(job.done(), "simulation wedged: "
                                  << job.graph.name() << " ("
                                  << job.graph.id() << ") has "
                                  << job.finished_stages << "/"
                                  << job.graph.num_stages()
                                  << " stages finished");
  }
  for (EngineObserver* o : observers_) o->on_run_complete(*this);
}

void Engine::run() { drain(); }

const JobGraph& Engine::graph(JobId job) const { return state(job).graph; }

bool Engine::job_finished(JobId job) const {
  return state(job).finish_time >= 0.0;
}

SimTime Engine::job_finish_time(JobId job) const {
  SSR_CHECK_MSG(job_finished(job), "job has not finished");
  return state(job).finish_time;
}

SimDuration Engine::jct(JobId job) const {
  return job_finish_time(job) - graph(job).submit_time();
}

std::uint32_t Engine::running_tasks_of(JobId job) const {
  return state(job).running_tasks;
}

StageRuntime* Engine::stage_runtime(StageId stage) {
  auto& job = state(stage.job);
  if (stage.index >= job.runtimes.size()) return nullptr;
  return job.runtimes[stage.index];
}

const StageRuntime* Engine::stage_runtime(StageId stage) const {
  const auto& job = state(stage.job);
  if (stage.index >= job.runtimes.size()) return nullptr;
  return job.runtimes[stage.index];
}

// --- Job lifecycle ----------------------------------------------------------

void Engine::arrive(JobId job) {
  for (EngineObserver* o : observers_) o->on_job_submitted(*this, job);
  for (std::uint32_t root : state(job).graph.roots()) {
    submit_stage(job, root);
  }
}

std::vector<double> Engine::draw_durations(const StageSpec& spec) {
  if (spec.explicit_durations) return *spec.explicit_durations;
  std::vector<double> out(spec.num_tasks);
  double shortest = kTimeInfinity;
  for (double& d : out) {
    d = spec.duration->sample(rng_);
    shortest = std::min(shortest, d);
  }
  if (!out.empty()) {
    // Conservative-lookahead hint for the sharded event queue: any attempt of
    // this stage completes at least this far after it starts (locality only
    // slows tasks down), bounding how soon "now" can grow a completion event.
    sim_.note_event_spacing(shortest + config_.task_overhead);
  }
  return out;
}

void Engine::submit_stage(JobId job, std::uint32_t stage_index) {
  JobState& js = state(job);
  SSR_CHECK_MSG(js.runtimes[stage_index] == nullptr,
                "stage submitted more than once");
  const StageId sid = js.graph.stage_id(stage_index);
  const StageSpec& spec = js.graph.stage(stage_index);

  StageRuntime& stage = stage_arena_.emplace_back(sid, spec, sim_.now(),
                                                  draw_durations(spec));
  js.runtimes[stage_index] = &stage;

  // Data locality: downstream tasks prefer the slots that produced the
  // parents' outputs.
  std::unordered_set<SlotId> preferred;
  for (std::uint32_t p : spec.parents) {
    const std::vector<SlotId>& outs = js.output_slots[p];
    preferred.insert(outs.begin(), outs.end());
  }
  stage.set_preferred_slots(std::move(preferred));

  active_stages_.push_back(make_active(stage, js));
  // Observers before the hook: a hook that reserves here (e.g. a static
  // carve-out replenishing) can synchronously start this stage's tasks, and
  // the submission event must precede those starts in the observer stream.
  for (EngineObserver* o : observers_) o->on_stage_submitted(*this, sid);
  hook_->on_stage_submitted(*this, sid);

  place_stage_tasks(stage);
}

void Engine::on_stage_complete(StageRuntime& stage) {
  JobState& js = state(stage.id().job);
  ++js.finished_stages;
  for (EngineObserver* o : observers_) o->on_stage_finished(*this, stage.id());

  for (std::uint32_t child : js.graph.children(stage.id().index)) {
    // A child that already has a runtime was submitted before this
    // completion — possible only when the stage re-completes after a
    // failure invalidated it; the child's barrier cleared long ago and must
    // not be double-counted.  (In failure-free runs every child is
    // unsubmitted here, so this guard never fires.)
    if (js.runtimes[child] != nullptr) continue;
    SSR_CHECK(js.unfinished_parents[child] > 0);
    if (--js.unfinished_parents[child] == 0) {
      submit_stage(stage.id().job, child);
    }
  }
  if (js.done()) finish_job(stage.id().job);
}

void Engine::finish_job(JobId job) {
  JobState& js = state(job);
  js.finish_time = sim_.now();
  hook_->on_job_finished(*this, job);  // releases the job's reservations
  cluster_.forget_job_outputs(job);
  js.output_slots.clear();
  for (EngineObserver* o : observers_) o->on_job_finished(*this, job);
}

// --- Offers -----------------------------------------------------------------

Engine::ActiveStage Engine::make_active(StageRuntime& stage,
                                        const JobState& js) const {
  // The selector score is sampled once, when the stage's task set becomes
  // active.  Selectors are pure functions of spec-level state (DAG shape,
  // expected durations, demand vectors), all fixed at submission, so caching
  // is exact — and keeps the per-offer precedence scan free of virtual calls.
  const double score =
      config_.selector != nullptr
          ? config_.selector->stage_score(*this, stage.id())
          : 0.0;
  return ActiveStage{&stage,
                     &js,
                     score,
                     js.graph.priority(),
                     js.graph.submit_time(),
                     js.graph.spec().fair_weight,
                     stage.id().job.v,
                     stage.id().index};
}

bool Engine::active_precedes(const ActiveStage& a, const ActiveStage& b) const {
  // Selector scores outrank the built-in policy; with no selector installed
  // every score is the same 0.0 and this comparison vanishes, keeping the
  // default ordering byte-identical to the pre-selector engine.
  if (a.policy_score != b.policy_score) {
    return a.policy_score > b.policy_score;
  }
  if (config_.policy == SchedulingPolicy::Fair) {
    // The division must stay a division (not a cached reciprocal multiply):
    // the fair share's exact ULPs participate in tie-breaking, and digests
    // are bit-exact across storage layouts.
    const double sa =
        static_cast<double>(a.job->running_tasks) / a.fair_weight;
    const double sb =
        static_cast<double>(b.job->running_tasks) / b.fair_weight;
    if (sa != sb) return sa < sb;
  } else {
    if (a.priority != b.priority) return a.priority > b.priority;
  }
  if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
  if (a.job_raw != b.job_raw) return a.job_raw < b.job_raw;
  return a.stage_index < b.stage_index;
}

bool Engine::stage_accepts_slot(const StageRuntime& stage, SlotId slot) const {
  const JobId job = stage.id().job;
  // Resource fit (Sec. III-C): the slot's capacity must cover the stage's
  // per-task demand.  Homogeneous setups pass trivially ({1,1} in {1,1}).
  if (!stage.spec().demand.fits_in(cluster_.slot(slot).capacity())) {
    return false;
  }
  if (!hook_->approve(*this, slot, job, state(job).graph.priority())) {
    return false;
  }
  if (stage.is_preferred(slot)) return true;
  // Non-preferred slots — including the job's own *pre-reserved* ones, which
  // hold no parent data — are subject to delay scheduling: a guaranteed
  // remote slot is an option to exercise once the locality wait expires, not
  // a reason to pay the remote penalty early.
  return stage.accepts_any_slot(sim_.now(), config_.locality_wait);
}

void Engine::offer_slot(SlotId slot) {
  const SlotState st = cluster_.slot(slot).state();
  if (st == SlotState::Busy || st == SlotState::Dead) return;
  // Single linear pass over the cached-key table: find the policy-first
  // stage that accepts this slot.  (Sorting all pending stages per offer
  // would dominate large overloaded simulations; the precedence pre-filter
  // runs on flat cached keys and skips the acceptance probe — and its
  // arm_locality_retry side effect — for stages that cannot win, exactly as
  // the pointer-chasing scan did.)
  const ActiveStage* best = nullptr;
  for (const ActiveStage& active : active_stages_) {
    if (active.runtime->all_placed()) continue;
    if (best != nullptr && !active_precedes(active, *best)) continue;
    if (stage_accepts_slot(*active.runtime, slot)) {
      best = &active;
    } else {
      arm_locality_retry(*active.runtime);
    }
  }
  if (best != nullptr) {
    StageRuntime& stage = *best->runtime;
    const std::uint32_t index = *stage.peek_pending();
    stage.take_pending(index);
    start_attempt(stage, stage.mutable_original(index), slot);
  }
}

void Engine::append_overridable_reserved(JobId job, int priority,
                                         std::vector<SlotId>& out) const {
  // k-way merge of the id-ordered priority buckets strictly below the
  // requester's priority; reproduces the id order of one full scan over the
  // reserved set restricted to the slots a PriorityOverride approve() would
  // accept.  The bucket count is the number of distinct live reservation
  // priorities — a handful — so the linear best-cursor probe is cheap.
  using Cursor = std::set<SlotId>::const_iterator;
  std::vector<std::pair<Cursor, Cursor>> cursors;
  const auto& buckets = cluster_.reserved_idle_by_priority();
  for (auto it = buckets.begin(); it != buckets.end() && it->first < priority;
       ++it) {
    cursors.emplace_back(it->second.begin(), it->second.end());
  }
  while (true) {
    std::size_t best = cursors.size();
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].first == cursors[i].second) continue;
      if (best == cursors.size() || *cursors[i].first < *cursors[best].first) {
        best = i;
      }
    }
    if (best == cursors.size()) break;
    const SlotId s = *cursors[best].first++;
    // Own-job reservations normally carry the job's own priority and never
    // land in a lower bucket, but a hook is free to tag them differently;
    // they belong to candidate group (1), not here.
    if (cluster_.slot(s).reservation()->job != job) out.push_back(s);
  }
}

void Engine::place_stage_tasks(StageRuntime& stage) {
  if (stage.all_placed()) return;
  const JobId job = stage.id().job;
  const ReservedApprovalModel model = hook_->reserved_approval_model();

  // Candidate slots in preference order: (1) slots reserved for this job —
  // downstream computations reclaim their reservations first; (2) idle slots
  // holding parent outputs; (3) any other idle slot; (4) lower-priority
  // reservations (override).  Duplicates are harmless: a consumed slot fails
  // the availability re-check.  The buffer's capacity is recycled across
  // calls — at fig15 scale this enumeration runs for every stage submission
  // and the repeated growth shows up in profiles.
  std::vector<SlotId> candidates = std::move(candidate_scratch_);
  candidates.clear();
  if (model == ReservedApprovalModel::Custom) {
    // Reference enumeration: full id-ordered scans over the cluster's free
    // sets.  Hooks with unknown approval semantics get this path, and the
    // differential test suite forces it (via ReferenceSelector) to prove the
    // indexed enumeration below makes the same decisions.
    for (SlotId s : cluster_.reserved_idle_slots()) {
      if (cluster_.slot(s).reservation()->job == job) candidates.push_back(s);
    }
    for (SlotId s : cluster_.idle_slots()) {
      if (stage.is_preferred(s)) candidates.push_back(s);
    }
    for (SlotId s : cluster_.idle_slots()) {
      if (!stage.is_preferred(s)) candidates.push_back(s);
    }
    for (SlotId s : cluster_.reserved_idle_slots()) {
      if (cluster_.slot(s).reservation()->job != job) candidates.push_back(s);
    }
  } else {
    // Indexed enumeration.  Each group comes from an incrementally
    // maintained id-ordered index yielding exactly the slots, in exactly the
    // order, the reference scan above visits with the same filter.  Group
    // (4) additionally pre-applies the hook's declared approval rule, and a
    // delay-blocked stage skips group (3) outright; both prunings drop only
    // slots the per-candidate checks would reject, which is sound because
    // acceptance is monotone over the placement loop: slots only leave
    // availability (Idle/ReservedIdle -> Busy; no release or re-reservation
    // of a reserved slot can occur while no simulated time passes), and the
    // delay-scheduling relax time only moves later, so a slot rejectable at
    // snapshot time can never become acceptable mid-loop.
    const auto& own = cluster_.reserved_idle_slots_of(job);
    candidates.assign(own.begin(), own.end());
    for (SlotId s : stage.preferred_slots_sorted()) {
      if (cluster_.slot(s).state() == SlotState::Idle) candidates.push_back(s);
    }
    if (stage.accepts_any_slot(sim_.now(), config_.locality_wait)) {
      for (SlotId s : cluster_.idle_slots()) {
        if (!stage.is_preferred(s)) candidates.push_back(s);
      }
    }
    if (model == ReservedApprovalModel::PriorityOverride) {
      append_overridable_reserved(job, state(job).graph.priority(), candidates);
    }
    // NeverApprove: approve() rejects every reserved slot; nothing to add.
  }

  // Slot-ranking seam (DESIGN.md §14): a selector may permute the candidate
  // list (e.g. best-fit packing) before the placement loop.  Sound for the
  // same reason the indexed pruning above is: the loop's per-slot checks are
  // unchanged and acceptance is monotone, so reordering changes *which*
  // acceptable slots the earliest pending tasks land on, never whether a
  // slot is acceptable.  Both the reference and indexed enumerations pass
  // through here, so the differential suite covers ranked placement too.
  if (config_.selector != nullptr) {
    config_.selector->rank_slots(*this, stage.id(), candidates);
  }

  for (SlotId slot : candidates) {
    if (stage.all_placed()) break;
    if (cluster_.slot(slot).state() == SlotState::Busy) continue;
    if (!stage_accepts_slot(stage, slot)) continue;
    const std::uint32_t index = *stage.peek_pending();
    stage.take_pending(index);
    start_attempt(stage, stage.mutable_original(index), slot);
  }
  candidate_scratch_ = std::move(candidates);
  arm_locality_retry(stage);
}

void Engine::arm_locality_retry(StageRuntime& stage) {
  if (stage.all_placed() || stage.retry_timer_armed()) return;
  if (stage.preferred_slots().empty()) return;
  const SimTime relax = stage.locality_relax_time(config_.locality_wait);
  if (relax <= sim_.now()) return;  // already accepts any slot
  stage.set_retry_timer_armed(true);
  sim_.schedule_at(relax, [this, sid = stage.id()] {
    StageRuntime* st = stage_runtime(sid);
    if (st == nullptr) return;
    st->set_retry_timer_armed(false);
    if (!st->all_placed()) place_stage_tasks(*st);
  });
}

// --- Task execution ----------------------------------------------------------

bool Engine::is_local(const StageRuntime& stage, SlotId slot) const {
  if (stage.preferred_slots().empty()) return true;
  return stage.is_preferred(slot);
}

void Engine::start_attempt(StageRuntime& stage, TaskAttempt& attempt,
                           SlotId slot) {
  JobState& js = state(stage.id().job);
  // Straggler copies always run warm: the reserved slot executed this very
  // phase moments ago (Sec. IV-C — no JVM warm-up, data already local).
  const bool local = attempt.id.attempt > 0 || is_local(stage, slot);
  const double runtime =
      attempt.base_duration * (local ? 1.0 : config_.locality_slowdown) +
      config_.task_overhead;

  cluster_.start_task(slot, attempt.id, sim_.now());
  stage.mark_running(attempt, slot, sim_.now(), local);
  ++js.running_tasks;

  // Passive observers see the event stream in cluster-transition order, so
  // they are notified before the hook, whose handler may itself transition
  // slots (reserve, release) and emit further observer events.
  for (EngineObserver* o : observers_) o->on_task_started(*this, attempt.id, slot);
  hook_->on_task_started(*this, attempt.id, slot);

  // Completion events are the bulk of the queue at scale; home them on the
  // executing slot's node so the sharded queue spreads them across lanes.
  sim_.schedule_after(runtime, cluster_.slot(slot).node(),
                      [this, sid = stage.id(), tid = attempt.id,
                       epoch = attempt.epoch] { handle_completion(sid, tid, epoch); });

  // Copies never change the pending queue; only the placement of the last
  // original flips the stage to fully-placed.
  if (attempt.id.attempt == 0 && stage.all_placed()) {
    std::erase_if(active_stages_, [&stage](const ActiveStage& active) {
      return active.runtime == &stage;
    });
    hook_->on_stage_fully_placed(*this, stage.id());
  }
}

TaskFinishInfo Engine::make_finish_info(const StageRuntime& stage,
                                        const TaskAttempt& attempt) const {
  TaskFinishInfo info;
  info.task = attempt.id;
  info.slot = attempt.slot;
  info.stage_parallelism = stage.parallelism();
  info.stage_finished = stage.finished_count();
  info.duration = attempt.finish_time - attempt.start_time;
  return info;
}

void Engine::handle_completion(StageId stage_id, TaskId task,
                               std::uint32_t epoch) {
  StageRuntime* stage = stage_runtime(stage_id);
  SSR_CHECK_MSG(stage != nullptr, "completion for unknown stage");
  TaskAttempt* attempt = stage->find_attempt(task);
  SSR_CHECK_MSG(attempt != nullptr, "completion for unknown attempt");
  if (attempt->state != AttemptState::Running || attempt->epoch != epoch) {
    // Stale event: the attempt lost a copy race and was killed, or it died
    // with its slot and was resurrected (the epoch mismatch keeps an event
    // from the pre-failure run from completing the re-run).
    return;
  }

  JobState& js = state(stage_id.job);
  stage->mark_finished(*attempt, sim_.now());
  --js.running_tasks;
  cluster_.finish_task(attempt->slot, sim_.now());
  js.output_slots[stage_id.index].push_back(attempt->slot);
  // Observers must see the finish before the twin kill and before the hook
  // (which may immediately reserve the freed slot) — same ordering rule as
  // in start_attempt.
  for (EngineObserver* o : observers_) {
    o->on_task_finished(*this, task, attempt->slot);
  }

  // First finisher wins the race (Sec. IV-C): kill the twin attempt.
  TaskAttempt* twin = nullptr;
  if (task.attempt == 0) {
    twin = stage->running_copy(task.index);
  } else {
    TaskAttempt& original = stage->mutable_original(task.index);
    if (original.state == AttemptState::Running) twin = &original;
  }
  if (twin != nullptr) kill_attempt(*stage, *twin);

  hook_->on_task_finished(*this, make_finish_info(*stage, *attempt));

  if (stage->complete()) on_stage_complete(*stage);

  if (cluster_.slot(attempt->slot).state() == SlotState::Idle) {
    offer_slot(attempt->slot);
  }
}

void Engine::kill_attempt(StageRuntime& stage, TaskAttempt& attempt) {
  JobState& js = state(stage.id().job);
  cluster_.kill_task(attempt.slot, sim_.now());
  stage.mark_killed(attempt, sim_.now());
  --js.running_tasks;
  for (EngineObserver* o : observers_) {
    o->on_task_killed(*this, attempt.id, attempt.slot);
  }
  hook_->on_task_killed(*this, make_finish_info(stage, attempt));
  if (cluster_.slot(attempt.slot).state() == SlotState::Idle) {
    offer_slot(attempt.slot);
  }
}

// --- Reservation operations ---------------------------------------------------

void Engine::reserve_slot(SlotId slot, Reservation reservation) {
  const SimTime deadline = reservation.deadline;
  reservation.token = cluster_.reserve(slot, reservation, sim_.now());
  const std::uint64_t token = reservation.token;
  for (EngineObserver* o : observers_) {
    o->on_slot_reserved(*this, slot, reservation);
  }
  if (deadline < kTimeInfinity) {
    sim_.schedule_at(deadline, EventBand::kInternal,
                     cluster_.slot(slot).node(), [this, slot, token] {
      if (cluster_.release_if_current(slot, token, sim_.now())) {
        for (EngineObserver* o : observers_) {
          o->on_reservation_released(*this, slot,
                                     ReservationEndReason::Expired);
        }
        hook_->on_slot_idle(*this, slot);
        if (cluster_.slot(slot).state() == SlotState::Idle) offer_slot(slot);
      }
    });
  }
  // A freshly reserved slot can still serve strictly higher-priority work.
  offer_slot(slot);
}

void Engine::release_reservation(SlotId slot) {
  cluster_.release_reservation(slot, sim_.now());
  for (EngineObserver* o : observers_) {
    o->on_reservation_released(*this, slot, ReservationEndReason::Released);
  }
  hook_->on_slot_idle(*this, slot);
  if (cluster_.slot(slot).state() == SlotState::Idle) offer_slot(slot);
}

bool Engine::launch_copy(StageId stage_id, std::uint32_t task_index,
                         SlotId slot) {
  StageRuntime* stage = stage_runtime(stage_id);
  if (stage == nullptr) return false;
  const Slot& s = cluster_.slot(slot);
  if (s.state() != SlotState::ReservedIdle ||
      s.reservation()->job != stage_id.job) {
    return false;
  }
  if (stage->task_done(task_index)) return false;
  if (stage->original(task_index).state != AttemptState::Running) return false;
  if (stage->has_live_copy(task_index)) return false;
  if (!stage->spec().demand.fits_in(s.capacity())) return false;

  const double duration = stage->spec().duration->sample(rng_);
  TaskAttempt& copy = stage->add_copy(task_index, duration);
  start_attempt(*stage, copy, slot);
  return true;
}

// --- Failure handling ---------------------------------------------------------

void Engine::fail_node(NodeId node) {
  // Drain every slot first, place displaced work once at the end: re-placing
  // after each slot would let a task land on a sibling slot that is about to
  // die in the same node failure.
  std::vector<StageRuntime*> to_place;
  for (SlotId slot : cluster_.slots_of_node(node)) {
    fail_slot_impl(slot, to_place);
  }
  place_after_failure(to_place);
}

void Engine::recover_node(NodeId node) {
  for (SlotId slot : cluster_.slots_of_node(node)) {
    recover_slot_impl(slot);
  }
}

void Engine::fail_slot(SlotId slot) {
  std::vector<StageRuntime*> to_place;
  fail_slot_impl(slot, to_place);
  place_after_failure(to_place);
}

void Engine::recover_slot(SlotId slot) { recover_slot_impl(slot); }

void Engine::fail_slot_impl(SlotId slot, std::vector<StageRuntime*>& to_place) {
  const Slot& s = cluster_.slot(slot);
  if (s.state() == SlotState::Dead) return;  // overlapping failure windows

  if (s.state() == SlotState::Busy) {
    const TaskId tid = *s.running_task();
    StageRuntime* stage = stage_runtime(tid.stage);
    SSR_CHECK_MSG(stage != nullptr, "busy slot with unknown stage");
    TaskAttempt* attempt = stage->find_attempt(tid);
    SSR_CHECK_MSG(attempt != nullptr && attempt->state == AttemptState::Running,
                  "busy slot without a running attempt");
    JobState& js = state(tid.stage.job);
    cluster_.kill_task(slot, sim_.now());
    stage->mark_killed(*attempt, sim_.now());
    --js.running_tasks;
    for (EngineObserver* o : observers_) o->on_task_failed(*this, tid, slot);
    // No hook on_task_killed here: that callback exists so policies re-reserve
    // the warm slot a race loser vacated, and this slot is dying.
    if (!stage->task_done(tid.index)) {
      // A live twin elsewhere masks the failure: the surviving attempt keeps
      // running and will finish the logical task.
      bool masked = false;
      bool already_queued = false;
      if (tid.attempt == 0) {
        masked = stage->running_copy(tid.index) != nullptr;
      } else {
        const AttemptState os = stage->original(tid.index).state;
        masked = os == AttemptState::Running;
        // Pending: the original was already resurrected (e.g. it died on a
        // sibling slot earlier in this same node failure).
        already_queued = os == AttemptState::Pending;
      }
      if (!masked && !already_queued) {
        stage->resurrect(tid.index);
        for (EngineObserver* o : observers_) o->on_task_requeued(*this, tid);
        ensure_active(*stage);
        to_place.push_back(stage);
      }
    }
  } else if (s.state() == SlotState::ReservedIdle) {
    cluster_.release_reservation(slot, sim_.now());
    for (EngineObserver* o : observers_) {
      o->on_reservation_released(*this, slot, ReservationEndReason::SlotFailed);
    }
    // No hook on_slot_idle: that path counts as a reservation expiry and may
    // re-reserve, and the slot is dying.  The hook reconciles its bookkeeping
    // in on_slot_failed below instead.
  }

  cluster_.fail_slot(slot, sim_.now());
  for (EngineObserver* o : observers_) o->on_slot_failed(*this, slot);
  // After the transition: the slot is Dead, so a buggy hook that tries to
  // reserve it fails a cluster state check instead of corrupting the run.
  hook_->on_slot_failed(*this, slot);

  invalidate_outputs(slot, to_place);
}

void Engine::invalidate_outputs(SlotId slot,
                                std::vector<StageRuntime*>& to_place) {
  for (StageId sid : cluster_.take_resident_outputs(slot)) {
    JobState& js = state(sid.job);
    if (js.finish_time >= 0.0) continue;  // job done; nobody reads the data
    // The locality index forgets the dead slot whether or not a re-run is
    // needed — child stages must stop preferring it.
    std::erase(js.output_slots[sid.index], slot);
    StageRuntime* stage = js.runtimes[sid.index];
    SSR_CHECK_MSG(stage != nullptr, "resident output of unsubmitted stage");
    // Re-run lost producers only while some dependent stage still needs the
    // data: a child not yet submitted, or submitted but not complete.
    bool needed = false;
    for (std::uint32_t child : js.graph.children(sid.index)) {
      const StageRuntime* c = js.runtimes[child];
      if (c == nullptr || !c->complete()) {
        needed = true;
        break;
      }
    }
    if (!needed) continue;

    std::vector<std::uint32_t> lost;
    for (std::uint32_t i = 0; i < stage->parallelism(); ++i) {
      const TaskAttempt* fin = stage->finished_attempt(i);
      if (fin != nullptr && fin->slot == slot) lost.push_back(i);
    }
    if (lost.empty()) continue;

    const bool was_complete = stage->complete();
    for (std::uint32_t i : lost) {
      const TaskId winner = stage->finished_attempt(i)->id;
      stage->resurrect(i);
      for (EngineObserver* o : observers_) o->on_task_requeued(*this, winner);
    }
    if (was_complete) {
      // Roll back the stage's barrier contribution; on_stage_complete will
      // fire again when the re-runs finish.  Children already submitted keep
      // their cleared barrier (they re-read the re-produced outputs for
      // free in this model) — only unsubmitted ones wait again.
      --js.finished_stages;
      for (std::uint32_t child : js.graph.children(sid.index)) {
        if (js.runtimes[child] == nullptr) ++js.unfinished_parents[child];
      }
      for (EngineObserver* o : observers_) o->on_stage_invalidated(*this, sid);
    }
    ensure_active(*stage);
    to_place.push_back(stage);
  }
}

void Engine::ensure_active(StageRuntime& stage) {
  for (const ActiveStage& active : active_stages_) {
    if (active.runtime == &stage) return;
  }
  active_stages_.push_back(make_active(stage, state(stage.id().job)));
}

void Engine::place_after_failure(const std::vector<StageRuntime*>& to_place) {
  std::vector<StageRuntime*> seen;
  for (StageRuntime* stage : to_place) {
    if (std::find(seen.begin(), seen.end(), stage) != seen.end()) continue;
    seen.push_back(stage);
    if (!stage->all_placed()) place_stage_tasks(*stage);
  }
}

void Engine::recover_slot_impl(SlotId slot) {
  if (cluster_.slot(slot).state() != SlotState::Dead) return;  // idempotent
  cluster_.recover_slot(slot, sim_.now());
  for (EngineObserver* o : observers_) o->on_slot_recovered(*this, slot);
  // A recovered slot is an ordinary fresh idle slot: give pre-reservation its
  // usual chance, then offer it to pending task sets.
  hook_->on_slot_idle(*this, slot);
  if (cluster_.slot(slot).state() == SlotState::Idle) offer_slot(slot);
}

}  // namespace ssr
